"""Regenerate Table III: sensitivity to the buffer-site budget.

Each circuit runs with the paper's small/medium/large site counts. The
asserted shape: scarcer sites mean more length-rule failures and higher
buffer density.
"""

import pytest

from conftest import FULL, FULL_TABLE3, QUICK_TABLE3, experiment_config, record_table
from repro.experiments import format_table3, run_table3_circuit

CIRCUITS = FULL_TABLE3 if FULL else QUICK_TABLE3


@pytest.mark.parametrize("name", CIRCUITS)
def test_site_budget_sweep(benchmark, name):
    rows = benchmark.pedantic(
        lambda: run_table3_circuit(name, experiment_config()),
        rounds=1,
        iterations=1,
    )
    record_table("Table III", format_table3(rows))
    small, medium, large = (r.metrics for r in rows)
    assert small.num_fails >= large.num_fails, "fewer sites -> more fails"
    assert small.buffer_density_avg >= large.buffer_density_avg
    for m in (small, medium, large):
        assert m.overflows == 0
        assert m.buffer_density_max <= 1.0
