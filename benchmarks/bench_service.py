"""Planning-service benchmark feeding ``BENCH_service.json``.

Two tiers:

* **Incremental kernel** — the acceptance workload: a single-macro-move
  delta on the 32x32 / 500-net kernel scenario (16x16 / 120 under
  ``REPRO_BENCH_FAST=1``). Records the incremental-vs-full-replan
  speedup (exactness included: the two plans' buffering signatures must
  match), plus sustained service throughput over a warmed
  fixed-duration window (jobs, wall seconds, jobs/sec, p50/p95/p99).
* **Fleet kernel** — one seeded load trace driven through the
  single-process scheduler (the ``workers=1`` arm) and through
  ``FleetPlanningService`` at 2 and 4 workers. Every arm must finish
  with byte-identical baseline signatures; the 4-worker arm carries the
  ``min_speedup_vs_workers1`` gate (armed only on machines with enough
  cores — the entry records ``cores`` either way).
"""

import os

from conftest import FAST, SEED, record_table
from repro.benchmarks.service_fleet_kernel import (
    append_fleet_entry,
    fleet_params,
    run_fleet_kernel,
)
from repro.benchmarks.service_kernel import (
    append_service_entry,
    run_service_kernel,
)
from repro.experiments.formatting import render_table

TRAJECTORY = os.path.join(os.path.dirname(__file__), "BENCH_service.json")

#: The acceptance floor for the incremental engine on the full workload.
MIN_SPEEDUP = 3.0

#: The acceptance floor for the 4-worker fleet vs the single-process
#: scheduler (only armed when the machine has >= 4 cores).
MIN_FLEET_SPEEDUP = 3.0


def _kernel_kwargs():
    kwargs = dict(seed=SEED, site_seed=SEED)
    if FAST:
        kwargs.update(grid=16, num_nets=120, total_sites=600,
                      repetitions=1, duration_s=0.5, warmup=1)
    return kwargs


def _record(entry):
    record_table(
        "Planning service (BENCH_service.json)",
        render_table(
            ["label", "grid", "nets", "incr s", "full s", "speedup",
             "match", "jobs", "wall s", "jobs/s", "p50 ms", "p95 ms",
             "p99 ms"],
            [[
                entry["label"],
                str(entry["params"]["grid"]),
                str(entry["params"]["num_nets"]),
                f"{entry['seconds_incremental']:.4f}",
                f"{entry['seconds_full_replan']:.4f}",
                f"{entry['incremental_speedup']:.2f}x",
                str(entry["signature_match"]),
                str(entry["jobs"]),
                f"{entry['wall_seconds']:.2f}",
                f"{entry['jobs_per_sec']:.2f}",
                f"{entry['latency_p50'] * 1000:.1f}",
                f"{entry['latency_p95'] * 1000:.1f}",
                f"{entry['latency_p99'] * 1000:.1f}",
            ]],
        ),
    )


def test_service_kernel(benchmark):
    """Record the incremental-service arm; enforce exactness + speedup."""
    holder = {}

    def body():
        holder["result"] = run_service_kernel(**_kernel_kwargs())
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    label = "incremental-service-smoke" if FAST else "incremental-service"
    entry = append_service_entry(TRAJECTORY, label, result)
    _record(entry)
    assert result.signature_match
    assert result.jobs > 0
    assert result.wall_seconds > 0
    assert result.jobs_per_sec > 0
    if not FAST:
        assert result.incremental_speedup >= MIN_SPEEDUP


def test_fleet_kernel(benchmark):
    """Record the fleet arms; enforce cross-arm signature identity."""
    if FAST:
        workers = (1, 2)
        kwargs = dict(tenants=2, jobs=24, rate=40.0)
    else:
        workers = (1, 2, 4)
        kwargs = dict(tenants=4, jobs=120, rate=60.0)
    kwargs.update(seed=SEED, grid=16, num_nets=120, total_sites=600)

    holder = {}

    def body():
        holder["arms"], holder["match"] = run_fleet_kernel(
            workers=workers, **kwargs
        )
        return holder["arms"]

    benchmark.pedantic(body, rounds=1, iterations=1)
    arms, match = holder["arms"], holder["match"]
    assert match, "fleet arms diverged from the single-process signatures"

    label = "fleet-loadgen-smoke" if FAST else "fleet-loadgen"
    params = fleet_params(
        kwargs["tenants"], kwargs["jobs"], kwargs["rate"], kwargs["seed"],
        kwargs["grid"], kwargs["num_nets"], kwargs["total_sites"],
    )
    widest = max(arm.workers for arm in arms)
    rows = []
    for arm in arms:
        entry = append_fleet_entry(
            TRAJECTORY,
            label,
            params,
            arm,
            match,
            min_speedup=(
                MIN_FLEET_SPEEDUP
                if (arm.workers == widest and not FAST)
                else None
            ),
        )
        rows.append([
            str(entry["workers"]),
            str(entry["jobs"]),
            f"{entry['wall_seconds']:.2f}",
            f"{entry['jobs_per_sec']:.2f}",
            f"{entry['latency_p50'] * 1000:.1f}",
            f"{entry['latency_p95'] * 1000:.1f}",
            f"{entry['latency_p99'] * 1000:.1f}",
            str(entry.get("speedup_vs_baseline", "-")),
            entry.get("speedup_gate", "-"),
        ])
        assert arm.report.jobs_failed == 0
    record_table(
        "Fleet load (BENCH_service.json)",
        render_table(
            ["workers", "jobs", "wall s", "jobs/s", "p50 ms", "p95 ms",
             "p99 ms", "speedup", "gate"],
            rows,
        ),
    )
