"""Planning-service benchmark feeding ``BENCH_service.json``.

Measures the incremental engine against the acceptance workload: a
single-macro-move delta on the 32x32 / 500-net kernel scenario
(16x16 / 120 under ``REPRO_BENCH_FAST=1``). Records the
incremental-vs-full-replan speedup (exactness included: the two plans'
buffering signatures must match), plus service throughput (jobs/sec and
p50/p95 per-job latency over a burst of deltas).
"""

import os

from conftest import FAST, SEED, record_table
from repro.benchmarks.service_kernel import (
    append_service_entry,
    run_service_kernel,
)
from repro.experiments.formatting import render_table

TRAJECTORY = os.path.join(os.path.dirname(__file__), "BENCH_service.json")

#: The acceptance floor for the incremental engine on the full workload.
MIN_SPEEDUP = 3.0


def _kernel_kwargs():
    kwargs = dict(seed=SEED, site_seed=SEED)
    if FAST:
        kwargs.update(grid=16, num_nets=120, total_sites=600,
                      repetitions=1, jobs=4)
    return kwargs


def _record(entry):
    record_table(
        "Planning service (BENCH_service.json)",
        render_table(
            ["label", "grid", "nets", "incr s", "full s", "speedup",
             "match", "jobs/s", "p50 ms", "p95 ms"],
            [[
                entry["label"],
                str(entry["params"]["grid"]),
                str(entry["params"]["num_nets"]),
                f"{entry['seconds_incremental']:.4f}",
                f"{entry['seconds_full_replan']:.4f}",
                f"{entry['incremental_speedup']:.2f}x",
                str(entry["signature_match"]),
                f"{entry['jobs_per_sec']:.2f}",
                f"{entry['latency_p50'] * 1000:.1f}",
                f"{entry['latency_p95'] * 1000:.1f}",
            ]],
        ),
    )


def test_service_kernel(benchmark):
    """Record the incremental-service arm; enforce exactness + speedup."""
    holder = {}

    def body():
        holder["result"] = run_service_kernel(**_kernel_kwargs())
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    label = "incremental-service-smoke" if FAST else "incremental-service"
    entry = append_service_entry(TRAJECTORY, label, result)
    _record(entry)
    assert result.signature_match
    assert result.jobs_per_sec > 0
    if not FAST:
        assert result.incremental_speedup >= MIN_SPEEDUP
