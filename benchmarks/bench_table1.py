"""Regenerate Table I: benchmark statistics and parameters.

Fast: only synthesis, no planning. Checks the realized statistics against
the published ones while timing the generators.
"""

import pytest

from conftest import SEED, record_table
from repro.benchmarks import BENCHMARK_SPECS, load_benchmark
from repro.experiments import format_table1, run_table1
from repro.experiments.table1 import row_for_instance


@pytest.mark.parametrize("name", sorted(BENCHMARK_SPECS))
def test_generate_circuit(benchmark, name):
    """Time the synthesis of one benchmark instance."""
    bench = benchmark.pedantic(
        lambda: load_benchmark(name, seed=SEED), rounds=1, iterations=1
    )
    row = row_for_instance(bench)
    spec = BENCHMARK_SPECS[name]
    assert row.nets == spec.nets
    assert row.sinks == spec.sinks
    assert row.buffer_sites == spec.buffer_sites


def test_table1_report(benchmark):
    """Produce the full Table I."""
    rows = benchmark.pedantic(lambda: run_table1(seed=SEED), rounds=1, iterations=1)
    record_table("Table I", format_table1(rows))
    assert len(rows) == 10
