"""Regenerate Table II: stage-by-stage RABID results.

Quick mode runs three CBL circuits; ``REPRO_FULL=1`` runs the six CBL
circuits stage-by-stage plus the four random circuits' final rows, exactly
as the paper's table is organized.
"""

import pytest

from conftest import (
    FULL,
    FULL_TABLE2_CBL,
    FULL_TABLE2_RANDOM,
    QUICK_TABLE2,
    experiment_config,
    record_table,
)
from repro.experiments import format_table2, run_table2_circuit

CIRCUITS = FULL_TABLE2_CBL if FULL else QUICK_TABLE2
RANDOMS = FULL_TABLE2_RANDOM if FULL else ["ac3"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_stage_by_stage(benchmark, name):
    rows = benchmark.pedantic(
        lambda: run_table2_circuit(name, experiment_config()),
        rounds=1,
        iterations=1,
    )
    record_table("Table II", format_table2(rows))
    s1, s2, s3, s4 = (r.metrics for r in rows)
    # The paper's headline observations must hold for every circuit.
    assert s2.overflows == 0, "stage 2 must clear wire overflow"
    assert s4.overflows == 0
    assert s3.num_buffers > 0
    assert s3.avg_delay_ps < s2.avg_delay_ps, "buffers must cut delay"
    assert s4.num_fails <= s3.num_fails
    assert max(s3.buffer_density_max, s4.buffer_density_max) <= 1.0


@pytest.mark.parametrize("name", RANDOMS)
def test_random_circuit_final(benchmark, name):
    rows = benchmark.pedantic(
        lambda: run_table2_circuit(name, experiment_config(), final_only=True),
        rounds=1,
        iterations=1,
    )
    record_table("Table II", format_table2(rows))
    final = rows[0].metrics
    assert final.overflows == 0
    assert final.buffer_density_max <= 1.0
