"""Regenerate Table IV: sensitivity to grid size.

Quick mode sweeps apte over three tilings; ``REPRO_FULL=1`` sweeps apte,
ami49 and playout over all five, as the paper does. Asserted shape: the
max wire congestion does not fall as the tiling refines, and CPU time
grows with the tile count.
"""

import pytest

from conftest import FULL, FULL_TABLE4, QUICK_TABLE4, experiment_config, record_table
from repro.experiments import format_table4, run_table4_circuit

SWEEPS = FULL_TABLE4 if FULL else QUICK_TABLE4


@pytest.mark.parametrize("name", sorted(SWEEPS))
def test_grid_sweep(benchmark, name):
    grids = SWEEPS[name]
    rows = benchmark.pedantic(
        lambda: run_table4_circuit(name, experiment_config(), grids=grids),
        rounds=1,
        iterations=1,
    )
    record_table("Table IV", format_table4(rows))
    # Finer tiling tightens congestion constraints (paper's observation).
    # We compare the finest grid against the *median* one: the coarsest
    # grid has so few edges that its maximum is dominated by calibration
    # noise (see EXPERIMENTS.md), whereas the medium-to-fine trend is
    # robust. Tolerance covers stochastic wiggle between adjacent grids.
    median = rows[len(rows) // 2].metrics
    fine = rows[-1].metrics
    assert fine.wire_congestion_max >= median.wire_congestion_max - 0.15
    # CPU grows with tile count (at least from the median to the finest).
    assert fine.cpu_seconds > median.cpu_seconds * 0.8
    for r in rows:
        assert r.metrics.buffer_density_max <= 1.0
