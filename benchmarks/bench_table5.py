"""Regenerate Table V: RABID versus buffer-block planning (BBP/FR).

The asserted shape is the paper's headline: RABID meets wire-congestion
constraints where BBP/FR overflows, spreads buffers (MTAP far below
BBP/FR's), inserts more buffers, uses somewhat more wire, and delivers
comparable delays.
"""

import pytest

from conftest import FULL, FULL_TABLE5, QUICK_TABLE5, experiment_config, record_table
from repro.experiments import format_table5, run_table5_circuit

CIRCUITS = FULL_TABLE5 if FULL else QUICK_TABLE5


@pytest.mark.parametrize("name", CIRCUITS)
def test_rabid_vs_bbp(benchmark, name):
    rows = benchmark.pedantic(
        lambda: run_table5_circuit(name, experiment_config()),
        rounds=1,
        iterations=1,
    )
    record_table("Table V", format_table5(rows))
    bbp, rabid = rows
    assert rabid.overflows == 0, "RABID always meets congestion constraints"
    assert rabid.wire_congestion_max <= 1.0
    assert rabid.mtap_pct <= bbp.mtap_pct + 1e-9, "RABID spreads buffers"
    assert rabid.num_buffers >= bbp.num_buffers * 0.8
    # Comparable delays: within a factor of two either way.
    assert rabid.avg_delay_ps < 2.0 * bbp.avg_delay_ps
