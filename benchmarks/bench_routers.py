"""Router ablation: Prim-Dijkstra + rip-up (paper default) versus the
multicommodity-flow alternative the paper cites for Stages 1-2 — plus the
Stage-2 routing-kernel benchmark that feeds ``BENCH_routing.json``.

Both ablation arms feed the identical Stage 3/4 pipeline on the same
instance; compared on congestion, wirelength, buffers, fails, and runtime.
The kernel benchmark reroutes the ISSUE's 32x32 / 500-net workload
(16x16 / 120 nets under ``REPRO_BENCH_FAST=1``) and records the timings
into the committed trajectory next to the pre-flat-kernel baseline.
"""

import json
import os

import pytest

from conftest import FAST, SEED, record_table
from repro.benchmarks import load_benchmark
from repro.benchmarks.routing_kernel import append_entry, run_best_of
from repro.core import RabidConfig, RabidPlanner
from repro.experiments.formatting import render_table

CIRCUIT = "hp"
TRAJECTORY = os.path.join(os.path.dirname(__file__), "BENCH_routing.json")
GOLDEN_KERNEL = os.path.join(
    os.path.dirname(__file__), "..", "tests", "golden",
    "routing_kernel_32x32_seed0.json",
)


def _run(router):
    bench = load_benchmark(CIRCUIT, seed=SEED)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=1,
        router=router,
    )
    result = RabidPlanner(bench.graph, bench.netlist, config).run()
    return result


@pytest.mark.skipif(FAST, reason="multi-minute ablation skipped in smoke mode")
def test_router_ablation(benchmark):
    def body():
        return {router: _run(router) for router in ("pd", "mcf")}

    results = benchmark.pedantic(body, rounds=1, iterations=1)
    rows = []
    for router, result in sorted(results.items()):
        m = result.final_metrics
        rows.append(
            [
                router,
                f"{m.wire_congestion_max:.2f}",
                f"{m.wire_congestion_avg:.2f}",
                str(m.overflows),
                str(m.num_buffers),
                str(m.num_fails),
                f"{m.wirelength_mm:.0f}",
                f"{m.avg_delay_ps:.0f}",
            ]
        )
    record_table(
        "Ablation: Stage-1/2 router",
        render_table(
            ["router", "wire max", "wire avg", "overflows", "#bufs",
             "#fails", "wirelength", "delay avg"],
            rows,
        ),
    )
    for result in results.values():
        assert result.final_metrics.overflows == 0
    # The MCF start must be competitive: within 20% on wirelength.
    pd = results["pd"].final_metrics
    mcf = results["mcf"].final_metrics
    assert mcf.wirelength_mm <= pd.wirelength_mm * 1.2


def test_routing_kernel_speedup(benchmark):
    """Time the flat-array Stage-2 kernel and record it in the trajectory.

    In the full run (32x32 / 500 nets, seed 0) this also pins the
    acceptance criteria: the routed trees are byte-identical to the
    pre-flat-kernel golden, and the speedup over the committed baseline
    entry holds up (>= 2.5x live floor; the recorded entry is >= 3x —
    comparing a live half-second shot against a number committed from a
    different machine state needs noise headroom).
    """
    holder = {}

    def body():
        kwargs = dict(seed=SEED)
        if FAST:
            kwargs.update(grid=16, num_nets=120)
        holder["scenario"], holder["result"] = run_best_of(
            1 if FAST else 3, **kwargs
        )
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    entry = append_entry(
        TRAJECTORY, "flat-kernel", result, holder["scenario"], workers=1
    )
    record_table(
        "Routing kernel (BENCH_routing.json)",
        render_table(
            ["label", "grid", "nets", "workers", "total s", "speedup"],
            [[
                entry["label"],
                str(entry["params"]["grid"]),
                str(entry["params"]["num_nets"]),
                str(entry["workers"]),
                f"{entry['seconds_total']:.3f}",
                str(entry.get("speedup_vs_baseline", "-")),
            ]],
        ),
    )
    assert result.overflow == 0
    if not FAST and SEED == 0:
        with open(GOLDEN_KERNEL, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        assert result.signature == golden["signature"]
        assert entry.get("speedup_vs_baseline", 0.0) >= 2.5


@pytest.mark.skipif(FAST, reason="parallel run duplicates the smoke entry")
def test_routing_kernel_parallel_entry(benchmark):
    """Record the workers=2 arm; must stay route-identical to sequential.

    The emit-layer gate fails this test if the parallel arm is slower
    than the recorded workers=1 entry — but only on machines with at
    least 2 cores; on smaller boxes the entry records the skip reason
    (``speedup_gate``) alongside its honest ``cores`` count.
    """
    holder = {}

    def body():
        holder["scenario"], holder["result"] = run_best_of(
            3, workers=2, seed=SEED
        )
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    entry = append_entry(
        TRAJECTORY, "flat-kernel-2workers", result, holder["scenario"],
        workers=2, min_speedup_vs_workers1=1.0,
    )
    if SEED == 0:
        with open(GOLDEN_KERNEL, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        assert result.signature == golden["signature"]
    record_table(
        "Routing kernel (BENCH_routing.json)",
        render_table(
            ["label", "grid", "nets", "workers", "total s", "speedup"],
            [[
                entry["label"],
                str(entry["params"]["grid"]),
                str(entry["params"]["num_nets"]),
                str(entry["workers"]),
                f"{entry['seconds_total']:.3f}",
                str(entry.get("speedup_vs_baseline", "-")),
            ]],
        ),
    )


@pytest.mark.skipif(
    FAST or os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="multi-minute 128x128/10k tier; set REPRO_BENCH_LARGE=1",
)
def test_routing_kernel_large_tier(benchmark):
    """Record the 128x128 / 10k-net tier: sequential + pooled 2-worker arm.

    This is the scale where shipping batches to shm workers has real
    work to amortise against. Committed entries carry ``cores`` so a
    1-core measurement is never mistaken for a parallelism result.
    """
    holder = {}

    # capacity 12: at the default 8 the 10k-net workload cannot reach
    # zero overflow on this grid, and overflow entries are not
    # comparable across router changes.
    kwargs = dict(grid=128, num_nets=10000, capacity=12, seed=SEED)

    def body():
        holder["scenario"], holder["result"] = run_best_of(1, **kwargs)
        _, holder["result2"] = run_best_of(1, workers=2, **kwargs)
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    entry = append_entry(
        TRAJECTORY, "flat-kernel-128x128", result, holder["scenario"], workers=1
    )
    entry2 = append_entry(
        TRAJECTORY, "flat-kernel-128x128-2workers", holder["result2"],
        holder["scenario"], workers=2, min_speedup_vs_workers1=1.0,
    )
    assert holder["result2"].signature == result.signature
    assert result.overflow == 0
    record_table(
        "Routing kernel 128x128 tier (BENCH_routing.json)",
        render_table(
            ["label", "grid", "nets", "workers", "total s", "speedup"],
            [
                [
                    e["label"],
                    str(e["params"]["grid"]),
                    str(e["params"]["num_nets"]),
                    str(e["workers"]),
                    f"{e['seconds_total']:.3f}",
                    str(e.get("speedup_vs_baseline", "-")),
                ]
                for e in (entry, entry2)
            ],
        ),
    )
