"""Router ablation: Prim-Dijkstra + rip-up (paper default) versus the
multicommodity-flow alternative the paper cites for Stages 1-2.

Both feed the identical Stage 3/4 pipeline on the same instance; compared
on congestion, wirelength, buffers, fails, and runtime.
"""

import pytest

from conftest import SEED, record_table
from repro.benchmarks import load_benchmark
from repro.core import RabidConfig, RabidPlanner
from repro.experiments.formatting import render_table

CIRCUIT = "hp"


def _run(router):
    bench = load_benchmark(CIRCUIT, seed=SEED)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=1,
        router=router,
    )
    result = RabidPlanner(bench.graph, bench.netlist, config).run()
    return result


def test_router_ablation(benchmark):
    def body():
        return {router: _run(router) for router in ("pd", "mcf")}

    results = benchmark.pedantic(body, rounds=1, iterations=1)
    rows = []
    for router, result in sorted(results.items()):
        m = result.final_metrics
        rows.append(
            [
                router,
                f"{m.wire_congestion_max:.2f}",
                f"{m.wire_congestion_avg:.2f}",
                str(m.overflows),
                str(m.num_buffers),
                str(m.num_fails),
                f"{m.wirelength_mm:.0f}",
                f"{m.avg_delay_ps:.0f}",
            ]
        )
    record_table(
        "Ablation: Stage-1/2 router",
        render_table(
            ["router", "wire max", "wire avg", "overflows", "#bufs",
             "#fails", "wirelength", "delay avg"],
            rows,
        ),
    )
    for result in results.values():
        assert result.final_metrics.overflows == 0
    # The MCF start must be competitive: within 20% on wirelength.
    pd = results["pd"].final_metrics
    mcf = results["mcf"].final_metrics
    assert mcf.wirelength_mm <= pd.wirelength_mm * 1.2
