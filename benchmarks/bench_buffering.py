"""Stage-3 buffering-kernel benchmark feeding ``BENCH_buffering.json``.

Times exactly ``assign_buffers_stage3`` over the ISSUE's 32x32 / 500-net
workload (16x16 / 120 nets under ``REPRO_BENCH_FAST=1``) and records the
unified-engine entries — sequential and a 2-worker tile-disjoint-batch
arm — next to the committed pre-solver baseline. Both arms must stay
byte-identical to the pre-change golden capture.
"""

import json
import os

import pytest

from conftest import FAST, SEED, record_table
from repro.benchmarks.buffering_kernel import append_entry, run_best_of
from repro.experiments.formatting import render_table

TRAJECTORY = os.path.join(os.path.dirname(__file__), "BENCH_buffering.json")
GOLDEN_KERNEL = os.path.join(
    os.path.dirname(__file__), "..", "tests", "golden",
    "buffering_kernel_32x32_seed0.json",
)


def _scenario_kwargs():
    kwargs = dict(seed=SEED, site_seed=SEED)
    if FAST:
        kwargs.update(grid=16, num_nets=120, total_sites=600)
    return kwargs


def _record(entry):
    record_table(
        "Buffering kernel (BENCH_buffering.json)",
        render_table(
            ["label", "grid", "nets", "workers", "stage3 s", "speedup"],
            [[
                entry["label"],
                str(entry["params"]["grid"]),
                str(entry["params"]["num_nets"]),
                str(entry["workers"]),
                f"{entry['seconds_stage3']:.4f}",
                str(entry.get("speedup_vs_baseline", "-")),
            ]],
        ),
    )


def test_buffering_kernel_sequential(benchmark):
    """Record the unified-engine sequential arm; pin the golden output."""
    holder = {}

    def body():
        holder["scenario"], holder["result"] = run_best_of(
            1 if FAST else 5, **_scenario_kwargs()
        )
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    entry = append_entry(
        TRAJECTORY, "unified-engine", result, holder["scenario"], workers=1
    )
    _record(entry)
    if not FAST and SEED == 0:
        with open(GOLDEN_KERNEL, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        assert result.signature == golden["signature"]


@pytest.mark.skipif(FAST, reason="parallel arm duplicates the smoke entry")
def test_buffering_kernel_parallel_entry(benchmark):
    """Record the workers=2 arm; must match the sequential output exactly
    (tile-disjoint batches are an exact partition, unlike Stage 2's
    bounding boxes)."""
    holder = {}

    def body():
        holder["scenario"], holder["result"] = run_best_of(
            5, workers=2, **_scenario_kwargs()
        )
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    entry = append_entry(
        TRAJECTORY, "unified-engine-2workers", result, holder["scenario"],
        workers=2, min_speedup_vs_workers1=1.0,
    )
    _record(entry)
    if SEED == 0:
        with open(GOLDEN_KERNEL, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        assert result.signature == golden["signature"]


@pytest.mark.skipif(
    FAST or os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="multi-minute 128x128/10k tier; set REPRO_BENCH_LARGE=1",
)
def test_buffering_kernel_large_tier(benchmark):
    """Record the 128x128 / 10k-net Stage-3 tier, sequential and pooled.

    The emit gate only arms on machines with >= 2 cores; the committed
    entries record ``cores`` either way so the speedup column is honest.
    """
    # capacity 12 matches the routing tier (zero-overflow routes).
    kwargs = dict(
        grid=128, num_nets=10000, capacity=12, total_sites=40000,
        seed=SEED, site_seed=SEED,
    )
    holder = {}

    def body():
        holder["scenario"], holder["result"] = run_best_of(1, **kwargs)
        _, holder["result2"] = run_best_of(1, workers=2, **kwargs)
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    entry = append_entry(
        TRAJECTORY, "unified-engine-128x128", result, holder["scenario"],
        workers=1,
    )
    entry2 = append_entry(
        TRAJECTORY, "unified-engine-128x128-2workers", holder["result2"],
        holder["scenario"], workers=2, min_speedup_vs_workers1=1.0,
    )
    assert holder["result2"].signature == result.signature
    _record(entry)
    _record(entry2)
