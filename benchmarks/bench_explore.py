"""Design-space-exploration benchmark feeding ``BENCH_explore.json``.

Measures the explore engine against the acceptance workload: the
64-scenario budget sweep on the 32x32 / 500-net kernel scenario with 8
workers (8 scenarios on 16x16 / 120 under ``REPRO_BENCH_FAST=1``),
against a bare sequential full-plan loop over the identical scenario
list. Exactness rides along: per-scenario buffering signatures and the
rendered frontier report must be byte-identical between the arms.
"""

import os

from conftest import FAST, SEED, record_table
from repro.benchmarks.explore_kernel import (
    append_explore_entry,
    run_explore_kernel,
)
from repro.experiments.formatting import render_table

TRAJECTORY = os.path.join(os.path.dirname(__file__), "BENCH_explore.json")

#: The acceptance floor for the sweep engine on the full workload.
MIN_SPEEDUP = 4.0


def _kernel_kwargs():
    kwargs = dict(seed=SEED, site_seed=SEED, workers=8)
    if FAST:
        kwargs.update(grid=16, num_nets=120, total_sites=600,
                      values_per_dim=4, values_second_dim=2)
    return kwargs


def _record(entry):
    record_table(
        "Design-space exploration (BENCH_explore.json)",
        render_table(
            ["label", "grid", "nets", "scen", "workers", "seq s", "engine s",
             "speedup", "sig", "frontier"],
            [[
                entry["label"],
                str(entry["params"]["grid"]),
                str(entry["params"]["num_nets"]),
                str(entry["scenarios"]),
                str(entry["workers"]),
                f"{entry['seconds_sequential']:.4f}",
                f"{entry['seconds_engine']:.4f}",
                f"{entry['speedup']:.2f}x",
                str(entry["signatures_match"]),
                str(entry["frontier_match"]),
            ]],
        ),
    )


def test_explore_kernel(benchmark):
    """Record the budget-sweep engine arm; enforce exactness + speedup."""
    holder = {}

    def body():
        holder["result"] = run_explore_kernel(**_kernel_kwargs())
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    label = "budget-sweep-smoke" if FAST else "budget-sweep-engine"
    entry = append_explore_entry(TRAJECTORY, label, result)
    _record(entry)
    assert result.signatures_match
    assert result.frontier_match
    assert result.via_counts.get("incremental", 0) == result.scenarios
    if not FAST:
        assert result.speedup >= MIN_SPEEDUP
