"""Micro-benchmarks for the core algorithms.

Unlike the table drivers (single-shot harness runs), these measure the
individual kernels with proper repetition: Prim-Dijkstra construction,
Steiner overlap removal, maze routing, the single- and multi-sink DPs,
Elmore evaluation, and the two-path label search. Complexity claims from
the paper (single-sink O(nL); multi-sink O(mL^2 + nL)) are sanity-checked
by comparing two sizes.
"""

import os

import numpy as np
import pytest

from conftest import SEED
from repro.benchmarks.routing_kernel import append_entry, run_best_of
from repro.core.single_sink import insert_buffers_single_sink
from repro.core.multi_sink import insert_buffers_multi_sink
from repro.core.two_path import best_buffered_path
from repro.geometry import Point, Rect
from repro.routing.maze import route_net_on_tiles
from repro.routing.prim_dijkstra import prim_dijkstra_tree
from repro.routing.steiner import remove_overlaps
from repro.routing.tree import RouteTree
from repro.technology import TECH_180NM
from repro.tilegraph import CapacityModel, TileGraph
from repro.timing.elmore import elmore_sink_delays


def _pins(n, seed=0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 30, size=(n, 2))]


def _graph(size=30):
    return TileGraph(
        Rect(0, 0, float(size), float(size)), size, size, CapacityModel.uniform(10)
    )


def _path_tree(n):
    tiles = [(i, 0) for i in range(n)]
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


def test_prim_dijkstra_20_pins(benchmark):
    pins = _pins(20)
    tree = benchmark(lambda: prim_dijkstra_tree(pins, c=0.4))
    assert tree.num_points == 20


def test_overlap_removal_20_pins(benchmark):
    pins = _pins(20)

    def body():
        return remove_overlaps(prim_dijkstra_tree(pins, c=0.4))

    tree = benchmark(body)
    tree.parent_order()


def test_maze_route_30x30(benchmark):
    graph = _graph(30)
    rng = np.random.default_rng(1)
    sinks = [tuple(map(int, rng.integers(0, 30, size=2))) for _ in range(4)]

    def body():
        return route_net_on_tiles(graph, (0, 0), sinks)

    tree = benchmark(body)
    assert set(tree.sink_tiles) == set(sinks)


def test_single_sink_dp_100_tiles(benchmark):
    path = [(i, 0) for i in range(100)]
    q = {t: 1.0 + (t[0] % 7) for t in path}

    def body():
        return insert_buffers_single_sink(path, q.__getitem__, 6)

    cost, buffers, feasible = benchmark(body)
    assert feasible


def test_multi_sink_dp_star(benchmark):
    center = (15, 15)
    paths, sinks = [], []
    for d, (dx, dy) in enumerate([(1, 0), (-1, 0), (0, 1), (0, -1)]):
        arm = [center] + [
            (center[0] + dx * k, center[1] + dy * k) for k in range(1, 12)
        ]
        paths.append(arm)
        sinks.append(arm[-1])
    tree = RouteTree.from_paths(center, paths, sinks)

    def body():
        return insert_buffers_multi_sink(tree, lambda t: 1.0, 5)

    result = benchmark(body)
    assert result.feasible


def test_elmore_long_buffered_line(benchmark):
    graph = _graph(30)
    tree = _path_tree(30)
    from repro.routing.tree import BufferSpec

    tree.apply_buffers([BufferSpec((k, 0), None) for k in range(5, 30, 5)])

    def body():
        return elmore_sink_delays(tree, graph, TECH_180NM)

    delays = benchmark(body)
    assert (29, 0) in delays


def test_two_path_label_search(benchmark):
    graph = _graph(30)
    for tile in graph.tiles():
        graph.set_sites(tile, 2)
    window = (0, 0, 29, 29)

    def body():
        return best_buffered_path(
            graph, (0, 0), (25, 20), lambda t: 1.0, 5, set(), window
        )

    path = benchmark(body)
    assert path is not None


def test_routing_kernel_micro(benchmark):
    """Small (16x16 / 120 nets) end-to-end kernel run; records its own
    labeled entry in ``BENCH_routing.json`` so even smoke runs leave a
    trace of the kernel's wall-clock."""
    holder = {}

    def body():
        holder["scenario"], holder["result"] = run_best_of(
            2, grid=16, num_nets=120, seed=SEED
        )
        return holder["result"]

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    assert result.overflow == 0
    trajectory = os.path.join(os.path.dirname(__file__), "BENCH_routing.json")
    append_entry(
        trajectory, "flat-kernel-micro-16x16", result, holder["scenario"]
    )


def test_dp_scaling_is_linear_in_tiles(benchmark):
    """The paper's O(nL): doubling n roughly doubles the DP time."""
    import time

    def run(n):
        path = [(i, 0) for i in range(n)]
        q = {t: 1.0 for t in path}
        start = time.perf_counter()
        for _ in range(30):
            insert_buffers_single_sink(path, q.__getitem__, 5)
        return time.perf_counter() - start

    def body():
        t_small = run(100)
        t_large = run(200)
        return t_small, t_large

    t_small, t_large = benchmark.pedantic(body, rounds=1, iterations=1)
    # Allow generous noise; quadratic would give ~4x.
    assert t_large < 3.2 * t_small
