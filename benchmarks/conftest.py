"""Benchmark-suite configuration.

Environment knobs:

* ``REPRO_FULL=1`` — run every circuit of every table (the paper's full
  sweeps; expect tens of minutes). Without it each table runs a
  representative subset so ``pytest benchmarks/ --benchmark-only``
  completes in a few minutes.
* ``REPRO_BENCH_FAST=1`` — CI smoke mode: the routing-kernel benchmarks
  shrink to a 16x16 instance and the multi-minute ablations are skipped.
* ``REPRO_SEED`` — master seed (default 0).

Each benchmark body runs its harness once (``rounds=1``): these are
table-regeneration drivers, not micro-benchmarks, and the paper's own CPU
columns are single measurements. The regenerated tables are printed at the
end of the session so the run doubles as the reproduction record.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

import pytest

from repro.experiments import ExperimentConfig

FULL = os.environ.get("REPRO_FULL", "") == "1"
FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"
SEED = int(os.environ.get("REPRO_SEED", "0"))

#: Circuits per table when not running the full sweep.
QUICK_TABLE2 = ["apte", "hp", "ami33"]
FULL_TABLE2_CBL = ["apte", "xerox", "hp", "ami33", "ami49", "playout"]
FULL_TABLE2_RANDOM = ["ac3", "xc5", "hc7", "a9c3"]
QUICK_TABLE3 = ["apte", "hp"]
FULL_TABLE3 = ["apte", "xerox", "hp", "ami33", "ami49", "playout"]
QUICK_TABLE4 = {"apte": [(10, 11), (20, 22), (30, 33)]}
FULL_TABLE4 = {"apte": None, "ami49": None, "playout": None}  # None = all grids
QUICK_TABLE5 = ["apte", "hp", "ami33"]
FULL_TABLE5 = FULL_TABLE2_CBL + FULL_TABLE2_RANDOM

_collected: Dict[str, List[str]] = {}


def experiment_config() -> ExperimentConfig:
    return ExperimentConfig(seed=SEED, stage4_iterations=2 if FULL else 1)


def record_table(table: str, text: str) -> None:
    """Stash a rendered table for the end-of-session report."""
    _collected.setdefault(table, []).append(text)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if not _collected:
        return
    terminalreporter.write_sep("=", "regenerated paper tables")
    for table in sorted(_collected):
        terminalreporter.write_sep("-", table)
        for text in _collected[table]:
            terminalreporter.write_line(text)
