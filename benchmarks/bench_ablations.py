"""Ablation benches for RABID's design choices (beyond the paper's tables).

Four ablations, each isolating one mechanism the paper argues for:

* **p(v) term of Eq. (2)** — without the usage-probability reservation,
  early (high-delay) nets grab contested tiles and later nets fail or
  crowd; with it, buffer usage spreads.
* **Prim-Dijkstra trade-off** — c = 0 (pure MST) minimizes wire, c = 1
  (pure SPT) minimizes radius; the paper's c = 0.4 sits between.
* **Stage-2 iteration count** — one pass versus the paper's three.
* **Stage 4 on/off** — the post-processing pass that trims fails,
  buffers, and wirelength.
"""

import pytest

from conftest import SEED, record_table
from repro.benchmarks import load_benchmark
from repro.core import RabidConfig, RabidPlanner
from repro.experiments.formatting import render_table

CIRCUIT = "apte"


def _run(**overrides):
    bench = load_benchmark(CIRCUIT, seed=SEED)
    defaults = dict(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=1,
    )
    defaults.update(overrides)
    planner = RabidPlanner(bench.graph, bench.netlist, RabidConfig(**defaults))
    result = planner.run()
    return result.final_metrics, result


def test_ablation_probability_term(benchmark):
    def body():
        with_p, _ = _run(use_probability=True)
        without_p, _ = _run(use_probability=False)
        return with_p, without_p

    with_p, without_p = benchmark.pedantic(body, rounds=1, iterations=1)
    record_table(
        "Ablation: p(v) term",
        render_table(
            ["variant", "buf max", "buf avg", "#bufs", "#fails"],
            [
                ["with p(v)", f"{with_p.buffer_density_max:.2f}",
                 f"{with_p.buffer_density_avg:.2f}",
                 str(with_p.num_buffers), str(with_p.num_fails)],
                ["without", f"{without_p.buffer_density_max:.2f}",
                 f"{without_p.buffer_density_avg:.2f}",
                 str(without_p.num_buffers), str(without_p.num_fails)],
            ],
        ),
    )
    # Both must stay within capacity; the p(v) run must not be worse on
    # failures by more than noise.
    assert with_p.buffer_density_max <= 1.0
    assert without_p.buffer_density_max <= 1.0
    assert with_p.num_fails <= without_p.num_fails + 3


def test_ablation_pd_tradeoff(benchmark):
    def body():
        return {c: _run(pd_tradeoff=c)[0] for c in (0.0, 0.4, 1.0)}

    metrics = benchmark.pedantic(body, rounds=1, iterations=1)
    record_table(
        "Ablation: Prim-Dijkstra c",
        render_table(
            ["c", "wirelength(mm)", "delay avg(ps)", "delay max(ps)"],
            [
                [f"{c:.1f}", f"{m.wirelength_mm:.0f}",
                 f"{m.avg_delay_ps:.0f}", f"{m.max_delay_ps:.0f}"]
                for c, m in sorted(metrics.items())
            ],
        ),
    )
    # MST start must not use more wire than SPT start (tree property that
    # survives the congestion-aware rerouting within tolerance).
    assert metrics[0.0].wirelength_mm <= metrics[1.0].wirelength_mm * 1.10


def test_ablation_stage2_iterations(benchmark):
    def body():
        one, _ = _run(stage2_iterations=1)
        three, _ = _run(stage2_iterations=3)
        return one, three

    one, three = benchmark.pedantic(body, rounds=1, iterations=1)
    record_table(
        "Ablation: Stage-2 passes",
        render_table(
            ["passes", "wire max", "overflows"],
            [
                ["1", f"{one.wire_congestion_max:.2f}", str(one.overflows)],
                ["3", f"{three.wire_congestion_max:.2f}", str(three.overflows)],
            ],
        ),
    )
    assert three.overflows == 0
    assert three.wire_congestion_max <= max(one.wire_congestion_max, 1.0)


def test_ablation_rescue_pass(benchmark):
    def body():
        with_rescue, _ = _run(rescue_failing=True)
        without, _ = _run(rescue_failing=False)
        return with_rescue, without

    with_rescue, without = benchmark.pedantic(body, rounds=1, iterations=1)
    record_table(
        "Ablation: whole-net rescue",
        render_table(
            ["variant", "#fails", "#bufs", "wirelength(mm)"],
            [
                ["with rescue", str(with_rescue.num_fails),
                 str(with_rescue.num_buffers),
                 f"{with_rescue.wirelength_mm:.0f}"],
                ["without", str(without.num_fails),
                 str(without.num_buffers), f"{without.wirelength_mm:.0f}"],
            ],
        ),
    )
    assert with_rescue.num_fails <= without.num_fails
    assert with_rescue.overflows == 0


def test_ablation_stage4(benchmark):
    def body():
        off, result_off = _run(stage4_iterations=0)
        on, result_on = _run(stage4_iterations=2)
        return off, on

    off, on = benchmark.pedantic(body, rounds=1, iterations=1)
    record_table(
        "Ablation: Stage 4",
        render_table(
            ["variant", "#fails", "#bufs", "wirelength(mm)"],
            [
                ["stages 1-3", str(off.num_fails), str(off.num_buffers),
                 f"{off.wirelength_mm:.0f}"],
                ["stages 1-4", str(on.num_fails), str(on.num_buffers),
                 f"{on.wirelength_mm:.0f}"],
            ],
        ),
    )
    # The paper's Table II observation: Stage 4 cuts failures.
    assert on.num_fails <= off.num_fails
