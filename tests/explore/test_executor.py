"""Sweep execution: reuse, resume, degradation, and determinism."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.explore import (
    Dimension,
    ParameterSpace,
    ResultStore,
    SweepOptions,
    evaluate_scenario,
    explore_space,
    frontier_report,
    is_feasible,
    metrics_from_state,
    report_bytes,
    run_sweep,
    scenario_key,
)
from repro.explore import executor as executor_module
from repro.obs import Tracer
from repro.core.rabid import RabidConfig
from repro.service.engine import full_plan
from repro.service.jobs import ScenarioSpec


def small_base(**overrides) -> ScenarioSpec:
    defaults = dict(grid=12, num_nets=30, total_sites=300)
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def region_space(values=(0, 2), base=None) -> ParameterSpace:
    base = base or small_base()
    tiles = ((4, 4), (4, 5), (5, 4), (5, 5))
    return ParameterSpace(
        base, (Dimension("region_sites", values, tiles=tiles),)
    )


def key_of(scenario):
    return scenario_key(scenario, RabidConfig())


def counting_full_plan(monkeypatch):
    calls = []

    def wrapper(scenario, config=None):
        calls.append(scenario)
        return full_plan(scenario, config)

    monkeypatch.setattr(executor_module, "full_plan", wrapper)
    return calls


class TestMetrics:
    def test_fields_and_feasibility(self):
        state = full_plan(small_base())
        metrics = metrics_from_state(state)
        for field in (
            "site_budget",
            "wire_budget",
            "unassigned_nets",
            "buffers",
            "wirelength_tiles",
            "max_delay_ps",
            "avg_delay_ps",
            "cost",
            "signature",
        ):
            assert field in metrics
        assert metrics["unassigned_nets"] == len(state.failed_nets)
        assert metrics["site_budget"] == int(state.graph.sites.sum())

    def test_matches_signature_of_state(self):
        state = full_plan(small_base())
        assert metrics_from_state(state)["signature"] == state.signature


class TestEvaluateScenario:
    def test_incremental_used_for_region_delta(self):
        base = small_base()
        scenario = region_space().grid()[1].scenario
        metrics, via = evaluate_scenario(scenario, base=base)
        assert via == "incremental"
        full_metrics, full_via = evaluate_scenario(
            scenario, base=base, reuse_baseline=False
        )
        assert full_via == "full"
        # The replay reproduces the scratch plan exactly.
        assert metrics["signature"] == full_metrics["signature"]
        assert metrics == full_metrics

    def test_fixed_field_change_goes_full(self):
        base = small_base()
        _, via = evaluate_scenario(small_base(total_sites=200), base=base)
        assert via == "full"

    def test_baseline_state_is_restored(self):
        base = small_base()
        baseline = executor_module._baseline_for(
            base, executor_module.RabidConfig()
        )
        signature = baseline.signature
        scenario = region_space().grid()[1].scenario
        evaluate_scenario(scenario, base=base)
        assert baseline.signature == signature


class TestSweepOptions:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepOptions(workers=0)
        with pytest.raises(ConfigurationError):
            SweepOptions(timeout_s=0)
        with pytest.raises(ConfigurationError):
            SweepOptions(retries=-1)
        with pytest.raises(ConfigurationError):
            SweepOptions(max_scenarios=-1)


class TestResume:
    def test_kill_and_resume_reevaluates_nothing_finished(
        self, monkeypatch, tmp_path
    ):
        calls = counting_full_plan(monkeypatch)
        base = small_base()
        points = region_space(values=(0, 1, 2)).grid()
        scenarios = [p.scenario for p in points]
        path = str(tmp_path / "results.jsonl")
        options = SweepOptions(reuse_baseline=False)

        first = run_sweep(scenarios, base=base, store=ResultStore(path), options=options)
        assert len(first) == 3
        evaluated_first = len(calls)
        assert evaluated_first == 3

        # Resume against the persisted store: nothing finished re-runs.
        tracer = Tracer()
        again = run_sweep(
            scenarios,
            base=base,
            store=ResultStore(path),
            options=options,
            tracer=tracer,
        )
        assert len(again) == 3
        assert len(calls) == evaluated_first  # zero new full_plan calls
        assert tracer.metrics.value("explore.cache_hits") == 3
        assert tracer.metrics.value("explore.scenarios") == 0

    def test_partial_sweep_resumes_remainder(self, monkeypatch, tmp_path):
        calls = counting_full_plan(monkeypatch)
        base = small_base()
        scenarios = [p.scenario for p in region_space(values=(0, 1, 2)).grid()]
        path = str(tmp_path / "results.jsonl")
        options = SweepOptions(reuse_baseline=False, max_scenarios=2)
        run_sweep(scenarios, base=base, store=ResultStore(path), options=options)
        assert len(calls) == 2  # truncated by max_scenarios

        rest = run_sweep(
            scenarios,
            base=base,
            store=ResultStore(path),
            options=SweepOptions(reuse_baseline=False),
        )
        assert len(rest) == 3
        assert len(calls) == 3  # only the pending scenario ran

    def test_failed_records_retry_on_resume_by_default(self, tmp_path):
        base = small_base()
        scenario = region_space().grid()[1].scenario
        key = key_of(scenario)
        store = ResultStore(str(tmp_path / "results.jsonl"))
        from repro.explore.store import EvalRecord

        store.append(
            EvalRecord(
                key=key, scenario=scenario.to_dict(), status="crashed", error="x"
            )
        )
        records = run_sweep([scenario], base=base, store=store)
        assert records[key].status == "ok"

        store.append(
            EvalRecord(
                key=key, scenario=scenario.to_dict(), status="crashed", error="x"
            )
        )
        kept = run_sweep(
            [scenario],
            base=base,
            store=store,
            options=SweepOptions(retry_failed=False),
        )
        assert kept[key].status == "crashed"


class TestDegradation:
    def test_crash_records_and_sweep_continues(self, monkeypatch):
        base = small_base()
        points = region_space(values=(0, 1, 2)).grid()
        doomed = key_of(points[1].scenario)

        def flaky(scenario, config=None):
            if key_of(scenario) == doomed:
                raise RuntimeError("boom")
            return full_plan(scenario, config)

        monkeypatch.setattr(executor_module, "full_plan", flaky)
        tracer = Tracer()
        records = run_sweep(
            [p.scenario for p in points],
            base=base,
            options=SweepOptions(reuse_baseline=False, retries=1),
            tracer=tracer,
        )
        assert len(records) == 3
        assert records[doomed].status == "crashed"
        assert "boom" in records[doomed].error
        assert records[doomed].attempts == 2
        assert tracer.metrics.value("explore.retries") == 1
        ok = [r for r in records.values() if r.status == "ok"]
        assert len(ok) == 2

    def test_retry_recovers_transient_failure(self, monkeypatch):
        base = small_base()
        scenario = region_space().grid()[1].scenario
        attempts = {"n": 0}

        def transient(spec, config=None):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient")
            return full_plan(spec, config)

        monkeypatch.setattr(executor_module, "full_plan", transient)
        records = run_sweep(
            [scenario],
            base=base,
            options=SweepOptions(reuse_baseline=False, retries=1),
        )
        record = records[key_of(scenario)]
        assert record.status == "ok"
        assert record.attempts == 2


class TestPool:
    def test_pool_matches_inline_results(self):
        base = small_base()
        scenarios = [p.scenario for p in region_space(values=(0, 1, 2)).grid()]
        inline = run_sweep(scenarios, base=base, options=SweepOptions(workers=1))
        pooled = run_sweep(scenarios, base=base, options=SweepOptions(workers=2))
        assert set(inline) == set(pooled)
        for key in inline:
            assert inline[key].metrics == pooled[key].metrics

    def test_pool_timeout_degrades(self, monkeypatch):
        base = small_base()
        scenario = region_space().grid()[1].scenario

        def slow(spec, config=None):
            time.sleep(30)

        monkeypatch.setattr(executor_module, "full_plan", slow)
        records = run_sweep(
            [scenario],
            base=base,
            options=SweepOptions(
                workers=2,
                timeout_s=0.5,
                retries=0,
                reuse_baseline=False,
            ),
        )
        record = records[key_of(scenario)]
        assert record.status == "timeout"
        assert "0.5" in record.error

    def test_pool_worker_crash_degrades(self, monkeypatch):
        import os

        base = small_base()
        scenario = region_space().grid()[1].scenario

        def fatal(spec, config=None):
            os._exit(3)  # simulates a segfaulting worker

        monkeypatch.setattr(executor_module, "full_plan", fatal)
        records = run_sweep(
            [scenario],
            base=base,
            options=SweepOptions(workers=2, retries=0, reuse_baseline=False),
        )
        record = records[key_of(scenario)]
        assert record.status == "crashed"
        assert "died" in record.error


class TestDeterminism:
    def test_frontier_bytes_identical_across_worker_counts(self, tmp_path):
        base = small_base()
        space = region_space(values=(0, 1, 2, 3))
        reports = []
        for workers in (1, 2):
            result = explore_space(
                space,
                sampler="grid",
                store=ResultStore(),
                options=SweepOptions(workers=workers),
            )
            assignments = {
                key: space.assignment(point)
                for point, key in zip(result.points, result.keys)
            }
            reports.append(
                report_bytes(frontier_report(result.records, assignments))
            )
        assert reports[0] == reports[1]


class TestExploreSpace:
    def test_grid_explore(self):
        result = explore_space(region_space(), sampler="grid")
        assert len(result.points) == 2
        assert all(k in result.records for k in result.keys)
        rows = result.rows()
        assert rows[0]["status"] == "ok"
        assert "site_budget" in rows[0]

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ConfigurationError):
            explore_space(region_space(), sampler="annealed")

    def test_bisect_needs_dim(self):
        with pytest.raises(ConfigurationError):
            explore_space(region_space(), sampler="bisect")

    def test_feasibility_helper(self):
        result = explore_space(region_space(), sampler="grid")
        record = result.records[result.keys[0]]
        assert is_feasible(record) == (
            record.metrics["unassigned_nets"] == 0
        )
        assert not is_feasible(None)


class TestBisectionStoreSeeding:
    """Regression: a budget-capped bisect resume must surface the store's
    known-feasible point instead of burning its whole budget on endpoint
    probes and reporting zero feasible scenarios (the failure mode the
    recorded BENCH_explore sweep hit: feasible=0 across 64 scenarios with
    a feasible point already on record)."""

    def _space(self, base):
        return ParameterSpace(base, (Dimension("total_sites", (0, 600)),))

    def test_seeded_sweep_finds_known_feasible(self):
        base = small_base()
        space = self._space(base)
        store = ResultStore()
        generous = space.scenario_for((600,))
        run_sweep([generous], base=base, store=store)
        assert is_feasible(store.get(key_of(generous)))
        tracer = Tracer()
        result = explore_space(
            space,
            sampler="bisect",
            bisect_dim="total_sites",
            store=store,
            options=SweepOptions(max_scenarios=1),
            tracer=tracer,
        )
        assert tracer.metrics.get("explore.bisect_seeded").value == 1
        assert any(is_feasible(r) for r in result.records.values())
        # The stored feasible value seeds the bracket's hi, so the sweep
        # reports a feasible boundary instead of None.
        assert result.boundaries == {(): 600}

    def test_seeding_skips_reevaluation(self, monkeypatch):
        base = small_base()
        space = self._space(base)
        store = ResultStore()
        run_sweep(
            [space.scenario_for((0,)), space.scenario_for((600,))],
            base=base, store=store,
        )
        calls = counting_full_plan(monkeypatch)
        explore_space(
            space, sampler="bisect", bisect_dim="total_sites", store=store
        )
        # Both endpoints came from the store; only midpoints were planned.
        assert all(s.total_sites not in (0, 600) for s in calls)
