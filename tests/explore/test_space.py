"""Parameter spaces, samplers, and delta recognition."""

import pytest

from repro.errors import ConfigurationError
from repro.explore import AdaptiveBisection, Dimension, ParameterSpace, delta_between
from repro.service.jobs import MacroSpec, ScenarioSpec, apply_delta


def small_base(**overrides) -> ScenarioSpec:
    defaults = dict(grid=12, num_nets=30, total_sites=300)
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestDimension:
    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError):
            Dimension("wirelength", (1, 2))

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Dimension("capacity", ())

    def test_region_needs_tiles(self):
        with pytest.raises(ConfigurationError):
            Dimension("region_sites", (0, 1))

    def test_macro_values_must_be_pairs(self):
        with pytest.raises(ConfigurationError):
            Dimension("macro_origin", (3,))

    def test_labels(self):
        assert Dimension("total_sites", (1,)).label == "total_sites"
        assert Dimension("macro_origin", ((1, 2),), index=3).label == "macro3"
        dim = Dimension("region_sites", (0,), tiles=((2, 3), (2, 4)))
        assert dim.label == "region_sites[2,3+2t]"

    def test_scalar_apply(self):
        base = small_base()
        assert Dimension("total_sites", (10,)).apply(base, 500).total_sites == 500
        assert Dimension("capacity", (10,)).apply(base, 12).capacity == 12
        assert Dimension("length_limit", (4,)).apply(base, 7).length_limit == 7
        assert Dimension("num_nets", (5,)).apply(base, 40).num_nets == 40

    def test_macro_apply_moves_only_named_macro(self):
        base = small_base(macros=(MacroSpec(1, 1, 2, 2), MacroSpec(5, 5, 2, 2)))
        dim = Dimension("macro_origin", ((8, 8),), index=1)
        out = dim.apply(base, (8, 8))
        assert out.macros[0] == base.macros[0]
        assert (out.macros[1].x, out.macros[1].y) == (8, 8)

    def test_macro_index_out_of_range(self):
        dim = Dimension("macro_origin", ((0, 0),), index=2)
        with pytest.raises(ConfigurationError):
            dim.apply(small_base(), (0, 0))

    def test_region_apply_overrides_every_tile(self):
        tiles = ((3, 3), (3, 4))
        dim = Dimension("region_sites", (0, 5), tiles=tiles)
        out = dim.apply(small_base(), 5)
        assert dict(out.site_overrides) == {(3, 3): 5, (3, 4): 5}


class TestParameterSpace:
    def space(self):
        return ParameterSpace(
            small_base(),
            (
                Dimension("total_sites", (100, 200, 300)),
                Dimension("length_limit", (4, 6)),
            ),
        )

    def test_size_and_grid_order(self):
        space = self.space()
        assert space.size == 6
        points = space.grid()
        assert len(points) == 6
        # Row-major: first dimension varies slowest.
        assert [p.values for p in points[:2]] == [(100, 4), (100, 6)]
        assert points[-1].values == (300, 6)

    def test_needs_a_dimension(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace(small_base(), ())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace(
                small_base(),
                (
                    Dimension("capacity", (4,)),
                    Dimension("capacity", (8,)),
                ),
            )

    def test_scenario_for_applies_all_dimensions(self):
        space = self.space()
        scenario = space.scenario_for((200, 6))
        assert scenario.total_sites == 200
        assert scenario.length_limit == 6

    def test_assignment_labels(self):
        space = self.space()
        point = space.point((100, 4))
        assert space.assignment(point) == {
            "total_sites": 100,
            "length_limit": 4,
        }

    def test_random_sampler_deterministic_and_stratified(self):
        space = self.space()
        a = space.sample_random(6, seed=7)
        b = space.sample_random(6, seed=7)
        assert [p.values for p in a] == [p.values for p in b]
        assert [p.values for p in a] != [
            p.values for p in space.sample_random(6, seed=8)
        ]
        # Latin hypercube: each dimension's values all appear.
        firsts = {p.values[0] for p in a}
        assert firsts == {100, 200, 300}

    def test_random_sampler_dedupes(self):
        space = self.space()
        points = space.sample_random(50, seed=0)
        assert len({p.values for p in points}) == len(points)
        assert len(points) <= space.size


class TestAdaptiveBisection:
    def test_converges_to_exact_boundary(self):
        space = ParameterSpace(
            small_base(), (Dimension("total_sites", (0, 1000)),)
        )
        search = AdaptiveBisection(space, "total_sites")
        threshold = 137  # feasible iff total_sites >= 137
        evaluations = 0
        while True:
            batch = search.propose()
            if not batch:
                break
            for point in batch:
                evaluations += 1
                search.observe(
                    point.values, point.scenario.total_sites >= threshold
                )
        assert search.boundaries() == {(): threshold}
        # Binary search, not a scan.
        assert evaluations <= 14

    def test_all_infeasible_reports_none(self):
        space = ParameterSpace(
            small_base(), (Dimension("total_sites", (0, 64)),)
        )
        search = AdaptiveBisection(space, "total_sites")
        while True:
            batch = search.propose()
            if not batch:
                break
            for point in batch:
                search.observe(point.values, False)
        assert search.boundaries() == {(): None}

    def test_brackets_per_combination(self):
        space = ParameterSpace(
            small_base(),
            (
                Dimension("total_sites", (0, 100)),
                Dimension("length_limit", (4, 6)),
            ),
        )
        search = AdaptiveBisection(space, "total_sites")
        while True:
            batch = search.propose()
            if not batch:
                break
            for point in batch:
                limit = point.scenario.length_limit
                need = 40 if limit == 6 else 80
                search.observe(
                    point.values, point.scenario.total_sites >= need
                )
        assert search.boundaries() == {(4,): 80, (6,): 40}

    def test_non_scalar_dimension_rejected(self):
        space = ParameterSpace(
            small_base(macros=(MacroSpec(1, 1, 2, 2),)),
            (Dimension("macro_origin", ((0, 0), (4, 4))),),
        )
        with pytest.raises(ConfigurationError):
            AdaptiveBisection(space, "macro0")


class TestDeltaBetween:
    def test_identical_scenarios_have_no_delta(self):
        base = small_base()
        assert delta_between(base, base) is None

    def test_fixed_field_change_unrecognized(self):
        base = small_base()
        for target in (
            small_base(grid=16),
            small_base(num_nets=40),
            small_base(total_sites=400),
            small_base(seed=3),
        ):
            assert delta_between(base, target) is None

    def test_site_override_delta_roundtrips(self):
        base = small_base()
        target = base.__class__.from_dict(base.to_dict())
        from dataclasses import replace

        target = replace(
            base, site_overrides=(((4, 4), 3), ((5, 4), 0))
        )
        delta = delta_between(base, target)
        assert delta is not None
        assert apply_delta(base, delta) == target

    def test_macro_move_delta_roundtrips(self):
        from dataclasses import replace

        base = small_base(macros=(MacroSpec(1, 1, 3, 3),))
        target = replace(base, macros=(MacroSpec(6, 5, 3, 3),))
        delta = delta_between(base, target)
        assert delta is not None
        assert apply_delta(base, delta) == target

    def test_macro_resize_unrecognized(self):
        from dataclasses import replace

        base = small_base(macros=(MacroSpec(1, 1, 3, 3),))
        target = replace(base, macros=(MacroSpec(1, 1, 4, 4),))
        assert delta_between(base, target) is None

    def test_override_removal_unrecognized(self):
        from dataclasses import replace

        base = small_base(site_overrides=(((4, 4), 3),))
        target = replace(base, site_overrides=())
        assert delta_between(base, target) is None

    def test_length_limit_override_delta(self):
        from dataclasses import replace

        base = small_base()
        target = replace(base, length_limits=(("n0001", 8),))
        delta = delta_between(base, target)
        assert delta is not None
        assert apply_delta(base, delta) == target


class TestBisectionSeeding:
    """``seed()``: pre-load verdicts from a previous sweep's store."""

    def _space(self):
        return ParameterSpace(
            small_base(), (Dimension("total_sites", (0, 1000)),)
        )

    def test_seeded_verdicts_narrow_the_bracket(self):
        search = AdaptiveBisection(self._space(), "total_sites")
        applied = search.seed([((0,), False), ((1000,), True)])
        assert applied == 2
        batch = search.propose()  # straight to the midpoint
        assert [p.scenario.total_sites for p in batch] == [500]

    def test_seeded_feasible_becomes_hi(self):
        """A known-feasible point from the store is the bracket's hi: the
        search resumes from the recorded cheapest-feasible value outward
        instead of re-proposing the raw endpoints."""
        search = AdaptiveBisection(self._space(), "total_sites")
        search.seed([((600,), True)])
        assert search.boundaries() == {(): 600}
        batch = search.propose()
        # Only the untested bottom endpoint remains to probe first.
        assert [p.scenario.total_sites for p in batch] == [0]

    def test_seeded_points_not_reproposed(self):
        threshold = 137  # feasible iff total_sites >= threshold
        search = AdaptiveBisection(self._space(), "total_sites")
        search.seed([((0,), False), ((1000,), True), ((500,), True)])
        proposed = set()
        while True:
            batch = search.propose()
            if not batch:
                break
            for point in batch:
                proposed.add(point.scenario.total_sites)
                search.observe(
                    point.values, point.scenario.total_sites >= threshold
                )
        assert not proposed & {0, 500, 1000}
        assert search.boundaries() == {(): threshold}

    def test_empty_seed_is_noop(self):
        search = AdaptiveBisection(self._space(), "total_sites")
        assert search.seed([]) == 0
        batch = search.propose()
        assert [p.scenario.total_sites for p in batch] == [0, 1000]
