"""Content-addressed result store: keys, persistence, crash tolerance."""

import json

import pytest

from repro.core.rabid import RabidConfig
from repro.errors import ConfigurationError
from repro.explore import EvalRecord, ResultStore, scenario_key
from repro.service.jobs import ScenarioSpec


def spec(**overrides) -> ScenarioSpec:
    defaults = dict(grid=12, num_nets=30, total_sites=300)
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def ok_record(key="k", **metric_overrides) -> EvalRecord:
    metrics = {
        "site_budget": 300,
        "wire_budget": 100,
        "unassigned_nets": 0,
        "wirelength_tiles": 50,
        "max_delay_ps": 10.0,
        "buffers": 5,
        "cost": 1.0,
        "signature": "s",
    }
    metrics.update(metric_overrides)
    return EvalRecord(
        key=key, scenario=spec().to_dict(), status="ok", metrics=metrics
    )


class TestScenarioKey:
    def test_stable_across_equal_scenarios(self):
        assert scenario_key(spec()) == scenario_key(spec())

    def test_differs_by_scenario(self):
        assert scenario_key(spec()) != scenario_key(spec(total_sites=400))

    def test_differs_by_config(self):
        assert scenario_key(spec(), RabidConfig()) != scenario_key(
            spec(), RabidConfig(length_limit=9)
        )

    def test_is_hex_sha256(self):
        key = scenario_key(spec())
        assert len(key) == 64
        int(key, 16)


class TestEvalRecord:
    def test_unknown_status_rejected(self):
        with pytest.raises(ConfigurationError):
            EvalRecord(key="k", scenario={}, status="lost")

    def test_ok_needs_metrics(self):
        with pytest.raises(ConfigurationError):
            EvalRecord(key="k", scenario={}, status="ok")

    def test_roundtrip(self):
        record = ok_record()
        again = EvalRecord.from_dict(record.to_dict())
        assert again.key == record.key
        assert again.metrics == record.metrics
        assert again.finished

    def test_crashed_is_not_finished(self):
        record = EvalRecord(key="k", scenario={}, status="crashed", error="x")
        assert not record.finished

    def test_version_checked(self):
        bad = ok_record().to_dict()
        bad["version"] = 99
        with pytest.raises(ConfigurationError):
            EvalRecord.from_dict(bad)


class TestResultStore:
    def test_in_memory_roundtrip(self):
        store = ResultStore()
        record = ok_record("a")
        store.append(record)
        assert "a" in store
        assert store.get("a").metrics == record.metrics
        assert store.finished("a")
        assert len(store) == 1

    def test_persists_and_reloads(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        store.append(ok_record("a"))
        store.append(
            EvalRecord(key="b", scenario={}, status="timeout", error="slow")
        )
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.finished("a")
        assert not reloaded.finished("b")

    def test_newer_record_shadows_older(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        store.append(
            EvalRecord(key="a", scenario={}, status="crashed", error="x")
        )
        store.append(ok_record("a"))
        assert ResultStore(path).finished("a")
        # Both lines are still on disk (append-only).
        with open(path) as fh:
            assert len(fh.readlines()) == 2

    def test_truncated_final_line_ignored(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        store.append(ok_record("a"))
        with open(path, "a") as fh:
            fh.write(json.dumps(ok_record("b").to_dict())[: 40])  # killed mid-write
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.finished("a")

    def test_foreign_lines_ignored(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        with open(path, "w") as fh:
            fh.write("not json at all\n\n{\"version\": 1}\n")
        assert len(ResultStore(path)) == 0

    def test_missing_file_is_empty(self, tmp_path):
        assert len(ResultStore(str(tmp_path / "nope.jsonl"))) == 0
