"""The explore triage gate: pruned records, resume, acceptance sweep."""

import pytest

from repro.benchmarks.explore_kernel import make_explore_space
from repro.core.rabid import RabidConfig
from repro.errors import ConfigurationError
from repro.explore import (
    EvalRecord,
    ResultStore,
    SweepOptions,
    frontier_report,
    is_feasible,
    render_frontier_table,
    run_sweep,
    scenario_key,
)
from repro.obs import Tracer
from repro.service.jobs import ScenarioSpec

FEASIBLE = ScenarioSpec(grid=12, num_nets=40, capacity=8, total_sites=600)
STARVED = ScenarioSpec(
    grid=12, num_nets=60, capacity=6, total_sites=5, length_limit=2
)


class TestOptions:
    def test_triage_mode_validated(self):
        with pytest.raises(ConfigurationError):
            SweepOptions(triage="aggressive")
        for mode in ("off", "certified", "estimate"):
            assert SweepOptions(triage=mode).triage == mode


class TestGate:
    def test_certified_gate_prunes_without_planning(self):
        tracer = Tracer()
        store = ResultStore()
        records = run_sweep(
            [FEASIBLE, STARVED],
            config=RabidConfig(),
            store=store,
            options=SweepOptions(triage="certified"),
            tracer=tracer,
        )
        statuses = sorted(r.status for r in records.values())
        assert statuses == ["ok", "pruned"]
        pruned = next(
            r for r in records.values() if r.status == "pruned"
        )
        assert pruned.via == "triage"
        assert pruned.metrics is None
        assert "triage" in pruned.error
        assert pruned.finished  # resume skips it
        assert not is_feasible(pruned)
        assert tracer.metrics.counter("explore.triage_pruned").value == 1

    def test_off_mode_evaluates_everything(self):
        records = run_sweep(
            [STARVED],
            config=RabidConfig(),
            store=ResultStore(),
            options=SweepOptions(triage="off"),
        )
        (record,) = records.values()
        assert record.status == "ok"
        assert record.metrics["unassigned_nets"] > 0

    def test_resume_reuses_pruned_record(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        options = SweepOptions(triage="certified")
        run_sweep(
            [STARVED], config=RabidConfig(), store=ResultStore(path),
            options=options,
        )
        tracer = Tracer()
        reloaded = ResultStore(path)
        records = run_sweep(
            [STARVED], config=RabidConfig(), store=reloaded,
            options=options, tracer=tracer,
        )
        (record,) = records.values()
        assert record.status == "pruned"
        assert tracer.metrics.counter("explore.cache_hits").value == 1
        assert tracer.metrics.get("triage.runs") is None

    def test_pruned_record_round_trips(self):
        record = EvalRecord(
            key="k", scenario=STARVED.to_dict(), status="pruned",
            error="triage[certified] infeasible", via="triage",
        )
        assert EvalRecord.from_dict(record.to_dict()).status == "pruned"

    def test_report_counts_pruned(self):
        records = run_sweep(
            [FEASIBLE, STARVED],
            config=RabidConfig(),
            store=ResultStore(),
            options=SweepOptions(triage="certified"),
        )
        report = frontier_report(records)
        assert report["by_status"]["pruned"] == 1
        assert "1 pruned" in render_frontier_table(report)


class TestAcceptanceSweep:
    @pytest.mark.slow
    def test_gate_prunes_quarter_with_zero_false_prunes(self):
        """The issue's acceptance bar on the PR-5 explore workload: the
        estimate-mode gate prunes >= 25% of the 64-scenario budget
        sweep, and every pruned scenario independently verifies as
        infeasible when actually planned."""
        space = make_explore_space()
        config = RabidConfig()
        scenarios = [p.scenario for p in space.grid()]
        assert len(scenarios) == 64

        tracer = Tracer()
        gated = run_sweep(
            scenarios,
            base=space.base,
            config=config,
            store=ResultStore(),
            options=SweepOptions(triage="estimate"),
            tracer=tracer,
        )
        pruned_keys = [
            k for k, r in gated.items() if r.status == "pruned"
        ]
        assert len(pruned_keys) >= 0.25 * len(scenarios)
        assert (
            tracer.metrics.counter("explore.triage_pruned").value
            == len(pruned_keys)
        )

        # Zero false prunes: plan every pruned scenario for real.
        verified = run_sweep(
            scenarios,
            base=space.base,
            config=config,
            store=ResultStore(),
            options=SweepOptions(triage="off"),
        )
        for key in pruned_keys:
            record = verified[key]
            assert record.status == "ok"
            assert record.metrics["unassigned_nets"] > 0

    def test_keys_stable_under_gate(self):
        """The gate never perturbs scenario identity (hash covers
        scenario + config only)."""
        config = RabidConfig()
        assert scenario_key(STARVED, config) == scenario_key(
            STARVED, config
        )
