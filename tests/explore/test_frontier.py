"""Pareto dominance, canonical reports, and sensitivity analysis."""

from repro.explore import (
    Dimension,
    OBJECTIVES,
    ParameterSpace,
    frontier_report,
    pareto_frontier,
    render_frontier_table,
    render_sensitivity,
    report_bytes,
    sensitivity_report,
)
from repro.explore.executor import ExploreResult
from repro.explore.frontier import dominates, objective_vector
from repro.explore.space import SamplePoint
from repro.explore.store import EvalRecord
from repro.service.jobs import ScenarioSpec


def record(key, unassigned=0, sites=100, wire=50, wl=20, delay=10.0, **extra):
    metrics = {
        "unassigned_nets": unassigned,
        "site_budget": sites,
        "wire_budget": wire,
        "wirelength_tiles": wl,
        "max_delay_ps": delay,
        "buffers": extra.pop("buffers", 3),
        "cost": extra.pop("cost", 1.0),
        "signature": "s",
    }
    return EvalRecord(
        key=key, scenario={}, status="ok", metrics=metrics, **extra
    )


def crashed(key):
    return EvalRecord(key=key, scenario={}, status="crashed", error="x")


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates((0, 1, 1, 1, 1), (0, 2, 1, 1, 1))

    def test_equal_does_not_dominate(self):
        assert not dominates((0, 1, 1, 1, 1), (0, 1, 1, 1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((0, 1, 2, 1, 1), (0, 2, 1, 1, 1))

    def test_objective_vector_order(self):
        vec = objective_vector(record("a", unassigned=2, sites=7))
        assert vec[0] == 2  # feasibility axis first
        assert vec[1] == 7
        assert len(vec) == len(OBJECTIVES)


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        records = [
            record("cheap", sites=50),
            record("dominated", sites=80),  # worse sites, same elsewhere
        ]
        frontier = pareto_frontier(records)
        assert [r.key for r in frontier] == ["cheap"]

    def test_tradeoffs_both_survive(self):
        records = [
            record("low-site", sites=50, wire=90),
            record("low-wire", sites=90, wire=40),
        ]
        assert len(pareto_frontier(records)) == 2

    def test_ties_all_survive(self):
        records = [record("a"), record("b")]
        assert [r.key for r in pareto_frontier(records)] == ["a", "b"]

    def test_crashed_records_excluded(self):
        assert pareto_frontier([crashed("x"), record("a")]) != []
        assert [r.key for r in pareto_frontier([crashed("x")])] == []

    def test_order_independent_of_input_order(self):
        records = [
            record("b", sites=50, wire=90),
            record("a", sites=90, wire=40),
        ]
        forward = [r.key for r in pareto_frontier(records)]
        backward = [r.key for r in pareto_frontier(records[::-1])]
        assert forward == backward

    def test_infeasible_but_cheap_survives(self):
        # Infeasible points are kept on the frontier (feasibility is an
        # axis, not a filter) so the cost of feasibility stays visible.
        records = [
            record("infeasible-cheap", unassigned=3, sites=10),
            record("feasible-costly", unassigned=0, sites=500),
        ]
        assert len(pareto_frontier(records)) == 2


class TestFrontierReport:
    def test_counts_and_cheapest(self):
        records = {
            "a": record("a", sites=50, wire=90),
            "b": record("b", sites=90, wire=40),
            "c": crashed("c"),
            "d": record("d", unassigned=2, sites=10),
        }
        report = frontier_report(records)
        assert report["evaluated"] == 4
        assert report["by_status"]["ok"] == 3
        assert report["by_status"]["crashed"] == 1
        assert report["feasible"] == 2
        assert report["cheapest_feasible"]["key"] == "a"
        assert report["cheapest_feasible"]["site_budget"] == 50

    def test_no_feasible_scenario(self):
        report = frontier_report([record("a", unassigned=5)])
        assert report["feasible"] == 0
        assert report["cheapest_feasible"] is None

    def test_assignments_annotate_entries(self):
        report = frontier_report(
            [record("a")], assignments={"a": {"total_sites": 100}}
        )
        assert report["frontier"][0]["assignment"] == {"total_sites": 100}
        assert report["cheapest_feasible"]["assignment"] == {
            "total_sites": 100
        }

    def test_report_bytes_canonical(self):
        records = [
            record("b", sites=50, wire=90, seconds=1.23, attempts=2),
            record("a", sites=90, wire=40, seconds=9.99, attempts=1),
        ]
        one = report_bytes(frontier_report(records))
        # Different nondeterministic fields, different input order.
        other = report_bytes(
            frontier_report(
                [
                    record("a", sites=90, wire=40, seconds=0.01),
                    record("b", sites=50, wire=90, seconds=7.5),
                ]
            )
        )
        assert one == other
        assert one.endswith(b"\n")
        assert b"seconds" not in one
        assert b"attempts" not in one


def fake_result():
    """A 3x2 grid of fake records over (total_sites, length_limit)."""
    base = ScenarioSpec(grid=12, num_nets=30, total_sites=300)
    space = ParameterSpace(
        base,
        (
            Dimension("total_sites", (100, 200, 300)),
            Dimension("length_limit", (4, 6)),
        ),
    )
    points, keys, records = [], [], {}
    for sites in (100, 200, 300):
        for limit in (4, 6):
            key = f"k{sites}-{limit}"
            points.append(
                SamplePoint((sites, limit), space.scenario_for((sites, limit)))
            )
            keys.append(key)
            records[key] = record(
                key,
                sites=sites,
                unassigned=0 if sites >= 200 else 2,
                delay=1000.0 / sites + limit,
            )
    return ExploreResult(space=space, points=points, keys=keys, records=records)


class TestSensitivity:
    def test_series_and_held_combo(self):
        report = sensitivity_report(fake_result())
        sites = report["total_sites"]
        assert sites["values"] == [100, 200, 300]
        assert sites["held"] == {"length_limit": 6}
        assert sites["series"]["site_budget"] == [100, 200, 300]
        assert sites["range"]["site_budget"] == 200
        assert sites["series"]["unassigned_nets"] == [2, 0, 0]

    def test_insufficient_slice(self):
        result = fake_result()
        # Drop every point except one: no dimension has a 2-point slice.
        result.points = result.points[:1]
        result.keys = result.keys[:1]
        report = sensitivity_report(result)
        assert report["total_sites"] == {"insufficient": True}
        assert report["length_limit"] == {"insufficient": True}

    def test_render_smoke(self):
        result = fake_result()
        text = render_sensitivity(sensitivity_report(result))
        assert "total_sites" in text
        assert "range" in text


class TestRenderTable:
    def test_render_contains_summary_and_rows(self):
        records = [
            record("a", sites=50, wire=90),
            record("b", unassigned=1, sites=20),
            crashed("c"),
        ]
        text = render_frontier_table(frontier_report(records))
        assert "3 evaluated" in text
        assert "1 crashed" in text
        assert "cheapest feasible: sites=50" in text
        assert "NO" in text  # the infeasible frontier row

    def test_limit_truncates_rows(self):
        records = [
            record("a", sites=50, wire=90),
            record("b", sites=90, wire=40),
        ]
        full = render_frontier_table(frontier_report(records))
        cut = render_frontier_table(frontier_report(records), limit=1)
        assert len(cut.splitlines()) < len(full.splitlines())
