"""Bound-oracle integration with sweeps: gaps, byte-identity, no-feasible."""

from dataclasses import replace

from repro.core.rabid import RabidConfig
from repro.explore import (
    frontier_report,
    render_frontier_table,
    report_bytes,
    run_sweep,
)
from repro.explore.executor import SweepOptions
from repro.explore.store import EvalRecord
from repro.service.jobs import ScenarioSpec


def _scenarios(count=16, grid=8, num_nets=10, total_sites=120):
    """A smoke sweep: site-budget deltas of one base scenario."""
    base = ScenarioSpec(
        grid=grid, num_nets=num_nets, total_sites=total_sites,
        seed=0, site_seed=0,
    )
    return base, [
        replace(base, total_sites=total_sites + 10 * i)
        for i in range(count)
    ]


def _bound_config():
    return RabidConfig(bound="gk", bound_epsilon=0.5)


class TestGapMetrics:
    def test_every_scenario_gets_gap_or_certificate(self):
        base, scenarios = _scenarios()
        records = run_sweep(
            scenarios, base=base, config=_bound_config(),
            options=SweepOptions(workers=1),
        )
        assert len(records) == 16
        for record in records.values():
            assert record.status == "ok"
            metrics = record.metrics
            assert "optimality_gap" in metrics
            assert "certified_infeasible" in metrics
            if not metrics["certified_infeasible"]:
                assert isinstance(metrics["lower_bound"], float)
                assert isinstance(metrics["optimality_gap"], float)

    def test_report_bytes_identical_across_worker_counts(self):
        base, scenarios = _scenarios()
        reports = []
        for workers in (1, 2):
            records = run_sweep(
                scenarios, base=base, config=_bound_config(),
                options=SweepOptions(workers=workers),
            )
            reports.append(report_bytes(frontier_report(records)))
        assert reports[0] == reports[1]

    def test_gap_absent_without_bound_config(self):
        base, scenarios = _scenarios(count=2)
        records = run_sweep(
            scenarios, base=base, config=RabidConfig(),
            options=SweepOptions(workers=1),
        )
        for record in records.values():
            assert "optimality_gap" not in record.metrics

    def test_frontier_entries_carry_gap(self):
        base, scenarios = _scenarios(count=4)
        records = run_sweep(
            scenarios, base=base, config=_bound_config(),
            options=SweepOptions(workers=1),
        )
        report = frontier_report(records)
        assert report["frontier"]
        for entry in report["frontier"]:
            assert "optimality_gap" in entry
            assert "lower_bound" in entry
            assert "certified_infeasible" in entry


def _infeasible(key, unassigned, gap=None, certified=False):
    metrics = {
        "unassigned_nets": unassigned,
        "site_budget": 10,
        "wire_budget": 50,
        "wirelength_tiles": 20,
        "max_delay_ps": 10.0,
        "buffers": 3,
        "cost": 1.0,
        "signature": "s",
        "certified_infeasible": certified,
    }
    if gap is not None:
        metrics["optimality_gap"] = gap
    return EvalRecord(key=key, scenario={}, status="ok", metrics=metrics)


class TestNoFeasibleRecord:
    def test_all_infeasible_sweep_says_so(self):
        records = [
            _infeasible("far", 9, gap=2.0),
            _infeasible("near", 2, gap=0.4),
            _infeasible("proved", 5, certified=True),
        ]
        report = frontier_report(records)
        assert report["cheapest_feasible"] is None
        verdict = report["no_feasible"]
        assert verdict["message"] == "no feasible scenario"
        assert verdict["evaluated_ok"] == 3
        assert verdict["certified_infeasible"] == 1
        assert verdict["nearest"]["key"] == "near"
        assert verdict["nearest"]["unassigned_nets"] == 2
        assert verdict["nearest"]["optimality_gap"] == 0.4

    def test_nearest_prefers_smaller_gap_on_tied_unassigned(self):
        records = [
            _infeasible("wide", 2, gap=3.0),
            _infeasible("tight", 2, gap=0.1),
        ]
        report = frontier_report(records)
        assert report["no_feasible"]["nearest"]["key"] == "tight"

    def test_feasible_sweep_has_no_verdict(self):
        records = [_infeasible("ok", 0)]
        report = frontier_report(records)
        assert report["no_feasible"] is None

    def test_rendered_table_mentions_no_feasible(self):
        records = [_infeasible("x", 3, certified=True)]
        text = render_frontier_table(frontier_report(records))
        assert "no feasible scenario" in text
        assert "nearest" in text

    def test_no_ok_records_still_reports(self):
        crashed = EvalRecord(key="boom", scenario={}, status="crashed", error="x")
        report = frontier_report([crashed])
        verdict = report["no_feasible"]
        assert verdict["evaluated_ok"] == 0
        assert verdict["nearest"] is None
