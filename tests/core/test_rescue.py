"""Stage-4 rescue pass: whole-net bufferable re-routing."""

import pytest

from repro.core import RabidConfig, RabidPlanner
from repro.core.costs import buffer_site_cost
from repro.core.length_rule import length_violations
from repro.core.rescue import rescue_failing_nets, rescue_net
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.routing.tree import RouteTree
from repro.tilegraph import CapacityModel, TileGraph, wire_congestion_stats


def _graph_with_dead_band(size=14, band_x=(5, 9), sites=2, capacity=8):
    """Sites everywhere except a vertical band (rows of columns 5..8)...

    The band is siteless but only ``band rows y < 10``: routes can detour
    over the top (y >= 10), where sites exist in every column.
    """
    g = TileGraph(Rect(0, 0, float(size), float(size)), size, size,
                  CapacityModel.uniform(capacity))
    for tile in g.tiles():
        in_band = band_x[0] <= tile[0] < band_x[1] and tile[1] < 10
        if not in_band:
            g.set_sites(tile, sites)
    return g


def _straight_net_tree(g, y=2):
    tiles = [(i, y) for i in range(14)]
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name="n")


class TestRescueNet:
    def test_detours_around_dead_band(self):
        g = _graph_with_dead_band()
        tree = _straight_net_tree(g)
        tree.add_usage(g)
        # L=3 cannot cross the 4-wide dead band on the straight route.
        from repro.core.assignment import assign_buffers_to_net

        meets, _, _ = assign_buffers_to_net(g, tree, 3, None)
        assert not meets
        new_tree, changed = rescue_net(
            g, tree, 3, lambda t: buffer_site_cost(g, t), window_margin=12
        )
        assert changed
        assert length_violations(new_tree, 3) == 0
        # The rescued route leaves the dead rows.
        assert any(t[1] >= 10 for t in new_tree.nodes)

    def test_usage_consistent_after_rescue(self):
        g = _graph_with_dead_band()
        tree = _straight_net_tree(g)
        tree.add_usage(g)
        from repro.core.assignment import assign_buffers_to_net

        assign_buffers_to_net(g, tree, 3, None)
        new_tree, _ = rescue_net(
            g, tree, 3, lambda t: buffer_site_cost(g, t), window_margin=12
        )
        h, v = g.h_usage.copy(), g.v_usage.copy()
        used = g.used_sites.copy()
        g.h_usage[:] = 0
        g.v_usage[:] = 0
        g.used_sites[:] = 0
        new_tree.add_usage(g)
        assert (g.h_usage == h).all()
        assert (g.v_usage == v).all()
        assert (g.used_sites == used).all()

    def test_noop_when_already_legal(self, graph10_sites):
        tiles = [(i, 0) for i in range(4)]
        parent = {b: a for a, b in zip(tiles, tiles[1:])}
        tree = RouteTree.from_parent_map((0, 0), parent, [(3, 0)], net_name="ok")
        tree.add_usage(graph10_sites)
        new_tree, changed = rescue_net(
            graph10_sites, tree, 5, lambda t: buffer_site_cost(graph10_sites, t)
        )
        assert not changed
        assert new_tree is tree

    def test_rollback_when_unfixable(self):
        # No sites anywhere: nothing to rescue toward; original restored.
        g = TileGraph(Rect(0, 0, 14, 14), 14, 14, CapacityModel.uniform(8))
        tree = _straight_net_tree(g)
        tree.add_usage(g)
        h_before = g.h_usage.copy()
        new_tree, changed = rescue_net(
            g, tree, 3, lambda t: buffer_site_cost(g, t)
        )
        assert not changed
        assert new_tree is tree
        assert (g.h_usage == h_before).all()


class TestPlannerIntegration:
    def _design(self):
        g = _graph_with_dead_band()
        nets = [
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0.5, 1.5 + i)),
                sinks=[Pin(f"n{i}.t", Point(13.5, 1.5 + i))],
            )
            for i in range(3)
        ]
        return g, Netlist(nets=nets)

    def test_rescue_reduces_fails(self):
        g1, nl1 = self._design()
        off = RabidPlanner(
            g1, nl1,
            RabidConfig(length_limit=3, window_margin=12,
                        stage4_iterations=1, rescue_failing=False),
        ).run()
        g2, nl2 = self._design()
        on = RabidPlanner(
            g2, nl2,
            RabidConfig(length_limit=3, window_margin=12,
                        stage4_iterations=1, rescue_failing=True),
        ).run()
        assert len(on.failed_nets) <= len(off.failed_nets)
        assert len(on.failed_nets) == 0

    def test_rescue_preserves_capacity_guarantees(self):
        g, nl = self._design()
        result = RabidPlanner(
            g, nl,
            RabidConfig(length_limit=3, window_margin=12, stage4_iterations=1),
        ).run()
        assert wire_congestion_stats(g).overflow == 0
        from repro.tilegraph import buffer_density_stats

        assert buffer_density_stats(g).overflow == 0

    def test_rescue_failing_nets_returns_residue(self):
        g = TileGraph(Rect(0, 0, 14, 14), 14, 14, CapacityModel.uniform(8))
        tree = _straight_net_tree(g)
        tree.add_usage(g)
        residue = rescue_failing_nets(
            g, {"n": tree}, ["n"], {"n": 3},
            lambda t: buffer_site_cost(g, t),
        )
        assert residue == ["n"]
