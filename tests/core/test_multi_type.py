"""The multi_type strategy: Li–Shi kind sizing over fixed placements.

Covers the tentpole contract from both sides: with a single-kind library
the strategy is indistinguishable from ``dp`` (same specs, all default
kind), and with the 3-kind ``tech`` library it keeps the placements but
re-sizes buffers to cut Elmore delay, with the O(b) candidate-list bound
visible in the counters.
"""

import pytest

from repro.core.multi_type import assign_buffer_kinds
from repro.core.solver import (
    MultiSinkDPSolver,
    MultiTypeDPSolver,
    SolveRequest,
    Stage3CostField,
    make_solver,
)
from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.routing.tree import BufferSpec, RouteTree
from repro.technology import TECH_180NM, resolve_library
from repro.timing.elmore import net_delay


def _path_tree(tiles, name="n"):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


def _fork_tree():
    parent = {
        (1, 0): (0, 0), (2, 0): (1, 0),
        (3, 0): (2, 0), (4, 0): (3, 0),
        (2, 1): (2, 0), (2, 2): (2, 1),
    }
    return RouteTree.from_parent_map((0, 0), parent, [(4, 0), (2, 2)], net_name="f")


def _request(graph, tree, limit=3, tracer=None):
    field = Stage3CostField(graph)
    return SolveRequest(
        graph=graph, tree=tree, length_limit=limit,
        cost_of=field.cost_fn(tree), tracer=tracer,
    )


class TestConstruction:
    def test_needs_technology(self):
        with pytest.raises(ConfigurationError):
            make_solver("multi_type")

    def test_unknown_library_rejected(self):
        with pytest.raises(ConfigurationError):
            make_solver(
                "multi_type", technology=TECH_180NM, buffer_library="sram"
            )

    def test_registry_constructs_with_library(self):
        solver = make_solver(
            "multi_type", technology=TECH_180NM, buffer_library="tech"
        )
        assert solver.name == "multi_type"
        assert len(solver.library.kinds) == 3


class TestSingleKindReduction:
    """b = 1 must reduce to the dp strategy exactly."""

    @pytest.mark.parametrize("tree_of", [
        lambda: _path_tree([(i, 0) for i in range(9)]),
        _fork_tree,
    ])
    def test_specs_equal_dp(self, graph10_sites, tree_of):
        dp = MultiSinkDPSolver().solve(_request(graph10_sites, tree_of()))
        mt = MultiTypeDPSolver(TECH_180NM).solve(
            _request(graph10_sites, tree_of())
        )
        assert dp.feasible and mt.feasible
        assert mt.specs == dp.specs
        assert mt.cost == dp.cost
        assert all(s.kind == "" for s in mt.specs)

    def test_infeasible_passthrough(self, graph10):
        # No sites anywhere: the placement DP fails and multi_type must
        # report exactly what dp reports.
        tree = _path_tree([(i, 0) for i in range(9)])
        dp = MultiSinkDPSolver().solve(_request(graph10, tree))
        mt = MultiTypeDPSolver(TECH_180NM).solve(_request(graph10, tree))
        assert not dp.feasible and not mt.feasible
        assert mt.specs == dp.specs


class TestKindAssignment:
    def _solved(self, graph, tree, tracer=None):
        library = resolve_library("tech", TECH_180NM)
        solver = MultiTypeDPSolver(TECH_180NM, library=library)
        return library, solver.solve(_request(graph, tree, tracer=tracer))

    def test_positions_unchanged(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(9)])
        dp = MultiSinkDPSolver().solve(_request(graph10_sites, tree))
        _, mt = self._solved(graph10_sites, tree)
        assert [(s.tile, s.drives_child) for s in mt.specs] == [
            (s.tile, s.drives_child) for s in dp.specs
        ]
        assert mt.cost == dp.cost

    def test_kinds_come_from_library(self, graph10_sites):
        library, out = self._solved(
            graph10_sites, _path_tree([(i, 0) for i in range(9)])
        )
        names = {k.name for k in library.kinds}
        for spec in out.specs:
            assert spec.kind == "" or spec.kind in names

    def test_delay_no_worse_than_default_kinds(self, graph10_sites):
        """The all-default assignment is always a candidate, so sizing can
        only improve the worst Elmore sink delay."""
        tree = _path_tree([(i, 0) for i in range(9)])
        library, out = self._solved(graph10_sites, tree)
        tree.apply_buffers(out.specs)
        sized = net_delay(tree, graph10_sites, TECH_180NM, library).max_delay
        tree.apply_buffers(
            [BufferSpec(s.tile, s.drives_child) for s in out.specs]
        )
        default = net_delay(tree, graph10_sites, TECH_180NM, library).max_delay
        assert sized <= default + 1e-15

    def test_counters(self, graph10_sites):
        tracer = Tracer()
        self._solved(
            graph10_sites, _path_tree([(i, 0) for i in range(9)]), tracer
        )
        assert tracer.metrics.get("dp.kinds").value == 3
        assert tracer.metrics.get("dp.kind_candidates").value > 0
        # Li-Shi: the surviving list right above a buffer carries at most
        # one candidate per distinct input cap — b of them.
        assert 1 <= tracer.metrics.get("dp.kind_list_max").value
        assert tracer.metrics.get("dp.candidates_pruned").value >= 0


class TestAssignBufferKindsDirect:
    def test_empty_specs(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(4)])
        library = resolve_library("tech", TECH_180NM)
        assert assign_buffer_kinds(
            tree, graph10_sites, TECH_180NM, library, []
        ) == []

    def test_default_kind_normalized_to_empty(self, graph10_sites):
        """Whenever the DP picks the library default, the spec must carry
        ``""`` — that normalization is what keeps single-kind payloads and
        signatures byte-identical."""
        tree = _path_tree([(i, 0) for i in range(9)])
        library = resolve_library("single", TECH_180NM)
        specs = [BufferSpec((3, 0), None), BufferSpec((6, 0), None)]
        out = assign_buffer_kinds(
            tree, graph10_sites, TECH_180NM, library, specs
        )
        assert out == specs
        assert all(s.kind == "" for s in out)

    def test_order_preserved(self, graph10_sites):
        tree = _fork_tree()
        library = resolve_library("tech", TECH_180NM)
        specs = [
            BufferSpec((2, 0), (2, 1)),
            BufferSpec((2, 0), None),
            BufferSpec((3, 0), None),
        ]
        out = assign_buffer_kinds(
            tree, graph10_sites, TECH_180NM, library, specs
        )
        assert [(s.tile, s.drives_child) for s in out] == [
            (s.tile, s.drives_child) for s in specs
        ]
