"""The unified buffering-solver interface and its strategies."""

import math

import pytest

from repro.core.assignment import assign_buffers_to_net
from repro.core.candidates import oversubscribes
from repro.core.costs import buffer_site_cost
from repro.core.probability import UsageProbability
from repro.core.solver import (
    SOLVER_NAMES,
    GreedySolver,
    MultiSinkDPSolver,
    SingleSinkDPSolver,
    SolveRequest,
    Stage3CostField,
    VanGinnekenSolver,
    _as_path,
    make_solver,
)
from repro.errors import ConfigurationError
from repro.routing.tree import BufferSpec, RouteTree
from repro.technology import TECH_180NM


def _path_tree(tiles, name="n"):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


def _fork_tree():
    """Source (0,0) forking at (2,0) to sinks (4,0) and (2,2)."""
    parent = {
        (1, 0): (0, 0), (2, 0): (1, 0),
        (3, 0): (2, 0), (4, 0): (3, 0),
        (2, 1): (2, 0), (2, 2): (2, 1),
    }
    return RouteTree.from_parent_map((0, 0), parent, [(4, 0), (2, 2)], net_name="f")


class TestRegistry:
    def test_every_name_constructs(self):
        for name in SOLVER_NAMES:
            solver = make_solver(name, technology=TECH_180NM)
            assert solver.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_solver("simulated_annealing")

    def test_van_ginneken_requires_technology(self):
        with pytest.raises(ConfigurationError):
            make_solver("van_ginneken")


class TestAsPath:
    def test_chain_is_a_path(self):
        tiles = [(i, 0) for i in range(5)]
        assert _as_path(_path_tree(tiles)) == tiles

    def test_fork_is_not(self):
        assert _as_path(_fork_tree()) is None

    def test_single_tile(self):
        tree = RouteTree.from_parent_map((0, 0), {}, [(0, 0)], net_name="n")
        assert _as_path(tree) == [(0, 0)]


class TestStrategies:
    def _request(self, graph, tree, limit=3):
        field = Stage3CostField(graph)
        return SolveRequest(
            graph=graph, tree=tree, length_limit=limit, cost_of=field.cost_fn(tree)
        )

    def test_dp_and_single_sink_agree_on_chains(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(9)])
        dp = MultiSinkDPSolver().solve(self._request(graph10_sites, tree))
        ss = SingleSinkDPSolver().solve(self._request(graph10_sites, tree))
        assert dp.feasible and ss.feasible
        assert dp.cost == pytest.approx(ss.cost)
        assert len(dp.specs) == len(ss.specs)
        assert ss.solver == "single_sink"

    def test_single_sink_delegates_on_forks(self, graph10_sites):
        out = SingleSinkDPSolver().solve(
            self._request(graph10_sites, _fork_tree())
        )
        assert out.solver == "dp"
        assert out.feasible

    def test_greedy_defers_to_commit_path(self, graph10_sites):
        out = GreedySolver().solve(
            self._request(graph10_sites, _path_tree([(i, 0) for i in range(9)]))
        )
        assert not out.feasible and out.specs == []

    def test_solvers_do_not_mutate(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(9)])
        MultiSinkDPSolver().solve(self._request(graph10_sites, tree))
        assert graph10_sites.total_used_sites == 0
        assert tree.buffer_count() == 0

    def test_greedy_via_assignment_books_sites(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(9)])
        meets, dp_ok, cost = assign_buffers_to_net(
            graph10_sites, tree, 3, solver=GreedySolver()
        )
        assert meets and not dp_ok
        assert cost == float("inf")
        assert graph10_sites.total_used_sites == tree.buffer_count() > 0


class TestCostField:
    def test_matches_scalar_eq2(self, graph10_sites):
        graph10_sites.use_site((2, 0), 2)
        graph10_sites.set_sites((5, 0), 0)
        prob = UsageProbability(graph10_sites)
        tree = _path_tree([(i, 0) for i in range(9)])
        prob.add_net(tree, 3)
        costs = Stage3CostField(graph10_sites, prob).cost_map(tree)
        for tile in costs:
            expected = buffer_site_cost(graph10_sites, tile, prob.value(tile))
            assert costs[tile] == expected or (
                math.isinf(costs[tile]) and math.isinf(expected)
            )

    def test_without_probability(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(4)])
        costs = Stage3CostField(graph10_sites).cost_map(tree)
        for tile in costs:
            assert costs[tile] == buffer_site_cost(graph10_sites, tile)


class TestVanGinnekenParity:
    """Satellite check: on uniform single-sink chains the delay-optimal
    van Ginneken solution and the length-based DP at L=3 (the 0.18um
    optimal repeater spacing on 1mm tiles) insert the same number of
    buffers."""

    @pytest.mark.parametrize("n", [4, 7, 10, 13, 19, 24])
    def test_buffer_counts_agree_on_chains(self, n):
        from repro.geometry import Rect
        from repro.tilegraph import CapacityModel, TileGraph

        graph = TileGraph(
            Rect(0, 0, float(n), 1.0), n, 1, CapacityModel.uniform(10)
        )
        for tile in graph.tiles():
            graph.set_sites(tile, 3)
        tiles = [(i, 0) for i in range(n)]
        tree = _path_tree(tiles)
        field = Stage3CostField(graph)
        vg = VanGinnekenSolver(TECH_180NM).solve(
            SolveRequest(
                graph=graph, tree=tree, length_limit=3,
                cost_of=field.cost_fn(tree),
            )
        )
        dp = SingleSinkDPSolver().solve(
            SolveRequest(
                graph=graph, tree=tree, length_limit=3,
                cost_of=field.cost_fn(tree),
            )
        )
        assert vg.feasible and dp.feasible
        assert len(vg.specs) == len(dp.specs)


class TestOversubscribes:
    def test_counts_demand_per_tile(self, graph10_sites):
        graph10_sites.use_site((1, 0), 3)  # full
        specs = [BufferSpec((1, 0), None)]
        assert oversubscribes(graph10_sites, specs)
        assert not oversubscribes(graph10_sites, [BufferSpec((2, 0), None)])

    def test_freed_credits_own_sites(self, graph10_sites):
        """Satellite fix: a net re-buffering itself gets credit for the
        sites it frees."""
        graph10_sites.use_site((1, 0), 3)  # full, 2 of them "ours"
        specs = [BufferSpec((1, 0), None), BufferSpec((1, 0), None)]
        assert oversubscribes(graph10_sites, specs)
        assert not oversubscribes(graph10_sites, specs, freed={(1, 0): 2})

    def test_rebuffer_releases_before_solving(self, graph10):
        # One site per tile; the net already owns the only site at (2, 0).
        for x in range(7):
            graph10.set_sites((x, 0), 1)
        tree = _path_tree([(i, 0) for i in range(7)])
        meets, dp_ok, _ = assign_buffers_to_net(graph10, tree, 3)
        assert meets and dp_ok
        before = tree.buffer_counts()
        assert before  # it placed something
        # Re-buffer the same net: without the freed-site credit the DP
        # would see its own buffers as occupancy and could only degrade.
        meets2, dp_ok2, _ = assign_buffers_to_net(
            graph10, tree, 3, rebuffer=True
        )
        assert meets2 and dp_ok2
        assert graph10.total_used_sites == tree.buffer_count()
        assert tree.buffer_counts() == before  # deterministic re-solve
