"""Driven-length accounting, including the paper's Fig. 3 example."""

from repro.core import driven_lengths, length_violations, net_meets_length_rule
from repro.routing.tree import BufferSpec, RouteTree


def _path_tree(tiles):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


def _star7():
    """Fig. 3: a driver with seven sinks, each three tiles away.

    We build a rectilinear version: 7 branches from the center, two bends
    where needed, each of length 3; total driven wire 11 is impossible on
    a grid, so we use branches that share trunk tiles -- instead, model the
    figure's *point*: total driven length far exceeds the per-path length.
    Four straight branches of length 3 from the source: per-path distance
    3, total 12.
    """
    center = (5, 5)
    paths = [
        [center, (6, 5), (7, 5), (8, 5)],
        [center, (4, 5), (3, 5), (2, 5)],
        [center, (5, 6), (5, 7), (5, 8)],
        [center, (5, 4), (5, 3), (5, 2)],
    ]
    sinks = [(8, 5), (2, 5), (5, 8), (5, 2)]
    return RouteTree.from_paths(center, paths, sinks)


class TestFigure3Interpretation:
    def test_total_not_longest_path(self):
        tree = _star7()
        loads = driven_lengths(tree)
        driver = loads[0]
        assert driver.is_driver
        # Total driven length is 12 even though each sink is 3 away.
        assert driver.driven_length == 12

    def test_fig3_fails_under_total_rule(self):
        # With L = 3 the per-path rule would pass; the total rule fails.
        tree = _star7()
        assert not net_meets_length_rule(tree, 3)
        assert length_violations(tree, 3) == 1  # the driver

    def test_decoupling_fixes_fig3(self):
        tree = _star7()
        tree.apply_buffers(
            [BufferSpec((5, 5), child) for child in [(4, 5), (5, 4), (5, 6)]]
        )
        # Driver drives one branch (3) plus three buffer inputs (0 length);
        # each decoupling buffer drives 3.
        assert net_meets_length_rule(tree, 3)


class TestGateLoads:
    def test_unbuffered_path(self):
        tree = _path_tree([(0, 0), (1, 0), (2, 0)])
        loads = driven_lengths(tree)
        assert len(loads) == 1
        assert loads[0].driven_length == 2

    def test_trunk_buffer_splits_load(self):
        tree = _path_tree([(i, 0) for i in range(7)])
        tree.apply_buffers([BufferSpec((3, 0), None)])
        loads = {(g.gate_tile, g.drives_child): g.driven_length for g in driven_lengths(tree)}
        assert loads[((0, 0), None)] == 3  # driver to the buffer
        assert loads[((3, 0), None)] == 3  # buffer to the sink

    def test_buffer_at_root_tile(self):
        tree = _path_tree([(0, 0), (1, 0), (2, 0)])
        tree.apply_buffers([BufferSpec((0, 0), None)])
        loads = driven_lengths(tree)
        assert loads[0].is_driver and loads[0].driven_length == 0
        assert loads[1].gate_tile == (0, 0) and loads[1].driven_length == 2

    def test_single_tile_net(self):
        tree = RouteTree.from_paths((0, 0), [], [(0, 0)])
        loads = driven_lengths(tree)
        assert loads[0].driven_length == 0
        assert net_meets_length_rule(tree, 1)

    def test_violations_counted_per_gate(self):
        tree = _path_tree([(i, 0) for i in range(11)])
        tree.apply_buffers([BufferSpec((5, 0), None)])
        # Driver drives 5, buffer drives 5; with L=4 both violate.
        assert length_violations(tree, 4) == 2
        assert length_violations(tree, 5) == 0
