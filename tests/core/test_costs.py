"""Eq. (2) buffer-site cost."""

import pytest

from repro.core import buffer_site_cost
from repro.core.costs import make_cost_fn


class TestBufferSiteCost:
    def test_empty_tile(self, graph10_sites):
        # (0 + 0 + 1) / (3 - 0)
        assert buffer_site_cost(graph10_sites, (0, 0)) == pytest.approx(1 / 3)

    def test_probability_term(self, graph10_sites):
        assert buffer_site_cost(graph10_sites, (0, 0), probability=2.0) == pytest.approx(
            1.0
        )

    def test_rises_with_usage(self, graph10_sites):
        costs = []
        for _ in range(3):
            costs.append(buffer_site_cost(graph10_sites, (1, 1)))
            graph10_sites.use_site((1, 1))
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_full_tile_infinite(self, graph10_sites):
        graph10_sites.use_site((2, 2), 3)
        assert buffer_site_cost(graph10_sites, (2, 2)) == float("inf")

    def test_zero_site_tile_infinite(self, graph10):
        assert buffer_site_cost(graph10, (5, 5)) == float("inf")

    def test_paper_figure5_values(self, graph10):
        # B, b, p from Fig. 5 -> q values 1.3, 8.6, 0.5, inf, 1.0, inf.
        rows = [
            (8, 3, 2.5, 1.3),
            (5, 4, 3.6, 8.6),
            (12, 2, 2.0, 0.5),
            (3, 3, 0.8, float("inf")),
            (5, 0, 4.0, 1.0),
            (0, 0, 5.0, float("inf")),
        ]
        for i, (sites, used, p, expected) in enumerate(rows):
            tile = (i, 0)
            graph10.set_sites(tile, sites)
            if used:
                graph10.use_site(tile, used)
            assert buffer_site_cost(graph10, tile, p) == pytest.approx(expected)


class TestCostFn:
    def test_without_probability(self, graph10_sites):
        q = make_cost_fn(graph10_sites)
        assert q((0, 0)) == pytest.approx(1 / 3)

    def test_with_probability_source(self, graph10_sites):
        q = make_cost_fn(graph10_sites, probability_of=lambda t: 5.0)
        assert q((0, 0)) == pytest.approx(2.0)
