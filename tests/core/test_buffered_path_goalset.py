"""Goal-set variant of the buffered-label path search."""

import pytest

from repro.core.two_path import best_buffered_path

INF = float("inf")


class TestGoalSet:
    def test_reaches_cheapest_goal(self, graph10_sites):
        window = (0, 0, 9, 9)
        goals = {(6, 0), (2, 0)}
        path = best_buffered_path(
            graph10_sites, (0, 0), goals,
            lambda t: 1.0, length_limit=4, forbidden=set(), window=window,
        )
        assert path is not None
        assert path[-1] == (2, 0)  # the nearer goal

    def test_start_in_goals_is_trivial(self, graph10_sites):
        window = (0, 0, 9, 9)
        path = best_buffered_path(
            graph10_sites, (3, 3), {(3, 3), (9, 9)},
            lambda t: 1.0, length_limit=4, forbidden=set(), window=window,
        )
        assert path == [(3, 3)]

    def test_single_tile_goal_still_works(self, graph10_sites):
        window = (0, 0, 9, 9)
        path = best_buffered_path(
            graph10_sites, (0, 0), (4, 0),
            lambda t: 1.0, length_limit=4, forbidden=set(), window=window,
        )
        assert path is not None and path[-1] == (4, 0)

    def test_forbidden_goal_member_still_reachable(self, graph10_sites):
        # A goal inside forbidden territory is still enterable (goals win).
        window = (0, 0, 9, 9)
        forbidden = {(2, 0), (1, 1)}
        path = best_buffered_path(
            graph10_sites, (0, 0), {(2, 0)},
            lambda t: 1.0, length_limit=4, forbidden=forbidden, window=window,
        )
        assert path is not None and path[-1] == (2, 0)

    def test_empty_reachability_returns_none(self, graph10):
        # No sites + goals beyond L: unreachable.
        window = (0, 0, 9, 9)
        path = best_buffered_path(
            graph10, (0, 0), {(9, 9)},
            lambda t: INF, length_limit=3, forbidden=set(), window=window,
        )
        assert path is None
