"""Greedy fallback buffering."""

from repro.core import greedy_buffering
from repro.core.length_rule import length_violations, net_meets_length_rule
from repro.routing.tree import RouteTree


def _path_tree(tiles):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


class TestGreedy:
    def test_short_net_no_buffers(self, graph10_sites):
        tree = _path_tree([(0, 0), (1, 0), (2, 0)])
        assert greedy_buffering(tree, graph10_sites, 5) == []

    def test_long_path_legal_when_sites_everywhere(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(10)])
        for L in (2, 3, 4):
            specs = greedy_buffering(tree, graph10_sites, L)
            tree.apply_buffers(specs)
            assert net_meets_length_rule(tree, L), L
            tree.clear_buffers()

    def test_respects_free_sites(self, graph10):
        # Only one site on the whole route.
        tree = _path_tree([(i, 0) for i in range(10)])
        graph10.set_sites((4, 0), 1)
        specs = greedy_buffering(tree, graph10, 3)
        assert len(specs) == 1
        assert specs[0].tile == (4, 0)
        tree.apply_buffers(specs)
        assert length_violations(tree, 3) >= 1  # cannot fully fix

    def test_never_oversubscribes_a_tile(self, graph10):
        joint = (3, 0)
        paths = [
            [(i, 0) for i in range(4)],
            [joint] + [(3, y) for y in range(1, 6)],
            [joint] + [(3, -0)],
        ]
        tree = RouteTree.from_paths(
            (0, 0), paths[:2], [(3, 5)]
        )
        graph10.set_sites(joint, 1)
        specs = greedy_buffering(tree, graph10, 2)
        per_tile = {}
        for s in specs:
            per_tile[s.tile] = per_tile.get(s.tile, 0) + 1
        for tile, count in per_tile.items():
            assert count <= graph10.free_sites(tile)

    def test_star_decouples_branches(self, graph10_sites):
        center = (5, 5)
        paths = [
            [center, (6, 5), (7, 5)],
            [center, (4, 5), (3, 5)],
            [center, (5, 6), (5, 7)],
        ]
        tree = RouteTree.from_paths(center, paths, [(7, 5), (3, 5), (5, 7)])
        specs = greedy_buffering(tree, graph10_sites, 3)
        tree.apply_buffers(specs)
        assert net_meets_length_rule(tree, 3)

    def test_single_node_tree(self, graph10_sites):
        tree = RouteTree.from_paths((0, 0), [], [(0, 0)])
        assert greedy_buffering(tree, graph10_sites, 3) == []
