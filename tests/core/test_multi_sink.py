"""Multi-sink DP (paper Fig. 8/9): joins, decoupling, trunk buffers."""

import numpy as np
import pytest

from repro.core import insert_buffers_multi_sink, insert_buffers_single_sink
from repro.core.length_rule import net_meets_length_rule
from repro.errors import ConfigurationError
from repro.routing.tree import RouteTree

INF = float("inf")


def _path_tree(tiles):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


def _y_tree(stem=2, arms=3):
    """Source at origin, a stem along x, then two arms up and down."""
    joint = (stem, 0)
    paths = [
        [(i, 0) for i in range(stem + 1)],
        [joint] + [(stem, y) for y in range(1, arms + 1)],
        [joint] + [(stem, -y) for y in range(1, arms + 1)],
    ]
    sinks = [(stem, arms), (stem, -arms)]
    return RouteTree.from_paths((0, 0), paths, sinks)


class TestAgreementWithSingleSink:
    def test_path_nets_match(self):
        rng = np.random.default_rng(2)
        for _ in range(25):
            n = int(rng.integers(2, 12))
            L = int(rng.integers(1, 6))
            qs = {
                (i, 0): (INF if rng.random() < 0.2 else float(rng.uniform(0.1, 4)))
                for i in range(n)
            }
            path = [(i, 0) for i in range(n)]
            c1, b1, f1 = insert_buffers_single_sink(path, qs.__getitem__, L)
            tree = _path_tree(path)
            result = insert_buffers_multi_sink(tree, qs.__getitem__, L)
            assert result.feasible == f1
            if f1:
                assert result.cost == pytest.approx(c1)


class TestBranching:
    def test_within_budget_no_buffers(self):
        tree = _y_tree(stem=1, arms=1)  # total wire 3
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 3)
        assert result.feasible and result.cost == 0.0 and result.buffers == []

    def test_total_rule_forces_buffers(self):
        # Total wire = 8 > L = 5 even though each path is only 5.
        tree = _y_tree(stem=2, arms=3)
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 5)
        assert result.feasible
        assert len(result.buffers) >= 1

    def test_solution_is_length_legal(self):
        tree = _y_tree(stem=3, arms=4)
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 4)
        assert result.feasible
        tree.apply_buffers(result.buffers)
        assert net_meets_length_rule(tree, 4)

    def test_decoupling_cheaper_than_two_buffers(self):
        # One expensive region: decoupling at the joint (one buffer)
        # should beat buffering both arms separately.
        tree = _y_tree(stem=1, arms=2)  # total 5
        q = lambda t: 1.0
        result = insert_buffers_multi_sink(tree, q, 4)
        assert result.feasible
        tree.apply_buffers(result.buffers)
        assert net_meets_length_rule(tree, 4)
        assert result.cost <= 1.0 + 1e-9  # a single buffer suffices

    def test_infeasible_when_no_sites(self):
        tree = _y_tree(stem=2, arms=3)
        result = insert_buffers_multi_sink(tree, lambda t: INF, 5)
        assert not result.feasible
        assert result.buffers == []

    def test_multiple_buffers_same_tile_allowed(self):
        # Sites only at the joint; both arms need decoupling there.
        joint = (1, 0)
        tree = _y_tree(stem=1, arms=3)  # arms of 3, stem 1: total 7
        q = lambda t: 0.5 if t == joint else INF
        result = insert_buffers_multi_sink(tree, q, 4)
        assert result.feasible
        tiles = [b.tile for b in result.buffers]
        assert tiles.count(joint) >= 1
        tree.apply_buffers(result.buffers)
        assert net_meets_length_rule(tree, 4)


class TestExhaustive:
    def _brute_force(self, tree, q_of, L):
        """Enumerate all buffer placements on small trees."""
        from itertools import product

        # Candidate buffer slots: trunk at any non-leaf non-root-with...
        nodes = [n for n in tree.preorder()]
        slots = []
        for n in nodes:
            slots.append((n.tile, None))
            for c in n.children:
                slots.append((n.tile, c.tile))
        best = INF
        for mask in product([0, 1], repeat=len(slots)):
            from repro.routing.tree import BufferSpec

            specs = [
                BufferSpec(tile, child)
                for bit, (tile, child) in zip(mask, slots)
                if bit
            ]
            cost = sum(q_of(s.tile) for s in specs)
            if cost == INF:
                continue
            tree.apply_buffers(specs)
            if net_meets_length_rule(tree, L):
                best = min(best, cost)
        tree.clear_buffers()
        return best

    def test_against_brute_force_small_trees(self):
        rng = np.random.default_rng(5)
        for trial in range(12):
            stem = int(rng.integers(1, 3))
            arms = int(rng.integers(1, 3))
            tree = _y_tree(stem=stem, arms=arms)
            L = int(rng.integers(2, 5))
            q_table = {
                n.tile: (INF if rng.random() < 0.2 else float(rng.uniform(0.1, 3)))
                for n in tree.preorder()
            }
            q_of = q_table.__getitem__
            expected = self._brute_force(tree, q_of, L)
            result = insert_buffers_multi_sink(tree, q_of, L)
            if expected == INF:
                assert not result.feasible, (trial, L, q_table)
            else:
                assert result.feasible, (trial, L, q_table)
                assert result.cost == pytest.approx(expected), (trial, L, q_table)


class TestEdgeCases:
    def test_single_node(self):
        tree = RouteTree.from_paths((0, 0), [], [(0, 0)])
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 3)
        assert result.feasible and result.cost == 0.0

    def test_bad_limit(self):
        tree = _path_tree([(0, 0), (1, 0)])
        with pytest.raises(ConfigurationError):
            insert_buffers_multi_sink(tree, lambda t: 1.0, 0)

    def test_internal_sink(self):
        # Sink in the middle of a path adds no wire but must be reachable.
        tiles = [(i, 0) for i in range(8)]
        parent = {b: a for a, b in zip(tiles, tiles[1:])}
        tree = RouteTree.from_parent_map(
            (0, 0), parent, [(3, 0), (7, 0)]
        )
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 4)
        assert result.feasible
        tree.apply_buffers(result.buffers)
        assert net_meets_length_rule(tree, 4)

    def test_driver_drives_exactly_L(self):
        # Root with two arms of 2 each: total 4 == L -> no buffers.
        joint = (0, 0)
        paths = [
            [joint, (1, 0), (2, 0)],
            [joint, (0, 1), (0, 2)],
        ]
        tree = RouteTree.from_paths(joint, paths, [(2, 0), (0, 2)])
        result = insert_buffers_multi_sink(tree, lambda t: 100.0, 4)
        assert result.feasible
        assert result.cost == 0.0
