"""Layer-aware length limits (footnote 4)."""

import pytest

from repro.core.layers import (
    LayerAssignment,
    LayerSpec,
    assign_layers,
    default_layer_stack,
)
from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.netlist import Net, Netlist, Pin


def _netlist(lengths):
    nets = []
    for i, span in enumerate(lengths):
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0, 0)),
                sinks=[Pin(f"n{i}.t", Point(float(span), 0))],
            )
        )
    return Netlist(nets=nets)


class TestLayerSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LayerSpec("L", length_limit=0, share=0.5)
        with pytest.raises(ConfigurationError):
            LayerSpec("L", length_limit=3, share=0.0)
        with pytest.raises(ConfigurationError):
            LayerSpec("L", length_limit=3, share=1.2)


class TestDefaultStack:
    def test_three_tiers(self):
        stack = default_layer_stack(5)
        assert [s.name for s in stack] == ["THICK", "SEMI", "THIN"]
        assert stack[0].length_limit == 10
        assert stack[1].length_limit == 7
        assert stack[2].length_limit == 5
        assert stack[-1].share == 1.0


class TestAssignment:
    def test_longest_nets_promoted(self):
        netlist = _netlist([10, 2, 8, 1, 9, 3, 7, 4, 6, 5])
        stack = default_layer_stack(5)
        assignment = assign_layers(netlist, stack)
        # 10% of 10 nets -> exactly the longest net on THICK.
        assert assignment.nets_on("THICK") == ["n0"]
        # Next 20% -> the two next-longest.
        assert set(assignment.nets_on("SEMI")) == {"n4", "n2"}
        assert len(assignment.nets_on("THIN")) == 7

    def test_limits_match_layers(self):
        netlist = _netlist([10, 2, 8, 1])
        assignment = assign_layers(netlist, default_layer_stack(4))
        for name, layer in assignment.layer_of.items():
            expected = {"THICK": 8, "SEMI": 6, "THIN": 4}[layer]
            assert assignment.length_limits[name] == expected

    def test_every_net_assigned(self):
        netlist = _netlist(range(1, 24))
        assignment = assign_layers(netlist, default_layer_stack(5))
        assert set(assignment.length_limits) == {n.name for n in netlist}

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_layers(_netlist([1]), [])

    def test_insufficient_stack_rejected(self):
        layers = [LayerSpec("ONLY", 5, share=0.5), LayerSpec("ALSO", 5, share=0.1)]
        with pytest.raises(ConfigurationError):
            assign_layers(_netlist([1, 2, 3, 4]), layers)

    def test_planner_integration(self):
        # The derived limits feed RabidConfig and change buffering.
        from repro.core import RabidConfig, RabidPlanner
        from repro.geometry import Rect
        from repro.tilegraph import CapacityModel, TileGraph

        graph = TileGraph(Rect(0, 0, 14, 14), 14, 14, CapacityModel.uniform(8))
        for tile in graph.tiles():
            graph.set_sites(tile, 3)
        netlist = _netlist([13.0, 13.0])
        limits = {"n0": 12, "n1": 3}
        result = RabidPlanner(
            graph,
            netlist,
            RabidConfig(length_limit=3, length_limits={"n0": 12},
                        stage4_iterations=1),
        ).run()
        assert result.routes["n0"].buffer_count() < result.routes["n1"].buffer_count()
