"""RabidConfig validation and tracer neutrality.

The tracer must observe, never steer: a run with a live ``Tracer`` must
produce exactly the same routes, buffer assignments, failure list, and
metrics (modulo cpu time) as an untraced run on an identical design.
"""

import pytest

from repro.core import RabidConfig, RabidPlanner
from repro.errors import ConfigurationError
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.obs import Tracer
from repro.tilegraph import CapacityModel, TileGraph


class TestRabidConfigValidation:
    def test_defaults_are_valid(self):
        config = RabidConfig()
        assert config.router == "pd"

    @pytest.mark.parametrize("router", ["pd", "mcf"])
    def test_known_routers_accepted(self, router):
        assert RabidConfig(router=router).router == router

    def test_unknown_router_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown router"):
            RabidConfig(router="astar")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"length_limit": 0},
            {"length_limits": {"n0": 0}},
            {"stage2_iterations": -1},
            {"stage4_iterations": -1},
            {"window_margin": -1},
            {"pd_tradeoff": -0.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RabidConfig(**kwargs)

    def test_zero_iterations_allowed(self):
        config = RabidConfig(stage2_iterations=0, stage4_iterations=0)
        assert config.stage2_iterations == 0
        assert config.stage4_iterations == 0

    def test_bound_disabled_by_default(self):
        assert RabidConfig().bound == ""

    def test_known_bound_mode_accepted(self):
        config = RabidConfig(bound="gk", bound_epsilon=0.5)
        assert config.bound == "gk"
        assert config.bound_epsilon == 0.5

    def test_unknown_bound_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            RabidConfig(bound="simplex")

    @pytest.mark.parametrize("epsilon", [0.0, -0.1, 1.5])
    def test_bad_bound_epsilon_rejected(self, epsilon):
        with pytest.raises(ConfigurationError):
            RabidConfig(bound="gk", bound_epsilon=epsilon)

    def test_bound_round_trips_through_dict(self):
        config = RabidConfig(bound="gk", bound_epsilon=0.125)
        clone = RabidConfig.from_dict(config.as_dict())
        assert clone.bound == "gk"
        assert clone.bound_epsilon == 0.125

    def test_limit_for_prefers_override(self):
        config = RabidConfig(length_limit=5, length_limits={"n0": 2})
        assert config.limit_for("n0") == 2
        assert config.limit_for("n1") == 5


def _design():
    size = 9
    die = Rect(0, 0, float(size), float(size))
    graph = TileGraph(die, size, size, CapacityModel.uniform(6))
    for tile in graph.tiles():
        graph.set_sites(tile, 2)
    nets = []
    for i in range(10):
        y = 0.5 + (i % size)
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0.5, y)),
                sinks=[
                    Pin(f"n{i}.a", Point(size - 0.5, y)),
                    Pin(f"n{i}.b", Point(size / 2, (y + 3) % size)),
                ],
            )
        )
    return graph, Netlist(nets=nets)


def _fingerprint(result, graph):
    routes = {}
    for name, tree in sorted(result.routes.items()):
        routes[name] = sorted(
            (
                node.tile,
                node.parent.tile if node.parent else None,
                node.is_sink,
                node.trunk_buffer,
                tuple(sorted(node.decoupled_children)),
            )
            for node in tree.nodes.values()
        )
    metrics = [
        (m.stage, m.overflows, m.num_buffers, m.num_fails, m.wirelength_mm)
        for m in result.stage_metrics
    ]
    return {
        "routes": routes,
        "metrics": metrics,
        "failed": sorted(result.failed_nets),
        "used_sites": graph.used_sites.tolist(),
        "h_usage": graph.h_usage.tolist(),
        "v_usage": graph.v_usage.tolist(),
    }


class TestTracerNeutrality:
    def test_traced_run_is_byte_identical_to_untraced(self):
        graph_a, nets_a = _design()
        plain = RabidPlanner(graph_a, nets_a, RabidConfig(length_limit=4)).run()

        graph_b, nets_b = _design()
        tracer = Tracer()
        traced = RabidPlanner(graph_b, nets_b, RabidConfig(length_limit=4)).run(
            tracer=tracer
        )

        assert _fingerprint(plain, graph_a) == _fingerprint(traced, graph_b)
        # The traced run actually recorded something.
        assert tracer.spans and len(tracer.events) > 0
