"""Stage-3 assignment over a design."""

import pytest

from repro.core import assign_buffers_stage3
from repro.core.assignment import assign_buffers_to_net
from repro.core.length_rule import net_meets_length_rule
from repro.routing.tree import RouteTree
from repro.tilegraph import buffer_density_stats


def _path_tree(tiles, name):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


def _routes():
    return {
        "long": _path_tree([(i, 0) for i in range(9)], "long"),
        "short": _path_tree([(0, 5), (1, 5)], "short"),
        "mid": _path_tree([(i, 9) for i in range(6)], "mid"),
    }


class TestAssignNet:
    def test_updates_graph_counters(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(9)], "n")
        meets, dp_ok, cost = assign_buffers_to_net(graph10_sites, tree, 3)
        assert meets and dp_ok
        assert graph10_sites.total_used_sites == tree.buffer_count() > 0

    def test_falls_back_when_infeasible(self, graph10):
        tree = _path_tree([(i, 0) for i in range(9)], "n")
        graph10.set_sites((4, 0), 1)  # one site; gaps of 4 remain
        meets, dp_ok, cost = assign_buffers_to_net(graph10, tree, 3)
        assert not dp_ok
        assert not meets
        assert cost == float("inf")
        assert graph10.total_used_sites == tree.buffer_count() == 1


class TestStage3:
    def test_all_nets_buffered_legally(self, graph10_sites):
        routes = _routes()
        result = assign_buffers_stage3(
            graph10_sites,
            routes,
            {name: 3 for name in routes},
            order=["long", "mid", "short"],
        )
        assert result.num_fails == 0
        assert result.buffers_inserted == graph10_sites.total_used_sites
        for name, tree in routes.items():
            assert net_meets_length_rule(tree, 3), name

    def test_never_violates_site_capacity(self, graph10):
        # Scarce sites: 1 per tile on row 0 only.
        for x in range(10):
            graph10.set_sites((x, 0), 1)
        routes = {
            f"n{k}": _path_tree([(i, 0) for i in range(10)], f"n{k}")
            for k in range(4)
        }
        result = assign_buffers_stage3(
            graph10, routes, {n: 3 for n in routes}, order=sorted(routes)
        )
        stats = buffer_density_stats(graph10)
        assert stats.overflow == 0
        assert stats.maximum <= 1.0

    def test_probability_spreads_usage(self, graph10_sites):
        # With p(v), early nets avoid tiles that later nets need... at
        # minimum the toggle must not break anything and both modes are
        # legal.
        for use_p in (True, False):
            graph10_sites.reset_usage()
            routes = _routes()
            result = assign_buffers_stage3(
                graph10_sites,
                routes,
                {n: 3 for n in routes},
                order=["long", "mid", "short"],
                use_probability=use_p,
            )
            assert result.num_fails == 0

    def test_failed_nets_reported(self, graph10):
        routes = {"n": _path_tree([(i, 0) for i in range(10)], "n")}
        result = assign_buffers_stage3(graph10, routes, {"n": 3}, order=["n"])
        assert result.failed_nets == ["n"]
        assert result.dp_infeasible_nets == ["n"]
