"""End-to-end RabidPlanner behaviour on small synthetic designs."""

import pytest

from repro.core import RabidConfig, RabidPlanner
from repro.errors import ConfigurationError
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import (
    CapacityModel,
    TileGraph,
    buffer_density_stats,
    wire_congestion_stats,
)
from repro.core.length_rule import net_meets_length_rule


def _design(capacity=6, sites_per_tile=2, n=12, size=12):
    die = Rect(0, 0, float(size), float(size))
    graph = TileGraph(die, size, size, CapacityModel.uniform(capacity))
    for tile in graph.tiles():
        graph.set_sites(tile, sites_per_tile)
    nets = []
    for i in range(n):
        y = 0.5 + (i % size)
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0.5, y)),
                sinks=[
                    Pin(f"n{i}.a", Point(size - 0.5, y)),
                    Pin(f"n{i}.b", Point(size / 2, (y + size / 2) % size)),
                ],
            )
        )
    return graph, Netlist(nets=nets)


@pytest.fixture(scope="module")
def planned():
    graph, netlist = _design()
    planner = RabidPlanner(graph, netlist, RabidConfig(length_limit=4))
    result = planner.run()
    return graph, netlist, planner, result


class TestPlannerRun:
    def test_four_stage_metrics(self, planned):
        _, _, _, result = planned
        assert [m.stage for m in result.stage_metrics] == [1, 2, 3, 4]

    def test_all_nets_routed(self, planned):
        graph, netlist, _, result = planned
        assert set(result.routes) == {n.name for n in netlist}
        for net in netlist:
            tree = result.routes[net.name]
            tree.validate()
            assert tree.source == graph.tile_of(net.source.location)
            expected = sorted({graph.tile_of(p) for p in net.sink_locations()})
            assert tree.sink_tiles == expected

    def test_wire_congestion_satisfied(self, planned):
        graph, _, _, result = planned
        assert wire_congestion_stats(graph).overflow == 0
        assert result.final_metrics.overflows == 0

    def test_buffer_capacity_never_violated(self, planned):
        graph, _, _, _ = planned
        stats = buffer_density_stats(graph)
        assert stats.overflow == 0
        assert stats.maximum <= 1.0

    def test_usage_matches_routes(self, planned):
        graph, _, _, result = planned
        h, v = graph.h_usage.copy(), graph.v_usage.copy()
        used = graph.used_sites.copy()
        graph.h_usage[:] = 0
        graph.v_usage[:] = 0
        graph.used_sites[:] = 0
        for tree in result.routes.values():
            tree.add_usage(graph)
        assert (graph.h_usage == h).all()
        assert (graph.v_usage == v).all()
        assert (graph.used_sites == used).all()

    def test_length_rule_on_all_nonfailed_nets(self, planned):
        _, _, planner, result = planned
        for name, tree in result.routes.items():
            if name not in result.failed_nets:
                assert net_meets_length_rule(tree, 4), name

    def test_delay_improves_with_buffers(self, planned):
        _, _, _, result = planned
        stage2 = result.stage_metrics[1]
        stage3 = result.stage_metrics[2]
        assert stage3.avg_delay_ps < stage2.avg_delay_ps

    def test_fails_non_increasing_3_to_4(self, planned):
        _, _, _, result = planned
        assert result.stage_metrics[3].num_fails <= result.stage_metrics[2].num_fails


class TestPlannerConfig:
    def test_empty_netlist_rejected(self, graph10):
        with pytest.raises(ConfigurationError):
            RabidPlanner(graph10, Netlist())

    def test_per_net_length_override(self):
        cfg = RabidConfig(length_limit=5, length_limits={"special": 2})
        assert cfg.limit_for("special") == 2
        assert cfg.limit_for("other") == 5

    def test_final_metrics_requires_run(self):
        from repro.core import RabidResult

        with pytest.raises(ConfigurationError):
            RabidResult(routes={}, stage_metrics=[], failed_nets=[]).final_metrics

    def test_metrics_row_format(self, planned):
        _, _, _, result = planned
        row = result.final_metrics.as_row()
        assert len(row) == 12
        assert row[0] == "4"


class TestStagesIndividually:
    def test_stage1_routes_and_usage(self):
        graph, netlist = _design(n=4)
        planner = RabidPlanner(graph, netlist, RabidConfig(length_limit=4))
        planner.stage1()
        assert len(planner.routes) == 4
        assert wire_congestion_stats(graph).average > 0

    def test_stage3_without_stage2(self):
        graph, netlist = _design(n=4)
        planner = RabidPlanner(graph, netlist, RabidConfig(length_limit=4))
        planner.stage1()
        planner.stage3()
        assert graph.total_used_sites > 0
