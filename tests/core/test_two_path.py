"""Stage-4 two-path optimization."""

import pytest

from repro.core.costs import buffer_site_cost
from repro.core.two_path import _remove_loops, best_buffered_path, optimize_two_paths
from repro.routing.tree import RouteTree
from repro.tilegraph import wire_congestion_stats

INF = float("inf")


def _path_tree(tiles, name="n"):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


class TestRemoveLoops:
    def test_no_loop_unchanged(self):
        p = [(0, 0), (1, 0), (2, 0)]
        assert _remove_loops(p) == p

    def test_simple_loop_removed(self):
        p = [(0, 0), (1, 0), (1, 1), (1, 0), (2, 0)]
        assert _remove_loops(p) == [(0, 0), (1, 0), (2, 0)]

    def test_nested_revisit(self):
        p = [(0, 0), (1, 0), (2, 0), (1, 0), (2, 0), (3, 0)]
        out = _remove_loops(p)
        assert out == [(0, 0), (1, 0), (2, 0), (3, 0)]
        assert len(out) == len(set(out))


class TestBestBufferedPath:
    def test_straight_path_when_clear(self, graph10_sites):
        window = (0, 0, 9, 9)
        path = best_buffered_path(
            graph10_sites, (0, 0), (4, 0),
            lambda t: buffer_site_cost(graph10_sites, t),
            length_limit=3, forbidden=set(), window=window,
        )
        assert path is not None
        assert path[0] == (0, 0) and path[-1] == (4, 0)
        assert len(path) == 5

    def test_detours_around_siteless_gap(self, graph10):
        # Sites everywhere except a vertical band; L small forces buffers,
        # so the path must stay in site-rich territory.
        for tile in graph10.tiles():
            if tile[0] != 4:
                graph10.set_sites(tile, 2)
        window = (0, 0, 9, 9)
        path = best_buffered_path(
            graph10, (0, 0), (9, 0),
            lambda t: buffer_site_cost(graph10, t),
            length_limit=2, forbidden=set(), window=window,
        )
        # Column 4 has no sites but the path can still cross it in one
        # step (j resets on either side); the path must exist.
        assert path is not None

    def test_respects_forbidden(self, graph10_sites):
        window = (0, 0, 9, 9)
        forbidden = {(1, 0), (1, 1)}
        path = best_buffered_path(
            graph10_sites, (0, 0), (2, 0),
            lambda t: buffer_site_cost(graph10_sites, t),
            length_limit=3, forbidden=forbidden, window=window,
        )
        assert path is not None
        assert not (set(path) & forbidden)

    def test_unreachable_returns_none(self, graph10_sites):
        window = (0, 0, 9, 9)
        # Goal fenced off by forbidden tiles.
        forbidden = {(8, 9), (9, 8)}
        path = best_buffered_path(
            graph10_sites, (0, 0), (9, 9),
            lambda t: buffer_site_cost(graph10_sites, t),
            length_limit=3, forbidden=forbidden, window=window,
        )
        assert path is None

    def test_no_sites_and_long_distance_returns_none(self, graph10):
        window = (0, 0, 9, 9)
        path = best_buffered_path(
            graph10, (0, 0), (9, 9), lambda t: INF,
            length_limit=3, forbidden=set(), window=window,
        )
        assert path is None


class TestOptimizeTwoPaths:
    def test_reduces_wire_overflow(self, graph10_sites):
        # Saturate the straight corridor used by the net; stage 4 should
        # move the path off it.
        tree = _path_tree([(i, 0) for i in range(8)])
        tree.add_usage(graph10_sites)
        for x in range(8):
            graph10_sites.add_wire((x, 0), (x + 1, 0), 10)
        before = wire_congestion_stats(graph10_sites).overflow
        optimize_two_paths(
            graph10_sites, tree,
            lambda t: buffer_site_cost(graph10_sites, t),
            length_limit=4,
        )
        tree.validate()
        after = wire_congestion_stats(graph10_sites).overflow
        assert after < before

    def test_usage_stays_consistent(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(8)])
        tree.add_usage(graph10_sites)
        optimize_two_paths(
            graph10_sites, tree,
            lambda t: buffer_site_cost(graph10_sites, t),
            length_limit=4,
        )
        # Rebuild usage from scratch; wire arrays must match.
        h, v = graph10_sites.h_usage.copy(), graph10_sites.v_usage.copy()
        graph10_sites.h_usage[:] = 0
        graph10_sites.v_usage[:] = 0
        tree.add_usage(graph10_sites)
        graph10_sites.used_sites[:] = 0
        assert (graph10_sites.h_usage == h).all()
        assert (graph10_sites.v_usage == v).all()

    def test_clears_buffer_annotations(self, graph10_sites):
        from repro.routing.tree import BufferSpec

        tree = _path_tree([(i, 0) for i in range(6)])
        tree.apply_buffers([BufferSpec((2, 0), None)])
        tree.add_usage(graph10_sites)
        graph10_sites.use_site((2, 0), -1)  # stage 4 rips buffers first
        optimize_two_paths(
            graph10_sites, tree,
            lambda t: buffer_site_cost(graph10_sites, t),
            length_limit=4,
        )
        assert tree.buffer_count() == 0

    def test_sinks_and_source_preserved(self, graph10_sites):
        paths = [
            [(0, 0), (1, 0), (2, 0), (3, 0)],
            [(2, 0), (2, 1), (2, 2)],
        ]
        tree = RouteTree.from_paths((0, 0), paths, [(3, 0), (2, 2)])
        tree.add_usage(graph10_sites)
        optimize_two_paths(
            graph10_sites, tree,
            lambda t: buffer_site_cost(graph10_sites, t),
            length_limit=4,
        )
        tree.validate()
        assert tree.source == (0, 0)
        assert tree.sink_tiles == [(2, 2), (3, 0)]
