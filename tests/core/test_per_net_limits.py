"""Per-net length limits (paper footnote 4: layer-dependent L_i)."""

import pytest

from repro.core import RabidConfig, RabidPlanner
from repro.core.length_rule import driven_lengths, net_meets_length_rule
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import CapacityModel, TileGraph


def _design():
    die = Rect(0, 0, 16, 16)
    graph = TileGraph(die, 16, 16, CapacityModel.uniform(8))
    for tile in graph.tiles():
        graph.set_sites(tile, 3)
    nets = [
        Net(
            name="thick_metal",  # routed high: relaxed L
            source=Pin("t.s", Point(0.5, 2.5)),
            sinks=[Pin("t.t", Point(15.5, 2.5))],
        ),
        Net(
            name="thin_metal",  # routed low: tight L
            source=Pin("n.s", Point(0.5, 8.5)),
            sinks=[Pin("n.t", Point(15.5, 8.5))],
        ),
    ]
    return graph, Netlist(nets=nets)


class TestPerNetLimits:
    def test_limits_applied_individually(self):
        graph, netlist = _design()
        config = RabidConfig(
            length_limit=3,
            length_limits={"thick_metal": 8},
            stage4_iterations=1,
        )
        result = RabidPlanner(graph, netlist, config).run()
        thick = result.routes["thick_metal"]
        thin = result.routes["thin_metal"]
        assert net_meets_length_rule(thick, 8)
        assert net_meets_length_rule(thin, 3)
        # The relaxed net needs fewer buffers for the same span.
        assert thick.buffer_count() < thin.buffer_count()

    def test_gate_loads_respect_own_limit(self):
        graph, netlist = _design()
        config = RabidConfig(
            length_limit=3,
            length_limits={"thick_metal": 8},
            stage4_iterations=1,
        )
        result = RabidPlanner(graph, netlist, config).run()
        for gate in driven_lengths(result.routes["thin_metal"]):
            assert gate.driven_length <= 3
        for gate in driven_lengths(result.routes["thick_metal"]):
            assert gate.driven_length <= 8
