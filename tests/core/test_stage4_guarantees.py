"""Stage-4 must preserve the Stage-2 no-overflow guarantee.

Regression tests for the fallback ladder in optimize_two_paths: when no
within-capacity alternative exists, the old (fitting) route must be kept
rather than a soft-cost overflowing detour.
"""

import pytest

from repro.core.costs import buffer_site_cost
from repro.core.two_path import _path_fits, optimize_two_paths
from repro.routing.tree import RouteTree
from repro.tilegraph import CapacityModel, TileGraph, wire_congestion_stats
from repro.geometry import Rect

INF = float("inf")


def _path_tree(tiles, name="n"):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


class TestPathFits:
    def test_empty_graph_fits(self, graph10):
        assert _path_fits(graph10, [(0, 0), (1, 0), (2, 0)])

    def test_full_edge_does_not_fit(self, graph10):
        graph10.add_wire((1, 0), (2, 0), 10)
        assert not _path_fits(graph10, [(0, 0), (1, 0), (2, 0)])

    def test_single_tile_path_fits(self, graph10):
        assert _path_fits(graph10, [(3, 3)])


class TestNoOverflowPreserved:
    def test_keeps_old_route_when_alternatives_overflow(self):
        # A narrow 3-row corridor: the net's own row is free, both
        # neighbor rows are saturated. No buffer sites anywhere means the
        # strict buffered search fails for L < length; the plain strict
        # path equals the old route or nothing; soft must NOT kick in.
        g = TileGraph(Rect(0, 0, 8, 3), 8, 3, CapacityModel.uniform(2))
        tree = _path_tree([(i, 1) for i in range(8)])
        tree.add_usage(g)
        for x in range(7):
            g.add_wire((x, 0), (x + 1, 0), 2)
            g.add_wire((x, 2), (x + 1, 2), 2)
        assert wire_congestion_stats(g).overflow == 0
        optimize_two_paths(
            g, tree, lambda t: buffer_site_cost(g, t), length_limit=3
        )
        tree.validate()
        assert wire_congestion_stats(g).overflow == 0

    def test_whole_stage4_run_keeps_zero_overflow(self):
        # Randomized mini-design: after a clean stage 1-3, stage 4 may
        # move wires but never into overflow.
        import numpy as np

        from repro.core import RabidConfig, RabidPlanner
        from repro.geometry import Point
        from repro.netlist import Net, Netlist, Pin

        rng = np.random.default_rng(11)
        g = TileGraph(Rect(0, 0, 10, 10), 10, 10, CapacityModel.uniform(3))
        for tile in g.tiles():
            g.set_sites(tile, 1)
        nets = []
        for i in range(8):
            a = Point(*(rng.uniform(0.2, 9.8, size=2)))
            b = Point(*(rng.uniform(0.2, 9.8, size=2)))
            nets.append(Net(name=f"n{i}", source=Pin(f"n{i}.s", a),
                            sinks=[Pin(f"n{i}.t", b)]))
        planner = RabidPlanner(
            g, Netlist(nets=nets),
            RabidConfig(length_limit=3, stage4_iterations=0),
        )
        planner.stage1()
        planner.stage2()
        planner.stage3()
        if wire_congestion_stats(g).overflow != 0:
            pytest.skip("stage 2 could not clear this random instance")
        planner.config.stage4_iterations = 2
        planner.stage4()
        assert wire_congestion_stats(g).overflow == 0
