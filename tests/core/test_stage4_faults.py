"""Stage 4 exception safety: ripped-out buffers are restored on failure.

Stage 4 rips a net's buffers out of the tile graph before rerouting its
two paths. If the reroute or the reinsertion DP raises, the planner must
put the ripped-out site bookings back before propagating — otherwise the
graph's b(v) accounting is silently corrupted for every later caller.
"""

import pytest

import repro.core.rabid as rabid_module
from repro.core import RabidConfig, RabidPlanner
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.obs import Tracer
from repro.tilegraph import CapacityModel, TileGraph


def _design(n=6, size=8):
    die = Rect(0, 0, float(size), float(size))
    graph = TileGraph(die, size, size, CapacityModel.uniform(6))
    for tile in graph.tiles():
        graph.set_sites(tile, 2)
    nets = []
    for i in range(n):
        y = 0.5 + (i % size)
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0.5, y)),
                sinks=[Pin(f"n{i}.a", Point(size - 0.5, y))],
            )
        )
    return graph, Netlist(nets=nets)


class _Boom(Exception):
    pass


def _run_through_stage3(graph, netlist):
    planner = RabidPlanner(graph, netlist, RabidConfig(length_limit=3))
    planner.stage1()
    planner.stage2()
    planner.stage3()
    return planner


def test_stage4_restores_sites_when_reroute_raises(monkeypatch):
    graph, netlist = _design()
    planner = _run_through_stage3(graph, netlist)
    assert graph.total_used_sites > 0, "fixture must place buffers in stage 3"
    before = graph.used_sites.copy()

    # Fault on the very first net: nothing else has been reprocessed, so
    # the restore must bring the graph back to exactly the stage-3 state.
    def exploding(*args, **kwargs):
        raise _Boom("injected reroute failure")

    monkeypatch.setattr(rabid_module, "optimize_two_paths", exploding)

    with pytest.raises(_Boom):
        planner.stage4()

    assert (graph.used_sites == before).all()
    assert graph.total_used_sites == before.sum()


def test_stage4_mid_pass_fault_keeps_invariants(monkeypatch):
    """A fault after some nets completed still leaves 0 <= b(v) <= B(v)."""
    graph, netlist = _design()
    planner = _run_through_stage3(graph, netlist)

    calls = {"n": 0}
    state = {}
    real = rabid_module.assign_buffers_to_net

    def flaky_dp(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 3:
            state["at_raise"] = graph.used_sites.copy()
            raise _Boom("DP blew up mid-pass")
        return real(*args, **kwargs)

    monkeypatch.setattr(rabid_module, "assign_buffers_to_net", flaky_dp)

    with pytest.raises(_Boom):
        planner.stage4()

    # The in-flight net's ripped-out bookings came back (its buffers were
    # unbooked at rip time, so the post-fault state must be a superset of
    # the snapshot taken at the raise) ...
    restored = graph.used_sites - state["at_raise"]
    assert (restored >= 0).all()
    assert restored.sum() > 0
    # ... and earlier nets' legitimate updates kept the accounting legal.
    Tracer().check_site_invariants(graph, "post-fault")
    assert (graph.used_sites >= 0).all()
    assert (graph.used_sites <= graph.sites).all()


def test_stage4_q_of_is_shared_across_nets(monkeypatch):
    """The site-cost closure is built once per stage4() call, not per net."""
    graph, netlist = _design()
    planner = _run_through_stage3(graph, netlist)

    seen = []
    real = rabid_module.optimize_two_paths

    def spy(graph_arg, tree, q_of, *args, **kwargs):
        seen.append(q_of)
        return real(graph_arg, tree, q_of, *args, **kwargs)

    monkeypatch.setattr(rabid_module, "optimize_two_paths", spy)
    planner.stage4()

    assert len(seen) >= len(netlist)
    assert len(set(map(id, seen))) == 1
