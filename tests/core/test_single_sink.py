"""Single-sink DP (paper Fig. 6), including the exact Fig. 5/7 instance."""

import pytest

from repro.core import insert_buffers_single_sink
from repro.errors import ConfigurationError

INF = float("inf")


def _cost_map(values):
    table = {(i, 0): v for i, v in enumerate(values)}
    return lambda tile: table[tile]


def _path(n):
    return [(i, 0) for i in range(n)]


class TestPaperExample:
    # Fig. 5/7: source, six tiles with q = 1.3, 8.6, 0.5, inf, 1.0, inf,
    # then the sink; L = 3. Optimum: buffers in the 3rd and 5th tiles,
    # cost 0.5 + 1.0 = 1.5.
    Q = [0.0, 1.3, 8.6, 0.5, INF, 1.0, INF, 0.0]  # source and sink unused

    def test_cost_is_1_5(self):
        cost, buffers, feasible = insert_buffers_single_sink(
            _path(8), _cost_map(self.Q), 3
        )
        assert feasible
        assert cost == pytest.approx(1.5)

    def test_buffer_positions(self):
        _, buffers, _ = insert_buffers_single_sink(_path(8), _cost_map(self.Q), 3)
        assert [b.tile for b in buffers] == [(3, 0), (5, 0)]
        assert all(b.drives_child is None for b in buffers)


class TestBasics:
    def test_trivial_same_tile(self):
        cost, buffers, feasible = insert_buffers_single_sink(
            [(0, 0)], lambda t: 1.0, 3
        )
        assert (cost, buffers, feasible) == (0.0, [], True)

    def test_adjacent_needs_no_buffer(self):
        cost, buffers, feasible = insert_buffers_single_sink(
            _path(2), lambda t: 1.0, 3
        )
        assert feasible and cost == 0.0 and buffers == []

    def test_short_path_within_limit(self):
        cost, buffers, feasible = insert_buffers_single_sink(
            _path(4), lambda t: 1.0, 3
        )
        assert feasible and cost == 0.0 and buffers == []

    def test_exact_limit_no_buffer(self):
        # Driver drives exactly L units.
        cost, buffers, feasible = insert_buffers_single_sink(
            _path(4), lambda t: 100.0, 3
        )
        assert feasible and buffers == []

    def test_one_over_limit_needs_buffer(self):
        cost, buffers, feasible = insert_buffers_single_sink(
            _path(5), lambda t: 1.0, 3
        )
        assert feasible and len(buffers) == 1

    def test_bad_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            insert_buffers_single_sink(_path(3), lambda t: 1.0, 0)


class TestOptimality:
    def test_picks_cheapest_site(self):
        q = _cost_map([INF, 5.0, 0.1, 7.0, INF])
        cost, buffers, feasible = insert_buffers_single_sink(_path(5), q, 3)
        assert feasible
        assert cost == pytest.approx(0.1)
        assert buffers[0].tile == (2, 0)

    def test_exhaustive_against_brute_force(self):
        # Compare with brute force over all buffer subsets on small paths.
        from itertools import combinations

        def brute(qs, L):
            n = len(qs)
            interior = list(range(1, n - 1))
            best = INF
            for k in range(len(interior) + 1):
                for combo in combinations(interior, k):
                    gates = [0] + list(combo)
                    segments = []
                    for a, b in zip(gates, gates[1:]):
                        segments.append(b - a)
                    segments.append(n - 1 - gates[-1])
                    if any(s > L for s in segments):
                        continue
                    c = sum(qs[i] for i in combo)
                    if c != c or c < best:
                        best = min(best, c)
            return best

        import numpy as np

        rng = np.random.default_rng(0)
        for trial in range(30):
            n = int(rng.integers(2, 9))
            L = int(rng.integers(1, 5))
            qs = [float(x) for x in rng.uniform(0.1, 5.0, size=n)]
            # Sprinkle some infinities.
            for i in range(n):
                if rng.random() < 0.25:
                    qs[i] = INF
            cost, buffers, feasible = insert_buffers_single_sink(
                _path(n), _cost_map(qs), L
            )
            expected = brute(qs, L)
            if expected == INF:
                assert not feasible, (trial, qs, L)
            else:
                assert feasible, (trial, qs, L)
                assert cost == pytest.approx(expected), (trial, qs, L)

    def test_solution_respects_length_rule(self):
        import numpy as np

        rng = np.random.default_rng(1)
        for _ in range(20):
            n = int(rng.integers(3, 15))
            L = int(rng.integers(2, 6))
            qs = [float(x) for x in rng.uniform(0.1, 3.0, size=n)]
            cost, buffers, feasible = insert_buffers_single_sink(
                _path(n), _cost_map(qs), L
            )
            assert feasible
            gates = [0] + sorted(b.tile[0] for b in buffers) + [n - 1]
            for a, b in zip(gates, gates[1:]):
                assert b - a <= L


class TestSinkInitSoundness:
    def test_sink_init_soundness(self):
        """The paper's all-zero sink initialization (C_t[j] = 0 for all j)
        never admits a solution that over-drives a gate.

        Entries at indices larger than the true downstream length claim
        *more* unbuffered wire than exists, which only tightens upstream
        choices; this test drives the point with instances where a naive
        reading might expect trouble (path length just above L, buffers
        scarce near the sink).
        """
        for n in range(2, 14):
            for L in range(1, 7):
                # Only one usable site, right before the sink.
                q = {(i, 0): INF for i in range(n)}
                if n >= 3:
                    q[(n - 2, 0)] = 1.0
                cost, buffers, feasible = insert_buffers_single_sink(
                    [(i, 0) for i in range(n)], q.__getitem__, L
                )
                if feasible:
                    gates = [0] + sorted(b.tile[0] for b in buffers) + [n - 1]
                    for a, b in zip(gates, gates[1:]):
                        assert b - a <= L, (n, L)


class TestInfeasibility:
    def test_all_infinite_long_path(self):
        cost, buffers, feasible = insert_buffers_single_sink(
            _path(6), lambda t: INF, 3
        )
        assert not feasible and cost == INF and buffers == []

    def test_gap_longer_than_limit(self):
        # Free sites only at the ends; middle gap of 4 > L=3.
        q = _cost_map([INF, 1.0, INF, INF, INF, INF, 1.0, INF])
        cost, buffers, feasible = insert_buffers_single_sink(_path(8), q, 3)
        assert not feasible
