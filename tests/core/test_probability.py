"""Usage-probability field p(v)."""

import pytest

from repro.core import UsageProbability
from repro.errors import ConfigurationError
from repro.routing.tree import RouteTree


def _path_tree(tiles, name):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


class TestUsageProbability:
    def test_add_contributes_inverse_L(self, graph10):
        p = UsageProbability(graph10)
        tree = _path_tree([(0, 0), (1, 0), (2, 0)], "a")
        p.add_net(tree, 4)
        assert p.value((1, 0)) == pytest.approx(0.25)
        assert p.value((5, 5)) == 0.0

    def test_sums_over_nets(self, graph10):
        p = UsageProbability(graph10)
        p.add_net(_path_tree([(0, 0), (1, 0)], "a"), 2)
        p.add_net(_path_tree([(1, 0), (1, 1)], "b"), 4)
        assert p.value((1, 0)) == pytest.approx(0.5 + 0.25)
        assert p.pending_nets == 2

    def test_remove_restores(self, graph10):
        p = UsageProbability(graph10)
        ta = _path_tree([(0, 0), (1, 0)], "a")
        tb = _path_tree([(1, 0), (1, 1)], "b")
        p.add_net(ta, 2)
        p.add_net(tb, 2)
        p.remove_net(ta)
        assert p.value((1, 0)) == pytest.approx(0.5)
        assert p.pending_nets == 1

    def test_remove_unknown_is_noop(self, graph10):
        p = UsageProbability(graph10)
        p.remove_net(_path_tree([(0, 0), (1, 0)], "ghost"))
        assert p.pending_nets == 0

    def test_double_add_rejected(self, graph10):
        p = UsageProbability(graph10)
        tree = _path_tree([(0, 0), (1, 0)], "a")
        p.add_net(tree, 2)
        with pytest.raises(ConfigurationError):
            p.add_net(tree, 2)

    def test_bad_limit_rejected(self, graph10):
        p = UsageProbability(graph10)
        with pytest.raises(ConfigurationError):
            p.add_net(_path_tree([(0, 0), (1, 0)], "a"), 0)

    def test_never_negative(self, graph10):
        p = UsageProbability(graph10)
        tree = _path_tree([(0, 0), (1, 0)], "a")
        p.add_net(tree, 3)
        p.remove_net(tree)
        assert p.value((0, 0)) == 0.0
