"""Worker-count determinism matrix: every backend × worker count must
reproduce the sequential golden byte for byte.

This is the acceptance criterion of the shared-memory pool: parallel
Stage 2 and Stage 3 are *replays* of the sequential algorithm, not
approximations of it. The matrix runs both backends — the shm worker
pool and the legacy in-process threads — across worker counts on the
32x32 golden and the (larger, sparser) 64x64 golden. The heaviest
combinations carry the ``slow`` marker.
"""

import json
import os

import pytest

from repro.benchmarks.buffering_kernel import (
    make_buffering_scenario,
    run_buffering_kernel,
)
from repro.benchmarks.routing_kernel import (
    make_routing_scenario,
    run_routing_kernel,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")

BACKENDS = ("pool", "threads")


def load_golden(name):
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as fh:
        return json.load(fh)


def run_routing_golden(golden, workers, backend):
    spec = golden["scenario"]
    scenario = make_routing_scenario(
        grid=spec["grid"],
        num_nets=spec["num_nets"],
        capacity=spec["capacity"],
        seed=spec["seed"],
    )
    return run_routing_kernel(
        scenario,
        passes=spec["passes"],
        radius_weight=spec["radius_weight"],
        window_margin=spec["window_margin"],
        workers=workers,
        backend=backend,
    )


def run_buffering_golden(golden, workers, backend):
    spec = golden["scenario"]
    instance = make_buffering_scenario(
        grid=spec["grid"],
        num_nets=spec["num_nets"],
        capacity=spec["capacity"],
        seed=spec["seed"],
        length_limit=spec["length_limit"],
        total_sites=spec["total_sites"],
        site_seed=spec["site_seed"],
    )
    return run_buffering_kernel(instance, workers=workers, backend=backend)


class TestRouting32:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_matches_golden(self, workers, backend):
        golden = load_golden("routing_kernel_32x32_seed0.json")
        result = run_routing_golden(golden, workers, backend)
        assert result.signature == golden["signature"]
        assert result.wirelength_tiles == golden["wirelength_tiles"]
        assert result.overflow == golden["overflow"]

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_golden_at_eight_workers(self, backend):
        golden = load_golden("routing_kernel_32x32_seed0.json")
        result = run_routing_golden(golden, 8, backend)
        assert result.signature == golden["signature"]


class TestRouting64:
    def test_sequential_matches_golden(self):
        golden = load_golden("routing_kernel_64x64_seed0.json")
        result = run_routing_golden(golden, 1, "pool")
        assert result.signature == golden["signature"]
        assert result.wirelength_tiles == golden["wirelength_tiles"]
        assert result.overflow == golden["overflow"]

    def test_per_net_edges_match_golden(self):
        """Not just the hash: a failure names the first differing net."""
        from repro.benchmarks.routing_kernel import routes_as_json

        golden = load_golden("routing_kernel_64x64_seed0.json")
        result = run_routing_golden(golden, 2, "pool")
        got = routes_as_json(result.routes)
        want = {
            name: [[list(e[0]), list(e[1])] for e in edges]
            for name, edges in golden["routes"].items()
        }
        assert set(got) == set(want)
        for name in sorted(want):
            assert got[name] == want[name], f"net {name} routed differently"

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (2, 4, 8))
    def test_matrix_matches_golden(self, workers, backend):
        golden = load_golden("routing_kernel_64x64_seed0.json")
        result = run_routing_golden(golden, workers, backend)
        assert result.signature == golden["signature"]


class TestBuffering32:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_matches_golden(self, workers, backend):
        golden = load_golden("buffering_kernel_32x32_seed0.json")
        result = run_buffering_golden(golden, workers, backend)
        assert result.signature == golden["signature"]
        assert result.buffers_inserted == golden["buffers_inserted"]
        assert result.num_fails == golden["num_fails"]

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_golden_at_eight_workers(self, backend):
        golden = load_golden("buffering_kernel_32x32_seed0.json")
        result = run_buffering_golden(golden, 8, backend)
        assert result.signature == golden["signature"]


class TestBuffering64:
    def test_sequential_matches_golden(self):
        golden = load_golden("buffering_kernel_64x64_seed0.json")
        result = run_buffering_golden(golden, 1, "pool")
        assert result.signature == golden["signature"]
        assert result.buffers_inserted == golden["buffers_inserted"]
        assert result.num_fails == golden["num_fails"]
        assert result.dp_infeasible == golden["dp_infeasible"]
        assert sorted(result.assignment.failed_nets) == golden["failed_nets"]

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (2, 4, 8))
    def test_matrix_matches_golden(self, workers, backend):
        golden = load_golden("buffering_kernel_64x64_seed0.json")
        result = run_buffering_golden(golden, workers, backend)
        assert result.signature == golden["signature"]
