"""Cross-module consistency: planner metrics vs. independent measurement.

The planner's StageMetrics snapshots and the analysis package's
design_report measure the same quantities through different code paths;
they must agree exactly.
"""

import pytest

from repro import TECH_180NM, RabidConfig, RabidPlanner, design_report, load_benchmark
from repro.tilegraph import buffer_density_stats, wire_congestion_stats


@pytest.fixture(scope="module")
def planned():
    bench = load_benchmark("hp", seed=0)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=1,
    )
    result = RabidPlanner(bench.graph, bench.netlist, config).run()
    report = design_report(
        result.routes, bench.graph, TECH_180NM, config.length_limit
    )
    return bench, result, report


class TestConsistency:
    def test_buffer_totals_agree(self, planned):
        bench, result, report = planned
        assert report.total_buffers == result.final_metrics.num_buffers
        assert report.total_buffers == bench.graph.total_used_sites

    def test_fail_lists_agree(self, planned):
        _, result, report = planned
        assert sorted(report.failed_nets) == sorted(result.failed_nets)
        assert len(report.failed_nets) == result.final_metrics.num_fails

    def test_wirelength_agrees(self, planned):
        _, result, report = planned
        assert report.total_wirelength_mm == pytest.approx(
            result.final_metrics.wirelength_mm
        )

    def test_congestion_agrees(self, planned):
        bench, result, report = planned
        wire = wire_congestion_stats(bench.graph)
        assert report.wire_congestion_max == pytest.approx(
            result.final_metrics.wire_congestion_max
        )
        assert report.wire_overflow == wire.overflow == result.final_metrics.overflows

    def test_buffer_density_agrees(self, planned):
        bench, result, report = planned
        stats = buffer_density_stats(bench.graph)
        assert report.buffer_density_max == pytest.approx(stats.maximum)
        assert report.buffer_density_avg == pytest.approx(
            result.final_metrics.buffer_density_avg
        )

    def test_delays_agree(self, planned):
        _, result, report = planned
        assert report.max_delay_ps == pytest.approx(
            result.final_metrics.max_delay_ps
        )
        assert report.avg_delay_ps == pytest.approx(
            result.final_metrics.avg_delay_ps
        )

    def test_per_net_buffers_sum_to_total(self, planned):
        _, result, report = planned
        assert sum(n.num_buffers for n in report.nets) == report.total_buffers
