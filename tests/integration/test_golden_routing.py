"""Golden comparisons: sequential runs must match pre-flat-kernel output.

The two golden files were captured with the object-graph router *before*
the flat-array kernel landed. ``workers=1`` runs are required to be
byte-identical to them — routed trees, buffer placements, and site
assignments — so these tests pin the acceptance criterion "sequential
runs produce output identical to pre-change output".
"""

import json
import os

import pytest

from repro.benchmarks.routing_kernel import (
    make_routing_scenario,
    routes_as_json,
    run_routing_kernel,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")


def load_golden(name):
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestRoutingKernelGolden:
    def test_sequential_kernel_matches_golden(self):
        golden = load_golden("routing_kernel_32x32_seed0.json")
        spec = golden["scenario"]
        scenario = make_routing_scenario(
            grid=spec["grid"],
            num_nets=spec["num_nets"],
            capacity=spec["capacity"],
            seed=spec["seed"],
        )
        result = run_routing_kernel(
            scenario,
            passes=spec["passes"],
            radius_weight=spec["radius_weight"],
            window_margin=spec["window_margin"],
            workers=1,
        )
        assert result.signature == golden["signature"]
        assert result.wirelength_tiles == golden["wirelength_tiles"]
        assert result.overflow == golden["overflow"]

    def test_per_net_edges_match_golden(self):
        """Not just the hash: compare the actual edge lists, so a failure
        names the first differing net instead of two signatures."""
        golden = load_golden("routing_kernel_32x32_seed0.json")
        spec = golden["scenario"]
        scenario = make_routing_scenario(
            grid=spec["grid"],
            num_nets=spec["num_nets"],
            capacity=spec["capacity"],
            seed=spec["seed"],
        )
        result = run_routing_kernel(
            scenario,
            passes=spec["passes"],
            radius_weight=spec["radius_weight"],
            window_margin=spec["window_margin"],
        )
        got = routes_as_json(result.routes)
        want = {
            name: [[list(e[0]), list(e[1])] for e in edges]
            for name, edges in golden["routes"].items()
        }
        assert set(got) == set(want)
        for name in sorted(want):
            assert got[name] == want[name], f"net {name} routed differently"


@pytest.mark.slow
class TestPlannerGolden:
    def test_apte_planner_matches_golden(self):
        from repro.benchmarks import load_benchmark
        from repro.core import RabidConfig, RabidPlanner

        golden = load_golden("planner_apte_seed0.json")
        bench = load_benchmark(golden["circuit"], seed=golden["seed"])
        config = RabidConfig(
            length_limit=bench.spec.length_limit,
            window_margin=10,
            stage4_iterations=golden["stage4_iterations"],
        )
        result = RabidPlanner(bench.graph, bench.netlist, config).run()

        routes = {
            name: sorted(
                [list(min(u, v)), list(max(u, v))] for u, v in tree.edges()
            )
            for name, tree in result.routes.items()
        }
        want_routes = {
            name: [[list(e[0]), list(e[1])] for e in edges]
            for name, edges in golden["routes"].items()
        }
        assert routes == want_routes

        buffers = {
            name: [
                [list(s.tile), list(s.drives_child) if s.drives_child else None]
                for s in tree.buffer_specs()
            ]
            for name, tree in result.routes.items()
        }
        want_buffers = {
            name: [
                [list(b[0]), list(b[1]) if b[1] is not None else None]
                for b in specs
            ]
            for name, specs in golden["buffers"].items()
        }
        assert buffers == want_buffers
        assert bench.graph.used_sites.tolist() == golden["used_sites"]
        assert sorted(result.failed_nets) == sorted(golden["failed_nets"])
        assert result.final_metrics.overflows == golden["overflows"]
