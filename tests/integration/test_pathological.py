"""Failure injection and pathological instances.

The planner must degrade gracefully — count failures, never corrupt its
bookkeeping — on inputs far outside the benchmarks' comfort zone: no
buffer sites at all, capacity-1 graphs, single-tile dies, every pin in one
tile, a blocked region covering most of the die.
"""

import pytest

from repro.core import RabidConfig, RabidPlanner
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import (
    CapacityModel,
    TileGraph,
    buffer_density_stats,
    wire_congestion_stats,
)


def _graph(size, capacity, sites):
    g = TileGraph(Rect(0, 0, float(size), float(size)), size, size,
                  CapacityModel.uniform(capacity))
    for tile in g.tiles():
        g.set_sites(tile, sites)
    return g


def _line_nets(n, size):
    nets = []
    for i in range(n):
        y = 0.5 + (i % size)
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0.5, y)),
                sinks=[Pin(f"n{i}.t", Point(size - 0.5, y))],
            )
        )
    return Netlist(nets=nets)


class TestNoSitesAnywhere:
    def test_all_long_nets_fail_but_run_completes(self):
        graph = _graph(10, 8, sites=0)
        netlist = _line_nets(4, 10)
        config = RabidConfig(length_limit=3, stage4_iterations=1)
        result = RabidPlanner(graph, netlist, config).run()
        # Every net spans 9 tiles > L=3 with no possible buffer.
        assert sorted(result.failed_nets) == sorted(n.name for n in netlist)
        assert graph.total_used_sites == 0
        assert result.final_metrics.num_buffers == 0

    def test_short_nets_still_pass(self):
        graph = _graph(10, 8, sites=0)
        netlist = Netlist(
            nets=[
                Net(
                    name="short",
                    source=Pin("s", Point(0.5, 0.5)),
                    sinks=[Pin("t", Point(2.5, 0.5))],
                )
            ]
        )
        result = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=3, stage4_iterations=1)
        ).run()
        assert result.failed_nets == []


class TestTinyGraphs:
    def test_single_tile_die(self):
        graph = _graph(1, 5, sites=2)
        netlist = Netlist(
            nets=[
                Net(
                    name="n",
                    source=Pin("s", Point(0.2, 0.2)),
                    sinks=[Pin("t", Point(0.8, 0.8))],
                )
            ]
        )
        result = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=1, stage4_iterations=1)
        ).run()
        assert result.failed_nets == []
        assert result.final_metrics.wirelength_mm == 0.0

    def test_two_tile_die(self):
        graph = TileGraph(Rect(0, 0, 2, 1), 2, 1, CapacityModel.uniform(3))
        graph.set_sites((0, 0), 1)
        graph.set_sites((1, 0), 1)
        netlist = Netlist(
            nets=[
                Net(
                    name="n",
                    source=Pin("s", Point(0.5, 0.5)),
                    sinks=[Pin("t", Point(1.5, 0.5))],
                )
            ]
        )
        result = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=1, stage4_iterations=1)
        ).run()
        assert result.failed_nets == []


class TestCapacityOne:
    def test_structural_overflow_reported_not_crashed(self):
        # Three nets must leave one tile with 2 edges of capacity 1.
        graph = _graph(6, 1, sites=2)
        netlist = Netlist(
            nets=[
                Net(
                    name=f"n{i}",
                    source=Pin(f"n{i}.s", Point(0.5, 0.5)),
                    sinks=[Pin(f"n{i}.t", Point(5.5, 0.5 + i))],
                )
                for i in range(3)
            ]
        )
        result = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=3, stage4_iterations=1)
        ).run()
        stats = wire_congestion_stats(graph)
        # 3 nets, 2 escape edges of capacity 1: at least one overflow unit
        # is unavoidable; the planner reports rather than hangs.
        assert stats.overflow >= 1
        assert len(result.routes) == 3

    def test_usage_bookkeeping_survives(self):
        graph = _graph(6, 1, sites=2)
        netlist = _line_nets(3, 6)
        result = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=3, stage4_iterations=1)
        ).run()
        h, v = graph.h_usage.copy(), graph.v_usage.copy()
        used = graph.used_sites.copy()
        graph.h_usage[:] = 0
        graph.v_usage[:] = 0
        graph.used_sites[:] = 0
        for tree in result.routes.values():
            tree.add_usage(graph)
        assert (graph.h_usage == h).all()
        assert (graph.v_usage == v).all()
        assert (graph.used_sites == used).all()


class TestAllPinsOneTile:
    def test_degenerate_netlist(self):
        graph = _graph(8, 4, sites=1)
        nets = [
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(3.2, 3.2)),
                sinks=[
                    Pin(f"n{i}.a", Point(3.7, 3.7)),
                    Pin(f"n{i}.b", Point(3.4, 3.6)),
                ],
            )
            for i in range(5)
        ]
        result = RabidPlanner(
            graph, Netlist(nets=nets), RabidConfig(length_limit=2, stage4_iterations=1)
        ).run()
        assert result.failed_nets == []
        assert result.final_metrics.wirelength_mm == 0.0
        assert wire_congestion_stats(graph).overflow == 0


class TestMostlyBlockedDie:
    def test_sites_only_in_one_corner(self):
        graph = _graph(12, 8, sites=0)
        for x in range(3):
            for y in range(3):
                graph.set_sites((x, y), 5)
        netlist = _line_nets(3, 12)
        result = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=4, stage4_iterations=2,
                                        window_margin=12)
        ).run()
        # Stage 4 pulls what routes it can toward the corner; whatever
        # still fails is reported, bookkeeping intact.
        stats = buffer_density_stats(graph)
        assert stats.overflow == 0
        for name, tree in result.routes.items():
            tree.validate()
