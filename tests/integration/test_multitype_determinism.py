"""multi_type determinism matrix.

Two pins, per the tentpole acceptance criteria:

* ``multi_type`` with the single-kind library reproduces the recorded
  ``dp`` buffering goldens (32x32 and 64x64) byte for byte at every
  worker count — the typed-buffer refactor is invisible until a real
  library is selected.
* ``multi_type`` with the 3-kind ``tech`` library is itself pinned by its
  own golden (kinded specs, signature, per-kind bookings) at every worker
  count and backend — kind assignment is deterministic and
  worker-count-independent too.
"""

import json
import os

import pytest

from repro.benchmarks.buffering_kernel import (
    buffers_as_json,
    make_buffering_scenario,
    run_buffering_kernel,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")

BACKENDS = ("pool", "threads")


def load_golden(name):
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as fh:
        return json.load(fh)


def run_golden(golden, workers, backend, solver="multi_type", library="single"):
    spec = golden["scenario"]
    instance = make_buffering_scenario(
        grid=spec["grid"],
        num_nets=spec["num_nets"],
        capacity=spec["capacity"],
        seed=spec["seed"],
        length_limit=spec["length_limit"],
        total_sites=spec["total_sites"],
        site_seed=spec["site_seed"],
    )
    result = run_buffering_kernel(
        instance, workers=workers, backend=backend,
        solver=solver, library=library,
    )
    return instance, result


class TestSingleKindMatchesDpGolden32:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_signature_byte_identical(self, workers):
        golden = load_golden("buffering_kernel_32x32_seed0.json")
        _, result = run_golden(golden, workers, "pool")
        assert result.signature == golden["signature"]
        assert result.buffers_inserted == golden["buffers_inserted"]
        assert result.num_fails == golden["num_fails"]

    def test_threads_backend_too(self):
        golden = load_golden("buffering_kernel_32x32_seed0.json")
        _, result = run_golden(golden, 2, "threads")
        assert result.signature == golden["signature"]


class TestSingleKindMatchesDpGolden64:
    def test_sequential(self):
        golden = load_golden("buffering_kernel_64x64_seed0.json")
        _, result = run_golden(golden, 1, "pool")
        assert result.signature == golden["signature"]
        assert result.buffers_inserted == golden["buffers_inserted"]
        assert result.num_fails == golden["num_fails"]

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", (2, 4))
    def test_parallel(self, workers):
        golden = load_golden("buffering_kernel_64x64_seed0.json")
        _, result = run_golden(golden, workers, "pool")
        assert result.signature == golden["signature"]


class TestTechLibraryGolden:
    GOLDEN = "buffering_multitype_tech_16x16_seed0.json"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", (1, 2))
    def test_matches_golden(self, workers, backend):
        golden = load_golden(self.GOLDEN)
        instance, result = run_golden(
            golden, workers, backend, library="tech"
        )
        assert result.signature == golden["signature"]
        assert result.buffers_inserted == golden["buffers_inserted"]
        assert result.num_fails == golden["num_fails"]
        assert sorted(result.assignment.failed_nets) == golden["failed_nets"]
        assert instance.graph.used_sites.tolist() == golden["used_sites"]

    def test_per_net_kinded_specs_match(self):
        """Not just the hash: a failure names the first differing net, and
        the golden demonstrably exercises non-default kinds."""
        golden = load_golden(self.GOLDEN)
        instance, _ = run_golden(golden, 1, "pool", library="tech")
        got = json.loads(json.dumps(buffers_as_json(instance.routes)))
        want = golden["buffers"]
        assert set(got) == set(want)
        for name in sorted(want):
            assert got[name] == want[name], f"net {name} buffered differently"
        kinded = sum(
            1 for specs in want.values() for s in specs if len(s) == 3
        )
        assert kinded > 0

    def test_kind_bookings_sum_to_kinded_buffers(self):
        golden = load_golden(self.GOLDEN)
        instance, _ = run_golden(golden, 1, "pool", library="tech")
        kinded = sum(
            1
            for specs in golden["buffers"].values()
            for s in specs
            if len(s) == 3
        )
        assert sum(instance.graph.kind_used.values()) == kinded
