"""Fleet determinism matrix: every worker count must reproduce the
single-process scheduler's baseline signatures byte for byte.

This is the acceptance criterion of the sharded fleet: shard workers
are *replays* of the sequential planner against shared-memory
baselines, not approximations of it. One seeded load trace — multiple
tenants, Poisson arrivals, a full/macro-move/net-churn mix — is driven
through the classic ``PlanningService`` and through fleets of
increasing width; the final signature map of every arm must be
identical and complete. The widest arm carries the ``slow`` marker.
"""

import asyncio

import pytest

from repro.service import (
    FleetOptions,
    FleetPlanningService,
    LoadgenOptions,
    PlanningService,
    SchedulerOptions,
    make_load_trace,
    run_load,
)

TRACE_OPTIONS = LoadgenOptions(
    tenants=3,
    jobs=18,
    rate=150.0,
    seed=11,
    grid=8,
    num_nets=30,
    total_sites=160,
)


def drive(service_factory, trace):
    async def body():
        service = service_factory()
        await service.start()
        try:
            return await run_load(service, trace)
        finally:
            await service.stop()

    return asyncio.run(body())


def classic_signatures(trace):
    report = drive(
        lambda: PlanningService(
            options=SchedulerOptions(workers=1, max_queue=64)
        ),
        trace,
    )
    assert report.jobs_failed == 0
    assert len(report.signatures) == len(trace.baselines)
    return report.signatures


def fleet_signatures(trace, workers):
    report = drive(
        lambda: FleetPlanningService(
            options=FleetOptions(workers=workers, job_timeout=60.0)
        ),
        trace,
    )
    assert report.jobs_failed == 0
    assert len(report.signatures) == len(trace.baselines)
    return report.signatures


class TestFleetMatchesSingleProcess:
    def test_two_workers(self):
        trace = make_load_trace(TRACE_OPTIONS)
        assert fleet_signatures(trace, 2) == classic_signatures(trace)

    @pytest.mark.slow
    def test_four_workers(self):
        trace = make_load_trace(TRACE_OPTIONS)
        assert fleet_signatures(trace, 4) == classic_signatures(trace)

    @pytest.mark.slow
    def test_preemption_does_not_change_signatures(self):
        """An aggressive preemption config must stay signature-neutral.

        ``preempt_after=0`` lets any waiting cheap job abort a running
        full plan immediately — the maximally disruptive setting. The
        committed signatures still have to match the classic scheduler:
        preempted jobs are requeued and replayed, never partially
        committed.
        """
        trace = make_load_trace(
            LoadgenOptions(
                tenants=3,
                jobs=18,
                rate=150.0,
                seed=11,
                # Weight full-mode jobs heavily so preemption targets
                # actually exist.
                mix=(0.5, 0.3, 0.2),
                grid=8,
                num_nets=30,
                total_sites=160,
            )
        )
        reference = classic_signatures(trace)
        report = drive(
            lambda: FleetPlanningService(
                options=FleetOptions(
                    workers=2,
                    job_timeout=60.0,
                    preempt_after=0.0,
                    max_preemptions=2,
                )
            ),
            trace,
        )
        assert report.jobs_failed == 0
        assert report.signatures == reference
