"""The paper's Section I-B data-path scenario, as a regression test.

Buffer sites inside a dense bus region keep bus wiring straighter and
faster than sites outside it — the motivating claim for the buffer-site
methodology in semi-custom designs.
"""

import pytest

from repro.core import RabidConfig, RabidPlanner
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import CapacityModel, TileGraph

STRIP_ROWS = range(5, 11)
SIZE = 16
BITS = 8


def _instance(sites_inside):
    die = Rect(0, 0, float(SIZE), float(SIZE))
    graph = TileGraph(die, SIZE, SIZE, CapacityModel.uniform(5))
    for tile in graph.tiles():
        if tile[1] in STRIP_ROWS and not sites_inside:
            continue
        graph.set_sites(tile, 2)
    nets = []
    for bit in range(BITS):
        y = 5.3 + bit * 0.7
        nets.append(
            Net(
                name=f"bus{bit}",
                source=Pin(f"b{bit}.s", Point(0.5, y)),
                sinks=[Pin(f"b{bit}.t", Point(SIZE - 0.5, y))],
            )
        )
    return graph, Netlist(nets=nets)


def _measure(sites_inside):
    graph, netlist = _instance(sites_inside)
    result = RabidPlanner(
        graph,
        netlist,
        RabidConfig(length_limit=4, window_margin=10, stage4_iterations=2),
    ).run()
    detour = 0
    for net in netlist:
        tree = result.routes[net.name]
        src = graph.tile_of(net.source.location)
        dst = graph.tile_of(net.sinks[0].location)
        detour += tree.wirelength_tiles() - (
            abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        )
    return detour, result.final_metrics


class TestDatapathScenario:
    @pytest.fixture(scope="class")
    def runs(self):
        return {
            "inside": _measure(sites_inside=True),
            "outside": _measure(sites_inside=False),
        }

    def test_inside_sites_keep_bus_straighter(self, runs):
        detour_in, _ = runs["inside"]
        detour_out, _ = runs["outside"]
        assert detour_in < detour_out

    def test_inside_sites_meet_length_rule(self, runs):
        _, metrics_in = runs["inside"]
        assert metrics_in.num_fails == 0

    def test_inside_sites_faster_on_average(self, runs):
        _, metrics_in = runs["inside"]
        _, metrics_out = runs["outside"]
        assert metrics_in.avg_delay_ps <= metrics_out.avg_delay_ps

    def test_both_respect_capacity(self, runs):
        for detour, metrics in runs.values():
            assert metrics.overflows == 0
            assert metrics.buffer_density_max <= 1.0
