"""Golden pin: Stage-3 buffering output is byte-identical to the capture
taken before the unified solver engine landed — sequentially and with
parallel tile-disjoint batches."""

import json
import os

import pytest

from repro.benchmarks.buffering_kernel import (
    buffers_as_json,
    make_buffering_scenario,
    run_buffering_kernel,
)

GOLDEN = os.path.join(
    os.path.dirname(__file__), "..", "golden", "buffering_kernel_32x32_seed0.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.slow
class TestGoldenBuffering:
    def test_sequential_signature(self, golden):
        instance = make_buffering_scenario()
        result = run_buffering_kernel(instance)
        assert result.signature == golden["signature"]
        assert result.buffers_inserted == golden["buffers_inserted"]
        assert result.num_fails == golden["num_fails"]
        assert result.dp_infeasible == golden["dp_infeasible"]
        assert buffers_as_json(instance.routes) == golden["buffers"]
        assert instance.graph.used_sites.tolist() == golden["used_sites"]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_golden(self, golden, workers):
        instance = make_buffering_scenario()
        result = run_buffering_kernel(instance, workers=workers)
        assert result.signature == golden["signature"]
