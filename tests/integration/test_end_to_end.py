"""End-to-end integration: generated benchmark -> RABID -> invariants."""

import pytest

from repro import (
    TECH_180NM,
    RabidConfig,
    RabidPlanner,
    buffer_density_stats,
    load_benchmark,
    wire_congestion_stats,
)
from repro.core.length_rule import net_meets_length_rule
from repro.timing import delay_summary

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def apte_run():
    bench = load_benchmark("apte", seed=0)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        stage4_iterations=1,
        window_margin=10,
    )
    planner = RabidPlanner(bench.graph, bench.netlist, config)
    result = planner.run()
    return bench, config, result


class TestApteEndToEnd:
    def test_all_nets_routed_and_valid(self, apte_run):
        bench, _, result = apte_run
        assert len(result.routes) == 77
        for net in bench.netlist:
            tree = result.routes[net.name]
            tree.validate()
            assert tree.source == bench.graph.tile_of(net.source.location)

    def test_wire_constraint_satisfied(self, apte_run):
        bench, _, _ = apte_run
        assert wire_congestion_stats(bench.graph).overflow == 0

    def test_buffer_constraint_satisfied(self, apte_run):
        bench, _, _ = apte_run
        stats = buffer_density_stats(bench.graph)
        assert stats.overflow == 0
        assert stats.maximum <= 1.0

    def test_blocked_region_untouched(self, apte_run):
        bench, _, _ = apte_run
        for tile in bench.blocked_tiles:
            assert bench.graph.used_site_count(tile) == 0

    def test_fails_only_where_infeasible(self, apte_run):
        bench, config, result = apte_run
        for name, tree in result.routes.items():
            meets = net_meets_length_rule(tree, config.length_limit)
            assert meets == (name not in result.failed_nets), name

    def test_fail_rate_reasonable(self, apte_run):
        _, _, result = apte_run
        # Failures come from the blocked region; the bulk of nets succeed.
        assert len(result.failed_nets) < 0.25 * len(result.routes)

    def test_buffered_delays_sane(self, apte_run):
        bench, _, result = apte_run
        worst, avg, _ = delay_summary(result.routes, bench.graph, TECH_180NM)
        # Buffered global nets in 0.18um land in the 0.1-10ns decade.
        assert 10e-12 < avg < 10e-9
        assert worst < 30e-9

    def test_sites_used_within_budget(self, apte_run):
        bench, _, _ = apte_run
        assert 0 < bench.graph.total_used_sites <= bench.graph.total_sites

    def test_stage_metrics_monotonicity(self, apte_run):
        _, _, result = apte_run
        s1, s2, s3, s4 = result.stage_metrics
        assert s1.overflows > s2.overflows == 0
        assert s3.num_fails < s1.num_fails
        assert s4.num_fails <= s3.num_fails
        assert s3.avg_delay_ps < s2.avg_delay_ps


class TestReproducibility:
    def test_same_seed_same_result(self):
        finals = []
        for _ in range(2):
            bench = load_benchmark("apte", seed=7)
            planner = RabidPlanner(
                bench.graph,
                bench.netlist,
                RabidConfig(length_limit=6, stage4_iterations=1),
            )
            result = planner.run()
            m = result.final_metrics
            finals.append(
                (m.num_buffers, m.num_fails, m.wirelength_mm, m.overflows)
            )
        assert finals[0] == finals[1]
