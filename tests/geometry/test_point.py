"""Point and Manhattan-metric behaviour."""

import pytest

from repro.geometry import Point, manhattan


class TestPoint:
    def test_iter_unpacks(self):
        x, y = Point(1.5, 2.5)
        assert (x, y) == (1.5, 2.5)

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    def test_hashable_and_equal(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_manhattan_to(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7

    def test_manhattan_symmetric(self):
        a, b = Point(-2, 5), Point(4, -1)
        assert manhattan(a, b) == manhattan(b, a) == 12


class TestMedian:
    def test_median_of_collinear_points(self):
        m = Point(0, 0).median_with(Point(5, 0), Point(10, 0))
        assert m == Point(5, 0)

    def test_median_is_componentwise(self):
        m = Point(0, 0).median_with(Point(4, 6), Point(2, 8))
        assert m == Point(2, 6)

    def test_median_on_shortest_paths(self):
        # The Manhattan median lies on a shortest path between every pair.
        u, a, b = Point(0, 0), Point(4, 6), Point(2, 8)
        m = u.median_with(a, b)
        for p, q in [(u, a), (u, b), (a, b)]:
            assert p.manhattan_to(m) + m.manhattan_to(q) == pytest.approx(
                p.manhattan_to(q)
            )

    def test_median_with_self(self):
        assert Point(1, 1).median_with(Point(1, 1), Point(9, 9)) == Point(1, 1)
