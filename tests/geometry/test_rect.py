"""Rect behaviour and validation."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point, Rect, bounding_box


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert r.center == Point(2.5, 5)

    def test_degenerate_raises(self):
        with pytest.raises(ConfigurationError):
            Rect(2, 0, 1, 1)
        with pytest.raises(ConfigurationError):
            Rect(0, 2, 1, 1)

    def test_zero_area_allowed(self):
        assert Rect(1, 1, 1, 1).area == 0

    def test_contains_boundary_inclusive(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert not r.contains(Point(2.001, 1))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 9))

    def test_overlaps_interior_only(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 3, 3))
        assert not a.overlaps(Rect(2, 0, 4, 2))  # shared edge
        assert not a.overlaps(Rect(3, 3, 4, 4))

    def test_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersection(b) == Rect(2, 2, 4, 4)
        assert a.intersection(Rect(4, 0, 6, 4)) is None

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)


class TestBoundingBox:
    def test_of_points(self):
        box = bounding_box([Point(1, 5), Point(3, 2), Point(2, 9)])
        assert box == Rect(1, 2, 3, 9)

    def test_single_point(self):
        assert bounding_box([Point(4, 4)]) == Rect(4, 4, 4, 4)

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            bounding_box([])
