"""Union-find invariants."""

from repro.utils import UnionFind


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        assert uf.find("a") == "a"
        assert uf.set_size("a") == 1
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind()
        assert uf.union("a", "b")
        assert uf.connected("a", "b")
        assert uf.set_size("a") == 2

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert not uf.union(2, 1)
        assert uf.set_size(1) == 2

    def test_transitive(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.union(2, 3)
        assert uf.connected(1, 4)
        assert uf.set_size(4) == 4

    def test_many_chains_compress(self):
        uf = UnionFind()
        for i in range(100):
            uf.union(i, i + 1)
        assert uf.connected(0, 100)
        assert uf.set_size(50) == 101

    def test_tuple_items(self):
        uf = UnionFind()
        uf.union((0, 0), (0, 1))
        assert uf.connected((0, 1), (0, 0))
