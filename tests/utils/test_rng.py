"""Deterministic RNG plumbing."""

import numpy as np

from repro.utils.rng import derive_rng, make_rng


class TestMakeRng:
    def test_int_seed_reproducible(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 10**9)
        b = make_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_children_are_independent_streams(self):
        parent = make_rng(0)
        a = derive_rng(parent, 1)
        b = derive_rng(parent, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)
