"""Rip-up-and-reroute driver (Stage 2)."""

import pytest

from repro.routing.embed import l_shaped_between_tiles
from repro.routing.ripup import RipupOptions, reroute_order_by_delay, ripup_and_reroute
from repro.routing.tree import RouteTree
from repro.tilegraph import CapacityModel, TileGraph, wire_congestion_stats
from repro.geometry import Rect


def _l_route(source, sink, name):
    path = l_shaped_between_tiles(source, sink)
    return RouteTree.from_paths(source, [path], [sink], net_name=name)


class TestOrdering:
    def test_ascending(self):
        order = reroute_order_by_delay({"a": 3.0, "b": 1.0, "c": 2.0})
        assert order == ["b", "c", "a"]

    def test_descending(self):
        order = reroute_order_by_delay({"a": 3.0, "b": 1.0}, ascending=False)
        assert order == ["a", "b"]

    def test_ties_break_by_name(self):
        assert reroute_order_by_delay({"b": 1.0, "a": 1.0}) == ["a", "b"]


class TestRipup:
    def _congested_setup(self):
        # Capacity 2; five row-to-row nets all initially detoured through
        # row 0, overloading it. Straight rerouting fixes the overflow.
        g = TileGraph(Rect(0, 0, 8, 8), 8, 8, CapacityModel.uniform(2))
        routes = {}
        for i in range(5):
            name = f"n{i}"
            source, sink = (0, i), (7, i)
            path = (
                [(0, y) for y in range(i, -1, -1)]
                + [(x, 0) for x in range(1, 8)]
                + [(7, y) for y in range(1, i + 1)]
            )
            routes[name] = RouteTree.from_paths(source, [path], [sink], net_name=name)
            routes[name].add_usage(g)
        return g, routes

    def test_resolves_overflow(self):
        g, routes = self._congested_setup()
        assert wire_congestion_stats(g).overflow > 0
        ripup_and_reroute(g, routes, sorted(routes), RipupOptions(max_iterations=3))
        assert wire_congestion_stats(g).overflow == 0

    def test_usage_consistent_after(self):
        g, routes = self._congested_setup()
        ripup_and_reroute(g, routes, sorted(routes))
        # Recompute usage from scratch and compare.
        h = g.h_usage.copy()
        v = g.v_usage.copy()
        g.h_usage[:] = 0
        g.v_usage[:] = 0
        for t in routes.values():
            t.add_usage(g)
        assert (g.h_usage == h).all()
        assert (g.v_usage == v).all()

    def test_stops_early_when_clean(self):
        g = TileGraph(Rect(0, 0, 8, 8), 8, 8, CapacityModel.uniform(10))
        routes = {"n0": _l_route((0, 0), (3, 3), "n0")}
        routes["n0"].add_usage(g)
        passes = ripup_and_reroute(g, routes, ["n0"], RipupOptions(max_iterations=3))
        assert passes == 1

    def test_pass_callback(self):
        g, routes = self._congested_setup()
        seen = []
        ripup_and_reroute(
            g, routes, sorted(routes), RipupOptions(max_iterations=2),
            on_pass_end=seen.append,
        )
        assert seen and seen[0] == 0

    def test_sinks_preserved(self):
        g, routes = self._congested_setup()
        sinks_before = {n: t.sink_tiles for n, t in routes.items()}
        ripup_and_reroute(g, routes, sorted(routes))
        for name, tree in routes.items():
            assert tree.sink_tiles == sinks_before[name]
            tree.validate()
