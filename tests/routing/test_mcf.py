"""Approximate multicommodity-flow router."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.routing.mcf import McfOptions, McfRouter, mcf_initial_routes
from repro.tilegraph import CapacityModel, TileGraph, wire_congestion_stats


def _netlist(pairs):
    nets = []
    for i, (src, dst) in enumerate(pairs):
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(*src)),
                sinks=[Pin(f"n{i}.t", Point(*dst))],
            )
        )
    return Netlist(nets=nets)


def _graph(capacity=2, size=8):
    return TileGraph(
        Rect(0, 0, float(size), float(size)), size, size,
        CapacityModel.uniform(capacity),
    )


class TestOptions:
    def test_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            McfOptions(iterations=0)

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            McfOptions(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            McfOptions(epsilon=1.5)


class TestRouting:
    def test_all_nets_routed(self):
        graph = _graph(capacity=10)
        netlist = _netlist([((0.5, 0.5), (7.5, 7.5)), ((0.5, 7.5), (7.5, 0.5))])
        routes = mcf_initial_routes(graph, netlist)
        assert set(routes) == {"n0", "n1"}
        for net in netlist:
            tree = routes[net.name]
            tree.validate()
            assert tree.source == graph.tile_of(net.source.location)

    def test_usage_matches_choices(self):
        graph = _graph(capacity=10)
        netlist = _netlist([((0.5, 0.5), (7.5, 0.5)), ((0.5, 2.5), (7.5, 2.5))])
        routes = mcf_initial_routes(graph, netlist)
        h, v = graph.h_usage.copy(), graph.v_usage.copy()
        graph.h_usage[:] = 0
        graph.v_usage[:] = 0
        for tree in routes.values():
            for u, w in tree.edges():
                graph.add_wire(u, w)
        assert (graph.h_usage == h).all()
        assert (graph.v_usage == v).all()

    def test_spreads_parallel_demand(self):
        # Five nets across the same rows, capacity 2: fractional rounds
        # must diversify routes enough for rounding to avoid overflow.
        graph = _graph(capacity=2)
        pairs = [((0.5, 0.5 + i * 0.0), (7.5, 0.5)) for i in range(4)]
        # All identical endpoints is the worst case: spread via detours.
        netlist = _netlist(pairs)
        routes = McfRouter(graph, McfOptions(iterations=8)).route_all(netlist)
        stats = wire_congestion_stats(graph)
        # Structural floor: 4 nets out of tile (0,0) over 2 edges of cap 2
        # is exactly feasible; the router must find it.
        assert stats.overflow == 0

    def test_multi_sink_nets(self):
        graph = _graph(capacity=10)
        netlist = Netlist(
            nets=[
                Net(
                    name="m",
                    source=Pin("m.s", Point(0.5, 0.5)),
                    sinks=[
                        Pin("m.a", Point(7.5, 0.5)),
                        Pin("m.b", Point(0.5, 7.5)),
                    ],
                )
            ]
        )
        routes = mcf_initial_routes(graph, netlist)
        assert set(routes["m"].sink_tiles) == {(7, 0), (0, 7)}

    def test_deterministic(self):
        results = []
        for _ in range(2):
            graph = _graph(capacity=3)
            netlist = _netlist(
                [((0.5, 0.5), (7.5, 6.5)), ((0.5, 6.5), (7.5, 0.5))]
            )
            routes = mcf_initial_routes(graph, netlist)
            results.append(
                {n: sorted(t.edges()) for n, t in routes.items()}
            )
        assert results[0] == results[1]


class TestPlannerIntegration:
    def test_rabid_with_mcf_router(self):
        from repro.core import RabidConfig, RabidPlanner

        graph = _graph(capacity=6, size=12)
        for tile in graph.tiles():
            graph.set_sites(tile, 2)
        netlist = _netlist(
            [((0.5, 0.5 + i), (11.5, 0.5 + i)) for i in range(5)]
        )
        config = RabidConfig(length_limit=4, router="mcf", stage4_iterations=1)
        result = RabidPlanner(graph, netlist, config).run()
        assert result.final_metrics.overflows == 0
        assert result.final_metrics.num_buffers > 0

    def test_unknown_router_rejected(self):
        from repro.core import RabidConfig

        with pytest.raises(ConfigurationError):
            RabidConfig(router="quantum")
