"""Approximate multicommodity-flow router."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.routing.mcf import McfOptions, McfRouter, mcf_initial_routes
from repro.tilegraph import CapacityModel, TileGraph, wire_congestion_stats


def _netlist(pairs):
    nets = []
    for i, (src, dst) in enumerate(pairs):
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(*src)),
                sinks=[Pin(f"n{i}.t", Point(*dst))],
            )
        )
    return Netlist(nets=nets)


def _graph(capacity=2, size=8):
    return TileGraph(
        Rect(0, 0, float(size), float(size)), size, size,
        CapacityModel.uniform(capacity),
    )


class TestOptions:
    def test_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            McfOptions(iterations=0)

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            McfOptions(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            McfOptions(epsilon=1.5)


class TestRouting:
    def test_all_nets_routed(self):
        graph = _graph(capacity=10)
        netlist = _netlist([((0.5, 0.5), (7.5, 7.5)), ((0.5, 7.5), (7.5, 0.5))])
        routes = mcf_initial_routes(graph, netlist)
        assert set(routes) == {"n0", "n1"}
        for net in netlist:
            tree = routes[net.name]
            tree.validate()
            assert tree.source == graph.tile_of(net.source.location)

    def test_usage_matches_choices(self):
        graph = _graph(capacity=10)
        netlist = _netlist([((0.5, 0.5), (7.5, 0.5)), ((0.5, 2.5), (7.5, 2.5))])
        routes = mcf_initial_routes(graph, netlist)
        h, v = graph.h_usage.copy(), graph.v_usage.copy()
        graph.h_usage[:] = 0
        graph.v_usage[:] = 0
        for tree in routes.values():
            for u, w in tree.edges():
                graph.add_wire(u, w)
        assert (graph.h_usage == h).all()
        assert (graph.v_usage == v).all()

    def test_spreads_parallel_demand(self):
        # Five nets across the same rows, capacity 2: fractional rounds
        # must diversify routes enough for rounding to avoid overflow.
        graph = _graph(capacity=2)
        pairs = [((0.5, 0.5 + i * 0.0), (7.5, 0.5)) for i in range(4)]
        # All identical endpoints is the worst case: spread via detours.
        netlist = _netlist(pairs)
        routes = McfRouter(graph, McfOptions(iterations=8)).route_all(netlist)
        stats = wire_congestion_stats(graph)
        # Structural floor: 4 nets out of tile (0,0) over 2 edges of cap 2
        # is exactly feasible; the router must find it.
        assert stats.overflow == 0

    def test_multi_sink_nets(self):
        graph = _graph(capacity=10)
        netlist = Netlist(
            nets=[
                Net(
                    name="m",
                    source=Pin("m.s", Point(0.5, 0.5)),
                    sinks=[
                        Pin("m.a", Point(7.5, 0.5)),
                        Pin("m.b", Point(0.5, 7.5)),
                    ],
                )
            ]
        )
        routes = mcf_initial_routes(graph, netlist)
        assert set(routes["m"].sink_tiles) == {(7, 0), (0, 7)}

    def test_deterministic(self):
        results = []
        for _ in range(2):
            graph = _graph(capacity=3)
            netlist = _netlist(
                [((0.5, 0.5), (7.5, 6.5)), ((0.5, 6.5), (7.5, 0.5))]
            )
            routes = mcf_initial_routes(graph, netlist)
            results.append(
                {n: sorted(t.edges()) for n, t in routes.items()}
            )
        assert results[0] == results[1]


class TestResultObject:
    def test_route_all_result_surfaces_duals(self):
        graph = _graph(capacity=2)
        netlist = _netlist([((0.5, 0.5), (7.5, 0.5))])
        router = McfRouter(graph, McfOptions(iterations=1, epsilon=0.5))
        result = router.route_all_result(netlist)
        assert set(result.routes) == {"n0"}
        assert len(result.edge_lengths) == len(graph.edge_capacity)
        # Used edges were bumped once: 0.5 * (1 + 0.5/2) = 0.625;
        # untouched edges still carry the initial 1/W = 0.5.
        used = {
            graph.edge_id(u, v) for u, v in result.routes["n0"].edges()
        }
        for eid in used:
            assert result.edge_lengths[eid] == pytest.approx(0.625)
        unused = next(
            eid for eid in range(len(graph.edge_capacity))
            if eid not in used
        )
        assert result.edge_lengths[unused] == pytest.approx(0.5)

    def test_congestion_duals_are_a_distribution(self):
        graph = _graph(capacity=2)
        netlist = _netlist([((0.5, 0.5), (7.5, 6.5))])
        result = McfRouter(graph).route_all_result(netlist)
        assert sum(result.congestion_duals) == pytest.approx(1.0)
        assert all(d >= 0 for d in result.congestion_duals)
        top = result.top_congested_edges(5)
        assert len(top) == 5
        assert top == sorted(top, key=lambda t: (-t[1], t[0]))

    def test_route_all_matches_result_routes(self):
        netlist = _netlist([((0.5, 0.5), (7.5, 6.5)), ((0.5, 6.5), (7.5, 0.5))])
        routes = McfRouter(_graph(capacity=3)).route_all(netlist)
        result = McfRouter(_graph(capacity=3)).route_all_result(netlist)
        assert {n: sorted(t.edges()) for n, t in routes.items()} == {
            n: sorted(t.edges()) for n, t in result.routes.items()
        }


class TestRounding:
    def _tree(self, tiles, name="t"):
        from repro.routing.tree import RouteTree

        return RouteTree.from_paths(
            tiles[0], [tiles], [tiles[-1]], net_name=name
        )

    def test_most_constrained_net_picks_first(self):
        # "long" has the only candidate using the contested middle edge;
        # "short" could take it too but also has a detour. Rounding must
        # let the bigger tree commit first, pushing "short" to the
        # detour — picking in the other order overflows the middle edge.
        graph = TileGraph(
            Rect(0, 0, 4.0, 2.0), 4, 2, CapacityModel.uniform(1)
        )
        router = McfRouter(graph)
        straight = [(0, 0), (1, 0), (2, 0), (3, 0)]
        middle = [(1, 0), (2, 0)]
        detour = [(1, 0), (1, 1), (2, 1), (2, 0)]
        candidates = {
            "long": [self._tree(straight, "long")],
            "short": [
                self._tree(middle, "short"),
                self._tree(detour, "short"),
            ],
        }
        netlist = Netlist(
            nets=[
                Net(
                    name="long",
                    source=Pin("long.s", Point(0.5, 0.5)),
                    sinks=[Pin("long.t", Point(3.5, 0.5))],
                ),
                Net(
                    name="short",
                    source=Pin("short.s", Point(1.5, 0.5)),
                    sinks=[Pin("short.t", Point(2.5, 0.5))],
                ),
            ]
        )
        chosen = router._round(netlist, candidates)
        assert sorted(chosen["short"].edges()) == sorted(
            self._tree(detour).edges()
        )
        stats = wire_congestion_stats(graph)
        assert stats.overflow == 0

    def test_tie_break_is_seeded_and_stable(self):
        # Two symmetric candidates with identical congestion cost: the
        # pick must be reproducible for a fixed seed.
        def run(seed):
            graph = TileGraph(
                Rect(0, 0, 3.0, 2.0), 3, 2, CapacityModel.uniform(4)
            )
            router = McfRouter(graph, McfOptions(seed=seed))
            low = [(0, 0), (1, 0), (2, 0), (2, 1)]
            high = [(0, 0), (0, 1), (1, 1), (2, 1)]
            candidates = {"n": [self._tree(low, "n"), self._tree(high, "n")]}
            netlist = Netlist(
                nets=[
                    Net(
                        name="n",
                        source=Pin("n.s", Point(0.5, 0.5)),
                        sinks=[Pin("n.t", Point(2.5, 1.5))],
                    )
                ]
            )
            return sorted(router._round(netlist, candidates)["n"].edges())

        assert run(0) == run(0)
        assert run(123) == run(123)

    def test_known_fractional_optimum_rounds_cleanly(self):
        # Hand-checkable instance: two (0,0)->(1,1) nets on a 2x2 grid
        # of unit capacity. The fractional optimum splits each net over
        # the two disjoint L-paths (congestion 1); rounding must realize
        # it exactly by giving each net its own path — zero overflow.
        graph = TileGraph(
            Rect(0, 0, 2.0, 2.0), 2, 2, CapacityModel.uniform(1)
        )
        netlist = _netlist([((0.5, 0.5), (1.5, 1.5)), ((0.5, 0.5), (1.5, 1.5))])
        routes = McfRouter(graph, McfOptions(iterations=6)).route_all(netlist)
        stats = wire_congestion_stats(graph)
        assert stats.overflow == 0
        assert sorted(routes["n0"].edges()) != sorted(routes["n1"].edges())


class TestPlannerIntegration:
    def test_rabid_with_mcf_router(self):
        from repro.core import RabidConfig, RabidPlanner

        graph = _graph(capacity=6, size=12)
        for tile in graph.tiles():
            graph.set_sites(tile, 2)
        netlist = _netlist(
            [((0.5, 0.5 + i), (11.5, 0.5 + i)) for i in range(5)]
        )
        config = RabidConfig(length_limit=4, router="mcf", stage4_iterations=1)
        result = RabidPlanner(graph, netlist, config).run()
        assert result.final_metrics.overflows == 0
        assert result.final_metrics.num_buffers > 0

    def test_unknown_router_rejected(self):
        from repro.core import RabidConfig

        with pytest.raises(ConfigurationError):
            RabidConfig(router="quantum")
