"""Equal-length congestion cleanup (monotone staircase rerouting)."""

import pytest

from repro.routing.embed import l_shaped_between_tiles
from repro.routing.monotone import best_monotone_path, is_monotone, reduce_congestion
from repro.routing.tree import BufferSpec, RouteTree
from repro.tilegraph import wire_congestion_stats


def _l_route(source, sink, name="n"):
    path = l_shaped_between_tiles(source, sink)
    return RouteTree.from_paths(source, [path], [sink], net_name=name)


class TestIsMonotone:
    def test_l_shape(self):
        assert is_monotone([(0, 0), (1, 0), (2, 0), (2, 1)])

    def test_staircase(self):
        assert is_monotone([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)])

    def test_backtrack_x(self):
        assert not is_monotone([(0, 0), (1, 0), (0, 0)])

    def test_detour(self):
        assert not is_monotone([(0, 0), (0, 1), (1, 1), (1, 0), (2, 0)])

    def test_straight(self):
        assert is_monotone([(0, 0), (0, 1), (0, 2)])


class TestBestMonotonePath:
    def test_length_is_manhattan(self, graph10):
        path = best_monotone_path(graph10, (1, 1), (5, 4))
        assert path is not None
        assert len(path) - 1 == 7
        assert is_monotone(path)
        assert path[0] == (1, 1) and path[-1] == (5, 4)

    def test_negative_direction(self, graph10):
        path = best_monotone_path(graph10, (5, 4), (1, 1))
        assert path is not None
        assert len(path) - 1 == 7

    def test_avoids_congested_corner(self, graph10):
        # Make the bottom L-corner expensive; the staircase should lift.
        for x in range(0, 5):
            graph10.add_wire((x, 0), (x + 1, 0), 9)
        path = best_monotone_path(graph10, (0, 0), (5, 3))
        assert path is not None
        # The path must leave row 0 early rather than riding it.
        row0_steps = sum(1 for a, b in zip(path, path[1:]) if a[1] == b[1] == 0)
        assert row0_steps < 5

    def test_forbidden_blocks(self, graph10):
        forbidden = {(1, 0), (0, 1)}
        path = best_monotone_path(graph10, (0, 0), (2, 2), forbidden=forbidden)
        assert path is None  # both first steps blocked

    def test_same_tile(self, graph10):
        path = best_monotone_path(graph10, (3, 3), (3, 3))
        assert path == [(3, 3)]


class TestReduceCongestion:
    def test_moves_wires_off_hot_row(self, graph10):
        # Three L-routes hug row 0; capacity 10, plus artificial load.
        routes = {}
        for i in range(3):
            routes[f"n{i}"] = _l_route((0, 0 + i), (8, 5 + i), f"n{i}")
            routes[f"n{i}"].add_usage(graph10)
        for x in range(8):
            graph10.add_wire((x, 0), (x + 1, 0), 9)
        before = wire_congestion_stats(graph10)
        improved = reduce_congestion(graph10, routes)
        after = wire_congestion_stats(graph10)
        assert improved > 0
        assert after.maximum <= before.maximum
        for tree in routes.values():
            tree.validate()

    def test_wirelength_preserved(self, graph10):
        routes = {"a": _l_route((0, 0), (7, 6), "a")}
        routes["a"].add_usage(graph10)
        for x in range(7):
            graph10.add_wire((x, 0), (x + 1, 0), 8)
        before = routes["a"].wirelength_tiles()
        reduce_congestion(graph10, routes)
        assert routes["a"].wirelength_tiles() == before

    def test_usage_consistent(self, graph10):
        routes = {"a": _l_route((0, 0), (6, 6), "a")}
        routes["a"].add_usage(graph10)
        for x in range(6):
            graph10.add_wire((x, 0), (x + 1, 0), 8)
        reduce_congestion(graph10, routes)
        # Remove the artificial load and the net; nothing may remain.
        for x in range(6):
            graph10.add_wire((x, 0), (x + 1, 0), -8)
        routes["a"].remove_usage(graph10)
        assert graph10.h_usage.sum() == 0
        assert graph10.v_usage.sum() == 0

    def test_buffers_preserved_in_count(self, graph10_sites):
        tree = _l_route((0, 0), (6, 6), "a")
        mid = tree.two_paths()[0][3]
        tree.apply_buffers([BufferSpec(mid, None)])
        tree.add_usage(graph10_sites)
        for x in range(6):
            graph10_sites.add_wire((x, 0), (x + 1, 0), 9)
        reduce_congestion(graph10_sites, {"a": tree})
        assert tree.buffer_count() == 1
        # Graph site accounting still matches the tree.
        assert graph10_sites.total_used_sites == 1

    def test_noop_when_uncongested(self, graph10):
        routes = {"a": _l_route((0, 0), (4, 4), "a")}
        routes["a"].add_usage(graph10)
        assert reduce_congestion(graph10, routes) == 0
