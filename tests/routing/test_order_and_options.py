"""Stage-2 ordering tie-breaks and RipupOptions validation."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.ripup import RipupOptions, reroute_order_by_delay


class TestRerouteOrder:
    def test_ascending_by_delay(self):
        delays = {"a": 3.0, "b": 1.0, "c": 2.0}
        assert reroute_order_by_delay(delays) == ["b", "c", "a"]

    def test_descending(self):
        delays = {"a": 3.0, "b": 1.0, "c": 2.0}
        assert reroute_order_by_delay(delays, ascending=False) == ["a", "c", "b"]

    def test_equal_delays_break_ties_by_name(self):
        delays = {"z": 1.0, "a": 1.0, "m": 1.0}
        assert reroute_order_by_delay(delays) == ["a", "m", "z"]

    def test_descending_ties_reverse_names(self):
        delays = {"z": 1.0, "a": 1.0, "m": 1.0}
        assert reroute_order_by_delay(delays, ascending=False) == ["z", "m", "a"]

    def test_order_is_independent_of_dict_insertion(self):
        fwd = {"a": 2.0, "b": 1.0, "c": 2.0}
        rev = dict(reversed(list(fwd.items())))
        assert reroute_order_by_delay(fwd) == reroute_order_by_delay(rev)

    def test_empty(self):
        assert reroute_order_by_delay({}) == []


class TestRipupOptionsValidation:
    def test_defaults_are_valid(self):
        opts = RipupOptions()
        assert opts.max_iterations == 3

    def test_zero_iterations_allowed(self):
        assert RipupOptions(max_iterations=0).max_iterations == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": -1},
            {"radius_weight": -0.1},
            {"window_margin": -2},
        ],
    )
    def test_negative_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RipupOptions(**kwargs)
