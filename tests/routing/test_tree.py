"""RouteTree topology, buffers, usage, and two-path surgery."""

import pytest

from repro.errors import RoutingError
from repro.routing.tree import BufferSpec, RouteTree


def path(*tiles):
    return list(tiles)


class TestConstruction:
    def test_from_parent_map_path(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0)])
        assert t.source == (0, 0)
        assert t.sink_tiles == [(2, 0)]
        assert t.num_edges() == 2
        t.validate()

    def test_from_parent_map_prunes_stubs(self):
        parent = {(1, 0): (0, 0), (2, 0): (1, 0), (1, 1): (1, 0)}
        t = RouteTree.from_parent_map((0, 0), parent, [(2, 0)])
        assert (1, 1) not in t  # dangling branch pruned
        t.validate()

    def test_from_parent_map_disconnected_sink(self):
        with pytest.raises(RoutingError):
            RouteTree.from_parent_map((0, 0), {}, [(3, 3)])

    def test_from_paths_merges(self):
        paths = [
            path((0, 0), (1, 0), (2, 0)),
            path((0, 0), (1, 0), (1, 1)),
        ]
        t = RouteTree.from_paths((0, 0), paths, [(2, 0), (1, 1)])
        assert len(t.nodes) == 4
        t.validate()

    def test_from_paths_handles_cycles(self):
        # Two paths forming a loop; BFS extracts a tree.
        paths = [
            path((0, 0), (1, 0), (1, 1)),
            path((0, 0), (0, 1), (1, 1)),
        ]
        t = RouteTree.from_paths((0, 0), paths, [(1, 1)])
        t.validate()
        assert t.num_edges() == len(t.nodes) - 1

    def test_from_paths_rejects_non_adjacent(self):
        with pytest.raises(RoutingError):
            RouteTree.from_paths((0, 0), [path((0, 0), (2, 0))], [(2, 0)])

    def test_from_paths_unreached_sink(self):
        with pytest.raises(RoutingError):
            RouteTree.from_paths((0, 0), [path((0, 0), (1, 0))], [(5, 5)])

    def test_single_tile_net(self):
        t = RouteTree.from_paths((0, 0), [], [(0, 0)])
        assert t.num_edges() == 0
        assert t.root.is_sink


class TestTraversal:
    def test_postorder_children_first(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0)])
        order = [n.tile for n in t.postorder()]
        assert order == [(2, 0), (1, 0), (0, 0)]

    def test_preorder_root_first(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0)])
        assert [n.tile for n in t.preorder()] == [(0, 0), (1, 0), (2, 0)]

    def test_wirelength(self, graph10, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (1, 1)])
        assert t.wirelength_tiles() == 2
        assert t.wirelength_mm(graph10) == pytest.approx(2.0)


class TestBuffers:
    def test_apply_and_count(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0), (3, 0)])
        t.apply_buffers([BufferSpec((1, 0), None), BufferSpec((2, 0), None)])
        assert t.buffer_count() == 2
        specs = t.buffer_specs()
        assert [s.tile for s in specs] == [(1, 0), (2, 0)]

    def test_decoupling_buffer_needs_child(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0)])
        with pytest.raises(RoutingError):
            t.apply_buffers([BufferSpec((0, 0), drives_child=(5, 5))])

    def test_apply_clears_previous(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0)])
        t.apply_buffers([BufferSpec((1, 0), None)])
        t.apply_buffers([])
        assert t.buffer_count() == 0

    def test_multiple_buffers_same_tile(self):
        # Trunk + decoupling at the same node (paper Fig. 8(b)).
        paths = [path((1, 0), (1, 1), (0, 1)), path((1, 0), (1, 1), (2, 1))]
        t = RouteTree.from_paths((1, 0), paths, [(0, 1), (2, 1)])
        t.apply_buffers(
            [BufferSpec((1, 1), None), BufferSpec((1, 1), (0, 1))]
        )
        assert t.buffer_count() == 2
        assert t.node((1, 1)).trunk_buffer
        assert (0, 1) in t.node((1, 1)).decoupled_children


class TestUsage:
    def test_add_remove_roundtrip(self, graph10_sites, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0)])
        t.apply_buffers([BufferSpec((1, 0), None)])
        t.add_usage(graph10_sites)
        assert graph10_sites.wire_usage((0, 0), (1, 0)) == 1
        assert graph10_sites.used_site_count((1, 0)) == 1
        t.remove_usage(graph10_sites)
        assert graph10_sites.wire_usage((0, 0), (1, 0)) == 0
        assert graph10_sites.total_used_sites == 0


class TestTwoPaths:
    def _y_tree(self):
        paths = [
            path((0, 0), (1, 0), (2, 0), (3, 0), (3, 1)),
            path((2, 0), (2, 1), (2, 2)),
        ]
        return RouteTree.from_paths((0, 0), paths, [(3, 1), (2, 2)])

    def test_decomposition_covers_all_edges(self):
        t = self._y_tree()
        paths = t.two_paths()
        edge_count = sum(len(p) - 1 for p in paths)
        assert edge_count == t.num_edges()

    def test_endpoints_are_special(self):
        t = self._y_tree()
        for p in t.two_paths():
            head = t.node(p[0])
            tail = t.node(p[-1])
            for node in (head, tail):
                assert (
                    node is t.root or node.is_sink or len(node.children) >= 2
                )
            # interior is plain degree-2
            for tile in p[1:-1]:
                node = t.node(tile)
                assert len(node.children) == 1 and not node.is_sink

    def test_replace_two_path_same_endpoints(self):
        t = self._y_tree()
        old = [(0, 0), (1, 0), (2, 0)]
        new = [(0, 0), (0, 1), (1, 1), (2, 1)]
        with pytest.raises(RoutingError):
            t.replace_two_path(old, new)  # different tail

    def test_replace_two_path_rewires(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0), (3, 0)])
        old = [(0, 0), (1, 0), (2, 0), (3, 0)]
        new = [(0, 0), (0, 1), (1, 1), (2, 1), (3, 1), (3, 0)]
        t.replace_two_path(old, new)
        t.validate()
        assert (1, 0) not in t
        assert (1, 1) in t
        assert t.sink_tiles == [(3, 0)]

    def test_replace_collision_rejected(self):
        t = self._y_tree()
        old = [(2, 0), (2, 1), (2, 2)]
        # Attempt to route through (3, 0), which the other branch uses.
        new = [(2, 0), (3, 0), (3, 1), (2, 1), (2, 2)]
        with pytest.raises(RoutingError):
            t.replace_two_path(old, new)

    def test_replace_identical_is_noop(self, path_tree_factory):
        t = path_tree_factory([(0, 0), (1, 0), (2, 0)])
        old = [(0, 0), (1, 0), (2, 0)]
        t.replace_two_path(old, list(old))
        t.validate()
        assert t.num_edges() == 2
