"""Greedy overlap removal (paper Fig. 4)."""

import pytest

from repro.geometry import Point
from repro.routing import prim_dijkstra_tree, remove_overlaps
from repro.routing.prim_dijkstra import GeometricTree


def _tree(points, edges, root=0):
    adj = [set() for _ in points]
    t = GeometricTree(points=list(points), adjacency=adj, root=root)
    for i, j in edges:
        t.connect(i, j)
    return t


class TestOverlapRemoval:
    def test_paper_figure4_shape(self):
        # A node with two edges going the same way: overlap removed by a
        # Steiner point at the median.
        t = _tree([Point(0, 0), Point(4, 2), Point(4, -2)], [(0, 1), (0, 2)])
        before = t.wirelength()
        remove_overlaps(t)
        after = t.wirelength()
        # Shared run of length 4 along x collapses once: 12 -> 8.
        assert before == pytest.approx(12)
        assert after == pytest.approx(8)
        assert t.num_points == 4  # one Steiner point added
        assert t.points[3] == Point(4, 0)

    def test_no_overlap_no_change(self):
        t = _tree([Point(0, 0), Point(5, 0), Point(-5, 0)], [(0, 1), (0, 2)])
        remove_overlaps(t)
        assert t.num_points == 3
        assert t.wirelength() == pytest.approx(10)

    def test_never_increases_wirelength(self):
        pins = [Point(0, 0), Point(7, 3), Point(2, 8), Point(9, 9), Point(5, 1)]
        t = prim_dijkstra_tree(pins, c=0.4)
        before = t.wirelength()
        remove_overlaps(t)
        assert t.wirelength() <= before + 1e-9

    def test_stays_connected(self):
        pins = [Point(0, 0), Point(6, 2), Point(6, -2), Point(3, 5), Point(8, 0)]
        t = prim_dijkstra_tree(pins, c=0.4)
        remove_overlaps(t)
        t.parent_order()  # raises if disconnected

    def test_result_has_no_remaining_overlap(self):
        from repro.routing.steiner import _best_overlap

        pins = [Point(0, 0), Point(10, 4), Point(10, -4), Point(5, 9), Point(2, -7)]
        t = prim_dijkstra_tree(pins, c=0.4)
        remove_overlaps(t)
        assert _best_overlap(t) is None

    def test_degenerate_collinear(self):
        t = _tree([Point(0, 0), Point(5, 0), Point(9, 0)], [(0, 1), (0, 2)])
        remove_overlaps(t)
        # Median of (0,0),(5,0),(9,0) is (5,0): edge (0,9) rewired via 5.
        assert t.wirelength() == pytest.approx(9)

    def test_idempotent(self):
        pins = [Point(0, 0), Point(6, 2), Point(6, -2)]
        t = prim_dijkstra_tree(pins, c=0.4)
        remove_overlaps(t)
        wl = t.wirelength()
        remove_overlaps(t)
        assert t.wirelength() == pytest.approx(wl)
