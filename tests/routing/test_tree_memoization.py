"""RouteTree edge/wirelength memoization and its invalidation."""

from repro.routing.maze import route_net_on_tiles
from repro.routing.tree import RouteTree


def build_tree():
    # 0,0 - 1,0 - 2,0 - 3,0 with a branch 1,0 - 1,1 (sink)
    parent = {
        (1, 0): (0, 0),
        (2, 0): (1, 0),
        (3, 0): (2, 0),
        (1, 1): (1, 0),
    }
    return RouteTree.from_parent_map((0, 0), parent, [(3, 0), (1, 1)], "t")


class TestEdgesMemoization:
    def test_edges_cached_between_calls(self):
        tree = build_tree()
        first = tree.edges()
        assert tree.edges() is first  # same list object, no rebuild
        assert len(first) == 4

    def test_replace_two_path_invalidates_cache(self):
        tree = build_tree()
        before = tree.edges()
        # Swap the straight (1,0)->(3,0) two-path for a detour over y=1.
        tree.replace_two_path(
            [(1, 0), (2, 0), (3, 0)],
            [(1, 0), (2, 0), (3, 0)],  # identity first: endpoints rule
        )
        assert tree.edges() is not before
        assert sorted(tree.edges()) == sorted(before)
        detour = [(1, 0), (2, 0), (2, 1), (3, 1), (3, 0)]
        tree.replace_two_path([(1, 0), (2, 0), (3, 0)], detour)
        edges = tree.edges()
        assert ((2, 1), (3, 1)) in edges or ((3, 1), (2, 1)) in edges
        assert len(edges) == 6

    def test_wirelength_mm_cached_per_graph(self, graph10):
        tree = route_net_on_tiles(graph10, (0, 0), [(4, 0)])
        wl = tree.wirelength_mm(graph10)
        assert tree.wirelength_mm(graph10) == wl
        assert tree._wl_mm_cache is not None
        tree._invalidate_topology()
        assert tree._wl_mm_cache is None
        assert tree.wirelength_mm(graph10) == wl  # rebuilt, same value

    def test_wirelength_mm_not_reused_across_graphs(self, die10):
        from repro.tilegraph import CapacityModel, TileGraph

        tree = build_tree()
        coarse = TileGraph(die10, 10, 10, CapacityModel.uniform(4))
        fine = TileGraph(die10, 5, 5, CapacityModel.uniform(4))
        assert tree.wirelength_mm(coarse) == 4 * coarse.tile_w
        assert tree.wirelength_mm(fine) == 4 * fine.tile_w
