"""The flat-array maze kernel: fallback parity, workspaces, parallel Stage 2."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import Rect
from repro.routing.maze import (
    RoutingWorkspace,
    congestion_cost,
    route_net_on_tiles,
    scalar_edge_cost,
    soft_congestion_cost,
    workspace_for,
)
from repro.routing.ripup import RipupOptions, ripup_and_reroute
from repro.tilegraph import CapacityModel, TileGraph


def canonical_edges(tree):
    return sorted((min(u, v), max(u, v)) for u, v in tree.edges())


def saturate_column(graph, x):
    """Fill every horizontal edge (x, y)-(x+1, y) to capacity."""
    for y in range(graph.ny):
        cap = graph.wire_capacity((x, y), (x + 1, y))
        graph.add_wire((x, y), (x + 1, y), cap)


class TestSoftFallbackParity:
    def test_strict_to_soft_fallback_matches_direct_soft_run(self, die10):
        """Regression: the strict->soft retry must return the same tree as
        routing with the soft cost from the start (same buffers reused)."""
        graph_a = TileGraph(die10, 10, 10, CapacityModel.uniform(2))
        graph_b = TileGraph(die10, 10, 10, CapacityModel.uniform(2))
        for g in (graph_a, graph_b):
            saturate_column(g, 4)  # wall between x=4 and x=5
        fallback = route_net_on_tiles(graph_a, (0, 5), [(9, 5)])
        direct = route_net_on_tiles(
            graph_b, (0, 5), [(9, 5)], cost_fn=soft_congestion_cost
        )
        assert canonical_edges(fallback) == canonical_edges(direct)

    def test_fallback_reuses_workspace_buffers(self, die10):
        """The soft retry runs on the same preallocated buffers (no new
        workspace allocation mid-net)."""
        graph = TileGraph(die10, 10, 10, CapacityModel.uniform(2))
        saturate_column(graph, 4)
        ws = workspace_for(graph)
        assert not ws.heap
        epoch_before = ws.epoch
        route_net_on_tiles(graph, (0, 5), [(9, 5)])
        assert workspace_for(graph) is ws
        # strict margins (3 windows) + at least one soft rescan, all on
        # the same workspace: the epoch advanced once per search.
        assert ws.epoch >= epoch_before + 4

    def test_explicit_workspace_is_used(self, graph10):
        ws = RoutingWorkspace(graph10.num_tiles)
        tree = route_net_on_tiles(graph10, (0, 0), [(5, 5)], workspace=ws)
        assert ws.epoch > 0
        assert tree.sink_tiles == [(5, 5)]


class TestFlatVsGenericParity:
    def test_flat_path_matches_generic_dict_path(self, die10):
        """The flat kernel and the dict-based fallback agree edge-for-edge."""
        flat_graph = TileGraph(die10, 10, 10, CapacityModel.uniform(3))
        generic_graph = TileGraph(die10, 10, 10, CapacityModel.uniform(3))
        rng = np.random.default_rng(7)
        pins = []
        for _ in range(30):
            pts = [(int(a), int(b)) for a, b in rng.integers(0, 10, size=(4, 2))]
            pins.append((pts[0], pts[1:]))

        def strict_clone(graph, u, v):  # not `is congestion_cost` -> generic path
            return congestion_cost(graph, u, v)

        for i, (source, sinks) in enumerate(pins):
            fast = route_net_on_tiles(
                flat_graph, source, sinks, radius_weight=0.4, net_name=f"n{i}"
            )
            slow = route_net_on_tiles(
                generic_graph, source, sinks, cost_fn=strict_clone,
                radius_weight=0.4, net_name=f"n{i}",
            )
            assert canonical_edges(fast) == canonical_edges(slow), f"net {i}"
            fast.add_usage(flat_graph)
            slow.add_usage(generic_graph)
        assert (flat_graph.edge_usage == generic_graph.edge_usage).all()

    def test_cost_array_override(self, graph10):
        """A uniform cost array routes like an unweighted BFS (shortest path)."""
        costs = [1.0] * graph10.num_edges
        tree = route_net_on_tiles(graph10, (0, 0), [(6, 2)], cost_array=costs)
        assert tree.wirelength_tiles() == 8

    def test_scalar_edge_cost_tracks_mutation(self, graph10):
        lookup = scalar_edge_cost(graph10, congestion_cost)
        assert lookup(graph10, (0, 0), (1, 0)) == congestion_cost(
            graph10, (0, 0), (1, 0)
        )
        graph10.add_wire((0, 0), (1, 0), 5)
        assert lookup(graph10, (0, 0), (1, 0)) == congestion_cost(
            graph10, (0, 0), (1, 0)
        )
        # Unknown callables pass through untouched.
        custom = lambda g, u, v: 2.0
        assert scalar_edge_cost(graph10, custom) is custom


class TestRouteCounters:
    def test_heap_pops_and_cache_hits_counted(self, graph10):
        from repro.obs import Tracer

        tracer = Tracer()
        route_net_on_tiles(graph10, (0, 0), [(7, 7)], tracer=tracer)
        expanded = tracer.metrics.value("maze_nodes_expanded")
        assert expanded > 0
        assert tracer.metrics.value("route.heap_pops") >= expanded
        assert tracer.metrics.value("route.cache_hits") > 0


class TestParallelRipup:
    def _routes(self, graph, num_nets=40, seed=3):
        rng = np.random.default_rng(seed)
        routes = {}
        order = []
        for i in range(num_nets):
            sx, sy = (int(v) for v in rng.integers(0, graph.nx, size=2))
            dx, dy = (int(v) for v in rng.integers(-3, 4, size=2))
            tx = min(graph.nx - 1, max(0, sx + dx))
            ty = min(graph.ny - 1, max(0, sy + dy))
            name = f"n{i:02d}"
            tree = route_net_on_tiles(graph, (sx, sy), [(tx, ty)], net_name=name)
            tree.add_usage(graph)
            routes[name] = tree
            order.append(name)
        return routes, order

    def test_workers_validated(self):
        with pytest.raises(ConfigurationError):
            RipupOptions(workers=0)

    def test_parallel_matches_expected_usage_accounting(self, die10):
        graph = TileGraph(die10, 10, 10, CapacityModel.uniform(4))
        routes, order = self._routes(graph)
        ripup_and_reroute(graph, routes, order, RipupOptions(workers=3))
        expected = np.zeros_like(graph.edge_usage)
        for tree in routes.values():
            for u, v in tree.edges():
                expected[graph.edge_id(u, v)] += 1
        assert (expected == graph.edge_usage).all()

    def test_parallel_deterministic_across_worker_counts(self, die10):
        results = []
        for workers in (2, 4):
            graph = TileGraph(die10, 10, 10, CapacityModel.uniform(4))
            routes, order = self._routes(graph)
            ripup_and_reroute(graph, routes, order, RipupOptions(workers=workers))
            results.append(
                {name: canonical_edges(t) for name, t in routes.items()}
            )
        assert results[0] == results[1]

    def test_stage2_batches_counter(self, die10):
        from repro.obs import Tracer

        graph = TileGraph(die10, 10, 10, CapacityModel.uniform(4))
        routes, order = self._routes(graph)
        tracer = Tracer()
        ripup_and_reroute(
            graph, routes, order, RipupOptions(workers=2, max_iterations=1),
            tracer=tracer,
        )
        assert tracer.metrics.value("stage2.batches") >= 1
