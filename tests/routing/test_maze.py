"""Congestion-cost maze routing (Eq. 1)."""

import pytest

from repro.geometry import Rect
from repro.routing.maze import (
    congestion_cost,
    route_net_on_tiles,
    soft_congestion_cost,
)
from repro.tilegraph import CapacityModel, TileGraph


class TestCongestionCost:
    def test_empty_edge(self, graph10):
        # (0 + 1) / (10 - 0)
        assert congestion_cost(graph10, (0, 0), (1, 0)) == pytest.approx(0.1)

    def test_rises_with_usage(self, graph10):
        costs = []
        for usage in range(0, 10):
            g = graph10
            # emulate usage levels on a fresh edge each time
            g.add_wire((2, 2), (3, 2), 1) if usage else None
            costs.append(congestion_cost(g, (2, 2), (3, 2)))
        assert costs == sorted(costs)

    def test_full_edge_infinite(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 10)
        assert congestion_cost(graph10, (0, 0), (1, 0)) == float("inf")

    def test_matches_paper_formula(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 7)
        assert congestion_cost(graph10, (0, 0), (1, 0)) == pytest.approx(8 / 3)

    def test_soft_cost_finite_when_full(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 12)
        cost = soft_congestion_cost(graph10, (0, 0), (1, 0))
        assert cost != float("inf")
        assert cost > 1000

    def test_soft_matches_strict_below_capacity(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 4)
        assert soft_congestion_cost(graph10, (0, 0), (1, 0)) == pytest.approx(
            congestion_cost(graph10, (0, 0), (1, 0))
        )


class TestRouting:
    def test_straight_route(self, graph10):
        rt = route_net_on_tiles(graph10, (0, 0), [(5, 0)])
        rt.validate()
        assert rt.wirelength_tiles() == 5

    def test_multi_sink_steiner(self, graph10):
        rt = route_net_on_tiles(graph10, (0, 0), [(4, 0), (0, 4), (4, 4)])
        rt.validate()
        assert set(rt.sink_tiles) == {(4, 0), (0, 4), (4, 4)}
        # A Steiner tree over these pins is at most the star length.
        assert rt.wirelength_tiles() <= 16

    def test_sink_equals_source(self, graph10):
        rt = route_net_on_tiles(graph10, (3, 3), [(3, 3)])
        assert rt.num_edges() == 0

    def test_avoids_congested_corridor(self, graph10):
        # Saturate the direct corridor; route must detour.
        for y in range(0, 10):
            if y != 9:
                graph10.add_wire((4, y), (5, y), 10)
        rt = route_net_on_tiles(graph10, (0, 0), [(9, 0)])
        rt.validate()
        crossings = [(u, v) for u, v in rt.edges() if {u[0], v[0]} == {4, 5}]
        assert all(u[1] == 9 for u, _ in crossings)

    def test_fully_blocked_uses_soft_fallback(self, graph10):
        for y in range(10):
            graph10.add_wire((4, y), (5, y), 10)
        rt = route_net_on_tiles(graph10, (0, 0), [(9, 0)])
        rt.validate()  # still connects, paying overflow

    def test_duplicate_sinks(self, graph10):
        rt = route_net_on_tiles(graph10, (0, 0), [(3, 3), (3, 3)])
        assert rt.sink_tiles == [(3, 3)]

    def test_radius_weight_shortens_paths(self, graph10, die10):
        # With a high radius weight the router behaves like an SPT: the
        # source-sink path length gets closer to the Manhattan distance.
        g1 = TileGraph(die10, 10, 10, CapacityModel.uniform(10))
        sinks = [(9, 1), (9, 3), (9, 5)]
        rt = route_net_on_tiles(g1, (0, 0), sinks, radius_weight=0.0)
        rt2 = route_net_on_tiles(g1, (0, 0), sinks, radius_weight=1.0)
        def depth(rt, t):
            node = rt.node(t)
            d = 0
            while node.parent:
                node = node.parent
                d += 1
            return d
        for s in sinks:
            assert depth(rt2, s) <= depth(rt, s) + 4

    def test_window_margin_grows_if_needed(self, graph10):
        # Block everything inside the initial window; forces widening.
        for y in range(10):
            graph10.add_wire((2, y), (3, y), 10) if y < 10 else None
        rt = route_net_on_tiles(graph10, (0, 0), [(5, 0)], window_margin=1)
        rt.validate()
