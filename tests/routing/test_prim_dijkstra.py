"""Prim-Dijkstra tree construction and the radius/length trade-off."""

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.geometry import Point
from repro.routing import prim_dijkstra_tree


def _pins_star(n, radius=10.0):
    # source at origin, sinks on a diagonal line
    return [Point(0, 0)] + [Point(radius, i * 2.0) for i in range(n)]


class TestConstruction:
    def test_spanning(self):
        pins = [Point(0, 0), Point(3, 0), Point(3, 4), Point(0, 4)]
        tree = prim_dijkstra_tree(pins, c=0.4)
        assert tree.num_points == 4
        assert len(list(tree.edges())) == 3
        tree.parent_order()  # connected

    def test_single_pin(self):
        tree = prim_dijkstra_tree([Point(1, 1)])
        assert tree.num_points == 1
        assert list(tree.edges()) == []

    def test_two_pins(self):
        tree = prim_dijkstra_tree([Point(0, 0), Point(5, 5)])
        assert tree.wirelength() == 10

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            prim_dijkstra_tree([])

    def test_bad_tradeoff_rejected(self):
        with pytest.raises(ConfigurationError):
            prim_dijkstra_tree([Point(0, 0)], c=1.5)

    def test_bad_source_index(self):
        with pytest.raises(RoutingError):
            prim_dijkstra_tree([Point(0, 0)], source_index=2)

    def test_root_is_source_index(self):
        pins = [Point(0, 0), Point(1, 0), Point(2, 0)]
        tree = prim_dijkstra_tree(pins, source_index=1)
        assert tree.root == 1


class TestTradeoff:
    def test_c0_is_mst(self):
        # Chain of points: MST connects consecutive neighbors.
        pins = [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)]
        tree = prim_dijkstra_tree(pins, c=0.0)
        assert tree.wirelength() == pytest.approx(3.0)

    def test_c1_is_spt(self):
        # With c=1, each node attaches to minimize source path length.
        pins = [Point(0, 0), Point(10, 1), Point(10, -1)]
        tree = prim_dijkstra_tree(pins, c=1.0)
        # SPT radius equals direct Manhattan distance for every sink.
        lengths = tree.path_length_from_root()
        assert lengths[1] == pytest.approx(11.0)
        assert lengths[2] <= 11.0 + 2.0  # attaches via the other sink or direct

    def test_radius_monotone_in_c(self):
        pins = _pins_star(6)
        radii = [
            prim_dijkstra_tree(pins, c=c).radius() for c in (0.0, 0.4, 1.0)
        ]
        assert radii[0] >= radii[1] >= radii[2] - 1e-9

    def test_wirelength_monotone_in_c(self):
        pins = _pins_star(6)
        wl = [
            prim_dijkstra_tree(pins, c=c).wirelength() for c in (0.0, 0.4, 1.0)
        ]
        assert wl[0] <= wl[1] + 1e-9 <= wl[2] + 2e-9

    def test_mst_wirelength_lower_bounds_everything(self):
        pins = [Point(0, 0), Point(4, 7), Point(9, 2), Point(3, 3), Point(8, 8)]
        mst = prim_dijkstra_tree(pins, c=0.0).wirelength()
        pd = prim_dijkstra_tree(pins, c=0.4).wirelength()
        assert mst <= pd + 1e-9


class TestGeometricTree:
    def test_disconnected_detected(self):
        tree = prim_dijkstra_tree([Point(0, 0), Point(1, 1)])
        tree.disconnect(0, 1)
        with pytest.raises(RoutingError):
            tree.parent_order()

    def test_add_point_and_connect(self):
        tree = prim_dijkstra_tree([Point(0, 0), Point(2, 0)])
        s = tree.add_point(Point(1, 0))
        tree.disconnect(0, 1)
        tree.connect(0, s)
        tree.connect(s, 1)
        assert tree.wirelength() == pytest.approx(2.0)

    def test_self_loop_rejected(self):
        tree = prim_dijkstra_tree([Point(0, 0), Point(1, 1)])
        with pytest.raises(RoutingError):
            tree.connect(0, 0)
