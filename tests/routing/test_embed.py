"""Embedding geometric trees onto the tile grid."""

import pytest

from repro.geometry import Point
from repro.routing import embed_tree, prim_dijkstra_tree, remove_overlaps
from repro.routing.embed import l_shaped_between_tiles, l_shaped_tile_path


class TestLShape:
    def test_horizontal_then_vertical(self):
        assert l_shaped_between_tiles((0, 0), (2, 2)) == [
            (0, 0), (1, 0), (2, 0), (2, 1), (2, 2),
        ]

    def test_negative_directions(self):
        assert l_shaped_between_tiles((2, 2), (0, 0)) == [
            (2, 2), (1, 2), (0, 2), (0, 1), (0, 0),
        ]

    def test_same_tile(self):
        assert l_shaped_between_tiles((3, 3), (3, 3)) == [(3, 3)]

    def test_straight_line(self):
        assert l_shaped_between_tiles((0, 0), (0, 3)) == [
            (0, 0), (0, 1), (0, 2), (0, 3),
        ]

    def test_from_points(self, graph10):
        path = l_shaped_tile_path(graph10, Point(0.5, 0.5), Point(2.5, 0.5))
        assert path == [(0, 0), (1, 0), (2, 0)]


class TestEmbedTree:
    def test_two_pin(self, graph10, two_pin_net):
        pins = [p.location for p in two_pin_net.pins]
        gtree = prim_dijkstra_tree(pins)
        rt = embed_tree(graph10, gtree, two_pin_net.sink_locations())
        rt.validate()
        assert rt.source == graph10.tile_of(two_pin_net.source.location)
        assert rt.sink_tiles == [graph10.tile_of(two_pin_net.sinks[0].location)]

    def test_multi_pin_reaches_all_sinks(self, graph10, multi_pin_net):
        pins = [p.location for p in multi_pin_net.pins]
        gtree = remove_overlaps(prim_dijkstra_tree(pins))
        rt = embed_tree(graph10, gtree, multi_pin_net.sink_locations())
        rt.validate()
        expected = sorted(
            {graph10.tile_of(p) for p in multi_pin_net.sink_locations()}
        )
        assert rt.sink_tiles == expected

    def test_colocated_pins(self, graph10):
        gtree = prim_dijkstra_tree([Point(1.2, 1.2), Point(1.4, 1.4)])
        rt = embed_tree(graph10, gtree, [Point(1.4, 1.4)])
        assert rt.num_edges() == 0
        assert rt.root.is_sink

    def test_wirelength_at_least_bbox(self, graph10, multi_pin_net):
        pins = [p.location for p in multi_pin_net.pins]
        gtree = remove_overlaps(prim_dijkstra_tree(pins))
        rt = embed_tree(graph10, gtree, multi_pin_net.sink_locations())
        tiles = [graph10.tile_of(p) for p in pins]
        span = (
            max(t[0] for t in tiles) - min(t[0] for t in tiles)
            + max(t[1] for t in tiles) - min(t[1] for t in tiles)
        )
        assert rt.wirelength_tiles() >= span
