"""RouteTree corner cases: internal sinks, deep trees, buffer bookkeeping."""

import pytest

from repro.errors import RoutingError
from repro.routing.tree import BufferSpec, RouteTree


class TestInternalSinks:
    def _through_sink(self):
        tiles = [(i, 0) for i in range(6)]
        parent = {b: a for a, b in zip(tiles, tiles[1:])}
        return RouteTree.from_parent_map((0, 0), parent, [(2, 0), (5, 0)])

    def test_internal_sink_flagged(self):
        t = self._through_sink()
        assert t.node((2, 0)).is_sink
        assert t.node((5, 0)).is_sink
        assert t.sink_tiles == [(2, 0), (5, 0)]

    def test_two_paths_split_at_internal_sink(self):
        t = self._through_sink()
        paths = t.two_paths()
        # The internal sink is an endpoint, so two two-paths.
        assert len(paths) == 2
        assert {tuple(p) for p in paths} == {
            ((0, 0), (1, 0), (2, 0)),
            ((2, 0), (3, 0), (4, 0), (5, 0)),
        }

    def test_source_is_sink(self):
        tiles = [(0, 0), (1, 0)]
        parent = {(1, 0): (0, 0)}
        t = RouteTree.from_parent_map((0, 0), parent, [(0, 0), (1, 0)])
        assert t.root.is_sink


class TestDeepTrees:
    def test_long_path_no_recursion_limit(self):
        # Traversals are iterative: a 5000-tile path must not blow the
        # Python recursion limit.
        tiles = [(i, 0) for i in range(5000)]
        parent = {b: a for a, b in zip(tiles, tiles[1:])}
        t = RouteTree.from_parent_map((0, 0), parent, [(4999, 0)])
        assert len(t.postorder()) == 5000
        assert len(t.preorder()) == 5000
        t.validate()
        assert t.num_edges() == 4999

    def test_two_path_decomposition_long(self):
        tiles = [(i, 0) for i in range(1000)]
        parent = {b: a for a, b in zip(tiles, tiles[1:])}
        t = RouteTree.from_parent_map((0, 0), parent, [(999, 0)])
        paths = t.two_paths()
        assert len(paths) == 1
        assert len(paths[0]) == 1000


class TestBufferBookkeeping:
    def test_specs_roundtrip(self):
        tiles = [(i, 0) for i in range(5)]
        parent = {b: a for a, b in zip(tiles, tiles[1:])}
        t = RouteTree.from_parent_map((0, 0), parent, [(4, 0)])
        specs = [BufferSpec((1, 0), None), BufferSpec((3, 0), None)]
        t.apply_buffers(specs)
        assert t.buffer_specs() == specs

    def test_specs_deterministic_order(self):
        paths = [
            [(1, 1), (1, 2), (0, 2)],
            [(1, 1), (2, 1), (2, 2)],
        ]
        t = RouteTree.from_paths((1, 1), paths, [(0, 2), (2, 2)])
        t.apply_buffers(
            [
                BufferSpec((2, 1), None),
                BufferSpec((1, 1), (1, 2)),
                BufferSpec((1, 1), None),
            ]
        )
        specs = t.buffer_specs()
        assert specs[0].tile == (1, 1) and specs[0].drives_child is None
        assert specs[1].tile == (1, 1) and specs[1].drives_child == (1, 2)
        assert specs[2].tile == (2, 1)

    def test_node_accessor_raises_off_tree(self):
        tiles = [(0, 0), (1, 0)]
        parent = {(1, 0): (0, 0)}
        t = RouteTree.from_parent_map((0, 0), parent, [(1, 0)])
        with pytest.raises(RoutingError):
            t.node((9, 9))
