"""Streaming ECO traces: generation determinism, replay, divergence."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.service.jobs import apply_delta
from repro.workloads import (
    EVENT_MIX,
    TraceOptions,
    get_workload,
    make_trace,
    replay_trace,
    run_workload_trace,
)

SCENARIO = get_workload("smoke-16").scenario()


class TestOptions:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceOptions(events=0)
        with pytest.raises(ConfigurationError):
            TraceOptions(checkpoint_every=-1)
        with pytest.raises(ConfigurationError):
            TraceOptions(workers=0)
        with pytest.raises(ConfigurationError):
            TraceOptions(job_timeout=0.0)


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = make_trace(SCENARIO, TraceOptions(events=60, seed=3))
        b = make_trace(SCENARIO, TraceOptions(events=60, seed=3))
        assert [(e.kind, e.delta) for e in a] == [
            (e.kind, e.delta) for e in b
        ]

    def test_seed_changes_stream(self):
        a = make_trace(SCENARIO, TraceOptions(events=60, seed=0))
        b = make_trace(SCENARIO, TraceOptions(events=60, seed=1))
        assert [(e.kind, e.delta) for e in a] != [
            (e.kind, e.delta) for e in b
        ]

    def test_every_event_folds_cleanly(self):
        folded = SCENARIO
        for event in make_trace(SCENARIO, TraceOptions(events=80, seed=2)):
            folded = apply_delta(folded, event.delta)
        assert folded.grid == SCENARIO.grid

    def test_only_known_kinds(self):
        kinds = {k for k, _ in EVENT_MIX}
        trace = make_trace(SCENARIO, TraceOptions(events=80, seed=5))
        assert {e.kind for e in trace} <= kinds

    def test_eco_net_names_sort_after_generated(self):
        """The locality contract: ECO nets append to the walk order."""
        trace = make_trace(SCENARIO, TraceOptions(events=80, seed=0))
        for event in trace:
            for op in event.delta.ops:
                if op.kind == "add_net":
                    assert op.args["name"] > f"net{SCENARIO.num_nets}"


class TestReplay:
    def test_short_replay_report(self):
        tracer = Tracer()
        report = replay_trace(
            SCENARIO,
            make_trace(SCENARIO, TraceOptions(events=10, seed=0)),
            TraceOptions(events=10, seed=0, checkpoint_every=5),
            tracer=tracer,
            workload="smoke-16",
        )
        assert len(report.event_records) == 10
        assert all(r.signature for r in report.event_records)
        assert len(report.checkpoints) == 2
        assert report.divergences == 0
        assert tracer.metrics.counter("workload.trace_events").value == 10
        assert tracer.metrics.counter("workload.checkpoints").value == 2
        d = report.as_dict()
        for key in (
            "steady_speedup", "event_p95", "signature_digest",
            "events_by_kind", "checkpoints",
        ):
            assert key in d

    def test_signature_map_deterministic(self):
        """Same seed + worker count => byte-identical signature map."""
        options = TraceOptions(events=12, seed=4, checkpoint_every=0)
        first = run_workload_trace("smoke-16", options)
        second = run_workload_trace("smoke-16", options)
        assert first.signature_map == second.signature_map
        assert first.signature_digest() == second.signature_digest()

    @pytest.mark.slow
    def test_100_event_trace_never_diverges(self):
        """Satellite contract: checkpoint signatures match full re-plan
        across a 100-event trace."""
        report = run_workload_trace(
            "smoke-16",
            TraceOptions(events=100, seed=0, checkpoint_every=25),
        )
        assert len(report.checkpoints) == 4
        assert report.divergences == 0
        for checkpoint in report.checkpoints:
            assert checkpoint.signature_incremental == (
                checkpoint.signature_full
            )
            assert checkpoint.cost_delta == 0

    @pytest.mark.slow
    def test_fleet_replay_matches_inline(self):
        """Worker count never changes the signature map."""
        inline = run_workload_trace(
            "smoke-16", TraceOptions(events=16, seed=2, checkpoint_every=8)
        )
        fleet = run_workload_trace(
            "smoke-16",
            TraceOptions(events=16, seed=2, checkpoint_every=8, workers=2),
        )
        assert fleet.signature_map == inline.signature_map
        assert fleet.divergences == 0
