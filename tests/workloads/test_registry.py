"""The workload registry: tiers, Table-I stand-ins, lookup errors."""

import pytest

from repro.benchmarks.spec import BENCHMARK_SPECS
from repro.errors import ConfigurationError
from repro.workloads import (
    WORKLOAD_SOURCES,
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    list_workloads,
)


class TestRegistryContents:
    def test_ladder_tiers_present(self):
        for name, grid, nets in (
            ("ladder-64", 64, 2000),
            ("ladder-128", 128, 10000),
            ("ladder-256", 256, 100000),
        ):
            tier = get_workload(name)
            assert tier.grid == grid
            assert tier.num_nets == nets
            assert tier.source == "ladder"

    def test_all_table1_circuits_registered(self):
        for circuit, spec in BENCHMARK_SPECS.items():
            tier = get_workload(f"table1-{circuit}")
            assert tier.source == "table1"
            assert tier.num_nets == spec.nets
            assert tier.length_limit == spec.length_limit
            assert tier.total_sites == spec.buffer_sites
            assert tier.grid == max(spec.grid)
            assert tier.paper_grid == spec.grid

    def test_smoke_tier(self):
        tier = get_workload("smoke-16")
        assert tier.grid == 16
        assert tier.source == "smoke"


class TestScenarioResolution:
    def test_scenario_carries_one_macro(self):
        scenario = get_workload("ladder-64").scenario()
        assert scenario.grid == 64
        assert len(scenario.macros) == 1
        macro = scenario.macros[0]
        assert macro.x + macro.width <= 64
        assert macro.y + macro.height <= 64

    def test_scenario_nets_match_tier(self):
        tier = get_workload("smoke-16")
        assert len(tier.scenario().nets()) == tier.num_nets


class TestDescribe:
    def test_table1_card_declares_stand_in(self):
        card = get_workload("table1-apte").describe()
        assert card["paper_grid"] == list(BENCHMARK_SPECS["apte"].grid)
        assert "stand_in" in card

    def test_synthetic_card_has_no_paper_grid(self):
        card = get_workload("ladder-64").describe()
        assert "paper_grid" not in card
        assert card["tiles"] == 64 * 64


class TestLookup:
    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError) as exc:
            get_workload("ladder-1024")
        assert "ladder-64" in str(exc.value)

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            list_workloads("mcnc")

    def test_bad_spec_source_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="x", description="", source="custom", grid=8, num_nets=4
            )

    def test_listing_order_is_source_then_grid(self):
        tiers = list_workloads()
        assert len(tiers) == len(WORKLOADS)
        order = {s: i for i, s in enumerate(WORKLOAD_SOURCES)}
        keys = [(order[t.source], t.grid, t.name) for t in tiers]
        assert keys == sorted(keys)

    def test_source_filter(self):
        assert all(t.source == "ladder" for t in list_workloads("ladder"))
        assert len(list_workloads("table1")) == len(BENCHMARK_SPECS)
