"""Routability triage: certificates, estimates, and prune policy."""

import numpy as np
import pytest

from repro.core.rabid import RabidConfig
from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.service.engine import full_plan
from repro.service.jobs import ScenarioSpec
from repro.workloads import (
    TRIAGE_MODES,
    RoutabilityVerdict,
    TriageOptions,
    get_workload,
    smear_demand,
    triage_scenario,
)

#: A comfortably feasible control (the CI smoke tier).
FEASIBLE = get_workload("smoke-16").scenario()

#: Site-starved: 60 nets needing buffers, 5 sites on the whole die.
SITE_STARVED = ScenarioSpec(
    grid=12, num_nets=60, capacity=6, total_sites=5, length_limit=2
)


class TestOptions:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TriageOptions(site_pressure_ceiling=0.0)
        with pytest.raises(ConfigurationError):
            TriageOptions(utilization_ceiling=0.0)
        with pytest.raises(ConfigurationError):
            TriageOptions(hotspots=-1)


class TestCertificates:
    def test_site_certificate_fires(self):
        verdict = triage_scenario(SITE_STARVED)
        assert verdict.certified_infeasible
        assert verdict.infeasible_reason == "sites"
        assert verdict.demand_lb > verdict.total_sites
        assert verdict.verdict == "infeasible"

    def test_site_certificate_is_sound(self):
        """The certificate's claim checked against the real planner."""
        state = full_plan(SITE_STARVED, RabidConfig())
        assert len(state.failed_nets) > 0

    def test_cut_certificate_fires(self):
        # Plenty of sites, but capacity 1 across every cut: 200 nets on
        # an 8x8 die force far more crossings than 8 edges can carry.
        scenario = ScenarioSpec(
            grid=8, num_nets=200, capacity=1, total_sites=5000,
            length_limit=12,
        )
        verdict = triage_scenario(scenario)
        assert verdict.certified_infeasible
        assert verdict.infeasible_reason == "cut"
        assert verdict.cut_slack < 0
        assert verdict.worst_cut

    def test_feasible_control_not_certified(self):
        verdict = triage_scenario(FEASIBLE)
        assert not verdict.certified_infeasible
        assert verdict.verdict == "routable"
        assert not verdict.site_starved

    def test_feasible_control_really_plans(self):
        state = full_plan(FEASIBLE, RabidConfig())
        assert len(state.failed_nets) == 0


class TestPrunePolicy:
    def test_modes(self):
        certified = triage_scenario(SITE_STARVED)
        assert not certified.should_prune("off")
        assert certified.should_prune("certified")
        assert certified.should_prune("estimate")
        feasible = triage_scenario(FEASIBLE)
        assert not any(feasible.should_prune(m) for m in TRIAGE_MODES)

    def test_estimate_only_prunes_in_estimate_mode(self):
        # Site pressure above the ceiling but below 1.0: no proof.
        scenario = ScenarioSpec(
            grid=12, num_nets=80, capacity=8, total_sites=600,
            length_limit=3,
        )
        verdict = triage_scenario(
            scenario, TriageOptions(site_pressure_ceiling=0.10)
        )
        assert not verdict.certified_infeasible
        assert verdict.site_starved
        assert not verdict.should_prune("certified")
        assert verdict.should_prune("estimate")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            triage_scenario(FEASIBLE).should_prune("aggressive")


class TestSmear:
    def test_demand_conservation(self):
        """Each net's smeared H demand sums to its x-span (V: y-span)."""
        rng = np.random.default_rng(7)
        n, nx, ny = 50, 16, 16
        x0 = rng.integers(0, nx - 1, n)
        x1 = x0 + rng.integers(0, nx - x0)
        y0 = rng.integers(0, ny - 1, n)
        y1 = y0 + rng.integers(0, ny - y0)
        h, v = smear_demand(x0, x1, y0, y1, nx, ny)
        assert h.shape == (nx - 1, ny)
        assert v.shape == (nx, ny - 1)
        assert h.sum() == pytest.approx(float((x1 - x0).sum()))
        assert v.sum() == pytest.approx(float((y1 - y0).sum()))
        assert (h >= -1e-9).all() and (v >= -1e-9).all()

    def test_single_net_smear(self):
        h, v = smear_demand(
            np.array([2]), np.array([5]), np.array([3]), np.array([6]),
            8, 8,
        )
        # 3 units of x-span spread over 4 rows; 3 y-units over 4 columns.
        assert h[2:5, 3:7].sum() == pytest.approx(3.0)
        assert v[2:6, 3:6].sum() == pytest.approx(3.0)
        assert h[:2].sum() == 0.0 and h[5:].sum() == 0.0


class TestVerdictReport:
    def test_heatmap_and_dict(self):
        verdict = triage_scenario(
            ScenarioSpec(grid=10, num_nets=150, capacity=2, total_sites=900)
        )
        assert verdict.heatmap.shape == (10, 10)
        d = verdict.as_dict()
        for key in (
            "verdict", "site_pressure", "cut_slack", "overflow_edges",
            "hotspots", "certified_infeasible",
        ):
            assert key in d
        assert isinstance(RoutabilityVerdict.verdict, property)

    def test_counters(self):
        tracer = Tracer()
        triage_scenario(SITE_STARVED, tracer=tracer)
        assert tracer.metrics.counter("triage.runs").value == 1
        assert (
            tracer.metrics.counter("triage.verdict.infeasible").value == 1
        )
