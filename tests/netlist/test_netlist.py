"""Netlist container and two-pin decomposition."""

import pytest

from repro.errors import NetlistError
from repro.geometry import Point
from repro.netlist import Net, Netlist, Pin, decompose_to_two_pin


def _net(name, n_sinks):
    return Net(
        name=name,
        source=Pin(f"{name}.s", Point(0, 0)),
        sinks=[Pin(f"{name}.t{i}", Point(i + 1.0, 1.0)) for i in range(n_sinks)],
    )


class TestNetlist:
    def test_len_iter_contains(self):
        nl = Netlist(nets=[_net("a", 1), _net("b", 2)])
        assert len(nl) == 2
        assert [n.name for n in nl] == ["a", "b"]
        assert "a" in nl and "z" not in nl

    def test_duplicate_names_rejected(self):
        with pytest.raises(NetlistError):
            Netlist(nets=[_net("a", 1), _net("a", 1)])

    def test_add_enforces_uniqueness(self):
        nl = Netlist(nets=[_net("a", 1)])
        with pytest.raises(NetlistError):
            nl.add(_net("a", 2))
        nl.add(_net("b", 1))
        assert len(nl) == 2

    def test_get_missing_raises(self):
        with pytest.raises(NetlistError):
            Netlist().get("nope")

    def test_totals(self):
        nl = Netlist(nets=[_net("a", 1), _net("b", 3)])
        assert nl.total_sinks == 4
        assert nl.total_pins == 6

    def test_total_hpwl(self):
        nl = Netlist(nets=[_net("a", 1)])  # source (0,0), sink (1,1)
        assert nl.total_hpwl() == pytest.approx(2.0)


class TestDecomposition:
    def test_two_pin_pass_through(self):
        nl = Netlist(nets=[_net("a", 1)])
        out = decompose_to_two_pin(nl)
        assert len(out) == 1
        assert out.get("a").num_sinks == 1

    def test_multipin_star(self):
        nl = Netlist(nets=[_net("a", 3)])
        out = decompose_to_two_pin(nl)
        assert len(out) == 3
        assert {n.name for n in out} == {"a#0", "a#1", "a#2"}
        for n in out:
            assert n.num_sinks == 1
            assert n.source.location == Point(0, 0)

    def test_total_sinks_preserved(self):
        nl = Netlist(nets=[_net("a", 3), _net("b", 1), _net("c", 5)])
        out = decompose_to_two_pin(nl)
        assert out.total_sinks == nl.total_sinks
        assert len(out) == nl.total_sinks
