"""Pin and Net behaviour."""

import pytest

from repro.errors import NetlistError
from repro.geometry import Point
from repro.netlist import Net, Pin


def _net(sink_points, name="n"):
    return Net(
        name=name,
        source=Pin(f"{name}.s", Point(0, 0)),
        sinks=[Pin(f"{name}.t{i}", p) for i, p in enumerate(sink_points)],
    )


class TestNet:
    def test_requires_sinks(self):
        with pytest.raises(NetlistError):
            Net(name="n", source=Pin("s", Point(0, 0)), sinks=[])

    def test_duplicate_pin_names_rejected(self):
        with pytest.raises(NetlistError):
            Net(
                name="n",
                source=Pin("p", Point(0, 0)),
                sinks=[Pin("p", Point(1, 1))],
            )

    def test_pins_source_first(self):
        net = _net([Point(1, 1), Point(2, 2)])
        assert net.pins[0] is net.source
        assert net.degree == 3
        assert net.num_sinks == 2

    def test_bbox_and_hpwl(self):
        net = _net([Point(3, 1), Point(1, 4)])
        box = net.bbox()
        assert (box.x0, box.y0, box.x1, box.y1) == (0, 0, 3, 4)
        assert net.half_perimeter_wirelength() == 7

    def test_two_pin_decomposition_pairs(self):
        net = _net([Point(1, 0), Point(0, 1), Point(1, 1)])
        pairs = net.as_two_pin()
        assert len(pairs) == 3
        assert all(src is net.source for src, _ in pairs)
        assert [snk.name for _, snk in pairs] == ["n.t0", "n.t1", "n.t2"]

    def test_sink_locations(self):
        net = _net([Point(5, 5)])
        assert net.sink_locations() == [Point(5, 5)]

    def test_pin_default_owner_is_pad(self):
        assert Pin("x", Point(0, 0)).owner == "PAD"
