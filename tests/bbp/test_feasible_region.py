"""Feasible regions and ideal buffer points."""

import pytest

from repro.bbp import feasible_region_for, ideal_buffer_points
from repro.errors import ConfigurationError
from repro.geometry import Point, Rect


class TestIdealPoints:
    def test_even_split(self):
        pts = ideal_buffer_points(Point(0, 0), Point(9, 0), 2)
        assert pts == [Point(3, 0), Point(6, 0)]

    def test_zero_buffers(self):
        assert ideal_buffer_points(Point(0, 0), Point(9, 0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ideal_buffer_points(Point(0, 0), Point(1, 1), -1)

    def test_diagonal(self):
        pts = ideal_buffer_points(Point(0, 0), Point(4, 8), 1)
        assert pts == [Point(2, 4)]

    def test_points_between_endpoints(self):
        pts = ideal_buffer_points(Point(1, 2), Point(7, 9), 5)
        for p in pts:
            assert 1 <= p.x <= 7 and 2 <= p.y <= 9


class TestFeasibleRegion:
    def test_box_centered(self):
        die = Rect(0, 0, 10, 10)
        fr = feasible_region_for(Point(5, 5), spacing_mm=2.0, die=die, alpha=0.5)
        assert fr.box == Rect(4, 4, 6, 6)
        assert fr.contains(Point(5, 5))

    def test_clipped_to_die(self):
        die = Rect(0, 0, 10, 10)
        fr = feasible_region_for(Point(0.5, 0.5), spacing_mm=4.0, die=die, alpha=0.5)
        assert fr.box.x0 == 0 and fr.box.y0 == 0

    def test_bad_spacing(self):
        with pytest.raises(ConfigurationError):
            feasible_region_for(Point(0, 0), 0.0, Rect(0, 0, 1, 1))

    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            feasible_region_for(Point(0, 0), 1.0, Rect(0, 0, 1, 1), alpha=-1)

    def test_wider_alpha_wider_box(self):
        die = Rect(0, 0, 10, 10)
        narrow = feasible_region_for(Point(5, 5), 2.0, die, alpha=0.25)
        wide = feasible_region_for(Point(5, 5), 2.0, die, alpha=1.0)
        assert wide.box.contains_rect(narrow.box)
