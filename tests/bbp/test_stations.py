"""Station-based global buffering (the Dragan-style baseline)."""

import pytest

from repro.bbp.stations import (
    BufferStation,
    StationAssigner,
    stations_from_points,
)
from repro.errors import ConfigurationError
from repro.geometry import Point
from repro.netlist import Net, Pin


def _net(name, src, dst):
    return Net(
        name=name,
        source=Pin(f"{name}.s", Point(*src)),
        sinks=[Pin(f"{name}.t", Point(*dst))],
    )


class TestStations:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            BufferStation(location=Point(0, 0), capacity=0)

    def test_cost_rises_to_infinity(self):
        st = BufferStation(location=Point(0, 0), capacity=2)
        c0 = st.cost()
        st.used = 1
        c1 = st.cost()
        st.used = 2
        assert c0 < c1
        assert st.cost() == float("inf")
        assert st.full


class TestClustering:
    def test_distant_points_stay_separate(self):
        stations = stations_from_points(
            [Point(0, 0), Point(10, 10)], merge_radius_mm=1.0
        )
        assert len(stations) == 2
        assert all(s.capacity == 1 for s in stations)

    def test_close_points_merge(self):
        stations = stations_from_points(
            [Point(0, 0), Point(0.5, 0), Point(1.0, 0)], merge_radius_mm=0.6
        )
        assert len(stations) == 1
        assert stations[0].capacity == 3
        assert stations[0].location == Point(0.5, 0)

    def test_transitive_merge(self):
        # a-b close, b-c close, a-c far: single-linkage joins all three.
        stations = stations_from_points(
            [Point(0, 0), Point(1, 0), Point(2, 0)], merge_radius_mm=1.0
        )
        assert len(stations) == 1

    def test_capacity_per_point(self):
        stations = stations_from_points([Point(0, 0)], 0.5, capacity_per_point=4)
        assert stations[0].capacity == 4

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            stations_from_points([Point(0, 0)], -1.0)


class TestAssignment:
    def test_short_net_needs_no_stations(self):
        assigner = StationAssigner([], spacing_mm=5.0)
        result = assigner.assign_net(_net("n", (0, 0), (3, 0)))
        assert result.assigned and result.chain == []

    def test_single_buffer_chain(self):
        stations = [BufferStation(Point(5, 0), capacity=1)]
        assigner = StationAssigner(stations, spacing_mm=5.0)
        result = assigner.assign_net(_net("n", (0, 0), (9, 0)))
        assert result.assigned
        assert result.chain == [stations[0]]
        assert stations[0].used == 1
        # Station on the direct path: 5 + 4 = 9 -> no detour.
        assert result.detour_mm == pytest.approx(0.0)

    def test_unreachable_station_fails(self):
        stations = [BufferStation(Point(50, 50), capacity=4)]
        assigner = StationAssigner(stations, spacing_mm=5.0)
        result = assigner.assign_net(_net("n", (0, 0), (9, 0)))
        assert not result.assigned
        assert stations[0].used == 0  # rollback

    def test_capacity_respected(self):
        stations = [BufferStation(Point(5, 0), capacity=1)]
        assigner = StationAssigner(stations, spacing_mm=5.0)
        a = assigner.assign_net(_net("a", (0, 0), (9, 0)))
        b = assigner.assign_net(_net("b", (0, 0.5), (9, 0.5)))
        assert a.assigned
        assert not b.assigned  # the only station is full

    def test_prefers_low_detour(self):
        on_path = BufferStation(Point(5, 0), capacity=10)
        off_path = BufferStation(Point(5, 4), capacity=10)
        assigner = StationAssigner([off_path, on_path], spacing_mm=6.0)
        result = assigner.assign_net(_net("n", (0, 0), (10, 0)))
        assert result.chain == [on_path]

    def test_congestion_spreads_load(self):
        a = BufferStation(Point(5, 0.4), capacity=2)
        b = BufferStation(Point(5, -0.4), capacity=2)
        assigner = StationAssigner([a, b], spacing_mm=6.0, detour_weight=0.1)
        for i in range(4):
            result = assigner.assign_net(_net(f"n{i}", (0, 0), (10, 0)))
            assert result.assigned
        assert a.used == 2 and b.used == 2

    def test_two_buffer_chain(self):
        stations = [
            BufferStation(Point(4, 0), capacity=1),
            BufferStation(Point(8, 0), capacity=1),
        ]
        assigner = StationAssigner(stations, spacing_mm=4.5)
        result = assigner.assign_net(_net("n", (0, 0), (12, 0)))
        assert result.assigned
        assert [s.location for s in result.chain] == [Point(4, 0), Point(8, 0)]

    def test_rollback_on_partial_chain(self):
        # First hop exists, second impossible: the first reservation must
        # be released.
        stations = [BufferStation(Point(4, 0), capacity=1)]
        assigner = StationAssigner(stations, spacing_mm=4.5)
        result = assigner.assign_net(_net("n", (0, 0), (12, 0)))
        assert not result.assigned
        assert stations[0].used == 0

    def test_multipin_rejected(self):
        assigner = StationAssigner([], spacing_mm=5.0)
        net = Net(
            name="m",
            source=Pin("m.s", Point(0, 0)),
            sinks=[Pin("m.a", Point(1, 0)), Pin("m.b", Point(0, 1))],
        )
        with pytest.raises(ConfigurationError):
            assigner.assign_net(net)

    def test_assign_all_longest_first(self):
        # One station slot: the longer net gets it.
        stations = [BufferStation(Point(5, 0), capacity=1)]
        assigner = StationAssigner(stations, spacing_mm=5.5)
        nets = [
            _net("short", (1, 0), (9, 0)),
            _net("long", (0, 0), (10, 0)),
        ]
        results = {r.net_name: r for r in assigner.assign_all(nets)}
        assert results["long"].assigned
        assert not results["short"].assigned


class TestEndToEndWithBbp:
    def test_stations_from_bbp_plan(self):
        from repro.bbp import BbpConfig, BbpPlanner
        from repro.bbp.stations import stations_from_bbp
        from repro.benchmarks import load_benchmark
        from repro.netlist import decompose_to_two_pin

        bench = load_benchmark("apte", seed=0)
        bbp = BbpPlanner(
            bench.graph, bench.floorplan, bench.netlist,
            BbpConfig(length_limit=6, postprocess=False),
        ).run()
        stations = stations_from_bbp(bbp, merge_radius_mm=0.5, headroom=2)
        assert stations
        assert sum(s.capacity for s in stations) == 2 * bbp.num_buffers

        spacing = 6 * bench.graph.tile_w
        assigner = StationAssigner(stations, spacing_mm=spacing, slack=1.5)
        results = assigner.assign_all(
            list(decompose_to_two_pin(bench.netlist))
        )
        assigned = sum(1 for r in results if r.assigned)
        # With 2x headroom and hop slack, most nets find chains; the
        # stragglers (station-starved corridors) are exactly the failure
        # mode the buffer-site methodology dissolves.
        assert assigned >= 0.6 * len(results)
        assert all(s.used <= s.capacity for s in stations)
