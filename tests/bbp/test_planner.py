"""BBP/FR baseline planner."""

import pytest

from repro.bbp import BbpConfig, BbpPlanner, max_tile_area_pct
from repro.floorplan import Block, Floorplan
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.technology import TECH_180NM
from repro.tilegraph import CapacityModel, TileGraph


def _setup(block_specs=(), nets=(), capacity=10, size=12):
    die = Rect(0, 0, float(size), float(size))
    graph = TileGraph(die, size, size, CapacityModel.uniform(capacity))
    blocks = [
        Block(name=f"b{i}", width=w, height=h, x=x, y=y)
        for i, (x, y, w, h) in enumerate(block_specs)
    ]
    plan = Floorplan(die=die, blocks=blocks)
    plan.validate()
    netlist = Netlist(
        nets=[
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(*src)),
                sinks=[Pin(f"n{i}.t", Point(*dst))],
            )
            for i, (src, dst) in enumerate(nets)
        ]
    )
    return graph, plan, netlist


class TestBufferCount:
    def test_short_net_none(self):
        graph, plan, netlist = _setup(nets=[((0.5, 0.5), (2.5, 0.5))])
        planner = BbpPlanner(graph, plan, netlist, BbpConfig(length_limit=5))
        assert planner.buffers_needed(netlist.get("n0")) == 0

    def test_distance_rule(self):
        graph, plan, netlist = _setup(nets=[((0.5, 0.5), (10.5, 0.5))])
        planner = BbpPlanner(graph, plan, netlist, BbpConfig(length_limit=5))
        # 10 tiles / L=5 -> 1 buffer.
        assert planner.buffers_needed(netlist.get("n0")) == 1


class TestRun:
    def test_free_ideal_positions_used(self):
        graph, plan, netlist = _setup(nets=[((0.5, 6.0), (11.5, 6.0))])
        planner = BbpPlanner(graph, plan, netlist, BbpConfig(length_limit=4))
        result = planner.run()
        assert result.num_buffers == 2
        assert result.unplaceable == 0
        # No blocks: buffers at their ideal split points.
        for p in result.buffer_points:
            assert p.y == pytest.approx(6.0)

    def test_buffers_pushed_out_of_blocks(self):
        # A big block covers the middle; ideal points fall inside it.
        graph, plan, netlist = _setup(
            block_specs=[(3, 3, 6, 6)],
            nets=[((0.5, 6.0), (11.5, 6.0))],
        )
        planner = BbpPlanner(graph, plan, netlist, BbpConfig(length_limit=4))
        result = planner.run()
        assert result.num_buffers == 2
        for p in result.buffer_points:
            assert plan.free_space(p), p

    def test_multipin_decomposed(self):
        graph, plan, _ = _setup()
        netlist = Netlist(
            nets=[
                Net(
                    name="m",
                    source=Pin("m.s", Point(0.5, 0.5)),
                    sinks=[
                        Pin("m.a", Point(11.5, 0.5)),
                        Pin("m.b", Point(0.5, 11.5)),
                    ],
                )
            ]
        )
        planner = BbpPlanner(graph, plan, netlist)
        assert len(planner.netlist) == 2
        result = planner.run()
        assert set(result.routes) == {"m#0", "m#1"}

    def test_routes_cover_all_nets(self):
        graph, plan, netlist = _setup(
            nets=[((0.5, 0.5), (11.5, 11.5)), ((0.5, 11.5), (11.5, 0.5))]
        )
        result = BbpPlanner(graph, plan, netlist).run()
        assert len(result.routes) == 2
        for tree in result.routes.values():
            tree.validate()

    def test_wire_usage_recorded(self):
        graph, plan, netlist = _setup(nets=[((0.5, 0.5), (11.5, 0.5))])
        result = BbpPlanner(graph, plan, netlist).run()
        assert result.wire_congestion_max > 0
        assert result.wirelength_mm > 0

    def test_delays_positive(self):
        graph, plan, netlist = _setup(nets=[((0.5, 0.5), (11.5, 0.5))])
        result = BbpPlanner(graph, plan, netlist).run()
        assert result.max_delay_ps > 0
        assert result.avg_delay_ps > 0


class TestMtap:
    def test_zero_when_empty(self, graph10):
        import numpy as np

        assert max_tile_area_pct(
            np.zeros((10, 10), dtype=np.int64), graph10, TECH_180NM
        ) == 0.0

    def test_scales_with_worst_tile(self, graph10):
        import numpy as np

        counts = np.zeros((10, 10), dtype=np.int64)
        counts[3, 3] = 50
        pct = max_tile_area_pct(counts, graph10, TECH_180NM)
        expected = 100.0 * 50 * TECH_180NM.buffer_area_mm2 / 1.0
        assert pct == pytest.approx(expected)

    def test_clustering_raises_mtap(self):
        # Blocked middle forces both nets' buffers into the same channel.
        graph, plan, netlist = _setup(
            block_specs=[(2, 0, 8, 5.8), (2, 6.2, 8, 5.8)],
            nets=[
                ((0.5, 6.0), (11.5, 6.0)),
                ((0.5, 6.1), (11.5, 6.1)),
            ],
        )
        result = BbpPlanner(graph, plan, netlist, BbpConfig(length_limit=3)).run()
        assert result.num_buffers >= 4
        # All buffers in the one channel row.
        rows = {graph.tile_of(p)[1] for p in result.buffer_points}
        assert rows <= {5, 6}
