"""Buffer library behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import TECH_180NM, BufferKind, BufferLibrary


def _kind(name, inverting=False, res=100.0, cap=1e-14, delay=1e-11):
    return BufferKind(
        name=name, inverting=inverting, output_res=res, input_cap=cap,
        intrinsic_delay=delay,
    )


class TestBufferKind:
    def test_valid(self):
        k = _kind("BUF")
        assert not k.inverting

    def test_bad_rc_rejected(self):
        with pytest.raises(ConfigurationError):
            _kind("B", res=0)
        with pytest.raises(ConfigurationError):
            _kind("B", cap=-1e-15)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            _kind("B", delay=-1e-12)


class TestBufferLibrary:
    def test_default_is_first_when_unset(self):
        lib = BufferLibrary(kinds=[_kind("A"), _kind("B")])
        assert lib.default_buffer.name == "A"

    def test_explicit_default(self):
        lib = BufferLibrary(kinds=[_kind("A"), _kind("B")], default_name="B")
        assert lib.default_buffer.name == "B"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferLibrary(kinds=[_kind("A"), _kind("A")])

    def test_unknown_default_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferLibrary(kinds=[_kind("A")], default_name="Z")

    def test_get_unknown_raises(self):
        lib = BufferLibrary(kinds=[_kind("A")])
        with pytest.raises(ConfigurationError):
            lib.get("missing")

    def test_empty_library_default_raises(self):
        with pytest.raises(ConfigurationError):
            BufferLibrary().default_buffer

    def test_from_technology(self):
        lib = BufferLibrary.from_technology(TECH_180NM)
        assert lib.default_buffer.name == "BUF_X1"
        assert not lib.default_buffer.inverting
        names = {k.name for k in lib.kinds}
        assert {"BUF_X1", "BUF_X2", "BUF_X4", "INV_X1"} <= names

    def test_strength_scaling(self):
        lib = BufferLibrary.from_technology(TECH_180NM)
        b1, b4 = lib.get("BUF_X1"), lib.get("BUF_X4")
        assert b4.output_res == pytest.approx(b1.output_res / 4)
        assert b4.input_cap == pytest.approx(b1.input_cap * 4)

    def test_non_inverting_filter(self):
        lib = BufferLibrary.from_technology(TECH_180NM)
        assert all(not k.inverting for k in lib.non_inverting())
        assert len(lib.non_inverting()) == 3
