"""Technology parameter validation and helpers."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.technology import TECH_180NM, Technology


class TestTechnology:
    def test_default_node_sane(self):
        assert TECH_180NM.name == "0.18um"
        assert TECH_180NM.wire_res_per_mm > 0
        assert TECH_180NM.wire_cap_per_mm > 0

    def test_wire_scaling_linear(self):
        assert TECH_180NM.wire_resistance(2.0) == pytest.approx(
            2 * TECH_180NM.wire_resistance(1.0)
        )
        assert TECH_180NM.wire_capacitance(3.0) == pytest.approx(
            3 * TECH_180NM.wire_capacitance(1.0)
        )

    def test_zero_length_wire(self):
        assert TECH_180NM.wire_resistance(0.0) == 0.0
        assert TECH_180NM.wire_capacitance(0.0) == 0.0

    @pytest.mark.parametrize(
        "field",
        [
            "wire_res_per_mm",
            "wire_cap_per_mm",
            "driver_res",
            "sink_cap",
            "buffer_res",
            "buffer_cap",
            "buffer_area_mm2",
            "wire_pitch_mm",
        ],
    )
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TECH_180NM, **{field: 0.0})

    def test_negative_intrinsic_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(TECH_180NM, buffer_delay=-1e-12)

    def test_realistic_magnitudes(self):
        # 10mm of global wire: hundreds of ohms, ~1pF.
        assert 100 < TECH_180NM.wire_resistance(10.0) < 10_000
        assert 0.1e-12 < TECH_180NM.wire_capacitance(10.0) < 10e-12
