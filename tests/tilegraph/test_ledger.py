"""SiteLedger transactions and the SiteCostCache (Eq. (2) at p=0)."""

import math

import pytest

from repro.core.costs import buffer_site_cost
from repro.errors import ConfigurationError
from repro.tilegraph.ledger import SiteCostCache, SiteLedger


class TestLedgerBasics:
    def test_commit_keeps_deltas(self, graph10_sites):
        ledger = graph10_sites.ledger()
        with ledger.transaction():
            graph10_sites.use_site((2, 3), 2)
        assert graph10_sites.used_site_count((2, 3)) == 2
        assert ledger.commits == 1 and ledger.rollbacks == 0

    def test_rollback_restores_sites_and_wires(self, graph10_sites):
        ledger = graph10_sites.ledger()
        graph10_sites.use_site((1, 1), 1)
        txn = ledger.begin()
        graph10_sites.use_site((1, 1), 2)
        graph10_sites.use_site((4, 4), 1)
        graph10_sites.add_wire((0, 0), (1, 0), 3)
        ledger.rollback(txn)
        assert graph10_sites.used_site_count((1, 1)) == 1
        assert graph10_sites.used_site_count((4, 4)) == 0
        assert graph10_sites.wire_usage((0, 0), (1, 0)) == 0
        assert ledger.entries_rolled_back == 3

    def test_exception_rolls_back(self, graph10_sites):
        ledger = graph10_sites.ledger()
        with pytest.raises(RuntimeError):
            with ledger.transaction():
                graph10_sites.use_site((5, 5), 3)
                raise RuntimeError("boom")
        assert graph10_sites.used_site_count((5, 5)) == 0
        assert not ledger.active

    def test_ledger_is_per_graph_singleton(self, graph10_sites):
        assert graph10_sites.ledger() is graph10_sites.ledger()


class TestNesting:
    def test_inner_commit_folds_into_outer_rollback(self, graph10_sites):
        ledger = graph10_sites.ledger()
        outer = ledger.begin()
        with ledger.transaction():  # commits on exit
            graph10_sites.use_site((0, 0), 1)
        graph10_sites.use_site((0, 1), 1)
        ledger.rollback(outer)
        # The inner committed work is undone by the outer rollback.
        assert graph10_sites.used_site_count((0, 0)) == 0
        assert graph10_sites.used_site_count((0, 1)) == 0

    def test_inner_rollback_keeps_outer(self, graph10_sites):
        ledger = graph10_sites.ledger()
        with ledger.transaction():
            graph10_sites.use_site((0, 0), 1)
            inner = ledger.begin()
            graph10_sites.use_site((0, 1), 1)
            ledger.rollback(inner)
        assert graph10_sites.used_site_count((0, 0)) == 1
        assert graph10_sites.used_site_count((0, 1)) == 0

    def test_out_of_order_close_rejected(self, graph10_sites):
        ledger = graph10_sites.ledger()
        outer = ledger.begin()
        inner = ledger.begin()
        with pytest.raises(ConfigurationError):
            ledger.commit(outer)
        ledger.rollback(inner)
        ledger.rollback(outer)
        assert not ledger.active

    def test_double_close_rejected(self, graph10_sites):
        ledger = graph10_sites.ledger()
        txn = ledger.begin()
        ledger.commit(txn)
        with pytest.raises(ConfigurationError):
            ledger.commit(txn)

    def test_early_explicit_rollback_in_scope(self, graph10_sites):
        ledger = graph10_sites.ledger()
        with ledger.transaction() as txn:
            graph10_sites.use_site((3, 3), 1)
            txn.rollback()
        assert graph10_sites.used_site_count((3, 3)) == 0
        assert ledger.rollbacks == 1 and ledger.commits == 0


class TestBulkGuards:
    def test_bulk_reset_inside_txn_rejected(self, graph10_sites):
        ledger = graph10_sites.ledger()
        with pytest.raises(ConfigurationError):
            with ledger.transaction():
                graph10_sites.reset_usage()
        assert not ledger.active

    def test_bulk_reset_outside_txn_ok(self, graph10_sites):
        graph10_sites.ledger()  # registered observer
        graph10_sites.use_site((0, 0), 1)
        graph10_sites.reset_usage()
        assert graph10_sites.total_used_sites == 0


class TestFlatReads:
    def test_free_matches_graph(self, graph10_sites):
        ledger = graph10_sites.ledger()
        graph10_sites.use_site((7, 2), 2)
        assert ledger.free_tile((7, 2)) == graph10_sites.free_sites((7, 2)) == 1

    def test_overbooked_indices(self, graph10_sites):
        ledger = graph10_sites.ledger()
        graph10_sites.use_site((9, 9), 4)  # capacity 3
        assert ledger.overbooked_indices() == [graph10_sites.tile_index((9, 9))]


class TestSiteCostCache:
    def test_matches_scalar_cost(self, graph10_sites):
        cache = graph10_sites.site_cost_cache()
        graph10_sites.use_site((2, 2), 2)
        for tile in [(0, 0), (2, 2), (9, 9)]:
            assert cache.cost(tile) == buffer_site_cost(graph10_sites, tile)

    def test_inf_on_exhausted_or_siteless(self, graph10):
        cache = graph10.site_cost_cache()
        graph10.set_sites((1, 1), 1)
        graph10.use_site((1, 1), 1)
        assert math.isinf(cache.cost((0, 0)))  # no sites at all
        assert math.isinf(cache.cost((1, 1)))  # exhausted

    def test_dirty_set_recompute_is_partial(self, graph10_sites):
        cache = graph10_sites.site_cost_cache()
        cache.costs()  # full refresh
        full = cache.tiles_recomputed
        graph10_sites.use_site((4, 4), 1)
        cache.costs()
        assert cache.tiles_recomputed == full + 1

    def test_cost_fn_sees_later_changes(self, graph10_sites):
        q_of = graph10_sites.site_cost_cache().cost_fn()
        before = q_of((6, 6))
        graph10_sites.use_site((6, 6), 1)
        after = q_of((6, 6))
        assert after > before
        assert after == buffer_site_cost(graph10_sites, (6, 6))

    def test_cache_is_per_graph_singleton(self, graph10_sites):
        assert graph10_sites.site_cost_cache() is graph10_sites.site_cost_cache()


class TestKindedJournals:
    """Per-kind site bookings must roll back exactly like plain ones.

    A kinded ``use_site`` journals two entries — the site count and the
    kind tally — and rollback must undo both without double-counting the
    shared ``used_sites`` vector.
    """

    def _key(self, graph, tile, kind):
        return (graph.tile_index(tile), kind)

    def test_rollback_restores_kind_used(self, graph10_sites):
        g = graph10_sites
        ledger = g.ledger()
        g.use_site((1, 1), 1, kind="BUF_X4")
        txn = ledger.begin()
        g.use_site((1, 1), 1, kind="BUF_X4")
        g.use_site((2, 2), 1, kind="BUF_X2")
        g.use_site((3, 3), 1)  # default kind: no kind journal entry
        ledger.rollback(txn)
        assert g.used_site_count((1, 1)) == 1
        assert g.used_site_count((2, 2)) == 0
        assert g.used_site_count((3, 3)) == 0
        assert g.kind_used == {self._key(g, (1, 1), "BUF_X4"): 1}

    def test_rip_inside_rollback_restores_kinds(self, graph10_sites):
        """The Stage-4 shape: release a kinded buffer inside a scope that
        then rolls back — the kind tally must come back."""
        g = graph10_sites
        ledger = g.ledger()
        g.use_site((4, 4), 2, kind="BUF_X2")
        with pytest.raises(RuntimeError):
            with ledger.transaction():
                g.use_site((4, 4), -2, kind="BUF_X2")
                g.use_site((5, 5), 1, kind="BUF_X4")
                raise RuntimeError("boom")
        assert g.used_site_count((4, 4)) == 2
        assert g.used_site_count((5, 5)) == 0
        assert g.kind_used == {self._key(g, (4, 4), "BUF_X2"): 2}

    def test_nested_inner_commit_outer_rollback(self, graph10_sites):
        g = graph10_sites
        ledger = g.ledger()
        outer = ledger.begin()
        with ledger.transaction():
            g.use_site((0, 0), 1, kind="BUF_X4")
        g.use_site((0, 1), 1, kind="BUF_X2")
        ledger.rollback(outer)
        assert g.used_site_count((0, 0)) == 0
        assert g.used_site_count((0, 1)) == 0
        assert g.kind_used == {}

    def test_snapshot_state_round_trips_kinds(self, graph10_sites):
        g = graph10_sites
        ledger = g.ledger()
        g.use_site((2, 3), 2, kind="BUF_X4")
        g.use_site((2, 3), 1)
        state = ledger.snapshot_state()
        assert state["kinds"] == [[g.tile_index((2, 3)), "BUF_X4", 2]]
        g.use_site((2, 3), -2, kind="BUF_X4")
        ledger.restore_state(state)
        assert g.used_site_count((2, 3)) == 3
        assert g.kind_used == {(g.tile_index((2, 3)), "BUF_X4"): 2}

    def test_legacy_state_without_kinds_accepted(self, graph10_sites):
        g = graph10_sites
        ledger = g.ledger()
        g.use_site((6, 6), 1, kind="BUF_X2")
        state = ledger.snapshot_state()
        del state["kinds"]  # a checkpoint written before the library era
        ledger.restore_state(state)
        assert g.used_site_count((6, 6)) == 1
        assert g.kind_used == {}  # all bookings become the default kind

    def test_default_only_snapshot_has_no_kinds_key(self, graph10_sites):
        g = graph10_sites
        g.use_site((1, 2), 2)
        state = g.ledger().snapshot_state()
        assert "kinds" not in state  # payload stays byte-identical to v1
