"""Hierarchical site budgeting (paper Section I-B recipe)."""

import pytest

from repro.errors import ConfigurationError
from repro.floorplan import Block, Floorplan
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import CapacityModel, TileGraph
from repro.tilegraph.hierarchy import (
    CHANNELS,
    SiteDemand,
    block_budgets,
    distribute_sites_by_budget,
    unconstrained_site_demand,
)


def _setup():
    die = Rect(0, 0, 12, 12)
    graph = TileGraph(die, 12, 12, CapacityModel.uniform(8))
    plan = Floorplan(
        die=die,
        blocks=[
            Block(name="left", width=4, height=10, x=1, y=1),
            Block(name="right", width=4, height=10, x=7, y=1),
        ],
    )
    plan.validate()
    nets = [
        Net(
            name=f"n{i}",
            source=Pin(f"n{i}.s", Point(0.5, 1.5 + i)),
            sinks=[Pin(f"n{i}.t", Point(11.5, 1.5 + i))],
        )
        for i in range(6)
    ]
    return graph, plan, Netlist(nets=nets)


class TestDemandCensus:
    def test_counts_cover_all_buffers(self):
        graph, plan, netlist = _setup()
        demand = unconstrained_site_demand(graph, plan, netlist, length_limit=3)
        assert demand.total == graph.total_used_sites > 0
        assert sum(demand.per_block.values()) == demand.total

    def test_crossing_nets_demand_block_interiors(self):
        graph, plan, netlist = _setup()
        demand = unconstrained_site_demand(graph, plan, netlist, length_limit=3)
        # Nets cross both blocks; with L=3 over a 12-tile span, buffers
        # must land inside at least one block.
        assert demand.demand_for("left") + demand.demand_for("right") > 0


class TestBudgets:
    def test_headroom_scaling(self):
        demand = SiteDemand(per_block={"a": 10, CHANNELS: 4}, total=14)
        budgets = block_budgets(demand, headroom=2.0)
        assert budgets == {"a": 20, CHANNELS: 8}

    def test_minimum_floor(self):
        demand = SiteDemand(per_block={"a": 0}, total=0)
        assert block_budgets(demand, minimum=5) == {"a": 5}

    def test_bad_headroom(self):
        with pytest.raises(ConfigurationError):
            block_budgets(SiteDemand({}, 0), headroom=0.5)


class TestDistribution:
    def test_budgets_land_in_their_blocks(self):
        graph, plan, _ = _setup()
        distribute_sites_by_budget(
            graph, plan, {"left": 30, "right": 12, CHANNELS: 8}, seed=1
        )
        totals = {"left": 0, "right": 0, CHANNELS: 0}
        for tile in graph.tiles():
            block = plan.block_at(graph.tile_center(tile))
            key = block.name if block else CHANNELS
            totals[key] += graph.site_count(tile)
        assert totals == {"left": 30, "right": 12, CHANNELS: 8}

    def test_no_site_block_rejected(self):
        die = Rect(0, 0, 10, 10)
        graph = TileGraph(die, 10, 10)
        plan = Floorplan(
            die=die,
            blocks=[
                Block(
                    name="cache", width=4, height=4, x=3, y=3,
                    allows_buffer_sites=False,
                )
            ],
        )
        with pytest.raises(ConfigurationError):
            distribute_sites_by_budget(graph, plan, {"cache": 5})

    def test_deterministic(self):
        graph_a, plan, _ = _setup()
        graph_b = TileGraph(plan.die, 12, 12, CapacityModel.uniform(8))
        distribute_sites_by_budget(graph_a, plan, {"left": 9, CHANNELS: 3}, seed=4)
        distribute_sites_by_budget(graph_b, plan, {"left": 9, CHANNELS: 3}, seed=4)
        assert (graph_a.sites == graph_b.sites).all()

    def test_end_to_end_budgeted_plan_works(self):
        # The full §I-B loop: census, budget, redistribute, replan. More
        # headroom must help (fewer or equal failures), and the budgeted
        # plan must respect site capacity — the exact fail count depends
        # on where the random scatter leaves row gaps (Table III behaviour).
        from repro.core import RabidConfig, RabidPlanner
        from repro.tilegraph import buffer_density_stats

        fails_by_headroom = {}
        for headroom in (1.0, 6.0):
            graph, plan, netlist = _setup()
            demand = unconstrained_site_demand(graph, plan, netlist, length_limit=3)
            budgets = block_budgets(demand, headroom=headroom, minimum=4)
            graph.reset_usage()
            distribute_sites_by_budget(graph, plan, budgets, seed=0)
            result = RabidPlanner(
                graph,
                netlist,
                RabidConfig(length_limit=3, stage4_iterations=2, window_margin=12),
            ).run()
            fails_by_headroom[headroom] = len(result.failed_nets)
            assert buffer_density_stats(graph).overflow == 0
        assert fails_by_headroom[6.0] <= fails_by_headroom[1.0]
        assert fails_by_headroom[6.0] <= 1
