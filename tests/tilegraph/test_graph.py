"""TileGraph geometry, edges, and usage accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Point, Rect
from repro.tilegraph import CapacityModel, TileGraph


class TestConstruction:
    def test_basic_dimensions(self, graph10):
        assert graph10.num_tiles == 100
        assert graph10.tile_w == pytest.approx(1.0)
        assert graph10.tile_area_mm2 == pytest.approx(1.0)
        assert graph10.num_edges == 9 * 10 * 2

    def test_bad_grid_rejected(self, die10):
        with pytest.raises(ConfigurationError):
            TileGraph(die10, 0, 5)

    def test_single_tile_graph(self, die10):
        g = TileGraph(die10, 1, 1)
        assert g.num_edges == 0
        assert list(g.tiles()) == [(0, 0)]

    def test_nonsquare_tiles(self):
        g = TileGraph(Rect(0, 0, 12, 6), 4, 3)
        assert g.tile_w == pytest.approx(3.0)
        assert g.tile_h == pytest.approx(2.0)
        assert g.edge_length_mm((0, 0), (1, 0)) == pytest.approx(3.0)
        assert g.edge_length_mm((0, 0), (0, 1)) == pytest.approx(2.0)


class TestGeometry:
    def test_tile_of_interior(self, graph10):
        assert graph10.tile_of(Point(0.5, 0.5)) == (0, 0)
        assert graph10.tile_of(Point(9.9, 0.1)) == (9, 0)

    def test_tile_of_clamps_outside(self, graph10):
        assert graph10.tile_of(Point(-5, -5)) == (0, 0)
        assert graph10.tile_of(Point(50, 50)) == (9, 9)

    def test_tile_of_boundary(self, graph10):
        # The die's far corner maps to the last tile, not an off-grid one.
        assert graph10.tile_of(Point(10.0, 10.0)) == (9, 9)

    def test_center_roundtrip(self, graph10):
        for tile in [(0, 0), (3, 7), (9, 9)]:
            assert graph10.tile_of(graph10.tile_center(tile)) == tile

    def test_tile_rect(self, graph10):
        r = graph10.tile_rect((2, 3))
        assert (r.x0, r.y0, r.x1, r.y1) == (2, 3, 3, 4)

    def test_neighbors_interior(self, graph10):
        assert set(graph10.neighbors((5, 5))) == {(6, 5), (4, 5), (5, 6), (5, 4)}

    def test_neighbors_corner(self, graph10):
        assert set(graph10.neighbors((0, 0))) == {(1, 0), (0, 1)}
        assert set(graph10.neighbors((9, 9))) == {(8, 9), (9, 8)}

    def test_in_bounds(self, graph10):
        assert graph10.in_bounds((0, 0)) and graph10.in_bounds((9, 9))
        assert not graph10.in_bounds((10, 0)) and not graph10.in_bounds((0, -1))


class TestWires:
    def test_capacity_uniform(self, graph10):
        assert graph10.wire_capacity((0, 0), (1, 0)) == 10
        assert graph10.wire_capacity((3, 3), (3, 4)) == 10

    def test_usage_symmetric(self, graph10):
        graph10.add_wire((2, 2), (3, 2))
        assert graph10.wire_usage((3, 2), (2, 2)) == 1

    def test_add_remove(self, graph10):
        graph10.add_wire((0, 0), (0, 1), 3)
        graph10.add_wire((0, 0), (0, 1), -2)
        assert graph10.wire_usage((0, 0), (0, 1)) == 1

    def test_negative_usage_rejected(self, graph10):
        with pytest.raises(ConfigurationError):
            graph10.add_wire((0, 0), (1, 0), -1)

    def test_non_adjacent_rejected(self, graph10):
        with pytest.raises(ConfigurationError):
            graph10.add_wire((0, 0), (2, 0))
        with pytest.raises(ConfigurationError):
            graph10.wire_usage((0, 0), (1, 1))

    def test_edges_enumeration(self, graph10):
        edges = list(graph10.edges())
        assert len(edges) == graph10.num_edges
        assert len(set(edges)) == len(edges)


class TestSites:
    def test_set_and_use(self, graph10):
        graph10.set_sites((1, 1), 5)
        graph10.use_site((1, 1), 2)
        assert graph10.site_count((1, 1)) == 5
        assert graph10.used_site_count((1, 1)) == 2
        assert graph10.free_sites((1, 1)) == 3

    def test_negative_sites_rejected(self, graph10):
        with pytest.raises(ConfigurationError):
            graph10.set_sites((0, 0), -1)

    def test_cannot_set_below_usage(self, graph10):
        graph10.set_sites((0, 0), 3)
        graph10.use_site((0, 0), 2)
        with pytest.raises(ConfigurationError):
            graph10.set_sites((0, 0), 1)

    def test_oversubscription_allowed_but_tracked(self, graph10):
        graph10.set_sites((0, 0), 1)
        graph10.use_site((0, 0), 2)
        assert graph10.free_sites((0, 0)) == -1

    def test_release_below_zero_rejected(self, graph10):
        with pytest.raises(ConfigurationError):
            graph10.use_site((0, 0), -1)

    def test_totals(self, graph10):
        graph10.set_sites((0, 0), 4)
        graph10.set_sites((5, 5), 6)
        graph10.use_site((5, 5), 1)
        assert graph10.total_sites == 10
        assert graph10.total_used_sites == 1


class TestSnapshots:
    def test_reset(self, graph10):
        graph10.add_wire((0, 0), (1, 0))
        graph10.set_sites((0, 0), 2)
        graph10.use_site((0, 0))
        graph10.reset_usage()
        assert graph10.wire_usage((0, 0), (1, 0)) == 0
        assert graph10.total_used_sites == 0
        assert graph10.total_sites == 2  # capacities/sites preserved

    def test_snapshot_restore(self, graph10):
        graph10.add_wire((0, 0), (1, 0))
        snap = graph10.snapshot_usage()
        graph10.add_wire((0, 0), (1, 0), 5)
        graph10.restore_usage(snap)
        assert graph10.wire_usage((0, 0), (1, 0)) == 1
