"""Congestion statistics."""

import pytest

from repro.tilegraph import (
    TileGraph,
    buffer_density_stats,
    wire_congestion_stats,
)
from repro.tilegraph.capacity import CapacityModel
from repro.geometry import Rect


class TestWireStats:
    def test_empty_graph(self, graph10):
        stats = wire_congestion_stats(graph10)
        assert stats.maximum == 0.0
        assert stats.average == 0.0
        assert stats.overflow == 0
        assert stats.satisfies_capacity()

    def test_single_loaded_edge(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 5)
        stats = wire_congestion_stats(graph10)
        assert stats.maximum == pytest.approx(0.5)
        assert stats.overflow == 0

    def test_overflow_counted(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 13)
        graph10.add_wire((5, 5), (5, 6), 11)
        stats = wire_congestion_stats(graph10)
        assert stats.maximum == pytest.approx(1.3)
        assert stats.overflow == 3 + 1
        assert not stats.satisfies_capacity()

    def test_average_over_all_edges(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 10)
        stats = wire_congestion_stats(graph10)
        assert stats.average == pytest.approx(1.0 / graph10.num_edges)

    def test_zero_capacity_edge_with_usage_is_infinite(self):
        g = TileGraph(Rect(0, 0, 2, 1), 2, 1, CapacityModel.uniform(0))
        g.add_wire((0, 0), (1, 0))
        stats = wire_congestion_stats(g)
        assert stats.maximum == float("inf")
        assert stats.overflow == 1

    def test_single_tile_graph_no_edges(self):
        g = TileGraph(Rect(0, 0, 1, 1), 1, 1)
        stats = wire_congestion_stats(g)
        assert stats.maximum == 0.0 and stats.overflow == 0


class TestBufferStats:
    def test_no_sites(self, graph10):
        stats = buffer_density_stats(graph10)
        assert stats.maximum == 0.0 and stats.average == 0.0

    def test_density_over_site_tiles_only(self, graph10):
        graph10.set_sites((0, 0), 4)
        graph10.set_sites((1, 0), 4)
        graph10.use_site((0, 0), 2)
        stats = buffer_density_stats(graph10)
        assert stats.maximum == pytest.approx(0.5)
        assert stats.average == pytest.approx(0.25)  # (0.5 + 0) / 2 tiles

    def test_include_empty_dilutes(self, graph10):
        graph10.set_sites((0, 0), 2)
        graph10.use_site((0, 0), 2)
        diluted = buffer_density_stats(graph10, include_empty=True)
        assert diluted.average == pytest.approx(1.0 / 100)

    def test_overflow(self, graph10):
        graph10.set_sites((0, 0), 1)
        graph10.use_site((0, 0), 3)
        stats = buffer_density_stats(graph10)
        assert stats.overflow == 2
        assert stats.maximum == pytest.approx(3.0)

    def test_usage_in_zero_site_tile_is_infinite(self, graph10):
        graph10.use_site((4, 4), 1)
        stats = buffer_density_stats(graph10)
        assert stats.maximum == float("inf")
