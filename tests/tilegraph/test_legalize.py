"""Buffer-site legalization."""

import pytest

from repro.errors import ConfigurationError
from repro.routing.tree import BufferSpec, RouteTree
from repro.tilegraph import SitePlacement, legalize_buffers


def _path_tree(tiles, name):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


class TestSitePlacement:
    def test_counts_match_graph(self, graph10_sites):
        placement = SitePlacement(graph10_sites, seed=0)
        assert placement.total_sites == graph10_sites.total_sites
        assert len(placement.sites_in((0, 0))) == 3

    def test_sites_inside_their_tile(self, graph10_sites):
        placement = SitePlacement(graph10_sites, seed=1)
        for tile in [(0, 0), (5, 7), (9, 9)]:
            rect = graph10_sites.tile_rect(tile)
            for p in placement.sites_in(tile):
                assert rect.contains(p)

    def test_deterministic(self, graph10_sites):
        a = SitePlacement(graph10_sites, seed=5)
        b = SitePlacement(graph10_sites, seed=5)
        assert a.sites_in((3, 3)) == b.sites_in((3, 3))

    def test_empty_tile(self, graph10):
        placement = SitePlacement(graph10, seed=0)
        assert placement.sites_in((4, 4)) == []


class TestLegalize:
    def test_each_buffer_gets_distinct_site(self, graph10_sites):
        t1 = _path_tree([(i, 0) for i in range(6)], "a")
        t1.apply_buffers([BufferSpec((2, 0), None), BufferSpec((4, 0), None)])
        t2 = _path_tree([(i, 1) for i in range(6)], "b")
        t2.apply_buffers([BufferSpec((2, 1), None)])
        placement = SitePlacement(graph10_sites, seed=0)
        placed = legalize_buffers({"a": t1, "b": t2}, placement)
        assert len(placed) == 3
        assert len({p.location for p in placed}) == 3

    def test_same_tile_buffers_distinct_sites(self, graph10_sites):
        paths = [
            [(1, 0), (1, 1), (0, 1)],
            [(1, 0), (1, 1), (2, 1)],
        ]
        tree = RouteTree.from_paths((1, 0), paths, [(0, 1), (2, 1)], net_name="n")
        tree.apply_buffers(
            [BufferSpec((1, 1), (0, 1)), BufferSpec((1, 1), (2, 1))]
        )
        placement = SitePlacement(graph10_sites, seed=0)
        placed = legalize_buffers({"n": tree}, placement)
        assert len(placed) == 2
        assert placed[0].location != placed[1].location
        assert all(p.tile == (1, 1) for p in placed)

    def test_location_inside_tile(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(6)], "a")
        tree.apply_buffers([BufferSpec((3, 0), None)])
        placement = SitePlacement(graph10_sites, seed=0)
        placed = legalize_buffers({"a": tree}, placement)
        assert graph10_sites.tile_rect((3, 0)).contains(placed[0].location)

    def test_overdemand_raises(self, graph10):
        graph10.set_sites((2, 0), 1)
        tree = _path_tree([(i, 0) for i in range(6)], "a")
        tree2 = _path_tree([(i, 1) for i in range(2)] + [(1, 0), (2, 0), (3, 0)], "b")
        tree.apply_buffers([BufferSpec((2, 0), None)])
        tree2.apply_buffers([BufferSpec((2, 0), None)])
        placement = SitePlacement(graph10, seed=0)
        with pytest.raises(ConfigurationError):
            legalize_buffers({"a": tree, "b": tree2}, placement)

    def test_no_buffers_no_placements(self, graph10_sites):
        tree = _path_tree([(0, 0), (1, 0)], "a")
        placement = SitePlacement(graph10_sites, seed=0)
        assert legalize_buffers({"a": tree}, placement) == []

    def test_sites_in_returns_a_copy(self, graph10_sites):
        placement = SitePlacement(graph10_sites, seed=0)
        placement.sites_in((0, 0)).clear()
        assert len(placement.sites_in((0, 0))) == 3

    def test_single_buffer_takes_site_nearest_center(self, graph10_sites):
        tree = _path_tree([(i, 0) for i in range(6)], "a")
        tree.apply_buffers([BufferSpec((3, 0), None)])
        placement = SitePlacement(graph10_sites, seed=0)
        [placed] = legalize_buffers({"a": tree}, placement)
        center = graph10_sites.tile_center((3, 0))
        best = min(
            p.manhattan_to(center) for p in placement.sites_in((3, 0))
        )
        assert placed.location.manhattan_to(center) == best

    def test_legalization_deterministic(self, graph10_sites):
        def run():
            t1 = _path_tree([(i, 0) for i in range(6)], "a")
            t1.apply_buffers(
                [BufferSpec((2, 0), None), BufferSpec((4, 0), None)]
            )
            t2 = _path_tree([(i, 1) for i in range(6)], "b")
            t2.apply_buffers([BufferSpec((2, 1), None)])
            placement = SitePlacement(graph10_sites, seed=7)
            return legalize_buffers({"a": t1, "b": t2}, placement)

        assert run() == run()

    def test_overdemand_message_names_tile_and_counts(self, graph10):
        graph10.set_sites((2, 0), 1)
        tree = _path_tree([(i, 0) for i in range(6)], "a")
        tree2 = _path_tree([(i, 1) for i in range(2)] + [(2, 0), (3, 0)], "b")
        tree.apply_buffers([BufferSpec((2, 0), None)])
        tree2.apply_buffers([BufferSpec((2, 0), None)])
        placement = SitePlacement(graph10, seed=0)
        with pytest.raises(
            ConfigurationError, match=r"\(2, 0\).*2 buffers.*1"
        ):
            legalize_buffers({"a": tree, "b": tree2}, placement)

    def test_exact_fit_consumes_every_site(self, graph10):
        graph10.set_sites((5, 5), 2)
        paths = [
            [(5, 4), (5, 5), (5, 6)],
            [(5, 4), (5, 5), (6, 5)],
        ]
        tree = RouteTree.from_paths(
            (5, 4), paths, [(5, 6), (6, 5)], net_name="n"
        )
        tree.apply_buffers(
            [BufferSpec((5, 5), (5, 6)), BufferSpec((5, 5), (6, 5))]
        )
        placement = SitePlacement(graph10, seed=0)
        placed = legalize_buffers({"n": tree}, placement)
        assert {p.location for p in placed} == set(placement.sites_in((5, 5)))

    def test_placed_buffers_carry_driven_child(self, graph10_sites):
        paths = [
            [(1, 0), (1, 1), (0, 1)],
            [(1, 0), (1, 1), (2, 1)],
        ]
        tree = RouteTree.from_paths(
            (1, 0), paths, [(0, 1), (2, 1)], net_name="n"
        )
        tree.apply_buffers(
            [BufferSpec((1, 1), (0, 1)), BufferSpec((1, 1), (2, 1))]
        )
        placement = SitePlacement(graph10_sites, seed=0)
        placed = legalize_buffers({"n": tree}, placement)
        assert {p.drives_child for p in placed} == {(0, 1), (2, 1)}
