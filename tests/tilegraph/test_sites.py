"""Buffer-site distribution."""

import pytest

from repro.errors import ConfigurationError
from repro.floorplan import Block, Floorplan
from repro.tilegraph import (
    SiteDistribution,
    blocked_region_tiles,
    distribute_sites_randomly,
)


class TestBlockedRegion:
    def test_size_and_shape(self, graph10):
        blocked = blocked_region_tiles(graph10, 4, rng=0)
        assert len(blocked) == 16
        xs = sorted({t[0] for t in blocked})
        ys = sorted({t[1] for t in blocked})
        assert xs == list(range(xs[0], xs[0] + 4))
        assert ys == list(range(ys[0], ys[0] + 4))

    def test_zero_disables(self, graph10):
        assert blocked_region_tiles(graph10, 0, rng=0) == frozenset()

    def test_clips_to_small_grid(self, graph10):
        blocked = blocked_region_tiles(graph10, 25, rng=0)
        assert len(blocked) == 100  # whole 10x10 grid

    def test_within_bounds(self, graph10):
        for seed in range(10):
            for t in blocked_region_tiles(graph10, 9, rng=seed):
                assert graph10.in_bounds(t)


class TestRandomDistribution:
    def test_total_conserved(self, graph10):
        distribute_sites_randomly(graph10, 500, rng=1)
        assert graph10.total_sites == 500

    def test_blocked_tiles_stay_zero(self, graph10):
        blocked = blocked_region_tiles(graph10, 5, rng=2)
        distribute_sites_randomly(graph10, 1000, rng=2, blocked=blocked)
        for t in blocked:
            assert graph10.site_count(t) == 0
        assert graph10.total_sites == 1000

    def test_zero_sites(self, graph10):
        distribute_sites_randomly(graph10, 0, rng=0)
        assert graph10.total_sites == 0

    def test_negative_rejected(self, graph10):
        with pytest.raises(ConfigurationError):
            distribute_sites_randomly(graph10, -1)

    def test_no_eligible_tiles_rejected(self, graph10):
        blocked = frozenset(graph10.tiles())
        with pytest.raises(ConfigurationError):
            distribute_sites_randomly(graph10, 10, blocked=blocked)

    def test_deterministic(self, die10):
        from repro.tilegraph import TileGraph

        a = TileGraph(die10, 10, 10)
        b = TileGraph(die10, 10, 10)
        distribute_sites_randomly(a, 300, rng=7)
        distribute_sites_randomly(b, 300, rng=7)
        assert (a.sites == b.sites).all()

    def test_respects_no_site_blocks(self, graph10, die10):
        plan = Floorplan(
            die=die10,
            blocks=[
                Block(
                    name="cache", width=5, height=5, x=0, y=0,
                    allows_buffer_sites=False,
                )
            ],
        )
        distribute_sites_randomly(graph10, 400, rng=3, floorplan=plan)
        # Tiles whose centers lie in the cache got nothing.
        for x in range(5):
            for y in range(5):
                assert graph10.site_count((x, y)) == 0
        assert graph10.total_sites == 400


class TestSiteDistribution:
    def test_apply(self, graph10):
        dist = SiteDistribution(total_sites=200, blocked_size=3, seed=5)
        blocked = dist.apply(graph10)
        assert len(blocked) == 9
        assert graph10.total_sites == 200

    def test_apply_reproducible(self, die10):
        from repro.tilegraph import TileGraph

        a, b = TileGraph(die10, 10, 10), TileGraph(die10, 10, 10)
        assert SiteDistribution(100, 2, seed=9).apply(a) == SiteDistribution(
            100, 2, seed=9
        ).apply(b)
        assert (a.sites == b.sites).all()
