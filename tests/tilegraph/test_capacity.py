"""Capacity models."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import TECH_180NM
from repro.tilegraph import CapacityModel


class TestUniform:
    def test_same_everywhere(self):
        m = CapacityModel.uniform(7)
        assert m.horizontal_capacity(0.5) == 7
        assert m.vertical_capacity(2.0) == 7

    def test_zero_allowed(self):
        assert CapacityModel.uniform(0).horizontal_capacity(1.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityModel.uniform(-1)


class TestFromPitch:
    def test_scales_with_boundary(self):
        m = CapacityModel.from_pitch(TECH_180NM, utilization=0.25)
        small = m.horizontal_capacity(0.3)
        large = m.horizontal_capacity(0.6)
        assert large == pytest.approx(2 * small, rel=0.05)

    def test_at_least_one(self):
        m = CapacityModel.from_pitch(TECH_180NM, utilization=0.01)
        assert m.horizontal_capacity(1e-4) >= 1

    def test_bad_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityModel.from_pitch(TECH_180NM, utilization=0.0)
        with pytest.raises(ConfigurationError):
            CapacityModel.from_pitch(TECH_180NM, utilization=1.5)

    def test_unbased_model_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityModel().horizontal_capacity(1.0)
