"""Failure diagnosis."""

import pytest

from repro.analysis.failures import (
    FailureCause,
    diagnose_failure,
    diagnose_failures,
    failure_summary,
)
from repro.core.assignment import assign_buffers_to_net
from repro.routing.tree import BufferSpec, RouteTree


def _path_tree(tiles, name="n"):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


class TestDiagnoseFailure:
    def test_overdriven_gate(self, graph10_sites):
        # Sites everywhere, but the net was (deliberately) left unbuffered.
        tree = _path_tree([(i, 0) for i in range(8)])
        tree.add_usage(graph10_sites)
        d = diagnose_failure(tree, graph10_sites, 3)
        assert d.cause is FailureCause.OVERDRIVEN_GATE
        assert d.violations >= 1

    def test_site_exhaustion(self, graph10):
        # Exactly one site per route tile, all taken by another net.
        tiles = [(i, 0) for i in range(8)]
        for t in tiles:
            graph10.set_sites(t, 1)
            graph10.use_site(t, 1)  # someone else's buffers
        tree = _path_tree(tiles)
        d = diagnose_failure(tree, graph10, 3)
        assert d.cause is FailureCause.SITE_EXHAUSTION

    def test_own_buffers_do_not_count_as_exhaustion(self, graph10):
        tiles = [(i, 0) for i in range(8)]
        for t in tiles:
            graph10.set_sites(t, 1)
        tree = _path_tree(tiles)
        tree.add_usage(graph10)
        # Legal buffering exists and is applied: not a failure, but the
        # diagnosis with own-credit must see feasibility (OVERDRIVEN).
        assign_buffers_to_net(graph10, tree, 3, None)
        d = diagnose_failure(tree, graph10, 3)
        assert d.cause is FailureCause.OVERDRIVEN_GATE
        assert d.violations == 0

    def test_blocked_region(self, graph10):
        tiles = [(i, 0) for i in range(10)]
        blocked = {(x, 0) for x in range(2, 8)}
        for t in tiles:
            if t not in blocked:
                graph10.set_sites(t, 2)
        tree = _path_tree(tiles)
        d = diagnose_failure(tree, graph10, 3, blocked=blocked)
        assert d.cause is FailureCause.BLOCKED_REGION
        assert d.tiles_in_blocked_region == 6

    def test_site_scarcity_outside_region(self, graph10):
        # Zero-site stretch not attributed to any blocked region.
        tiles = [(i, 0) for i in range(10)]
        graph10.set_sites((0, 0), 2)
        graph10.set_sites((9, 0), 2)
        tree = _path_tree(tiles)
        d = diagnose_failure(tree, graph10, 3, blocked=frozenset())
        assert d.cause is FailureCause.SITE_SCARCITY


class TestSummary:
    def test_counts(self, graph10_sites):
        trees = {
            "a": _path_tree([(i, 0) for i in range(8)], "a"),
            "b": _path_tree([(i, 2) for i in range(8)], "b"),
        }
        for t in trees.values():
            t.add_usage(graph10_sites)
        diags = diagnose_failures(
            trees, ["a", "b"], graph10_sites, {"a": 3, "b": 3}
        )
        assert len(diags) == 2
        summary = failure_summary(diags)
        assert summary == {"overdriven-gate": 2}

    def test_paper_attribution_on_apte(self):
        # The paper: residual fails trace "almost exclusively" to the
        # blocked region. Verify on a planned apte instance.
        from repro import RabidConfig, RabidPlanner, load_benchmark

        bench = load_benchmark("apte", seed=0)
        config = RabidConfig(
            length_limit=bench.spec.length_limit,
            window_margin=10,
            stage4_iterations=1,
        )
        result = RabidPlanner(bench.graph, bench.netlist, config).run()
        if not result.failed_nets:
            pytest.skip("no failures to diagnose on this seed")
        diags = diagnose_failures(
            result.routes,
            result.failed_nets,
            bench.graph,
            {n: config.length_limit for n in result.routes},
            blocked=bench.blocked_tiles,
        )
        blocked_share = sum(
            1 for d in diags if d.cause is FailureCause.BLOCKED_REGION
        ) / len(diags)
        assert blocked_share >= 0.8
