"""Failure diagnosis."""

import json
import os

import pytest

from repro.analysis.failures import (
    FailureCause,
    diagnose_failure,
    diagnose_failures,
    failure_summary,
)
from repro.core.assignment import assign_buffers_to_net
from repro.routing.tree import BufferSpec, RouteTree

GOLDEN = os.path.join(
    os.path.dirname(__file__), "..", "golden",
    "failure_diagnosis_apte_seed0.json",
)


def _path_tree(tiles, name="n"):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


class TestDiagnoseFailure:
    def test_overdriven_gate(self, graph10_sites):
        # Sites everywhere, but the net was (deliberately) left unbuffered.
        tree = _path_tree([(i, 0) for i in range(8)])
        tree.add_usage(graph10_sites)
        d = diagnose_failure(tree, graph10_sites, 3)
        assert d.cause is FailureCause.OVERDRIVEN_GATE
        assert d.violations >= 1

    def test_site_exhaustion(self, graph10):
        # Exactly one site per route tile, all taken by another net.
        tiles = [(i, 0) for i in range(8)]
        for t in tiles:
            graph10.set_sites(t, 1)
            graph10.use_site(t, 1)  # someone else's buffers
        tree = _path_tree(tiles)
        d = diagnose_failure(tree, graph10, 3)
        assert d.cause is FailureCause.SITE_EXHAUSTION

    def test_own_buffers_do_not_count_as_exhaustion(self, graph10):
        tiles = [(i, 0) for i in range(8)]
        for t in tiles:
            graph10.set_sites(t, 1)
        tree = _path_tree(tiles)
        tree.add_usage(graph10)
        # Legal buffering exists and is applied: not a failure, but the
        # diagnosis with own-credit must see feasibility (OVERDRIVEN).
        assign_buffers_to_net(graph10, tree, 3, None)
        d = diagnose_failure(tree, graph10, 3)
        assert d.cause is FailureCause.OVERDRIVEN_GATE
        assert d.violations == 0

    def test_blocked_region(self, graph10):
        tiles = [(i, 0) for i in range(10)]
        blocked = {(x, 0) for x in range(2, 8)}
        for t in tiles:
            if t not in blocked:
                graph10.set_sites(t, 2)
        tree = _path_tree(tiles)
        d = diagnose_failure(tree, graph10, 3, blocked=blocked)
        assert d.cause is FailureCause.BLOCKED_REGION
        assert d.tiles_in_blocked_region == 6

    def test_site_scarcity_outside_region(self, graph10):
        # Zero-site stretch not attributed to any blocked region.
        tiles = [(i, 0) for i in range(10)]
        graph10.set_sites((0, 0), 2)
        graph10.set_sites((9, 0), 2)
        tree = _path_tree(tiles)
        d = diagnose_failure(tree, graph10, 3, blocked=frozenset())
        assert d.cause is FailureCause.SITE_SCARCITY


class TestDiagnoseEdges:
    def test_branching_tree_diagnosed(self, graph10_sites):
        # Multi-sink topology (not just a path): source fans out to two
        # sinks, both arms over the limit.
        paths = [
            [(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (5, 0)],
            [(0, 0), (0, 1), (0, 2), (0, 3), (0, 4), (0, 5)],
        ]
        tree = RouteTree.from_paths(
            (0, 0), paths, [(5, 0), (0, 5)], net_name="fan"
        )
        tree.add_usage(graph10_sites)
        d = diagnose_failure(tree, graph10_sites, 2)
        assert d.cause is FailureCause.OVERDRIVEN_GATE
        # One driver (the source) is over-driven; both arms hang off it.
        assert d.violations >= 1

    def test_blocked_tiles_counted_even_when_feasible(self, graph10_sites):
        tiles = [(i, 0) for i in range(8)]
        tree = _path_tree(tiles)
        tree.add_usage(graph10_sites)
        blocked = {(2, 0), (3, 0)}
        d = diagnose_failure(tree, graph10_sites, 3, blocked=blocked)
        # Sites exist everywhere, so the cause is not the region — but
        # the overlap is still reported for attribution studies.
        assert d.cause is FailureCause.OVERDRIVEN_GATE
        assert d.tiles_in_blocked_region == 2

    def test_own_credit_never_goes_negative(self, graph10):
        # The net's own booked buffers exceed other usage; the credit
        # computation must clamp at zero used, not underflow.
        tiles = [(i, 0) for i in range(8)]
        for t in tiles:
            graph10.set_sites(t, 3)
        tree = _path_tree(tiles)
        tree.apply_buffers([BufferSpec((3, 0), None)])
        tree.add_usage(graph10)
        d = diagnose_failure(tree, graph10, 3)
        assert d.cause is FailureCause.OVERDRIVEN_GATE

    def test_diagnoses_sorted_by_net_name(self, graph10_sites):
        trees = {
            name: _path_tree([(i, y) for i in range(8)], name)
            for y, name in enumerate(["zz", "aa", "mm"])
        }
        for t in trees.values():
            t.add_usage(graph10_sites)
        diags = diagnose_failures(
            trees, ["zz", "aa", "mm"], graph10_sites,
            {"zz": 3, "aa": 3, "mm": 3},
        )
        assert [d.net_name for d in diags] == ["aa", "mm", "zz"]

    def test_empty_summary(self):
        assert failure_summary([]) == {}


class TestGoldenDiagnosis:
    @pytest.mark.slow
    def test_apte_classification_matches_golden(self):
        # Pin the full per-net classification of a planned apte run, not
        # just the aggregate share: a regression in the prober or in the
        # cause priority order shows up as a changed label here.
        with open(GOLDEN, encoding="utf-8") as fh:
            golden = json.load(fh)
        from repro import RabidConfig, RabidPlanner, load_benchmark

        bench = load_benchmark(golden["circuit"], seed=golden["seed"])
        config = RabidConfig(
            length_limit=golden["length_limit"],
            window_margin=10,
            stage4_iterations=golden["stage4_iterations"],
        )
        result = RabidPlanner(bench.graph, bench.netlist, config).run()
        diags = diagnose_failures(
            result.routes,
            result.failed_nets,
            bench.graph,
            {n: config.length_limit for n in result.routes},
            blocked=bench.blocked_tiles,
        )
        got = [
            {
                "net": d.net_name,
                "cause": d.cause.value,
                "violations": d.violations,
                "tiles_in_blocked_region": d.tiles_in_blocked_region,
            }
            for d in diags
        ]
        assert got == golden["diagnoses"]
        assert failure_summary(diags) == golden["summary"]


class TestSummary:
    def test_counts(self, graph10_sites):
        trees = {
            "a": _path_tree([(i, 0) for i in range(8)], "a"),
            "b": _path_tree([(i, 2) for i in range(8)], "b"),
        }
        for t in trees.values():
            t.add_usage(graph10_sites)
        diags = diagnose_failures(
            trees, ["a", "b"], graph10_sites, {"a": 3, "b": 3}
        )
        assert len(diags) == 2
        summary = failure_summary(diags)
        assert summary == {"overdriven-gate": 2}

    def test_paper_attribution_on_apte(self):
        # The paper: residual fails trace "almost exclusively" to the
        # blocked region. Verify on a planned apte instance.
        from repro import RabidConfig, RabidPlanner, load_benchmark

        bench = load_benchmark("apte", seed=0)
        config = RabidConfig(
            length_limit=bench.spec.length_limit,
            window_margin=10,
            stage4_iterations=1,
        )
        result = RabidPlanner(bench.graph, bench.netlist, config).run()
        if not result.failed_nets:
            pytest.skip("no failures to diagnose on this seed")
        diags = diagnose_failures(
            result.routes,
            result.failed_nets,
            bench.graph,
            {n: config.length_limit for n in result.routes},
            blocked=bench.blocked_tiles,
        )
        blocked_share = sum(
            1 for d in diags if d.cause is FailureCause.BLOCKED_REGION
        ) / len(diags)
        assert blocked_share >= 0.8
