"""SVG rendering."""

import pytest

from repro.analysis.svg import SvgCanvas, floorplan_svg, planning_svg
from repro.floorplan import Block, Floorplan
from repro.geometry import Point, Rect


@pytest.fixture
def plan():
    return Floorplan(
        die=Rect(0, 0, 10, 10),
        blocks=[
            Block(name="a", width=3, height=3, x=1, y=1),
            Block(
                name="cache", width=3, height=3, x=5, y=5,
                allows_buffer_sites=False,
            ),
        ],
    )


class TestCanvas:
    def test_document_structure(self):
        c = SvgCanvas(Rect(0, 0, 10, 10), pixels_per_mm=10)
        c.rect(Rect(1, 1, 2, 2), fill="red")
        out = c.render()
        assert out.startswith("<svg")
        assert out.endswith("</svg>")
        assert 'width="100"' in out

    def test_y_axis_flipped(self):
        c = SvgCanvas(Rect(0, 0, 10, 10), pixels_per_mm=10)
        c.circle(Point(0, 0))  # lower-left in chip coords
        out = c.render()
        assert 'cy="100.0"' in out  # bottom of the image

    def test_title_tooltip(self):
        c = SvgCanvas(Rect(0, 0, 10, 10))
        c.rect(Rect(0, 0, 1, 1), title="blk")
        assert "<title>blk</title>" in c.render()


class TestFloorplanSvg:
    def test_blocks_rendered(self, plan):
        out = floorplan_svg(plan)
        assert out.count("<rect") >= 3  # die + 2 blocks
        assert "cache" in out

    def test_no_site_blocks_gray(self, plan):
        out = floorplan_svg(plan)
        assert "#b0b0b0" in out

    def test_buffer_dots(self, plan):
        out = floorplan_svg(plan, buffer_points=[Point(4, 4), Point(9, 1)])
        assert out.count("<circle") == 2


class TestPlanningSvg:
    def test_renders_state(self, graph10_sites, plan):
        graph10_sites.use_site((2, 2), 2)
        out = planning_svg(graph10_sites, floorplan=plan, blocked=[(7, 7)])
        assert out.startswith("<svg")
        assert "rgb(255," in out  # shaded used tile
        assert out.count("<rect") > 3

    def test_routes_drawn(self, graph10_sites):
        from repro.routing.maze import route_net_on_tiles

        tree = route_net_on_tiles(graph10_sites, (0, 0), [(5, 5)])
        out = planning_svg(graph10_sites, routes={"n": tree})
        assert out.count("<line") == tree.num_edges()

    def test_route_cap(self, graph10_sites):
        from repro.routing.maze import route_net_on_tiles

        routes = {
            f"n{i}": route_net_on_tiles(graph10_sites, (0, i), [(5, i)])
            for i in range(4)
        }
        out = planning_svg(graph10_sites, routes=routes, max_routes=2)
        assert out.count("<line") == 10  # 2 nets x 5 edges
