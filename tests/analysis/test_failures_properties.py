"""Property tests: failure diagnosis is total and consistent."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.failures import FailureCause, diagnose_failure
from repro.geometry import Rect
from repro.routing.tree import RouteTree
from repro.tilegraph import CapacityModel, TileGraph

SIZE = 10


@st.composite
def diagnosis_instances(draw):
    g = TileGraph(Rect(0, 0, SIZE, SIZE), SIZE, SIZE, CapacityModel.uniform(6))
    # Random per-tile sites (possibly zero) and random prior usage.
    for tile in g.tiles():
        sites = draw(st.integers(0, 2))
        if sites:
            g.set_sites(tile, sites)
            g.use_site(tile, draw(st.integers(0, sites)))
    y = draw(st.integers(0, SIZE - 1))
    n = draw(st.integers(2, SIZE))
    tiles = [(i, y) for i in range(n)]
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    tree = RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name="n")
    L = draw(st.integers(1, 5))
    blocked = frozenset(
        t for t in g.tiles() if g.site_count(t) == 0 and draw(st.booleans())
    )
    return g, tree, L, blocked


class TestDiagnosisProperties:
    @given(diagnosis_instances())
    @settings(max_examples=60, deadline=None)
    def test_always_classifies(self, instance):
        g, tree, L, blocked = instance
        d = diagnose_failure(tree, g, L, blocked)
        assert isinstance(d.cause, FailureCause)
        assert d.violations >= 0
        assert 0 <= d.tiles_in_blocked_region <= len(tree.nodes)

    @given(diagnosis_instances())
    @settings(max_examples=60, deadline=None)
    def test_blocked_region_cause_requires_touching_region(self, instance):
        g, tree, L, blocked = instance
        d = diagnose_failure(tree, g, L, blocked)
        if d.cause is FailureCause.BLOCKED_REGION:
            assert d.tiles_in_blocked_region > 0

    @given(diagnosis_instances())
    @settings(max_examples=60, deadline=None)
    def test_exhaustion_implies_free_sites_would_fix(self, instance):
        from repro.core.multi_sink import insert_buffers_multi_sink

        g, tree, L, blocked = instance
        d = diagnose_failure(tree, g, L, blocked)
        if d.cause is FailureCause.SITE_EXHAUSTION:
            q = lambda t: 1.0 if g.site_count(t) > 0 else float("inf")
            assert insert_buffers_multi_sink(tree, q, L).feasible
