"""ASCII map rendering."""

from repro.analysis import (
    buffer_usage_map,
    site_distribution_map,
    wire_congestion_map,
)


class TestWireMap:
    def test_dimensions(self, graph10):
        out = wire_congestion_map(graph10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 10 for line in lines)

    def test_empty_graph_blank(self, graph10):
        out = wire_congestion_map(graph10)
        assert set(out) <= {" ", "\n"}

    def test_overflow_marked(self, graph10):
        graph10.add_wire((0, 0), (1, 0), 15)
        out = wire_congestion_map(graph10)
        assert "!" in out

    def test_loaded_edge_visible(self, graph10):
        graph10.add_wire((5, 5), (5, 6), 8)
        out = wire_congestion_map(graph10)
        assert set(out) - {" ", "\n"}

    def test_top_row_first(self, graph10):
        # Load an edge on the top row; the mark must appear in line 0.
        graph10.add_wire((0, 9), (1, 9), 15)
        lines = wire_congestion_map(graph10).splitlines()
        assert "!" in lines[0]
        assert "!" not in lines[-1]


class TestBufferMap:
    def test_zero_site_tiles_marked(self, graph10):
        out = buffer_usage_map(graph10)
        assert set(out.replace("\n", "")) == {"X"}

    def test_usage_levels(self, graph10_sites):
        graph10_sites.use_site((0, 0), 3)  # full tile
        out = buffer_usage_map(graph10_sites)
        assert "@" in out


class TestSiteMap:
    def test_relative_density(self, graph10):
        graph10.set_sites((0, 0), 10)
        graph10.set_sites((9, 9), 5)
        out = site_distribution_map(graph10)
        lines = out.splitlines()
        assert lines[-1][0] == "@"  # densest tile saturates the ramp
        assert lines[0][9] != " "
