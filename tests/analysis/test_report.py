"""Design reports."""

import pytest

from repro.analysis import design_report
from repro.routing.tree import BufferSpec, RouteTree


def _path_tree(tiles, name):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=name)


@pytest.fixture
def routes(graph10_sites):
    a = _path_tree([(i, 0) for i in range(8)], "a")
    a.apply_buffers([BufferSpec((3, 0), None)])
    b = _path_tree([(0, 5), (1, 5)], "b")
    for t in (a, b):
        t.add_usage(graph10_sites)
    return {"a": a, "b": b}


class TestDesignReport:
    def test_per_net_rows(self, routes, graph10_sites, tech):
        report = design_report(routes, graph10_sites, tech, length_limit=4)
        assert [n.name for n in report.nets] == ["a", "b"]
        net_a = report.nets[0]
        assert net_a.wirelength_tiles == 7
        assert net_a.num_buffers == 1
        assert net_a.num_sinks == 1
        assert net_a.max_delay_ps > 0

    def test_totals(self, routes, graph10_sites, tech):
        report = design_report(routes, graph10_sites, tech, length_limit=4)
        assert report.total_buffers == 1
        assert report.total_wirelength_mm == pytest.approx(8.0)
        assert report.wire_overflow == 0

    def test_fails_detected(self, routes, graph10_sites, tech):
        # L=2: net "a" has a 3-then-4 split -> violations.
        report = design_report(routes, graph10_sites, tech, length_limit=2)
        assert "a" in report.failed_nets
        assert "b" not in report.failed_nets

    def test_worst_nets_ordering(self, routes, graph10_sites, tech):
        report = design_report(routes, graph10_sites, tech, length_limit=4)
        worst = report.worst_nets(1)
        assert worst[0].name == "a"  # the long one

    def test_avg_weighted_by_sinks(self, routes, graph10_sites, tech):
        report = design_report(routes, graph10_sites, tech, length_limit=4)
        per_sink = [n.max_delay_ps for n in report.nets]  # 1 sink each
        assert report.avg_delay_ps == pytest.approx(sum(per_sink) / 2, rel=1e-6)


class TestReportMatchesPlanner:
    """Report figures agree with the planner's own outcome bookkeeping."""

    @pytest.fixture(scope="class")
    def planned(self):
        from repro.service.engine import full_plan
        from repro.service.jobs import ScenarioSpec

        state = full_plan(ScenarioSpec(grid=12, num_nets=30, total_sites=300))
        report = design_report(
            state.routes,
            state.graph,
            state.config.technology,
            length_limit=state.config.length_limit,
        )
        return state, report

    def test_net_rows_cover_every_route(self, planned):
        state, report = planned
        assert sorted(n.name for n in report.nets) == sorted(state.routes)

    def test_buffer_totals_match_outcomes(self, planned):
        state, report = planned
        assert report.total_buffers == sum(
            len(o.specs) for o in state.outcomes.values()
        )
        by_name = {n.name: n for n in report.nets}
        for name, outcome in state.outcomes.items():
            assert by_name[name].num_buffers == len(outcome.specs)

    def test_failed_nets_match_planner(self, planned):
        state, report = planned
        assert sorted(report.failed_nets) == sorted(state.failed_nets)

    def test_explore_metrics_agree_with_report(self, planned):
        from repro.explore import metrics_from_state

        state, report = planned
        metrics = metrics_from_state(state)
        assert metrics["buffers"] == report.total_buffers
        assert metrics["unassigned_nets"] == len(report.failed_nets)
        assert metrics["wirelength_tiles"] == sum(
            n.wirelength_tiles for n in report.nets
        )
        assert metrics["max_delay_ps"] == pytest.approx(
            max(n.max_delay_ps for n in report.nets), abs=1e-3
        )
