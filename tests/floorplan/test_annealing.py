"""Simulated-annealing floorplanner."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import AnnealingOptions, Block, anneal_floorplan
from repro.geometry import Rect


def _blocks(dims):
    return [Block(name=f"b{i}", width=w, height=h) for i, (w, h) in enumerate(dims)]


class TestAnnealing:
    def test_produces_legal_floorplan(self):
        die = Rect(0, 0, 10, 10)
        blocks = _blocks([(3, 2), (2, 2), (4, 1), (1, 4), (2, 3)])
        plan = anneal_floorplan(
            blocks, die, options=AnnealingOptions(iterations=600), seed=1
        )
        plan.validate()  # no overlaps, inside die
        assert len(plan.blocks) == 5

    def test_deterministic_for_seed(self):
        die = Rect(0, 0, 10, 10)
        opts = AnnealingOptions(iterations=300)
        a = anneal_floorplan(_blocks([(2, 2), (3, 1), (1, 3)]), die, options=opts, seed=9)
        b = anneal_floorplan(_blocks([(2, 2), (3, 1), (1, 3)]), die, options=opts, seed=9)
        for ba, bb in zip(a.blocks, b.blocks):
            assert ba.rect() == bb.rect()

    def test_overfull_die_rejected(self):
        with pytest.raises(FloorplanError):
            anneal_floorplan(_blocks([(10, 10), (1, 1)]), Rect(0, 0, 10, 10))

    def test_empty_block_list(self):
        plan = anneal_floorplan([], Rect(0, 0, 5, 5))
        assert plan.blocks == []

    def test_single_block(self):
        plan = anneal_floorplan(
            _blocks([(2, 2)]), Rect(0, 0, 10, 10),
            options=AnnealingOptions(iterations=50), seed=0,
        )
        plan.validate()

    def test_adjacency_pulls_blocks_together(self):
        # Two connected blocks among several should end up no farther than
        # without the adjacency, on average; at minimum the run is legal.
        die = Rect(0, 0, 20, 20)
        blocks = _blocks([(2, 2)] * 6)
        plan = anneal_floorplan(
            blocks, die, adjacency=[(0, 1)],
            options=AnnealingOptions(iterations=800, wirelength_weight=1.0),
            seed=3,
        )
        plan.validate()

    def test_utilization_preserved_without_shrink(self):
        die = Rect(0, 0, 30, 30)
        blocks = _blocks([(3, 3)] * 4)
        plan = anneal_floorplan(
            blocks, die, options=AnnealingOptions(iterations=400), seed=2
        )
        # Plenty of room: blocks keep their sizes.
        for b in plan.blocks:
            assert b.area == pytest.approx(9.0)


class TestSeededDeterminism:
    """The annealer is a pure function of (blocks, die, options, seed)."""

    def _plan(self, seed, **kwargs):
        die = Rect(0, 0, 12, 12)
        blocks = _blocks([(3, 2), (2, 2), (4, 1), (1, 4), (2, 3), (2, 1)])
        options = AnnealingOptions(iterations=500, **kwargs)
        return anneal_floorplan(blocks, die, options=options, seed=seed)

    def test_identical_across_repeats(self):
        for seed in (0, 1, 17):
            a = self._plan(seed)
            b = self._plan(seed)
            assert [blk.rect() for blk in a.blocks] == [
                blk.rect() for blk in b.blocks
            ]

    def test_seed_changes_result(self):
        rects = {
            tuple(blk.rect() for blk in self._plan(seed).blocks)
            for seed in range(6)
        }
        # At least two distinct layouts over six seeds: the seed is live.
        assert len(rects) > 1

    def test_deterministic_with_adjacency(self):
        die = Rect(0, 0, 15, 15)
        blocks = _blocks([(2, 2)] * 5)
        options = AnnealingOptions(iterations=400, wirelength_weight=0.5)
        runs = [
            anneal_floorplan(
                _blocks([(2, 2)] * 5), die,
                adjacency=[(0, 1), (2, 3)], options=options, seed=5,
            )
            for _ in range(2)
        ]
        assert [b.rect() for b in runs[0].blocks] == [
            b.rect() for b in runs[1].blocks
        ]

    def test_input_blocks_not_mutated(self):
        die = Rect(0, 0, 12, 12)
        blocks = _blocks([(3, 2), (2, 2), (4, 1)])
        widths = [b.width for b in blocks]
        anneal_floorplan(
            blocks, die, options=AnnealingOptions(iterations=200), seed=4
        )
        assert [b.width for b in blocks] == widths
