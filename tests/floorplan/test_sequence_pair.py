"""Sequence-pair packing semantics."""

import numpy as np
import pytest

from repro.errors import FloorplanError
from repro.floorplan import SequencePair
from repro.geometry import Rect


def _rects(sp, widths, heights):
    xs, ys, w, h = sp.pack(widths, heights)
    return [
        Rect(xs[i], ys[i], xs[i] + widths[i], ys[i] + heights[i])
        for i in range(len(widths))
    ], w, h


class TestValidation:
    def test_non_permutation_rejected(self):
        with pytest.raises(FloorplanError):
            SequencePair([0, 0], [0, 1])

    def test_size_mismatch_rejected(self):
        sp = SequencePair.identity(2)
        with pytest.raises(FloorplanError):
            sp.pack([1.0], [1.0, 1.0])


class TestPacking:
    def test_identity_packs_in_a_row(self):
        # Same order in both sequences: all left-of relations -> a row.
        sp = SequencePair.identity(3)
        rects, w, h = _rects(sp, [1, 2, 3], [1, 1, 1])
        assert w == 6 and h == 1
        assert rects[0].x0 == 0 and rects[1].x0 == 1 and rects[2].x0 == 3

    def test_reversed_plus_stacks_vertically(self):
        # a after b in plus, before in minus -> a below b: a column.
        sp = SequencePair([2, 1, 0], [0, 1, 2])
        rects, w, h = _rects(sp, [1, 1, 1], [1, 2, 3])
        assert w == 1 and h == 6
        assert rects[0].y0 == 0
        assert rects[1].y0 == 1
        assert rects[2].y0 == 3

    def test_no_overlaps_random(self):
        rng = np.random.default_rng(3)
        for trial in range(20):
            n = int(rng.integers(2, 9))
            sp = SequencePair.random(n, rng)
            widths = rng.uniform(1, 5, size=n).tolist()
            heights = rng.uniform(1, 5, size=n).tolist()
            rects, w, h = _rects(sp, widths, heights)
            for i in range(n):
                for j in range(i + 1, n):
                    assert not rects[i].overlaps(rects[j]), (trial, i, j)

    def test_bounding_dims_cover_all(self):
        rng = np.random.default_rng(5)
        sp = SequencePair.random(6, rng)
        widths = [1.0] * 6
        heights = [2.0] * 6
        rects, w, h = _rects(sp, widths, heights)
        assert max(r.x1 for r in rects) == pytest.approx(w)
        assert max(r.y1 for r in rects) == pytest.approx(h)

    def test_empty(self):
        sp = SequencePair([], [])
        xs, ys, w, h = sp.pack([], [])
        assert (xs, ys, w, h) == ([], [], 0.0, 0.0)


class TestMoves:
    def test_swap_in_both(self):
        sp = SequencePair([0, 1, 2], [2, 1, 0])
        sp.swap_in_both(0, 2)
        assert sp.plus == [2, 1, 0]
        assert sp.minus == [0, 1, 2]

    def test_copy_is_independent(self):
        sp = SequencePair.identity(3)
        cp = sp.copy()
        cp.swap_in_plus(0, 1)
        assert sp.plus == [0, 1, 2]
