"""Floorplan validation and queries."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import Block, Floorplan
from repro.geometry import Point, Rect


def _plan(blocks):
    return Floorplan(die=Rect(0, 0, 10, 10), blocks=blocks)


class TestValidation:
    def test_valid_plan(self):
        plan = _plan([
            Block(name="a", width=2, height=2, x=1, y=1),
            Block(name="b", width=2, height=2, x=5, y=5),
        ])
        plan.validate()

    def test_duplicate_names(self):
        with pytest.raises(FloorplanError):
            _plan([
                Block(name="a", width=1, height=1, x=0, y=0),
                Block(name="a", width=1, height=1, x=5, y=5),
            ])

    def test_unplaced_block(self):
        with pytest.raises(FloorplanError):
            _plan([Block(name="a", width=1, height=1)]).validate()

    def test_block_outside_die(self):
        with pytest.raises(FloorplanError):
            _plan([Block(name="a", width=3, height=3, x=9, y=9)]).validate()

    def test_overlapping_blocks(self):
        with pytest.raises(FloorplanError):
            _plan([
                Block(name="a", width=4, height=4, x=0, y=0),
                Block(name="b", width=4, height=4, x=2, y=2),
            ]).validate()

    def test_abutting_blocks_legal(self):
        _plan([
            Block(name="a", width=2, height=2, x=0, y=0),
            Block(name="b", width=2, height=2, x=2, y=0),
        ]).validate()


class TestQueries:
    def test_utilization(self):
        plan = _plan([Block(name="a", width=5, height=4, x=0, y=0)])
        assert plan.utilization == pytest.approx(0.2)

    def test_free_space(self):
        plan = _plan([Block(name="a", width=2, height=2, x=4, y=4)])
        assert plan.free_space(Point(1, 1))
        assert not plan.free_space(Point(5, 5))
        assert not plan.free_space(Point(11, 1))  # off die

    def test_block_at(self):
        a = Block(name="a", width=2, height=2, x=4, y=4)
        plan = _plan([a])
        assert plan.block_at(Point(5, 5)) is a
        assert plan.block_at(Point(0, 0)) is None

    def test_get(self):
        a = Block(name="a", width=1, height=1, x=0, y=0)
        plan = _plan([a])
        assert plan.get("a") is a
        with pytest.raises(FloorplanError):
            plan.get("z")

    def test_pad_location_walks_perimeter(self):
        plan = _plan([])
        assert plan.pad_location(0.0) == Point(0, 0)
        assert plan.pad_location(0.25) == Point(10, 0)
        assert plan.pad_location(0.5) == Point(10, 10)
        assert plan.pad_location(0.75) == Point(0, 10)

    def test_pad_location_on_boundary(self):
        plan = _plan([])
        for i in range(20):
            p = plan.pad_location(i / 20)
            on_edge = p.x in (0, 10) or p.y in (0, 10)
            assert on_edge
