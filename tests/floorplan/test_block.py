"""Block geometry."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import Block
from repro.geometry import Point


class TestBlock:
    def test_dimensions_validated(self):
        with pytest.raises(FloorplanError):
            Block(name="b", width=0, height=1)
        with pytest.raises(FloorplanError):
            Block(name="b", width=1, height=-2)

    def test_unplaced_rect_raises(self):
        with pytest.raises(FloorplanError):
            Block(name="b", width=1, height=1).rect()

    def test_placed_rect_and_center(self):
        b = Block(name="b", width=2, height=4, x=1, y=1)
        r = b.rect()
        assert (r.x0, r.y0, r.x1, r.y1) == (1, 1, 3, 5)
        assert b.center() == Point(2, 3)
        assert b.area == 8

    def test_rotated_swaps_and_clears_placement(self):
        b = Block(name="b", width=2, height=4, x=1, y=1)
        r = b.rotated()
        assert (r.width, r.height) == (4, 2)
        assert not r.placed
        assert r.name == "b"

    def test_rotated_preserves_site_flag(self):
        b = Block(name="b", width=1, height=1, allows_buffer_sites=False)
        assert not b.rotated().allows_buffer_sites


class TestBoundaryPoint:
    def test_corners(self):
        b = Block(name="b", width=4, height=2, x=0, y=0)
        assert b.boundary_point(0.0) == Point(0, 0)
        # Quarter perimeter = 3 units along the bottom (perimeter 12).
        assert b.boundary_point(0.25) == Point(3, 0)

    def test_wraps(self):
        b = Block(name="b", width=4, height=2, x=0, y=0)
        assert b.boundary_point(1.0) == b.boundary_point(0.0)

    def test_points_lie_on_boundary(self):
        b = Block(name="b", width=3, height=5, x=2, y=1)
        r = b.rect()
        for i in range(16):
            p = b.boundary_point(i / 16)
            assert r.contains(p)
            on_edge = (
                p.x in (r.x0, r.x1) or p.y in (r.y0, r.y1)
            )
            assert on_edge
