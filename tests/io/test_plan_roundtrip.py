"""Plan / config / ledger payload round-trips (the service's file layer).

These close the serialization gaps the planning service depends on:
the FULL RabidConfig (per-net limits, per-net solvers, worker knobs,
technology) and the SiteLedger state must survive plan -> JSON -> plan
exactly, and version fields must gate every payload kind.
"""

import numpy as np
import pytest

from repro.core import RabidConfig
from repro.errors import ConfigurationError
from repro.geometry import Rect
from repro.io.serialize import (
    PLAN_SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    ledger_state_from_dict,
    ledger_state_to_dict,
    load_plan_json,
    plan_from_dict,
    plan_to_dict,
    save_plan_json,
)
from repro.service import ScenarioSpec, full_plan
from repro.service.jobs import MacroSpec
from dataclasses import replace

from repro.technology import TECH_180NM
from repro.tilegraph import CapacityModel, TileGraph

SPEC = ScenarioSpec(
    grid=8, num_nets=12, total_sites=120, macros=(MacroSpec(1, 1, 2, 2),)
)


def non_default_config() -> RabidConfig:
    return RabidConfig(
        length_limit=7,
        length_limits={"netA": 3, "netB": 9},
        window_margin=4,
        pd_tradeoff=0.7,
        stage4_iterations=5,
        use_probability=False,
        workers=2,
        stage3_workers=3,
        stage3_solver="greedy",
        stage3_solvers={"netA": "dp"},
        technology=replace(TECH_180NM, buffer_delay=2.5e-11, sink_cap=9e-15),
    )


class TestConfigRoundTrip:
    def test_every_field_survives(self):
        config = non_default_config()
        restored = config_from_dict(config_to_dict(config))
        assert restored.as_dict() == config.as_dict()
        assert restored.limit_for("netA") == 3
        assert restored.limit_for("other") == 7
        assert restored.stage3_solvers == {"netA": "dp"}
        assert restored.technology.buffer_delay == 2.5e-11
        assert restored.technology.sink_cap == 9e-15

    def test_version_gated(self):
        payload = config_to_dict(RabidConfig())
        payload["version"] = PLAN_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="config schema"):
            config_from_dict(payload)


class TestLedgerRoundTrip:
    def make_graph(self):
        graph = TileGraph(Rect(0, 0, 4, 4), 4, 4, CapacityModel.uniform(4))
        for i, tile in enumerate(graph.tiles()):
            graph.set_sites(tile, 3 + i % 4)
        graph.use_site((1, 1), 2)
        graph.use_site((2, 3), 1)
        return graph

    def test_state_survives(self):
        graph = self.make_graph()
        payload = ledger_state_to_dict(graph.ledger())

        fresh = TileGraph(Rect(0, 0, 4, 4), 4, 4, CapacityModel.uniform(4))
        ledger_state_from_dict(payload, fresh.ledger())
        assert np.array_equal(fresh.used_sites, graph.used_sites)
        assert np.array_equal(fresh.sites, graph.sites)

    def test_version_gated(self):
        graph = self.make_graph()
        payload = ledger_state_to_dict(graph.ledger())
        payload["version"] = 99
        with pytest.raises(ConfigurationError, match="ledger schema"):
            ledger_state_from_dict(payload, graph.ledger())

    def test_wrong_grid_rejected(self):
        graph = self.make_graph()
        payload = ledger_state_to_dict(graph.ledger())
        small = TileGraph(Rect(0, 0, 2, 2), 2, 2, CapacityModel.uniform(4))
        with pytest.raises(ConfigurationError, match="tiles"):
            ledger_state_from_dict(payload, small.ledger())

    def test_refused_inside_transaction(self):
        graph = self.make_graph()
        payload = ledger_state_to_dict(graph.ledger())
        ledger = graph.ledger()
        with pytest.raises(ConfigurationError, match="transaction"):
            with ledger.transaction():
                ledger_state_from_dict(payload, ledger)


class TestPlanRoundTrip:
    @pytest.fixture(scope="class")
    def planned(self):
        return full_plan(SPEC)

    def test_plan_json_plan_equality(self, planned, tmp_path):
        path = tmp_path / "plan.json"
        save_plan_json(path, planned.graph, planned.routes, planned.config)
        graph, routes, config = load_plan_json(path)

        assert config.as_dict() == planned.config.as_dict()
        assert set(routes) == set(planned.routes)
        for name, tree in planned.routes.items():
            restored = routes[name]
            assert restored.source == tree.source
            assert sorted(restored.edges()) == sorted(tree.edges())
            assert sorted(restored.sink_tiles) == sorted(tree.sink_tiles)
            key = lambda s: (s.tile, s.drives_child or (-1, -1))  # noqa: E731
            assert (sorted(restored.buffer_specs(), key=key)
                    == sorted(tree.buffer_specs(), key=key))
        assert np.array_equal(graph.edge_capacity, planned.graph.edge_capacity)
        assert np.array_equal(graph.edge_usage, planned.graph.edge_usage)
        assert np.array_equal(graph.used_sites, planned.graph.used_sites)
        assert np.array_equal(graph.sites, planned.graph.sites)

        # Equality in the strongest available sense: identical signature.
        from repro.benchmarks.buffering_kernel import buffering_signature

        assert (buffering_signature(routes, graph, planned.failed_nets)
                == planned.signature)

    def test_second_round_trip_is_identical(self, planned):
        payload = plan_to_dict(planned.graph, planned.routes, planned.config)
        graph, routes, config = plan_from_dict(payload)
        assert plan_to_dict(graph, routes, config) == payload

    def test_version_gated(self, planned):
        payload = plan_to_dict(planned.graph, planned.routes, planned.config)
        payload["version"] = 99
        with pytest.raises(ConfigurationError, match="plan schema"):
            plan_from_dict(payload)
