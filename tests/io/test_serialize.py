"""JSON round-tripping of netlists, routes, and whole instances."""

import pytest

from repro.errors import ConfigurationError
from repro.io import (
    load_instance_json,
    netlist_from_dict,
    netlist_to_dict,
    routes_from_dict,
    routes_to_dict,
    save_instance_json,
)
from repro.routing.tree import BufferSpec, RouteTree


class TestNetlistRoundtrip:
    def test_roundtrip(self, small_netlist):
        d = netlist_to_dict(small_netlist)
        back = netlist_from_dict(d)
        assert len(back) == len(small_netlist)
        for a, b in zip(small_netlist, back):
            assert a.name == b.name
            assert a.source.location == b.source.location
            assert [s.location for s in a.sinks] == [s.location for s in b.sinks]
            assert [s.owner for s in a.sinks] == [s.owner for s in b.sinks]

    def test_bad_version_rejected(self, small_netlist):
        d = netlist_to_dict(small_netlist)
        d["version"] = 999
        with pytest.raises(ConfigurationError):
            netlist_from_dict(d)

    def test_json_serializable(self, small_netlist):
        import json

        json.dumps(netlist_to_dict(small_netlist))


class TestRoutesRoundtrip:
    def _routes(self):
        paths = [
            [(0, 0), (1, 0), (2, 0), (3, 0)],
            [(2, 0), (2, 1), (2, 2)],
        ]
        tree = RouteTree.from_paths((0, 0), paths, [(3, 0), (2, 2)], net_name="a")
        tree.apply_buffers(
            [BufferSpec((1, 0), None), BufferSpec((2, 0), (2, 1))]
        )
        return {"a": tree}

    def test_roundtrip_topology(self):
        routes = self._routes()
        back = routes_from_dict(routes_to_dict(routes))
        tree, orig = back["a"], routes["a"]
        tree.validate()
        assert tree.source == orig.source
        assert tree.sink_tiles == orig.sink_tiles
        assert sorted(tree.edges()) == sorted(orig.edges())

    def test_roundtrip_buffers(self):
        routes = self._routes()
        back = routes_from_dict(routes_to_dict(routes))
        assert back["a"].buffer_specs() == routes["a"].buffer_specs()

    def test_bad_version(self):
        d = routes_to_dict(self._routes())
        d["version"] = 0
        with pytest.raises(ConfigurationError):
            routes_from_dict(d)


class TestInstanceRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        from repro import load_benchmark

        bench = load_benchmark("apte", seed=0)
        path = tmp_path / "apte.json"
        save_instance_json(path, bench.die, bench.floorplan, bench.netlist, bench.graph)
        die, floorplan, netlist, graph = load_instance_json(path)
        assert die == bench.die
        assert len(floorplan.blocks) == len(bench.floorplan.blocks)
        floorplan.validate()
        assert len(netlist) == len(bench.netlist)
        assert (graph.sites == bench.graph.sites).all()
        assert (graph.h_capacity == bench.graph.h_capacity).all()
        assert graph.total_sites == bench.graph.total_sites

    def test_loaded_instance_plannable(self, tmp_path):
        from repro import RabidConfig, RabidPlanner, load_benchmark

        bench = load_benchmark("apte", seed=0)
        path = tmp_path / "apte.json"
        save_instance_json(path, bench.die, bench.floorplan, bench.netlist, bench.graph)
        _, _, netlist, graph = load_instance_json(path)
        planner = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=6, stage4_iterations=0)
        )
        planner.stage1()
        planner.stage2()
        planner.stage3()
        assert graph.total_used_sites > 0
