"""JSON round-tripping of netlists, routes, and whole instances."""

import pytest

from repro.errors import ConfigurationError
from repro.io import (
    load_instance_json,
    netlist_from_dict,
    netlist_to_dict,
    routes_from_dict,
    routes_to_dict,
    save_instance_json,
)
from repro.routing.tree import BufferSpec, RouteTree


class TestNetlistRoundtrip:
    def test_roundtrip(self, small_netlist):
        d = netlist_to_dict(small_netlist)
        back = netlist_from_dict(d)
        assert len(back) == len(small_netlist)
        for a, b in zip(small_netlist, back):
            assert a.name == b.name
            assert a.source.location == b.source.location
            assert [s.location for s in a.sinks] == [s.location for s in b.sinks]
            assert [s.owner for s in a.sinks] == [s.owner for s in b.sinks]

    def test_bad_version_rejected(self, small_netlist):
        d = netlist_to_dict(small_netlist)
        d["version"] = 999
        with pytest.raises(ConfigurationError):
            netlist_from_dict(d)

    def test_json_serializable(self, small_netlist):
        import json

        json.dumps(netlist_to_dict(small_netlist))


class TestRoutesRoundtrip:
    def _routes(self):
        paths = [
            [(0, 0), (1, 0), (2, 0), (3, 0)],
            [(2, 0), (2, 1), (2, 2)],
        ]
        tree = RouteTree.from_paths((0, 0), paths, [(3, 0), (2, 2)], net_name="a")
        tree.apply_buffers(
            [BufferSpec((1, 0), None), BufferSpec((2, 0), (2, 1))]
        )
        return {"a": tree}

    def test_roundtrip_topology(self):
        routes = self._routes()
        back = routes_from_dict(routes_to_dict(routes))
        tree, orig = back["a"], routes["a"]
        tree.validate()
        assert tree.source == orig.source
        assert tree.sink_tiles == orig.sink_tiles
        assert sorted(tree.edges()) == sorted(orig.edges())

    def test_roundtrip_buffers(self):
        routes = self._routes()
        back = routes_from_dict(routes_to_dict(routes))
        assert back["a"].buffer_specs() == routes["a"].buffer_specs()

    def test_bad_version(self):
        d = routes_to_dict(self._routes())
        d["version"] = 0
        with pytest.raises(ConfigurationError):
            routes_from_dict(d)


class TestInstanceRoundtrip:
    def test_full_roundtrip(self, tmp_path):
        from repro import load_benchmark

        bench = load_benchmark("apte", seed=0)
        path = tmp_path / "apte.json"
        save_instance_json(path, bench.die, bench.floorplan, bench.netlist, bench.graph)
        die, floorplan, netlist, graph = load_instance_json(path)
        assert die == bench.die
        assert len(floorplan.blocks) == len(bench.floorplan.blocks)
        floorplan.validate()
        assert len(netlist) == len(bench.netlist)
        assert (graph.sites == bench.graph.sites).all()
        assert (graph.h_capacity == bench.graph.h_capacity).all()
        assert graph.total_sites == bench.graph.total_sites

    def test_loaded_instance_plannable(self, tmp_path):
        from repro import RabidConfig, RabidPlanner, load_benchmark

        bench = load_benchmark("apte", seed=0)
        path = tmp_path / "apte.json"
        save_instance_json(path, bench.die, bench.floorplan, bench.netlist, bench.graph)
        _, _, netlist, graph = load_instance_json(path)
        planner = RabidPlanner(
            graph, netlist, RabidConfig(length_limit=6, stage4_iterations=0)
        )
        planner.stage1()
        planner.stage2()
        planner.stage3()
        assert graph.total_used_sites > 0


class TestBufferKindSchema:
    """Versioned buffer payloads: schema 2 adds an optional ``kind``."""

    def _kinded_routes(self):
        paths = [
            [(0, 0), (1, 0), (2, 0), (3, 0)],
            [(2, 0), (2, 1), (2, 2)],
        ]
        tree = RouteTree.from_paths(
            (0, 0), paths, [(3, 0), (2, 2)], net_name="a"
        )
        tree.apply_buffers(
            [
                BufferSpec((1, 0), None, "BUF_X4"),
                BufferSpec((2, 0), (2, 1)),  # default kind
            ]
        )
        return {"a": tree}

    def test_payload_carries_schema_and_kind(self):
        d = routes_to_dict(self._kinded_routes())
        assert d["buffer_schema"] == 2
        buffers = d["routes"]["a"]["buffers"]
        kinded = [b for b in buffers if "kind" in b]
        assert [b["kind"] for b in kinded] == ["BUF_X4"]
        # Default-kind buffers stay byte-identical to schema 1 entries.
        assert all("kind" not in b for b in buffers if b not in kinded)

    def test_kind_round_trips(self):
        from repro.technology import TECH_180NM, resolve_library

        library = resolve_library("tech", TECH_180NM)
        routes = self._kinded_routes()
        back = routes_from_dict(routes_to_dict(routes), library=library)
        assert back["a"].buffer_specs() == routes["a"].buffer_specs()

    def test_legacy_payload_maps_to_default_kind(self):
        """A pre-library payload (no buffer_schema, no kind keys) loads
        with every buffer as the library default."""
        d = routes_to_dict(self._kinded_routes())
        del d["buffer_schema"]
        for rd in d["routes"].values():
            for bd in rd["buffers"]:
                bd.pop("kind", None)
        back = routes_from_dict(d)
        assert all(s.kind == "" for s in back["a"].buffer_specs())

    def test_unknown_kind_raises_typed_error(self):
        from repro.errors import UnknownBufferKindError
        from repro.technology import TECH_180NM, resolve_library

        d = routes_to_dict(self._kinded_routes())
        d["routes"]["a"]["buffers"][0]["kind"] = "BUF_X512"
        with pytest.raises(UnknownBufferKindError) as err:
            routes_from_dict(
                d, library=resolve_library("tech", TECH_180NM)
            )
        assert "BUF_X512" in str(err.value)
        # The typed error is still a ConfigurationError for old handlers.
        assert isinstance(err.value, ConfigurationError)

    def test_unknown_kind_without_library_is_lenient(self):
        # No library given: kinds are opaque strings, nothing to validate.
        d = routes_to_dict(self._kinded_routes())
        d["routes"]["a"]["buffers"][0]["kind"] = "BUF_X512"
        back = routes_from_dict(d)
        assert back["a"].buffer_specs()[0].kind == "BUF_X512"

    def test_future_buffer_schema_rejected(self):
        d = routes_to_dict(self._kinded_routes())
        d["buffer_schema"] = 3
        with pytest.raises(ConfigurationError):
            routes_from_dict(d)
