"""Serialization of a full planning result round-trips losslessly."""

import pytest

from repro import RabidConfig, RabidPlanner, TECH_180NM, load_benchmark
from repro.io import routes_from_dict, routes_to_dict
from repro.timing import delay_summary


@pytest.fixture(scope="module")
def planned():
    bench = load_benchmark("apte", seed=0)
    result = RabidPlanner(
        bench.graph,
        bench.netlist,
        RabidConfig(length_limit=6, window_margin=10, stage4_iterations=1),
    ).run()
    return bench, result


class TestPlannedRoutesRoundtrip:
    def test_all_nets_roundtrip(self, planned):
        bench, result = planned
        restored = routes_from_dict(routes_to_dict(result.routes))
        assert set(restored) == set(result.routes)

    def test_topology_identical(self, planned):
        bench, result = planned
        restored = routes_from_dict(routes_to_dict(result.routes))
        for name, tree in result.routes.items():
            back = restored[name]
            back.validate()
            assert sorted(back.edges()) == sorted(tree.edges())
            assert back.sink_tiles == tree.sink_tiles

    def test_buffers_identical(self, planned):
        bench, result = planned
        restored = routes_from_dict(routes_to_dict(result.routes))
        for name, tree in result.routes.items():
            assert restored[name].buffer_specs() == tree.buffer_specs()

    def test_delays_identical(self, planned):
        bench, result = planned
        restored = routes_from_dict(routes_to_dict(result.routes))
        worst_a, avg_a, _ = delay_summary(result.routes, bench.graph, TECH_180NM)
        worst_b, avg_b, _ = delay_summary(restored, bench.graph, TECH_180NM)
        assert worst_b == pytest.approx(worst_a)
        assert avg_b == pytest.approx(avg_a)

    def test_json_dumps_cleanly(self, planned):
        import json

        _, result = planned
        text = json.dumps(routes_to_dict(result.routes))
        assert len(text) > 1000
