"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    FloorplanError,
    InfeasibleError,
    NetlistError,
    ReproError,
    RoutingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigurationError, NetlistError, FloorplanError, RoutingError, InfeasibleError],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_base_catchable(self):
        with pytest.raises(ReproError):
            raise RoutingError("x")

    def test_distinct_categories(self):
        assert not issubclass(RoutingError, NetlistError)
        assert not issubclass(ConfigurationError, FloorplanError)

    def test_library_raises_its_own_types(self, graph10):
        from repro.netlist import Net, Pin
        from repro.geometry import Point

        with pytest.raises(NetlistError):
            Net(name="n", source=Pin("s", Point(0, 0)), sinks=[])
        with pytest.raises(ConfigurationError):
            graph10.add_wire((0, 0), (5, 5))
