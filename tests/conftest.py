"""Shared fixtures: small tile graphs, simple nets, and route trees."""

from __future__ import annotations

import pytest

from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.routing.tree import RouteTree
from repro.technology import TECH_180NM
from repro.tilegraph import CapacityModel, TileGraph


@pytest.fixture
def die10() -> Rect:
    """A 10mm x 10mm die."""
    return Rect(0.0, 0.0, 10.0, 10.0)


@pytest.fixture
def graph10(die10) -> TileGraph:
    """10x10 tiles of 1mm, uniform wire capacity 10, no sites yet."""
    return TileGraph(die10, 10, 10, CapacityModel.uniform(10))


@pytest.fixture
def graph10_sites(graph10) -> TileGraph:
    """graph10 with 3 buffer sites in every tile."""
    for tile in graph10.tiles():
        graph10.set_sites(tile, 3)
    return graph10


@pytest.fixture
def tech():
    return TECH_180NM


def make_path_tree(tiles, net_name="n"):
    """A RouteTree that is a simple path; last tile is the sink."""
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name=net_name)


@pytest.fixture
def path_tree_factory():
    return make_path_tree


@pytest.fixture
def two_pin_net() -> Net:
    return Net(
        name="n0",
        source=Pin("n0.s", Point(0.5, 0.5)),
        sinks=[Pin("n0.t", Point(8.5, 6.5))],
    )


@pytest.fixture
def multi_pin_net() -> Net:
    return Net(
        name="n1",
        source=Pin("n1.s", Point(1.5, 1.5)),
        sinks=[
            Pin("n1.a", Point(8.5, 1.5)),
            Pin("n1.b", Point(1.5, 8.5)),
            Pin("n1.c", Point(8.5, 8.5)),
        ],
    )


@pytest.fixture
def small_netlist(two_pin_net, multi_pin_net) -> Netlist:
    return Netlist(nets=[two_pin_net, multi_pin_net])
