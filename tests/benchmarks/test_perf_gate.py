"""The perf-gate: fresh BENCH entries diffed against the recorded trajectory."""

import json

import pytest

from repro.benchmarks.emit import SpeedupGateError
from repro.benchmarks.perf_gate import (
    compare_metrics,
    compare_trajectories,
    gate_files,
    main,
    metric_gates_for,
    min_metric_gates_for,
)


def _traj(entries):
    return {"schema": 1, "benchmark": {}, "entries": entries}


def _entry(label, speedup, workers=2, params=None):
    e = {
        "label": label,
        "params": params if params is not None else {"grid": 32, "seed": 0},
        "workers": workers,
    }
    if speedup is not None:
        e["speedup_vs_baseline"] = speedup
    return e


class TestMatching:
    def test_match_is_by_params_and_workers_not_label(self):
        recorded = _traj([_entry("nightly", 2.0)])
        fresh = _traj([_entry("ci-run", 2.1)])
        (result,) = compare_trajectories(recorded, fresh, cores=8)
        assert result.status == "ok"
        assert result.recorded_speedup == 2.0

    def test_different_params_never_compared(self):
        recorded = _traj([_entry("a", 2.0, params={"grid": 128})])
        fresh = _traj([_entry("a", 0.1, params={"grid": 32})])
        (result,) = compare_trajectories(recorded, fresh, cores=8)
        assert result.status.startswith("skipped")
        assert not result.failed

    def test_recorded_last_wins(self):
        recorded = _traj([_entry("old", 5.0), _entry("new", 2.0)])
        fresh = _traj([_entry("ci", 1.9)])
        (result,) = compare_trajectories(
            recorded, fresh, tolerance=0.25, cores=8
        )
        # Gated against 2.0 (the most recent), not 5.0.
        assert result.status == "ok"


class TestGate:
    def test_within_tolerance_passes(self):
        recorded = _traj([_entry("r", 2.0)])
        fresh = _traj([_entry("f", 1.6)])  # 2.0 * (1 - 0.25) = 1.5 floor
        (result,) = compare_trajectories(
            recorded, fresh, tolerance=0.25, cores=8
        )
        assert result.status == "ok"

    def test_regression_beyond_tolerance_fails(self):
        recorded = _traj([_entry("r", 2.0)])
        fresh = _traj([_entry("f", 1.4)])
        (result,) = compare_trajectories(
            recorded, fresh, tolerance=0.25, cores=8
        )
        assert result.failed
        assert "1.4" in result.describe()

    def test_missing_speedup_skips(self):
        recorded = _traj([_entry("r", None)])
        fresh = _traj([_entry("f", 0.01)])
        (result,) = compare_trajectories(recorded, fresh, cores=8)
        assert result.status.startswith("skipped")

    def test_too_few_cores_skips(self):
        recorded = _traj([_entry("r", 2.0, workers=4)])
        fresh = _traj([_entry("f", 0.5, workers=4)])
        (result,) = compare_trajectories(recorded, fresh, cores=2)
        assert result.status.startswith("skipped")
        assert not result.failed


def _bound_entry(label, gap, seconds, params=None):
    return {
        "label": label,
        "params": params if params is not None else {"grid": 32, "epsilon": 0.5},
        "gap": gap,
        "seconds_bound": seconds,
    }


BOUND_GATES = {"gap": (0.25, 0.05), "seconds_bound": (0.5, 1.0)}


class TestMetricGates:
    def test_registered_for_bounds_trajectory(self):
        gates = metric_gates_for("benchmarks/BENCH_bounds.json")
        assert "gap" in gates and "seconds_bound" in gates
        assert metric_gates_for("benchmarks/BENCH_planner.json") == {}

    def test_within_ceiling_passes(self):
        recorded = _traj([_bound_entry("r", 0.6, 10.0)])
        fresh = _traj([_bound_entry("f", 0.64, 12.0)])
        results = compare_metrics(recorded, fresh, BOUND_GATES)
        assert [r.status for r in results] == ["ok", "ok"]

    def test_gap_regression_fails(self):
        recorded = _traj([_bound_entry("r", 0.6, 10.0)])
        fresh = _traj([_bound_entry("f", 0.9, 10.0)])
        results = compare_metrics(recorded, fresh, BOUND_GATES)
        gap = next(r for r in results if r.metric == "gap")
        assert gap.failed
        assert "0.9" in gap.describe()

    def test_time_regression_fails(self):
        recorded = _traj([_bound_entry("r", 0.6, 10.0)])
        fresh = _traj([_bound_entry("f", 0.6, 40.0)])
        results = compare_metrics(recorded, fresh, BOUND_GATES)
        assert next(r for r in results if r.metric == "seconds_bound").failed

    def test_abs_slack_protects_near_zero_values(self):
        # A 0.0 recorded gap must tolerate tiny fresh noise.
        recorded = _traj([_bound_entry("r", 0.0, 0.1)])
        fresh = _traj([_bound_entry("f", 0.04, 0.9)])
        results = compare_metrics(recorded, fresh, BOUND_GATES)
        assert [r.status for r in results] == ["ok", "ok"]

    def test_none_gap_skips(self):
        # Certified-infeasible runs record gap=None: skipped, not failed.
        recorded = _traj([_bound_entry("r", 0.6, 10.0)])
        fresh = _traj([_bound_entry("f", None, 10.0)])
        results = compare_metrics(recorded, fresh, BOUND_GATES)
        gap = next(r for r in results if r.metric == "gap")
        assert gap.status.startswith("skipped")
        assert not gap.failed

    def test_different_params_not_compared(self):
        recorded = _traj([_bound_entry("r", 0.6, 10.0, params={"epsilon": 0.5})])
        fresh = _traj([_bound_entry("f", 9.9, 99.0, params={"epsilon": 0.25})])
        results = compare_metrics(recorded, fresh, BOUND_GATES)
        assert all(r.status.startswith("skipped") for r in results)

    def test_gate_files_arms_metric_gates_by_basename(self, tmp_path):
        rec_dir = tmp_path / "benchmarks"
        rec_dir.mkdir()
        rec = rec_dir / "BENCH_bounds.json"
        rec.write_text(json.dumps(_traj([_bound_entry("r", 0.6, 10.0)])))
        bad = tmp_path / "fresh.json"
        bad.write_text(json.dumps(_traj([_bound_entry("f", 2.0, 10.0)])))
        with pytest.raises(SpeedupGateError) as err:
            gate_files(str(rec), str(bad), cores=8)
        assert "gap" in str(err.value)

    def test_gate_files_metrics_ok(self, tmp_path):
        rec_dir = tmp_path / "benchmarks"
        rec_dir.mkdir()
        rec = rec_dir / "BENCH_bounds.json"
        rec.write_text(json.dumps(_traj([_bound_entry("r", 0.6, 10.0)])))
        good = tmp_path / "fresh.json"
        good.write_text(json.dumps(_traj([_bound_entry("f", 0.6, 10.0)])))
        results = gate_files(str(rec), str(good), cores=8)
        assert not any(r.failed for r in results)


class TestFilesAndCli:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_gate_files_raises_on_regression(self, tmp_path):
        rec = self._write(tmp_path / "rec.json", _traj([_entry("r", 3.0)]))
        fresh = self._write(tmp_path / "new.json", _traj([_entry("f", 1.0)]))
        with pytest.raises(SpeedupGateError) as err:
            gate_files(rec, fresh, tolerance=0.25, cores=8)
        assert "regressed" in str(err.value)

    def test_gate_files_ok(self, tmp_path):
        rec = self._write(tmp_path / "rec.json", _traj([_entry("r", 2.0)]))
        fresh = self._write(tmp_path / "new.json", _traj([_entry("f", 2.0)]))
        results = gate_files(rec, fresh, cores=8)
        assert [r.status for r in results] == ["ok"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        rec = self._write(tmp_path / "rec.json", _traj([_entry("r", 2.0)]))
        ok = self._write(tmp_path / "ok.json", _traj([_entry("f", 2.0)]))
        bad = self._write(tmp_path / "bad.json", _traj([_entry("f", 0.5)]))
        assert main([rec, ok]) == 0
        assert "perf-gate OK" in capsys.readouterr().out
        # The machine running the real gate may be single-core; pin the
        # arming decision through the tolerance=1.0 escape valve instead.
        assert main([rec, bad, "--tolerance", "0.9"]) in (0, 1)

    def test_cli_failure_exit(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        rec = self._write(tmp_path / "rec.json", _traj([_entry("r", 2.0)]))
        bad = self._write(tmp_path / "bad.json", _traj([_entry("f", 0.5)]))
        assert main([rec, bad]) == 1
        assert "perf-gate FAILED" in capsys.readouterr().err


class TestMinMetricGates:
    """Higher-is-better gates (the streaming tier's steady speedup)."""

    GATES = {"steady_speedup": (0.25, 0.1)}

    def _pair(self, recorded, fresh):
        rec = _traj([_entry("rec", None, workers=1)])
        new = _traj([_entry("ci", None, workers=1)])
        rec["entries"][0]["steady_speedup"] = recorded
        new["entries"][0]["steady_speedup"] = fresh
        return rec, new

    def test_registered_for_streaming_trajectory(self):
        gates = min_metric_gates_for("benchmarks/BENCH_streaming.json")
        assert "steady_speedup" in gates
        ceilings = metric_gates_for("benchmarks/BENCH_streaming.json")
        assert "event_p95" in ceilings

    def test_above_floor_passes(self):
        rec, new = self._pair(3.0, 2.4)
        (result,) = compare_metrics(rec, new, self.GATES, minimum=True)
        assert result.status == "ok"

    def test_drop_below_floor_fails(self):
        rec, new = self._pair(3.0, 2.0)  # floor = 3*0.75 - 0.1 = 2.15
        (result,) = compare_metrics(rec, new, self.GATES, minimum=True)
        assert result.failed

    def test_higher_fresh_value_never_fails(self):
        rec, new = self._pair(2.0, 9.0)
        (result,) = compare_metrics(rec, new, self.GATES, minimum=True)
        assert result.status == "ok"

    def test_missing_value_skips(self):
        rec, new = self._pair(3.0, None)
        del new["entries"][0]["steady_speedup"]
        (result,) = compare_metrics(rec, new, self.GATES, minimum=True)
        assert result.status.startswith("skipped")

    def test_gate_files_arms_min_gates_by_basename(self, tmp_path):
        rec, new = self._pair(3.0, 1.0)
        recorded = tmp_path / "BENCH_streaming.json"
        fresh = tmp_path / "fresh.json"
        recorded.write_text(json.dumps(rec))
        fresh.write_text(json.dumps(new))
        with pytest.raises(SpeedupGateError) as exc:
            gate_files(str(recorded), str(fresh))
        assert "steady_speedup" in str(exc.value)
