"""Shelf packing internals of the benchmark generator."""

import numpy as np
import pytest

from repro.benchmarks.generator import _shelf_pack, _synthesize_blocks
from repro.benchmarks.spec import BENCHMARK_SPECS
from repro.errors import ConfigurationError
from repro.floorplan import Block
from repro.geometry import Rect


class TestShelfPack:
    def test_legal_for_synthesized_blocks(self):
        rng = np.random.default_rng(0)
        die = Rect(0, 0, 20, 20)
        blocks = _synthesize_blocks(BENCHMARK_SPECS["ami33"], die, rng)
        # Shrink until packable, like the generator does.
        for _ in range(20):
            try:
                plan = _shelf_pack(blocks, die, rng)
                break
            except ConfigurationError:
                blocks = [
                    Block(name=b.name, width=b.width * 0.93, height=b.height * 0.93)
                    for b in blocks
                ]
        plan.validate()
        assert len(plan.blocks) == 33

    def test_uneven_gaps(self):
        # Dirichlet gap splitting: gaps differ from each other.
        rng = np.random.default_rng(1)
        die = Rect(0, 0, 30, 10)
        blocks = [Block(name=f"b{i}", width=3, height=3) for i in range(5)]
        plan = _shelf_pack(blocks, die, rng)
        plan.validate()
        xs = sorted(b.rect().x0 for b in plan.blocks)
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert len(set(round(g, 6) for g in gaps)) > 1

    def test_overflow_raises(self):
        rng = np.random.default_rng(2)
        die = Rect(0, 0, 4, 4)
        blocks = [Block(name=f"b{i}", width=3, height=3) for i in range(4)]
        with pytest.raises(ConfigurationError):
            _shelf_pack(blocks, die, rng)

    def test_blocks_keep_dimensions(self):
        rng = np.random.default_rng(3)
        die = Rect(0, 0, 20, 20)
        blocks = [Block(name="a", width=4, height=2), Block(name="b", width=2, height=5)]
        plan = _shelf_pack(blocks, die, rng)
        assert plan.get("a").width == 4 and plan.get("a").height == 2
        assert plan.get("b").width == 2 and plan.get("b").height == 5

    def test_site_flag_preserved(self):
        rng = np.random.default_rng(4)
        die = Rect(0, 0, 10, 10)
        blocks = [
            Block(name="cache", width=3, height=3, allows_buffer_sites=False)
        ]
        plan = _shelf_pack(blocks, die, rng)
        assert not plan.get("cache").allows_buffer_sites


class TestBlockSynthesis:
    def test_areas_bounded_by_die(self):
        rng = np.random.default_rng(5)
        die = Rect(0, 0, 15, 15)
        blocks = _synthesize_blocks(BENCHMARK_SPECS["apte"], die, rng)
        assert len(blocks) == 9
        for b in blocks:
            assert b.width <= die.width * 0.6 + 1e-9
            assert b.height <= die.height * 0.6 + 1e-9

    def test_total_area_near_utilization(self):
        from repro.benchmarks.generator import _BLOCK_UTILIZATION

        rng = np.random.default_rng(6)
        die = Rect(0, 0, 15, 15)
        blocks = _synthesize_blocks(BENCHMARK_SPECS["ami49"], die, rng)
        total = sum(b.area for b in blocks)
        # Clamping of extreme aspect blocks can only shrink total area.
        assert total <= _BLOCK_UTILIZATION * die.area + 1e-6
        assert total >= 0.5 * _BLOCK_UTILIZATION * die.area
