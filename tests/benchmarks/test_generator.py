"""Benchmark synthesis honors the specs and is deterministic."""

import pytest

from repro.benchmarks import BENCHMARK_SPECS, generate_benchmark, load_benchmark
from repro.errors import ConfigurationError


class TestLoad:
    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            load_benchmark("nonesuch")

    @pytest.mark.parametrize("name", ["apte", "xerox", "ami33"])
    def test_counts_match_spec(self, name):
        bench = load_benchmark(name)
        spec = BENCHMARK_SPECS[name]
        assert len(bench.netlist) == spec.nets
        assert bench.netlist.total_sinks == spec.sinks
        assert len(bench.floorplan.blocks) == spec.cells
        assert bench.graph.total_sites == spec.buffer_sites
        assert (bench.graph.nx, bench.graph.ny) == spec.grid

    def test_deterministic_same_seed(self):
        a = load_benchmark("apte", seed=3)
        b = load_benchmark("apte", seed=3)
        assert (a.graph.sites == b.graph.sites).all()
        for na, nb in zip(a.netlist, b.netlist):
            assert na.source.location == nb.source.location
            assert [s.location for s in na.sinks] == [s.location for s in nb.sinks]
        for ba, bb in zip(a.floorplan.blocks, b.floorplan.blocks):
            assert ba.rect() == bb.rect()

    def test_different_seeds_differ(self):
        a = load_benchmark("apte", seed=0)
        b = load_benchmark("apte", seed=1)
        assert (a.graph.sites != b.graph.sites).any()

    def test_floorplan_legal(self):
        bench = load_benchmark("ami49")
        bench.floorplan.validate()

    def test_pins_inside_die(self):
        bench = load_benchmark("hp")
        for net in bench.netlist:
            for pin in net.pins:
                assert bench.die.contains(pin.location)

    def test_blocked_region_has_no_sites(self):
        bench = load_benchmark("apte")
        assert len(bench.blocked_tiles) == 81
        for t in bench.blocked_tiles:
            assert bench.graph.site_count(t) == 0


class TestOverrides:
    def test_site_budget_override(self):
        bench = load_benchmark("apte", total_sites=280)
        assert bench.graph.total_sites == 280

    def test_grid_override_scales_capacity(self):
        coarse = load_benchmark("apte", grid=(10, 11))
        default = load_benchmark("apte")
        assert (coarse.graph.nx, coarse.graph.ny) == (10, 11)
        assert coarse.graph.wire_capacity((0, 0), (1, 0)) > default.graph.wire_capacity(
            (0, 0), (1, 0)
        )

    def test_explicit_capacity_override(self):
        bench = load_benchmark("apte", wire_capacity=99)
        assert bench.graph.wire_capacity((0, 0), (1, 0)) == 99

    def test_blocked_size_override(self):
        bench = load_benchmark("apte", blocked_size=0)
        assert bench.blocked_tiles == frozenset()

    def test_netlist_geometry_independent_of_grid(self):
        a = load_benchmark("apte", grid=(10, 11))
        b = load_benchmark("apte")
        for na, nb in zip(a.netlist, b.netlist):
            assert na.source.location == nb.source.location


class TestAllSpecsGenerate:
    @pytest.mark.parametrize("name", sorted(BENCHMARK_SPECS))
    def test_generates(self, name):
        bench = generate_benchmark(BENCHMARK_SPECS[name], seed=0)
        assert len(bench.netlist) == BENCHMARK_SPECS[name].nets
        bench.floorplan.validate()
