"""Shared trajectory emitter: identity, replacement, speedup baseline."""

import json

import pytest

from repro.benchmarks.emit import (
    TRAJECTORY_SCHEMA,
    SpeedupGateError,
    append_trajectory_entry,
    load_trajectory,
    write_trajectory,
)

PARAMS = {"grid": 16, "num_nets": 100}


class TestLoadWrite:
    def test_missing_file_is_fresh(self, tmp_path):
        data = load_trajectory(str(tmp_path / "BENCH_x.json"))
        assert data == {
            "schema": TRAJECTORY_SCHEMA,
            "benchmark": {},
            "entries": [],
        }

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        write_trajectory(path, {"schema": 1, "benchmark": {}, "entries": []})
        assert load_trajectory(path)["entries"] == []
        with open(path) as fh:
            assert fh.read().endswith("\n")


class TestAppend:
    def test_first_entry_pins_benchmark_params(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        append_trajectory_entry(path, "a", PARAMS, {"seconds": 1.0})
        assert load_trajectory(path)["benchmark"] == PARAMS

    def test_values_stored_verbatim(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        entry = append_trajectory_entry(
            path, "a", PARAMS, {"seconds": 1.5, "nets": 100}, workers=2
        )
        assert entry["seconds"] == 1.5
        assert entry["nets"] == 100
        assert entry["workers"] == 2
        assert entry["params"] == PARAMS
        assert "recorded_at" in entry

    def test_same_label_replaces_in_place(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        append_trajectory_entry(path, "a", PARAMS, {"seconds": 1.0})
        append_trajectory_entry(path, "b", PARAMS, {"seconds": 2.0})
        append_trajectory_entry(path, "a", PARAMS, {"seconds": 9.0})
        data = load_trajectory(path)
        assert [e["label"] for e in data["entries"]] == ["a", "b"]
        assert data["entries"][0]["seconds"] == 9.0

    def test_worker_count_is_part_of_identity(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        append_trajectory_entry(path, "a", PARAMS, {"seconds": 4.0}, workers=1)
        append_trajectory_entry(path, "a", PARAMS, {"seconds": 1.0}, workers=4)
        entries = load_trajectory(path)["entries"]
        assert len(entries) == 2
        assert {e["workers"] for e in entries} == {1, 4}

    def test_extra_fields_merge(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        entry = append_trajectory_entry(
            path, "a", PARAMS, {"seconds": 1.0}, extra={"note": "smoke"}
        )
        assert entry["note"] == "smoke"


class TestSpeedup:
    def test_speedup_vs_workers1_baseline(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        append_trajectory_entry(
            path, "base", PARAMS, {"seconds": 8.0},
            workers=1, speedup_from="seconds",
        )
        entry = append_trajectory_entry(
            path, "fast", PARAMS, {"seconds": 2.0},
            workers=4, speedup_from="seconds",
        )
        assert entry["speedup_vs_baseline"] == 4.0

    def test_baseline_has_no_self_speedup(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        append_trajectory_entry(
            path, "base", PARAMS, {"seconds": 8.0},
            workers=1, speedup_from="seconds",
        )
        again = append_trajectory_entry(
            path, "base", PARAMS, {"seconds": 7.0},
            workers=1, speedup_from="seconds",
        )
        assert "speedup_vs_baseline" not in again

    def test_different_params_have_no_baseline(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        append_trajectory_entry(
            path, "base", PARAMS, {"seconds": 8.0},
            workers=1, speedup_from="seconds",
        )
        entry = append_trajectory_entry(
            path, "fast", {"grid": 32, "num_nets": 500}, {"seconds": 2.0},
            workers=4, speedup_from="seconds",
        )
        assert "speedup_vs_baseline" not in entry


class TestSpeedupGate:
    """min_speedup_vs_workers1: parallel entries must beat the baseline —
    but only on machines that could plausibly show a speedup."""

    def _baseline(self, path):
        append_trajectory_entry(
            path, "base", PARAMS, {"seconds": 8.0},
            workers=1, speedup_from="seconds",
        )

    def test_cores_recorded_on_worker_entries(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        entry = append_trajectory_entry(
            path, "a", PARAMS, {"seconds": 1.0}, workers=2
        )
        assert entry["cores"] >= 1
        nonworker = append_trajectory_entry(path, "b", PARAMS, {"seconds": 1.0})
        assert "cores" not in nonworker

    def test_gate_passes_fast_parallel_entry(self, tmp_path, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        path = str(tmp_path / "BENCH_x.json")
        self._baseline(path)
        entry = append_trajectory_entry(
            path, "fast", PARAMS, {"seconds": 4.0},
            workers=2, speedup_from="seconds", min_speedup_vs_workers1=1.0,
        )
        assert entry["speedup_vs_baseline"] == 2.0
        assert entry["speedup_gate"] == "passed: >= 1.0x"

    def test_gate_fails_slower_than_baseline_and_does_not_record(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        path = str(tmp_path / "BENCH_x.json")
        self._baseline(path)
        with pytest.raises(SpeedupGateError, match="below the"):
            append_trajectory_entry(
                path, "slow", PARAMS, {"seconds": 10.0},
                workers=2, speedup_from="seconds",
                min_speedup_vs_workers1=1.0,
            )
        labels = [e["label"] for e in load_trajectory(path)["entries"]]
        assert labels == ["base"]

    def test_gate_skips_on_undersized_machine(self, tmp_path, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        path = str(tmp_path / "BENCH_x.json")
        self._baseline(path)
        entry = append_trajectory_entry(
            path, "slow", PARAMS, {"seconds": 10.0},
            workers=2, speedup_from="seconds", min_speedup_vs_workers1=1.0,
        )
        assert entry["speedup_gate"] == "skipped: 1 cores < 2 workers"
        assert entry["cores"] == 1

    def test_gate_skips_without_baseline(self, tmp_path, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        path = str(tmp_path / "BENCH_x.json")
        entry = append_trajectory_entry(
            path, "solo", PARAMS, {"seconds": 10.0},
            workers=2, speedup_from="seconds", min_speedup_vs_workers1=1.0,
        )
        assert entry["speedup_gate"] == "skipped: no workers=1 baseline"

    def test_gate_ignores_sequential_entries(self, tmp_path, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        path = str(tmp_path / "BENCH_x.json")
        entry = append_trajectory_entry(
            path, "base", PARAMS, {"seconds": 8.0},
            workers=1, speedup_from="seconds", min_speedup_vs_workers1=1.0,
        )
        assert "speedup_gate" not in entry


class TestRepoTrajectoryFiles:
    def test_bench_explore_acceptance_entry(self):
        """The recorded acceptance sweep meets the documented floor."""
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks",
            "BENCH_explore.json",
        )
        with open(path) as fh:
            data = json.load(fh)
        entries = [
            e for e in data["entries"] if e["label"] == "budget-sweep-engine"
        ]
        assert entries, "acceptance entry missing from BENCH_explore.json"
        entry = entries[0]
        assert entry["scenarios"] == 64
        assert entry["workers"] == 8
        assert entry["speedup"] >= 4.0
        assert entry["signatures_match"] is True
        assert entry["frontier_match"] is True
