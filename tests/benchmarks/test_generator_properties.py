"""Property-based tests: benchmark synthesis honors its spec for any seed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks import BENCHMARK_SPECS, generate_benchmark

APTE = BENCHMARK_SPECS["apte"]
HP = BENCHMARK_SPECS["hp"]


class TestGeneratorProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_counts_for_any_seed(self, seed):
        bench = generate_benchmark(APTE, seed=seed)
        assert len(bench.netlist) == APTE.nets
        assert bench.netlist.total_sinks == APTE.sinks
        assert bench.graph.total_sites == APTE.buffer_sites
        assert len(bench.floorplan.blocks) == APTE.cells

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_floorplan_always_legal(self, seed):
        bench = generate_benchmark(HP, seed=seed)
        bench.floorplan.validate()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_pad_pin_count_matches_spec(self, seed):
        bench = generate_benchmark(HP, seed=seed)
        pad_pins = sum(
            1 for net in bench.netlist for pin in net.pins if pin.owner == "PAD"
        )
        assert pad_pins == HP.pads

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_pins_on_die(self, seed):
        bench = generate_benchmark(HP, seed=seed)
        for net in bench.netlist:
            for pin in net.pins:
                assert bench.die.contains(pin.location)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_blocked_region_always_siteless(self, seed):
        bench = generate_benchmark(HP, seed=seed)
        for tile in bench.blocked_tiles:
            assert bench.graph.site_count(tile) == 0
