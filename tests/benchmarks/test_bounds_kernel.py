"""The gap-vs-epsilon benchmark kernel behind BENCH_bounds.json."""

import json

from repro.benchmarks.bounds_kernel import (
    append_bounds_entry,
    load_bounds_trajectory,
    main,
    run_bounds_kernel,
)


class TestKernel:
    def test_small_workload_invariants(self):
        results = run_bounds_kernel(
            grid=8, num_nets=10, total_sites=120,
            epsilons=(0.5, 0.25), iterations=2,
        )
        assert len(results) == 2
        for result in results:
            assert result.certificate_ok
            assert result.gap is not None and result.gap >= 0.0
            assert result.lower_bound <= result.plan_cost
            assert result.invariants_ok
        # Same workload, different epsilon: params must differ so both
        # rows coexist in the trajectory.
        assert results[0].params != results[1].params

    def test_entries_keyed_per_epsilon(self, tmp_path):
        out = str(tmp_path / "BENCH_bounds.json")
        results = run_bounds_kernel(
            grid=8, num_nets=10, total_sites=120,
            epsilons=(0.5, 0.25), iterations=2,
        )
        for result in results:
            append_bounds_entry(out, "t", result)
        data = load_bounds_trajectory(out)
        assert len(data["entries"]) == 2
        labels = {e["label"] for e in data["entries"]}
        assert labels == {"t-eps0.5", "t-eps0.25"}

    def test_cli_smoke(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_bounds.json")
        code = main([
            "--label", "ci", "--out", out,
            "--grid", "8", "--nets", "10", "--total-sites", "120",
            "--iterations", "2", "--epsilon", "0.5",
        ])
        assert code == 0
        assert "certificate_ok=True" in capsys.readouterr().out
        data = json.loads(open(out).read())
        (entry,) = data["entries"]
        assert entry["gap"] >= 0.0
        assert entry["certificate_ok"] is True


class TestRecordedTrajectory:
    def test_shipped_file_has_gap_vs_epsilon(self):
        data = load_bounds_trajectory("benchmarks/BENCH_bounds.json")
        entries = data["entries"]
        epsilons = {e["params"]["epsilon"] for e in entries}
        assert len(epsilons) >= 2
        for entry in entries:
            assert entry["certificate_ok"] is True
            assert entry["gap"] is None or entry["gap"] >= 0.0
