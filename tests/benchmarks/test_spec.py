"""Table I specs must match the paper exactly."""

import math

import pytest

from repro.benchmarks import BENCHMARK_SPECS, CBL_CIRCUITS, RANDOM_CIRCUITS

# (cells, nets, pads, sinks, grid, tile_area, L, sites, pct) from Table I.
PAPER_TABLE1 = {
    "apte": (9, 77, 73, 141, (30, 33), 0.36, 6, 1200, 0.13),
    "xerox": (10, 171, 2, 390, (30, 30), 0.35, 5, 3000, 0.38),
    "hp": (11, 68, 45, 187, (30, 30), 0.42, 6, 2350, 0.25),
    "ami33": (33, 112, 43, 324, (33, 30), 0.46, 5, 2750, 0.24),
    "ami49": (49, 368, 22, 493, (30, 30), 0.67, 5, 11450, 0.75),
    "playout": (62, 1294, 192, 1663, (33, 30), 0.75, 6, 27550, 1.47),
    "ac3": (27, 200, 75, 409, (30, 30), 0.49, 6, 3550, 0.32),
    "xc5": (50, 975, 2, 2149, (30, 30), 0.54, 6, 13550, 1.11),
    "hc7": (77, 430, 51, 1318, (30, 30), 1.04, 5, 7780, 0.33),
    "a9c3": (147, 1148, 22, 1526, (30, 30), 1.08, 5, 12780, 0.52),
}


class TestSpecsMatchPaper:
    @pytest.mark.parametrize("name", sorted(PAPER_TABLE1))
    def test_row(self, name):
        spec = BENCHMARK_SPECS[name]
        cells, nets, pads, sinks, grid, area, L, sites, pct = PAPER_TABLE1[name]
        assert spec.cells == cells
        assert spec.nets == nets
        assert spec.pads == pads
        assert spec.sinks == sinks
        assert spec.grid == grid
        assert spec.tile_area_mm2 == pytest.approx(area)
        assert spec.length_limit == L
        assert spec.buffer_sites == sites
        assert spec.chip_area_pct == pytest.approx(pct)

    def test_all_ten_present(self):
        assert set(BENCHMARK_SPECS) == set(PAPER_TABLE1)
        assert set(CBL_CIRCUITS) | set(RANDOM_CIRCUITS) == set(PAPER_TABLE1)

    def test_random_flags(self):
        for name in RANDOM_CIRCUITS:
            assert BENCHMARK_SPECS[name].is_random
        for name in CBL_CIRCUITS:
            assert not BENCHMARK_SPECS[name].is_random


class TestDerivedGeometry:
    def test_tile_side(self):
        spec = BENCHMARK_SPECS["apte"]
        assert spec.tile_side_mm == pytest.approx(math.sqrt(0.36))

    def test_die_dimensions(self):
        spec = BENCHMARK_SPECS["apte"]
        assert spec.die_width_mm == pytest.approx(30 * 0.6)
        assert spec.die_height_mm == pytest.approx(33 * 0.6)

    def test_short_side_is_30(self):
        for spec in BENCHMARK_SPECS.values():
            assert min(spec.grid) == 30

    def test_capacity_scaling(self):
        spec = BENCHMARK_SPECS["apte"]
        # Coarser grid (1/3 the tiles per side) -> 3x capacity.
        scaled = spec.scaled_wire_capacity((10, 11))
        assert scaled == 3 * spec.default_wire_capacity
        # Finer grid -> reduced capacity, at least 1.
        assert 1 <= spec.scaled_wire_capacity((60, 66)) < spec.default_wire_capacity


class TestVariants:
    def test_table3_site_variants(self):
        # The paper's Table III budgets, largest equals Table I.
        expected = {
            "apte": (280, 700, 3200),
            "xerox": (600, 1300, 3000),
            "hp": (300, 600, 2350),
            "ami33": (500, 850, 2750),
            "ami49": (850, 1650, 11450),
            "playout": (3250, 6250, 27550),
        }
        for name, budgets in expected.items():
            assert BENCHMARK_SPECS[name].site_variants == budgets

    def test_table4_grid_variants(self):
        assert BENCHMARK_SPECS["apte"].grid_variants[0] == (10, 11)
        assert BENCHMARK_SPECS["ami49"].grid_variants[-1] == (50, 50)
        assert BENCHMARK_SPECS["playout"].grid_variants == (
            (11, 10), (22, 20), (33, 30), (44, 40), (55, 50),
        )
