"""Certificate serialization and independent re-verification."""

import dataclasses

import pytest

from repro.bounds import (
    BoundOptions,
    bound_scenario,
    load_certificate,
    save_certificate,
    verify_certificate,
)
from repro.errors import ConfigurationError
from repro.service.engine import build_graph
from repro.service.jobs import ScenarioSpec


SCENARIO = ScenarioSpec(
    grid=8, num_nets=12, total_sites=120, seed=0, site_seed=0
)


@pytest.fixture(scope="module")
def cert():
    return bound_scenario(SCENARIO, BoundOptions(iterations=2)).certificate()


@pytest.fixture(scope="module")
def workload():
    nets = SCENARIO.nets()
    return build_graph(SCENARIO), nets, SCENARIO.limits(sorted(nets))


class TestRoundTrip:
    def test_save_load_identity(self, cert, tmp_path):
        path = str(tmp_path / "cert.json")
        save_certificate(cert, path)
        loaded = load_certificate(path)
        assert loaded == cert

    def test_unknown_version_rejected(self, cert, tmp_path):
        d = cert.to_dict()
        d["version"] = 999
        with pytest.raises(ConfigurationError):
            type(cert).from_dict(d)

    def test_dict_round_trip_preserves_int_keys(self, cert):
        loaded = type(cert).from_dict(cert.to_dict())
        assert loaded.edge_lengths == cert.edge_lengths
        assert all(isinstance(k, int) for k in loaded.edge_lengths)


class TestVerification:
    def test_genuine_certificate_verifies(self, cert, workload):
        graph, nets, limits = workload
        verdict = verify_certificate(cert, graph, nets, limits)
        assert verdict["ok"]
        assert verdict["worst_dual_violation"] <= 1e-6

    def test_inflated_bound_fails(self, cert, workload):
        graph, nets, limits = workload
        forged = dataclasses.replace(
            cert, lower_bound=(cert.lower_bound or 0.0) * 10 + 100.0
        )
        verdict = verify_certificate(forged, graph, nets, limits)
        assert not verdict["ok"]

    def test_inflated_net_dual_fails(self, cert, workload):
        graph, nets, limits = workload
        duals = dict(cert.net_duals)
        name = sorted(duals)[0]
        duals[name] += 50.0
        forged = dataclasses.replace(cert, net_duals=duals)
        verdict = verify_certificate(forged, graph, nets, limits)
        assert not verdict["ok"]
        assert verdict["worst_dual_violation"] > 1e-6

    def test_negative_length_fails(self, cert, workload):
        graph, nets, limits = workload
        lengths = dict(cert.edge_lengths)
        lengths[next(iter(lengths))] = -1.0
        forged = dataclasses.replace(cert, edge_lengths=lengths)
        assert not verify_certificate(forged, graph, nets, limits)["ok"]

    def test_out_of_range_index_fails(self, cert, workload):
        graph, nets, limits = workload
        lengths = dict(cert.edge_lengths)
        lengths[10**9] = 1.0
        forged = dataclasses.replace(cert, edge_lengths=lengths)
        assert not verify_certificate(forged, graph, nets, limits)["ok"]
