"""Seeded randomized rounding of the oracle's fractional columns."""

from repro.bounds import (
    BoundOptions,
    Candidate,
    bound_scenario,
    round_candidates,
)
from repro.geometry import Rect
from repro.service.engine import build_graph
from repro.service.jobs import ScenarioSpec
from repro.tilegraph import CapacityModel, TileGraph


SCENARIO = ScenarioSpec(
    grid=8, num_nets=12, total_sites=120, seed=0, site_seed=0
)


def _graph(capacity=2):
    return TileGraph(
        Rect(0, 0, 4.0, 2.0), 4, 2, CapacityModel.uniform(capacity)
    )


class TestDeterminism:
    def test_same_seed_same_plan(self):
        bound = bound_scenario(SCENARIO, BoundOptions(iterations=3))
        graph = build_graph(SCENARIO)
        plans = [
            round_candidates(graph, bound.candidates, seed=7)
            for _ in range(2)
        ]
        assert plans[0].choices == plans[1].choices
        assert plans[0].summary() == plans[1].summary()

    def test_choice_always_a_column(self):
        bound = bound_scenario(SCENARIO, BoundOptions(iterations=3))
        graph = build_graph(SCENARIO)
        plan = round_candidates(graph, bound.candidates, seed=3)
        for name, chosen in plan.choices.items():
            assert chosen in [c for c, _ in bound.candidates[name]]

    def test_graph_usage_untouched(self):
        bound = bound_scenario(SCENARIO, BoundOptions(iterations=2))
        graph = build_graph(SCENARIO)
        before = (graph.h_usage.copy(), graph.v_usage.copy())
        round_candidates(graph, bound.candidates, seed=0)
        assert (graph.h_usage == before[0]).all()
        assert (graph.v_usage == before[1]).all()


class TestAccounting:
    def test_single_column_shortcut(self):
        graph = _graph(capacity=4)
        column = Candidate(edges=(0, 1), buffers=(), cost=2.0)
        plan = round_candidates(graph, {"n0": [(column, 5)]}, seed=0)
        assert plan.choices["n0"] == column
        assert plan.total_cost == 2.0
        assert plan.wire_overflow == 0

    def test_overflow_counted(self):
        # Three nets forced onto the same unit-capacity edge: usage 3
        # against capacity 1 is 2 units of overflow.
        graph = _graph(capacity=1)
        column = Candidate(edges=(0,), buffers=(), cost=1.0)
        candidates = {f"n{i}": [(column, 1)] for i in range(3)}
        plan = round_candidates(graph, candidates, seed=0)
        assert plan.wire_overflow == 2
        assert plan.max_wire_congestion == 3.0

    def test_unrouted_nets_reported(self):
        graph = _graph()
        plan = round_candidates(graph, {"dead": []}, seed=0)
        assert plan.unrouted == ["dead"]
        assert plan.choices == {}
