"""The Garg-Konemann lower-bound oracle: bounds, certificates, infeasibility."""

import json

import pytest

from repro.bounds import (
    BoundOptions,
    bound_scenario,
    compute_bound,
    plan_surrogate_cost,
    verify_certificate,
)
from repro.core.rabid import RabidConfig
from repro.errors import ConfigurationError
from repro.explore.executor import metrics_from_state
from repro.geometry import Rect
from repro.service.engine import build_graph, full_plan
from repro.service.jobs import ScenarioSpec
from repro.tilegraph import CapacityModel, TileGraph


SCENARIO = ScenarioSpec(
    grid=12, num_nets=40, total_sites=300, seed=0, site_seed=0
)


class TestOptions:
    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            BoundOptions(mode="simplex")

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            BoundOptions(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            BoundOptions(epsilon=1.5)

    def test_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            BoundOptions(iterations=0)

    def test_theta_grid_needs_zero(self):
        with pytest.raises(ConfigurationError):
            BoundOptions(theta_grid=(0.5, 1.0))


class TestLowerBound:
    def test_bound_below_plan_cost(self):
        """The acceptance invariant: certified LB <= RABID plan cost."""
        bound = bound_scenario(SCENARIO, BoundOptions(iterations=2))
        metrics = metrics_from_state(full_plan(SCENARIO, RabidConfig()))
        assert metrics["unassigned_nets"] == 0
        plan = plan_surrogate_cost(metrics)
        assert not bound.certified_infeasible
        assert 0.0 < bound.lower_bound <= plan
        # theta=0 is always on the grid, so the constrained line search
        # can never do worse than the unconstrained floor.
        assert bound.lower_bound >= bound.unconstrained_bound

    def test_dual_feasibility(self):
        """The certificate re-verifies against an independent pricing pass."""
        bound = bound_scenario(SCENARIO, BoundOptions(iterations=2))
        graph = build_graph(SCENARIO)
        nets = SCENARIO.nets()
        limits = SCENARIO.limits(sorted(nets))
        verdict = verify_certificate(bound.certificate(), graph, nets, limits)
        assert verdict["ok"]
        assert verdict["nets_checked"] == len(nets)
        assert verdict["worst_dual_violation"] <= 1e-6
        assert bound.lower_bound <= verdict["derived_bound"] + 1e-6

    def test_deterministic(self):
        summaries = [
            json.dumps(
                bound_scenario(
                    SCENARIO, BoundOptions(iterations=2)
                ).summary(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        # `seconds` is wall-clock; everything else must be identical.
        a, b = (json.loads(s) for s in summaries)
        a.pop("seconds"), b.pop("seconds")
        assert a == b

    def test_counters_populated(self):
        bound = bound_scenario(SCENARIO, BoundOptions(iterations=2))
        assert bound.pricing_calls >= 2 * 40
        assert bound.iterations == 2
        assert bound.seconds > 0


class TestAcceptanceWorkload:
    @pytest.mark.slow
    def test_32x32_bound_below_plan_with_verified_certificate(self):
        """The issue's acceptance run: 32x32 / 500 nets, certified."""
        scenario = ScenarioSpec(
            grid=32, num_nets=500, total_sites=3500, seed=0, site_seed=0
        )
        bound = bound_scenario(scenario, BoundOptions(iterations=2))
        metrics = metrics_from_state(full_plan(scenario, RabidConfig()))
        assert metrics["unassigned_nets"] == 0
        plan = plan_surrogate_cost(metrics)
        assert not bound.certified_infeasible
        assert 0.0 < bound.lower_bound <= plan
        nets = scenario.nets()
        verdict = verify_certificate(
            bound.certificate(), build_graph(scenario),
            nets, scenario.limits(sorted(nets)),
        )
        assert verdict["ok"]
        assert verdict["worst_dual_violation"] <= 1e-6


class TestInfeasibility:
    def test_structural_certificate(self):
        graph = TileGraph(
            Rect(0, 0, 4.0, 2.0), 4, 2, CapacityModel.uniform(0)
        )
        result = compute_bound(
            graph, {"n0": ((0, 0), [(3, 0)])}, {"n0": 8},
            BoundOptions(iterations=1),
        )
        assert result.certified_infeasible
        assert result.infeasible_reason == "structural"
        assert result.structural_nets == ["n0"]

    def test_capacity_certificate(self):
        # Eight identical nets through the 2-edge unit-capacity cut
        # around the source: max concurrent flow 1/4, certified by
        # lambda_lb > 1 after the lengths concentrate on the cut.
        graph = TileGraph(
            Rect(0, 0, 4.0, 2.0), 4, 2, CapacityModel.uniform(1)
        )
        nets = {f"n{i}": ((0, 0), [(3, 0)]) for i in range(8)}
        limits = {name: 8 for name in nets}
        result = compute_bound(
            graph, nets, limits, BoundOptions(epsilon=0.5, iterations=8)
        )
        assert result.lambda_lb > 1.0
        assert result.certified_infeasible
        assert result.infeasible_reason == "capacity"

    def test_feasible_instance_not_flagged(self):
        graph = TileGraph(
            Rect(0, 0, 4.0, 2.0), 4, 2, CapacityModel.uniform(8)
        )
        result = compute_bound(
            graph, {"n0": ((0, 0), [(3, 0)])}, {"n0": 8},
            BoundOptions(iterations=2),
        )
        assert not result.certified_infeasible
        assert result.lambda_lb < 1.0
        assert result.infeasible_reason == ""


class TestGoldenSectionRefinement:
    def test_refined_lb_never_below_grid_lb(self):
        """Satellite contract: golden-section refinement only improves."""
        grid_only = bound_scenario(
            SCENARIO, BoundOptions(iterations=2, refine_iters=0)
        )
        refined = bound_scenario(
            SCENARIO, BoundOptions(iterations=2, refine_iters=4)
        )
        assert refined.lower_bound >= grid_only.lower_bound
        # theta=0 stays on the grid, so the unconstrained floor holds.
        assert refined.lower_bound >= refined.unconstrained_bound

    def test_refinement_deterministic(self):
        options = BoundOptions(iterations=2, refine_iters=6)
        a = bound_scenario(SCENARIO, options).summary()
        b = bound_scenario(SCENARIO, options).summary()
        a.pop("seconds"), b.pop("seconds")
        assert a == b

    def test_refinement_prices_extra_thetas(self):
        grid_only = bound_scenario(
            SCENARIO, BoundOptions(iterations=2, refine_iters=0)
        )
        refined = bound_scenario(
            SCENARIO, BoundOptions(iterations=2, refine_iters=4)
        )
        assert refined.pricing_calls > grid_only.pricing_calls

    def test_negative_refine_iters_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundOptions(refine_iters=-1)


class TestTriageShortCircuit:
    STARVED = ScenarioSpec(
        grid=12, num_nets=60, capacity=6, total_sites=5, length_limit=2
    )

    def test_certified_scenario_skips_pricing(self):
        from repro.obs import Tracer

        tracer = Tracer()
        result = bound_scenario(
            self.STARVED, BoundOptions(triage=True), tracer=tracer
        )
        assert result.certified_infeasible
        assert result.infeasible_reason == "triage-sites"
        assert result.pricing_calls == 0
        assert result.lower_bound is None
        assert tracer.metrics.counter("triage.skips").value == 1

    def test_feasible_scenario_falls_through(self):
        gated = bound_scenario(
            SCENARIO, BoundOptions(triage=True, refine_iters=0)
        )
        plain = bound_scenario(SCENARIO, BoundOptions(refine_iters=0))
        assert not gated.certified_infeasible
        assert gated.lower_bound == plain.lower_bound

    def test_short_circuit_result_serializes(self):
        result = bound_scenario(self.STARVED, BoundOptions(triage=True))
        summary = result.summary()
        assert summary["certified_infeasible"]
        cert = result.certificate()
        assert cert.infeasible_reason == "triage-sites"
