"""Column-generation pricing: buffered shortest paths as a layered Dijkstra."""

import pytest

from repro.bounds import PathPricer
from repro.errors import ConfigurationError
from repro.geometry import Rect
from repro.tilegraph import CapacityModel, TileGraph


def _graph(nx=8, ny=8, capacity=2):
    return TileGraph(
        Rect(0, 0, float(nx), float(ny)), nx, ny,
        CapacityModel.uniform(capacity),
    )


def _zero_lengths(graph):
    """All-zero duals: pricing degenerates to unit-cost shortest paths."""
    edges = [0.0] * len(graph.edge_capacity)
    sites = [0.0] * (graph.nx * graph.ny)
    return edges, sites


class TestBasics:
    def test_unit_cost_path_is_manhattan(self):
        graph = _graph()
        edges, sites = _zero_lengths(graph)
        priced = PathPricer(graph).price(
            (0, 0), [(3, 0)], 8, edges, sites, collect_paths=True
        )
        assert priced.reachable
        assert priced.costs[(3, 0)] == pytest.approx(3.0)
        path = priced.paths[(3, 0)]
        assert len(path.edges) == 3
        assert path.buffers == ()

    def test_dual_value_is_worst_sink(self):
        graph = _graph()
        edges, sites = _zero_lengths(graph)
        priced = PathPricer(graph).price(
            (0, 0), [(1, 0), (5, 0)], 8, edges, sites
        )
        assert priced.dual_value() == pytest.approx(5.0)

    def test_bad_length_limit(self):
        graph = _graph()
        edges, sites = _zero_lengths(graph)
        with pytest.raises(ConfigurationError):
            PathPricer(graph).price((0, 0), [(1, 0)], 0, edges, sites)


class TestSpacing:
    def test_far_sink_without_buffers_unreachable(self):
        graph = _graph()  # no buffer sites anywhere
        edges, sites = _zero_lengths(graph)
        priced = PathPricer(graph).price((0, 0), [(4, 0)], 2, edges, sites)
        assert not priced.reachable
        assert priced.costs[(4, 0)] == float("inf")

    def test_buffer_site_extends_reach(self):
        graph = _graph()
        graph.set_sites((2, 0), 1)
        edges, sites = _zero_lengths(graph)
        priced = PathPricer(graph).price(
            (0, 0), [(4, 0)], 2, edges, sites,
            wire_cost=1.0, buffer_cost=1.0, collect_paths=True,
        )
        assert priced.reachable
        # 4 wire tiles + 1 mandatory buffer at (2, 0).
        assert priced.costs[(4, 0)] == pytest.approx(5.0)
        path = priced.paths[(4, 0)]
        assert path.buffers == (2 * graph.ny + 0,)

    def test_site_duals_steer_buffer_choice(self):
        graph = _graph()
        graph.set_sites((2, 0), 1)
        graph.set_sites((2, 1), 1)
        edges = [0.0] * len(graph.edge_capacity)
        sites = [0.0] * (graph.nx * graph.ny)
        sites[2 * graph.ny + 0] = 100.0  # (2, 0) priced out
        priced = PathPricer(graph).price(
            (0, 0), [(4, 0)], 3, edges, sites, collect_paths=True
        )
        assert priced.reachable
        assert priced.paths[(4, 0)].buffers == (2 * graph.ny + 1,)


class TestWindowAndStructure:
    def test_window_escalation_still_finds_detour(self):
        # Wall the straight corridor with zero-capacity edges so the
        # route must leave a tight window; escalation must recover it.
        graph = _graph(nx=16, ny=16, capacity=2)
        for x in range(15):
            graph.set_wire_capacity((x, 1), (x, 2), 0)
        pricer = PathPricer(graph, window_margin=1)
        edges = [
            0.0 if cap > 0 else float("inf")
            for cap in graph.edge_capacity.tolist()
        ]
        sites = [0.0] * (graph.nx * graph.ny)
        priced = pricer.price((0, 0), [(0, 4)], 64, edges, sites)
        assert priced.reachable
        # Detour around the wall's open end at x=15.
        assert priced.costs[(0, 4)] > 4.0

    def test_zero_capacity_graph_is_structural(self):
        graph = _graph(capacity=0)
        edges = [float("inf")] * len(graph.edge_capacity)
        sites = [0.0] * (graph.nx * graph.ny)
        priced = PathPricer(graph).price((0, 0), [(3, 0)], 8, edges, sites)
        assert not priced.reachable
