"""TenantQueues fairness properties with an injectable fake clock.

These are pure data-structure tests — no planner, no processes. The
fleet's determinism and starvation guarantees reduce to invariants
here: per-baseline submission order outranks fairness, stride passes
equalize dispatch rates, aged items win outright, and cheap items are
preferred within a tenant (the preemption contract).
"""

import pytest

from repro.errors import ConfigurationError, QueueFullError
from repro.service import TenantQueues


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(clock=None, **kwargs):
    kwargs.setdefault("aging_threshold", 30.0)
    return TenantQueues(clock=clock or FakeClock(), **kwargs)


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            make(max_per_tenant=0)

    def test_rejects_bad_aging(self):
        with pytest.raises(ConfigurationError):
            make(aging_threshold=0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ConfigurationError):
            make(weights={"a": 0.0})


class TestBoundedQueue:
    def test_sheds_at_capacity(self):
        q = make(max_per_tenant=2)
        q.push("a", 0, "j1")
        q.push("a", 0, "j2")
        with pytest.raises(QueueFullError):
            q.push("a", 0, "j3")
        # Other tenants are unaffected by one tenant's full queue.
        q.push("b", 0, "j4")
        assert len(q) == 3
        assert q.depths() == {"a": 2, "b": 1}

    def test_push_front_skips_shed_check(self):
        q = make(max_per_tenant=1)
        item = q.push("a", 0, "j1")
        assert q.pop_for_shard(0) is item
        q.push("a", 0, "j2")
        # Requeueing the dispatched item must not shed even though the
        # tenant is nominally full again.
        q.push_front(item)
        assert q.depth("a") == 2
        assert q.pop_for_shard(0) is item


class TestBaselineOrder:
    def test_only_oldest_per_baseline_is_eligible(self):
        q = make()
        first = q.push("a", 0, "d1", baseline="b0")
        second = q.push("b", 0, "d2", baseline="b0")
        # Tenant b has the lower pass? Both are fresh (pass 0); ties go
        # by name, so tenant a wins anyway — but even if b were
        # preferred, its item is ineligible while first is queued.
        assert q.pop_for_shard(0) is first
        assert q.pop_for_shard(0) is second

    def test_cross_tenant_baseline_order_beats_fairness(self):
        q = make(weights={"flood": 1.0, "vip": 100.0})
        older = q.push("flood", 0, "d1", baseline="b0")
        newer = q.push("vip", 0, "d2", baseline="b0")
        assert q.pop_for_shard(0) is older
        assert q.pop_for_shard(0) is newer

    def test_shard_pinning(self):
        q = make()
        other = q.push("a", 1, "j1")
        mine = q.push("a", 0, "j2")
        assert q.pop_for_shard(0) is mine
        assert q.pop_for_shard(0) is None
        assert q.pop_for_shard(1) is other


class TestStrideFairness:
    def test_flooding_tenant_does_not_crowd_out_trickle(self):
        q = make()
        for i in range(10):
            q.push("flood", 0, f"f{i}", baseline=f"bf{i}")
        q.push("trickle", 0, "t0", baseline="bt0")
        order = [q.pop_for_shard(0).tenant for _ in range(3)]
        # Equal weights: after one flood dispatch its pass rises, so
        # the trickle job goes no later than second.
        assert "trickle" in order[:2]

    def test_weights_set_dispatch_ratio(self):
        q = make(weights={"heavy": 3.0, "light": 1.0})
        for i in range(12):
            q.push("heavy", 0, f"h{i}", baseline=f"bh{i}")
            q.push("light", 0, f"l{i}", baseline=f"bl{i}")
        picks = [q.pop_for_shard(0).tenant for _ in range(8)]
        assert picks.count("heavy") == 6
        assert picks.count("light") == 2

    def test_vtime_resync_blocks_banked_credit(self):
        q = make()
        for i in range(4):
            q.push("busy", 0, f"b{i}", baseline=f"bb{i}")
        for _ in range(4):
            assert q.pop_for_shard(0).tenant == "busy"
        # "idle" never queued while busy advanced the virtual clock; on
        # arrival its pass is forwarded, so it cannot claim the next 4
        # slots as "owed".
        q.push("idle", 0, "i0", baseline="bi0")
        q.push("idle", 0, "i1", baseline="bi1")
        q.push("busy", 0, "b4", baseline="bb4")
        picks = [q.pop_for_shard(0).tenant for _ in range(3)]
        assert picks.count("idle") == 2
        assert picks.count("busy") == 1
        # But not all-idle-first: busy is served within the window.
        assert picks[2] == "busy" or "busy" in picks[:2]


class TestAging:
    def test_aged_item_wins_outright(self):
        clock = FakeClock()
        q = make(clock=clock, weights={"vip": 100.0}, aging_threshold=5.0)
        starved = q.push("pleb", 0, "p0", baseline="bp")
        clock.advance(6.0)
        for i in range(3):
            q.push("vip", 0, f"v{i}", baseline=f"bv{i}")
        assert q.pop_for_shard(0) is starved
        assert q.aged_promotions == 1
        assert q.stats()["aged_promotions"] == 1

    def test_fresh_items_do_not_age(self):
        clock = FakeClock()
        q = make(clock=clock, aging_threshold=5.0)
        q.push("a", 0, "a0", baseline="ba")
        clock.advance(1.0)
        q.pop_for_shard(0)
        assert q.aged_promotions == 0

    def test_aged_picks_oldest_first(self):
        clock = FakeClock()
        q = make(clock=clock, aging_threshold=2.0)
        first = q.push("a", 0, "a0", baseline="ba")
        second = q.push("b", 0, "b0", baseline="bb")
        clock.advance(3.0)
        assert q.pop_for_shard(0) is first
        assert q.pop_for_shard(0) is second
        assert q.aged_promotions == 2


class TestCheapPreference:
    def test_cheap_item_jumps_heavy_within_tenant(self):
        q = make()
        q.push("a", 0, "full", baseline="b-heavy")
        cheap = q.push("a", 0, "incr", baseline="b-cheap")
        cheap.cost_class = "cheap"
        assert q.peek_eligible(0) is cheap
        assert q.pop_for_shard(0) is cheap

    def test_cheap_preference_respects_baseline_order(self):
        q = make()
        older = q.push("a", 0, "incr-1", baseline="b0")
        newer = q.push("a", 0, "incr-2", baseline="b0")
        older.cost_class = "cheap"
        newer.cost_class = "cheap"
        # Same baseline: only the oldest is eligible, cheap or not.
        assert q.pop_for_shard(0) is older
        assert q.pop_for_shard(0) is newer

    def test_peek_does_not_mutate(self):
        q = make()
        item = q.push("a", 0, "j", baseline="b0")
        assert q.peek_eligible(0) is item
        assert q.peek_eligible(0) is item
        assert len(q) == 1
        assert q.aged_promotions == 0
        assert q.pop_for_shard(0) is item
