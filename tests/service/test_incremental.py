"""Incremental re-plan == full re-plan, for every delta kind.

The service's core guarantee: the exact-replay engine produces a plan
whose buffering-kernel signature equals a from-scratch plan of the
evolved scenario. Each test perturbs a cached baseline one way, replans
incrementally, and compares against ``full_plan(apply_delta(...))``.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import (
    DeltaSpec,
    MacroSpec,
    ScenarioSpec,
    add_net,
    apply_delta,
    full_plan,
    incremental_replan,
    move_macro,
    remove_net,
    set_capacity,
    set_length_limit,
    set_sites,
)

SPEC = ScenarioSpec(
    grid=12, num_nets=60, total_sites=400, macros=(MacroSpec(2, 2, 3, 3),)
)


@pytest.fixture
def baseline():
    return full_plan(SPEC)


def assert_usage_consistent(state):
    """Graph usage must equal the sum of the plan's trees — after every
    commit, not just at steady state (the ledger-transaction guarantee
    extended to service jobs)."""
    graph = state.graph
    edge_usage = np.zeros_like(graph.edge_usage)
    used_sites = np.zeros_like(graph.used_sites)
    for tree in state.routes.values():
        for u, v in tree.edges():
            edge_usage[graph.edge_id(u, v)] += 1
        for tile, count in tree.buffer_counts().items():
            used_sites[tile] += count
    assert np.array_equal(edge_usage, graph.edge_usage)
    assert np.array_equal(used_sites, graph.used_sites)
    assert not graph.ledger().active


DELTAS = {
    "move_macro": DeltaSpec((move_macro(0, 7, 7),)),
    "set_sites": DeltaSpec((set_sites([(6, 6, 0), (7, 7, 12)]),)),
    "set_capacity": DeltaSpec(
        (set_capacity([(5, 5, 6, 5, 1), (5, 5, 5, 6, 1)]),)
    ),
    "add_net": DeltaSpec(
        (add_net("zz_new", (1, 1), [(8, 3), (4, 9)]),)
    ),
    "remove_net": DeltaSpec((remove_net("net07"),)),
    "set_length_limit": DeltaSpec((set_length_limit("net11", 2),)),
    "combined": DeltaSpec(
        (
            move_macro(0, 6, 1),
            set_length_limit("net23", 3),
            remove_net("net40"),
            add_net("zz_more", (10, 10), [(2, 2)]),
        )
    ),
}


@pytest.mark.parametrize("kind", sorted(DELTAS))
def test_incremental_matches_full(baseline, kind):
    delta = DELTAS[kind]
    stats = incremental_replan(baseline, delta)
    reference = full_plan(apply_delta(SPEC, delta))
    assert stats.signature == reference.signature
    assert baseline.signature == reference.signature
    assert stats.nets_replayed + stats.nets_resolved == stats.nets_total
    assert_usage_consistent(baseline)


def test_stacked_deltas_match_full(baseline):
    d1 = DELTAS["move_macro"]
    d2 = DELTAS["set_length_limit"]
    incremental_replan(baseline, d1)
    incremental_replan(baseline, d2)
    reference = full_plan(apply_delta(apply_delta(SPEC, d1), d2))
    assert baseline.signature == reference.signature
    assert_usage_consistent(baseline)


def test_replay_actually_skips_work(baseline):
    # A corner-local perturbation must leave far-away nets replayed.
    stats = incremental_replan(baseline, DeltaSpec((set_sites([(11, 11, 3)]),)))
    assert stats.nets_replayed > 0


def test_outcomes_track_trees(baseline):
    incremental_replan(baseline, DELTAS["move_macro"])
    for name, tree in baseline.routes.items():
        assert tuple(tree.buffer_specs()) == baseline.outcomes[name].specs


def test_failed_replan_rolls_back(baseline):
    sig = baseline.signature
    usage_before = baseline.graph.snapshot_usage()
    routes_before = dict(baseline.routes)
    # A negative site override passes delta validation but blows up inside
    # the replay (effective_sites), exercising the restore path.
    bad = DeltaSpec((set_sites([(3, 3, -1)]),))
    with pytest.raises(ConfigurationError):
        incremental_replan(baseline, bad)
    assert baseline.signature == sig
    assert baseline.routes == routes_before
    h, v, b, kinds = usage_before
    assert np.array_equal(baseline.graph.h_usage, h)
    assert np.array_equal(baseline.graph.v_usage, v)
    assert np.array_equal(baseline.graph.used_sites, b)
    assert baseline.graph.kind_used == kinds
    assert_usage_consistent(baseline)
    # The baseline must still be usable after the failed attempt.
    stats = incremental_replan(baseline, DELTAS["move_macro"])
    assert stats.signature == full_plan(apply_delta(SPEC, DELTAS["move_macro"])).signature


def test_reroute_path_taken_for_capacity_choke(baseline):
    # Throttling a band of central edges to capacity 1 forces reroutes
    # (not just re-buffering) through the dirty-region machinery.
    edges = [(x, 6, x, 7, 1) for x in range(3, 9)]
    delta = DeltaSpec((set_capacity(edges),))
    stats = incremental_replan(baseline, delta)
    reference = full_plan(apply_delta(SPEC, delta))
    assert stats.signature == reference.signature
    assert stats.nets_rerouted > 0
    assert_usage_consistent(baseline)
