"""Checkpoint round-trips, tamper detection, and snapshot quiescence."""

import json
import threading
import time

import pytest

from repro.errors import CheckpointError
from repro.service import (
    DeltaSpec,
    PlanningService,
    ScenarioSpec,
    apply_delta,
    full_plan,
    incremental_replan,
    move_macro,
)
from repro.service.checkpoint import (
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    load_service_checkpoints,
    save_checkpoint,
    save_service_checkpoints,
)
from repro.service.jobs import MacroSpec

SPEC = ScenarioSpec(
    grid=8, num_nets=12, total_sites=120, macros=(MacroSpec(1, 1, 2, 2),)
)
DELTA = DeltaSpec((move_macro(0, 4, 4),))


@pytest.fixture(scope="module")
def baseline():
    return full_plan(SPEC)


def test_round_trip_preserves_signature(baseline, tmp_path):
    path = tmp_path / "b0.ckpt.json"
    save_checkpoint(path, "b0", baseline)
    baseline_id, restored = load_checkpoint(path)
    assert baseline_id == "b0"
    assert restored.signature == baseline.signature
    assert restored.scenario == SPEC
    assert set(restored.routes) == set(baseline.routes)
    assert set(restored.outcomes) == set(baseline.outcomes)


def test_restored_plan_supports_incremental_replan(baseline, tmp_path):
    path = tmp_path / "b0.ckpt.json"
    save_checkpoint(path, "b0", baseline)
    _, restored = load_checkpoint(path)
    stats = incremental_replan(restored, DELTA)
    assert stats.signature == full_plan(apply_delta(SPEC, DELTA)).signature


def test_dict_round_trip(baseline):
    payload = checkpoint_to_dict("b0", baseline)
    # JSON round-trip, as the wire/file layer would do it.
    payload = json.loads(json.dumps(payload))
    baseline_id, restored = checkpoint_from_dict(payload)
    assert baseline_id == "b0"
    assert restored.signature == baseline.signature


def test_bad_schema_rejected(baseline):
    payload = checkpoint_to_dict("b0", baseline)
    payload["version"] = 99
    with pytest.raises(CheckpointError, match="schema"):
        checkpoint_from_dict(payload)


def test_tampered_signature_rejected(baseline):
    payload = checkpoint_to_dict("b0", baseline)
    payload["signature"] = "0" * 64
    with pytest.raises(CheckpointError, match="signature mismatch"):
        checkpoint_from_dict(payload)


def test_tampered_plan_rejected(baseline, tmp_path):
    payload = checkpoint_to_dict("b0", baseline)
    # Drop a net from the plan but not from the outcomes: coverage check.
    name = next(iter(payload["outcomes"]))
    del payload["plan"]["routes"]["routes"][name]
    with pytest.raises(CheckpointError):
        checkpoint_from_dict(payload)


def test_malformed_payload_wrapped(baseline):
    payload = checkpoint_to_dict("b0", baseline)
    del payload["plan"]
    with pytest.raises(CheckpointError, match="malformed"):
        checkpoint_from_dict(payload)


def test_unreadable_file_raises(tmp_path):
    path = tmp_path / "nope.ckpt.json"
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(path)
    path.write_text("{not json")
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(path)


def test_service_checkpoint_waits_for_baseline_lock(tmp_path):
    # A thread holding the baseline lock (a mid-replan job) leaves the
    # plan torn; save_service_checkpoints must block until it is whole
    # again rather than serialize the torn state.
    service = PlanningService()
    state = full_plan(SPEC)
    service.install_baseline("b0", state)
    original = state.signature
    mutating = threading.Event()

    def mutator():
        with service.locked_baseline("b0") as locked:
            locked.signature = "torn-mid-replan"
            mutating.set()
            time.sleep(0.3)
            locked.signature = original

    thread = threading.Thread(target=mutator)
    thread.start()
    assert mutating.wait(5.0)
    written = save_service_checkpoints(tmp_path, service)
    thread.join()
    # Without the lock the snapshot would carry the torn signature and
    # fail the restore-time recompute check.
    _, restored = load_checkpoint(written[0])
    assert restored.signature == original


def test_service_checkpoint_cycle(baseline, tmp_path):
    service = PlanningService()
    service.install_baseline("b0", baseline)
    written = save_service_checkpoints(tmp_path, service)
    assert [p.endswith("b0.ckpt.json") for p in written] == [True]

    fresh = PlanningService()
    loaded = load_service_checkpoints(tmp_path, fresh)
    assert loaded == ["b0"]
    assert fresh.baseline("b0").signature == baseline.signature
