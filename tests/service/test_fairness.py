"""Service-level fairness: flooding vs trickle tenants, aging bound.

The pure scheduling invariants live in ``test_tenant_queues``; these
tests drive a real one-worker fleet so the guarantees are checked
end-to-end from the record timestamps the scheduler itself emits:

* a tenant flooding its queue must not inflate a trickle tenant's
  queue wait — the flood queues behind itself;
* no queued job waits past the aging threshold while younger work from
  heavier-weighted tenants keeps arriving.

Assertions are *relative* (trickle vs flood percentiles from the same
run) so they hold on slow single-core CI machines.
"""

import asyncio

from repro.service import (
    DeltaSpec,
    FleetOptions,
    FleetPlanningService,
    Job,
    JobStatus,
    MacroSpec,
    ScenarioSpec,
    move_macro,
)

SPEC = ScenarioSpec(
    grid=8, num_nets=24, total_sites=160, macros=(MacroSpec(1, 1, 2, 2),)
)
DELTA = DeltaSpec((move_macro(0, 4, 4),))


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


async def _plan_baselines(svc, *bids):
    for bid in bids:
        svc.submit(
            Job(bid, "baseline", scenario=SPEC, tenant=bid.split("-")[0])
        )
    for bid in bids:
        record = await svc.wait(bid)
        assert record.status is JobStatus.DONE, record.error


def test_trickle_tenant_queue_wait_bounded_under_flood():
    async def body():
        options = FleetOptions(workers=1, job_timeout=60.0)
        with FleetPlanningService(options=options) as svc:
            await _plan_baselines(svc, "flood-b", "trickle-b")
            flood_ids = []
            for i in range(12):
                job_id = f"flood-d{i}"
                svc.submit(
                    Job(
                        job_id,
                        "delta",
                        baseline_id="flood-b",
                        delta=DELTA,
                        tenant="flood",
                    )
                )
                flood_ids.append(job_id)
            trickle_ids = []
            for i in range(2):
                job_id = f"trickle-d{i}"
                svc.submit(
                    Job(
                        job_id,
                        "delta",
                        baseline_id="trickle-b",
                        delta=DELTA,
                        tenant="trickle",
                    )
                )
                trickle_ids.append(job_id)
            await svc.drain()
            for job_id in flood_ids + trickle_ids:
                assert svc.record(job_id).status is JobStatus.DONE

            flood_waits = [svc.record(j).queue_wait for j in flood_ids]
            trickle_waits = [svc.record(j).queue_wait for j in trickle_ids]
            flood_p95 = _percentile(flood_waits, 0.95)
            trickle_p95 = _percentile(trickle_waits, 0.95)
            # The trickle jobs entered behind a 12-deep flood backlog;
            # fair selection must serve them long before the flood tail
            # rather than FIFO-ing the whole backlog first.
            assert trickle_p95 < flood_p95
            trickle_last = max(
                svc.record(j).finished_at for j in trickle_ids
            )
            flood_last = max(svc.record(j).finished_at for j in flood_ids)
            assert trickle_last < flood_last

    asyncio.run(body())


def test_no_starvation_past_aging_threshold():
    """Aging bounds the one unfair preference the scheduler has.

    Within a tenant, cheap (incremental) jobs bypass older heavy ones —
    the preemption contract requires it — so a full-mode job queued
    behind a continuous cheap stream would starve indefinitely without
    the aging bound. Here a heavy job enters behind a 20-deep cheap
    backlog on the same tenant: it must be promoted once its age
    crosses the threshold rather than waiting for the backlog to drain.
    """

    async def body():
        options = FleetOptions(
            workers=1,
            job_timeout=60.0,
            aging_threshold=0.02,
        )
        with FleetPlanningService(options=options) as svc:
            await _plan_baselines(svc, "cheap-b", "heavy-b")
            # The blocker occupies the worker so the heavy job is
            # *queued* (not dispatched) when the cheap stream arrives
            # behind it; the stream then bypasses it via cheap
            # preference until aging kicks in. All three submissions
            # happen before the blocker's ~ms execution completes, so
            # the ordering is not racy.
            svc.submit(
                Job(
                    "blocker",
                    "delta",
                    baseline_id="cheap-b",
                    delta=DELTA,
                    tenant="cheap",
                )
            )
            svc.submit(
                Job(
                    "heavy-d0",
                    "delta",
                    baseline_id="heavy-b",
                    delta=DELTA,
                    mode="full",
                    tenant="cheap",
                )
            )
            cheap_ids = []
            for i in range(20):
                job_id = f"cheap-d{i}"
                svc.submit(
                    Job(
                        job_id,
                        "delta",
                        baseline_id="cheap-b",
                        delta=DELTA,
                        tenant="cheap",
                    )
                )
                cheap_ids.append(job_id)
            await svc.drain()
            record = svc.record("heavy-d0")
            assert record.status is JobStatus.DONE, record.error
            for job_id in cheap_ids:
                assert svc.record(job_id).status is JobStatus.DONE
            assert svc.stats()["aged_promotions"] >= 1
            cheap_tail = max(
                svc.record(j).finished_at for j in cheap_ids
            )
            assert record.finished_at < cheap_tail
            assert record.queue_wait < 60.0

    asyncio.run(body())
