"""Graceful shutdown: drain, typed rejection, dirty checkpoints.

Covered for both schedulers (the single-process ``PlanningService``
and the sharded ``FleetPlanningService``) plus the protocol layer that
fronts them: once shutdown begins, new submissions fail with
``ShuttingDownError`` (``SHUTTING_DOWN`` on the wire), in-flight jobs
drain bounded by the deadline, and dirty baselines are checkpointed
before exit. No pytest-asyncio in the environment — tests drive the
loop via ``asyncio.run``.
"""

import asyncio
import json
import os

import pytest

from repro.errors import ShuttingDownError
from repro.service import (
    DeltaSpec,
    FleetOptions,
    FleetPlanningService,
    Job,
    JobStatus,
    MacroSpec,
    PlanningService,
    ScenarioSpec,
    SchedulerOptions,
    move_macro,
)
from repro.service.protocol import ProtocolServer, request_over_stream

SPEC = ScenarioSpec(
    grid=8, num_nets=24, total_sites=160, macros=(MacroSpec(1, 1, 2, 2),)
)
DELTA = DeltaSpec((move_macro(0, 4, 4),))


def run(coro):
    return asyncio.run(coro)


def make_classic():
    return PlanningService(
        options=SchedulerOptions(workers=1, max_queue=32)
    )


def make_fleet():
    return FleetPlanningService(
        options=FleetOptions(workers=1, job_timeout=60.0)
    )


@pytest.fixture(params=["classic", "fleet"])
def make_service(request):
    return make_classic if request.param == "classic" else make_fleet


class TestSchedulerShutdown:
    def test_submit_rejected_after_begin_shutdown(self, make_service):
        async def body():
            service = make_service()
            await service.start()
            try:
                service.submit(Job("b0", "baseline", scenario=SPEC))
                record = await service.wait("b0")
                assert record.status is JobStatus.DONE, record.error
                assert not service.shutting_down
                service.begin_shutdown()
                assert service.shutting_down
                with pytest.raises(ShuttingDownError):
                    service.submit(
                        Job("late", "delta", baseline_id="b0", delta=DELTA)
                    )
            finally:
                await service.stop()

        run(body())

    def test_drain_until_completes_in_flight(self, make_service):
        async def body():
            service = make_service()
            await service.start()
            try:
                service.submit(Job("b0", "baseline", scenario=SPEC))
                for i in range(3):
                    service.submit(
                        Job(f"d{i}", "delta", baseline_id="b0", delta=DELTA)
                    )
                service.begin_shutdown()
                report = await service.drain_until(30.0)
                assert report == {"drained": True, "pending": 0}
                for i in range(3):
                    assert service.record(f"d{i}").status is JobStatus.DONE
            finally:
                await service.stop()

        run(body())

    def test_drain_until_bounded_by_deadline(self, make_service):
        async def body():
            service = make_service()
            await service.start()
            try:
                # A grid this size takes well over the 0-second budget.
                big = ScenarioSpec(
                    grid=24,
                    num_nets=260,
                    total_sites=1400,
                    macros=(MacroSpec(3, 3, 6, 6),),
                )
                service.submit(Job("b0", "baseline", scenario=big))
                report = await service.drain_until(0.0)
                assert not report["drained"]
                assert report["pending"] >= 1
                # The bound rejects waiting, not the work: a later
                # unbounded drain still finishes the job.
                report = await service.drain_until(60.0)
                assert report["drained"]
                assert service.record("b0").status is JobStatus.DONE
            finally:
                await service.stop()

        run(body())

    def test_checkpoint_to_writes_only_dirty(self, make_service, tmp_path):
        async def body():
            service = make_service()
            await service.start()
            try:
                service.submit(Job("b0", "baseline", scenario=SPEC))
                service.submit(Job("b1", "baseline", scenario=SPEC))
                await service.wait("b0")
                await service.wait("b1")
                assert service.dirty_baseline_ids == ["b0", "b1"]
                first = tmp_path / "first"
                written = service.checkpoint_to(str(first), True)
                assert sorted(os.path.basename(p) for p in written) == [
                    "b0.ckpt.json",
                    "b1.ckpt.json",
                ]
                assert sorted(p.name for p in first.iterdir()) == [
                    "b0.ckpt.json",
                    "b1.ckpt.json",
                ]
                # Checkpointing marked them clean; only new mutations
                # re-dirty.
                assert service.dirty_baseline_ids == []
                service.submit(
                    Job("d0", "delta", baseline_id="b1", delta=DELTA)
                )
                await service.wait("d0")
                assert service.dirty_baseline_ids == ["b1"]
                second = tmp_path / "second"
                written = service.checkpoint_to(str(second), True)
                assert [os.path.basename(p) for p in written] == [
                    "b1.ckpt.json"
                ]
                assert [p.name for p in second.iterdir()] == ["b1.ckpt.json"]
            finally:
                await service.stop()

        run(body())


class TestProtocolShutdown:
    def test_wire_level_graceful_shutdown(self, make_service, tmp_path):
        async def body():
            service = make_service()
            ckpt = tmp_path / "ckpt"
            server = ProtocolServer(
                service,
                checkpoint_dir=str(ckpt),
                shutdown_deadline=30.0,
            )
            await server.start("127.0.0.1", 0)
            serving = asyncio.ensure_future(server.serve_until_shutdown())
            responses = await request_over_stream(
                "127.0.0.1",
                server.port,
                [
                    {
                        "op": "submit",
                        "job": {
                            "job_id": "b0",
                            "kind": "baseline",
                            "scenario": SPEC.to_dict(),
                        },
                    },
                    {"op": "wait", "job_id": "b0"},
                    {"op": "shutdown", "deadline": 30.0},
                ],
            )
            assert responses[0]["ok"]
            assert responses[1]["status"] == "done"
            assert responses[2] == {"ok": True, "shutting_down": True}
            # Submissions racing the shutdown get the typed error (the
            # service object rejects even though the socket is gone).
            with pytest.raises(ShuttingDownError):
                service.submit(
                    Job("late", "delta", baseline_id="b0", delta=DELTA)
                )
            await asyncio.wait_for(serving, timeout=60.0)
            assert server.drain_report == {"drained": True, "pending": 0}
            # The dirty baseline was checkpointed on the way out.
            assert sorted(os.listdir(ckpt)) == ["b0.ckpt.json"]
            payload = json.loads((ckpt / "b0.ckpt.json").read_text())
            assert payload["baseline_id"] == "b0"

        run(body())

    def test_shutdown_error_is_typed_on_the_wire(self):
        async def body():
            service = make_classic()
            server = ProtocolServer(service, shutdown_deadline=5.0)
            await server.start("127.0.0.1", 0)
            serving = asyncio.ensure_future(server.serve_until_shutdown())
            # Reject-after-shutdown over a fresh connection: dispatch
            # directly so the test does not race the socket closing.
            server.request_shutdown()
            response = await server._dispatch_line(
                json.dumps(
                    {
                        "op": "submit",
                        "job": {
                            "job_id": "b0",
                            "kind": "baseline",
                            "scenario": SPEC.to_dict(),
                        },
                    }
                ).encode()
            )
            assert response["ok"] is False
            assert response["error"] == "ShuttingDownError"
            await asyncio.wait_for(serving, timeout=30.0)

        run(body())
