"""Load generation: deterministic traces and the run_load report.

Trace generation must be a pure function of its options — the fleet
determinism gate depends on driving the *same* trace through every
scheduler arm. Driving uses a tiny grid so the full report path
(warmup exclusion, percentiles, per-tenant stats, signatures) runs in
seconds against the real single-process scheduler.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    FleetOptions,
    FleetPlanningService,
    JobStatus,
    LoadgenOptions,
    PlanningService,
    SchedulerOptions,
    make_load_trace,
    run_load,
)

SMALL = LoadgenOptions(
    tenants=2,
    jobs=12,
    rate=200.0,
    seed=7,
    grid=8,
    num_nets=30,
    total_sites=160,
)


class TestOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenants": 0},
            {"jobs": 0},
            {"rate": 0.0},
            {"mix": (0.5, 0.5)},
            {"mix": (-0.1, 0.5, 0.6)},
            {"mix": (0.0, 0.0, 0.0)},
            {"warmup_fraction": 1.0},
            {"warmup_fraction": -0.1},
        ],
    )
    def test_rejects_bad_options(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadgenOptions(**kwargs)


class TestTrace:
    def test_trace_is_deterministic(self):
        a = make_load_trace(SMALL)
        b = make_load_trace(SMALL)
        assert a == b
        assert [e.offset for e in a.events] == [e.offset for e in b.events]
        assert [e.job.job_id for e in a.events] == [
            e.job.job_id for e in b.events
        ]

    def test_seed_changes_trace(self):
        a = make_load_trace(SMALL)
        b = make_load_trace(
            LoadgenOptions(
                tenants=2,
                jobs=12,
                rate=200.0,
                seed=8,
                grid=8,
                num_nets=30,
                total_sites=160,
            )
        )
        assert [e.offset for e in a.events] != [e.offset for e in b.events]

    def test_structure(self):
        trace = make_load_trace(SMALL)
        assert len(trace.baselines) == 2
        assert len(trace.events) == 12
        assert trace.warmup_count == 1
        # Baselines differ per tenant (distinct site scatter) so a
        # shard mix-up cannot cancel out in the signature comparison.
        scenarios = {b.scenario.site_seed for b in trace.baselines}
        assert len(scenarios) == 2
        # Arrival offsets are nondecreasing; every job targets its own
        # tenant's baseline.
        offsets = [e.offset for e in trace.events]
        assert offsets == sorted(offsets)
        for event in trace.events:
            job = event.job
            assert job.kind == "delta"
            assert job.baseline_id == f"lg-{job.tenant}-b"
            assert job.mode in ("full", "incremental")
            if job.mode == "full":
                # Full-mode jobs are macro perturbations re-planned
                # from scratch; churn ops stay incremental.
                assert job.delta.ops[0].kind == "move_macro"

    def test_mix_selects_kinds(self):
        churn_only = make_load_trace(
            LoadgenOptions(
                tenants=1,
                jobs=10,
                rate=100.0,
                seed=0,
                mix=(0.0, 0.0, 1.0),
                grid=8,
                num_nets=30,
                total_sites=160,
            )
        )
        kinds = {
            e.job.delta.ops[0].kind for e in churn_only.events
        }
        assert kinds <= {"add_net", "remove_net"}
        full_only = make_load_trace(
            LoadgenOptions(
                tenants=1,
                jobs=5,
                rate=100.0,
                seed=0,
                mix=(1.0, 0.0, 0.0),
                grid=8,
                num_nets=30,
                total_sites=160,
            )
        )
        assert all(e.job.mode == "full" for e in full_only.events)


class TestRunLoad:
    def _drive(self, service_factory):
        trace = make_load_trace(SMALL)

        async def body():
            service = service_factory()
            await service.start()
            try:
                return await run_load(service, trace), service
            finally:
                await service.stop()

        return asyncio.run(body())

    def test_report_against_classic_scheduler(self):
        report, _ = self._drive(
            lambda: PlanningService(
                options=SchedulerOptions(workers=1, max_queue=64)
            )
        )
        assert report.jobs_submitted == 12
        assert report.jobs_failed == 0
        assert report.jobs_shed == 0
        # One warmup job is excluded from the measured set.
        assert report.jobs_measured == 11
        assert report.jobs_done == 12
        assert report.jobs_per_sec > 0
        assert report.wall_seconds > 0
        assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
        assert set(report.signatures) == {"lg-t0-b", "lg-t1-b"}
        assert all(report.signatures.values())
        assert set(report.per_tenant) <= {"t0", "t1"}
        for stats in report.per_tenant.values():
            assert stats["jobs"] >= 1
        as_dict = report.as_dict()
        assert as_dict["jobs_measured"] == 11
        assert as_dict["signatures"] == report.signatures

    def test_fleet_matches_classic_signatures(self):
        classic, _ = self._drive(
            lambda: PlanningService(
                options=SchedulerOptions(workers=1, max_queue=64)
            )
        )
        fleet, _ = self._drive(
            lambda: FleetPlanningService(
                options=FleetOptions(workers=2, job_timeout=60.0)
            )
        )
        assert fleet.jobs_failed == 0
        assert fleet.signatures == classic.signatures
