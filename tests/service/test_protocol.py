"""JSON-lines protocol: wire round-trips, ops end-to-end, typed errors."""

import asyncio
import json

import pytest

from repro.errors import ProtocolError
from repro.service import (
    DeltaSpec,
    Job,
    PlanningService,
    ScenarioSpec,
    SchedulerOptions,
    move_macro,
)
from repro.service.jobs import MacroSpec
from repro.service.protocol import (
    ProtocolServer,
    job_from_dict,
    job_to_dict,
    request_over_stream,
)

SPEC = ScenarioSpec(
    grid=8, num_nets=12, total_sites=120, macros=(MacroSpec(1, 1, 2, 2),)
)
DELTA = DeltaSpec((move_macro(0, 4, 4),))


class TestJobWire:
    def test_baseline_round_trip(self):
        job = Job("b0", "baseline", scenario=SPEC, config={"length_limit": 5})
        assert job_to_dict(job_from_dict(job_to_dict(job))) == job_to_dict(job)

    def test_delta_round_trip(self):
        job = Job("d0", "delta", baseline_id="b0", delta=DELTA, mode="full")
        restored = job_from_dict(job_to_dict(job))
        assert restored.mode == "full"
        assert restored.delta == DELTA
        assert job_to_dict(restored) == job_to_dict(job)

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"kind": "baseline"},
            {"job_id": "b0"},
            {"job_id": 7, "kind": "baseline"},
        ],
    )
    def test_bad_wire_jobs_rejected(self, payload):
        with pytest.raises(ProtocolError):
            job_from_dict(payload)


def serve_and_request(requests, options=None):
    """Spin a real server on a loopback port, run requests, tear down."""

    async def scenario():
        service = PlanningService(
            options=options or SchedulerOptions(workers=1)
        )
        server = ProtocolServer(service)
        await server.start("127.0.0.1", 0)
        try:
            return await request_over_stream("127.0.0.1", server.port, requests)
        finally:
            await server.close()

    return asyncio.run(scenario())


class TestServerOps:
    def test_submit_wait_baselines_stats(self, tmp_path):
        responses = serve_and_request(
            [
                {"op": "submit",
                 "job": {"job_id": "b0", "kind": "baseline",
                         "scenario": SPEC.to_dict()}},
                {"op": "wait", "job_id": "b0"},
                {"op": "submit",
                 "job": {"job_id": "d0", "kind": "delta",
                         "baseline_id": "b0", "delta": DELTA.to_dict()}},
                {"op": "wait", "job_id": "d0"},
                {"op": "status", "job_id": "d0"},
                {"op": "baselines"},
                {"op": "stats"},
                {"op": "checkpoint", "directory": str(tmp_path)},
            ]
        )
        submit_b0, wait_b0, submit_d0, wait_d0, status, bases, stats, ckpt = (
            responses
        )
        assert submit_b0["ok"] and submit_b0["status"] == "queued"
        assert wait_b0["ok"] and wait_b0["status"] == "done"
        assert wait_d0["ok"] and wait_d0["status"] == "done"
        assert wait_d0["result"]["mode"] == "incremental"
        assert status["status"] == "done"
        assert list(bases["baselines"]) == ["b0"]
        assert stats["done"] == 2 and stats["baselines"] == 1
        assert ckpt["ok"] and len(ckpt["written"]) == 1
        assert (tmp_path / "b0.ckpt.json").exists()

    def test_error_responses_are_typed(self):
        responses = serve_and_request(
            [
                {"op": "status", "job_id": "ghost"},
                {"op": "warp"},
                {"op": "submit", "job": {"job_id": "x"}},
                {"op": "checkpoint"},
            ]
        )
        unknown, bad_op, bad_job, bad_ckpt = responses
        assert unknown == {
            "ok": False,
            "error": "UnknownJobError",
            "message": "unknown job 'ghost'",
        }
        assert not bad_op["ok"] and bad_op["error"] == "ProtocolError"
        assert not bad_job["ok"] and bad_job["error"] == "ProtocolError"
        assert not bad_ckpt["ok"] and bad_ckpt["error"] == "ProtocolError"

    def test_duplicate_submit_and_shed_are_distinct(self):
        job = {"job_id": "d0", "kind": "delta", "baseline_id": "b0",
               "delta": DELTA.to_dict()}

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, max_queue=1)
            )
            server = ProtocolServer(service)
            await server.start("127.0.0.1", 0)
            # Stop the workers so the one-job queue can never drain —
            # shed becomes deterministic instead of a race.
            await service.stop()
            try:
                return await request_over_stream(
                    "127.0.0.1",
                    server.port,
                    [
                        {"op": "submit", "job": job},
                        {"op": "submit", "job": job},
                        {"op": "submit", "job": {**job, "job_id": "d1"}},
                    ],
                )
            finally:
                await server.close()

        first, dup, shed = asyncio.run(scenario())
        assert first["ok"]
        assert not dup["ok"] and dup["error"] == "ServiceError"
        assert not shed["ok"] and shed["error"] == "QueueFullError"

    def test_bad_json_line(self):
        async def scenario():
            service = PlanningService(options=SchedulerOptions(workers=1))
            server = ProtocolServer(service)
            await server.start("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"{this is not json\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return json.loads(line)
            finally:
                await server.close()

        response = asyncio.run(scenario())
        assert not response["ok"]
        assert response["error"] == "ProtocolError"
        assert "bad JSON" in response["message"]

    def test_shutdown_op(self):
        async def scenario():
            service = PlanningService(options=SchedulerOptions(workers=1))
            server = ProtocolServer(service)
            await server.start("127.0.0.1", 0)
            waiter = asyncio.create_task(server.serve_until_shutdown())
            responses = await request_over_stream(
                "127.0.0.1", server.port, [{"op": "shutdown"}]
            )
            await asyncio.wait_for(waiter, timeout=5.0)
            return responses

        responses = asyncio.run(scenario())
        assert responses == [{"ok": True, "shutting_down": True}]


class TestRequestSizeLimit:
    def test_oversized_line_gets_typed_error_and_drop(self):
        async def scenario():
            service = PlanningService(options=SchedulerOptions(workers=1))
            server = ProtocolServer(service, max_request_bytes=4096)
            await server.start("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b'{"op": "status", "job_id": "'
                    + b"x" * 10_000
                    + b'"}\n'
                )
                await writer.drain()
                line = await reader.readline()
                after = await reader.readline()  # connection dropped
                writer.close()
                await writer.wait_closed()

                # A fresh connection still works after the oversized one.
                fresh = await request_over_stream(
                    "127.0.0.1", server.port, [{"op": "stats"}]
                )
                return json.loads(line), after, fresh
            finally:
                await server.close()

        response, after, fresh = asyncio.run(scenario())
        assert not response["ok"]
        assert response["error"] == "ProtocolError"
        assert "4096" in response["message"]
        assert after == b""
        assert fresh[0]["ok"]

    def test_normal_request_fits_under_limit(self):
        async def scenario():
            service = PlanningService(options=SchedulerOptions(workers=1))
            server = ProtocolServer(service, max_request_bytes=4096)
            await server.start("127.0.0.1", 0)
            try:
                return await request_over_stream(
                    "127.0.0.1", server.port, [{"op": "stats"}]
                )
            finally:
                await server.close()

        assert asyncio.run(scenario())[0]["ok"]

    def test_limit_validated(self):
        service = PlanningService(options=SchedulerOptions(workers=1))
        with pytest.raises(ProtocolError):
            ProtocolServer(service, max_request_bytes=1)
