"""Scenario/delta/job model: round-trips, validation, pure evolution."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.service.jobs import (
    DeltaOp,
    DeltaSpec,
    Job,
    MacroSpec,
    ScenarioSpec,
    add_net,
    apply_delta,
    move_macro,
    remove_net,
    set_capacity,
    set_length_limit,
    set_sites,
)


def small_spec(**kwargs) -> ScenarioSpec:
    defaults = dict(
        grid=10, num_nets=20, total_sites=200, macros=(MacroSpec(2, 2, 3, 3),)
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestScenarioSpec:
    def test_round_trip(self):
        spec = small_spec(
            added_nets=((("extra"), (0, 0), ((5, 5), (2, 7))),),
            removed_nets=("net03",),
            length_limits=(("net01", 7),),
            site_overrides=(((4, 4), 9),),
            capacity_overrides=(((0, 0), (1, 0), 3),),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_bad_version_rejected(self):
        d = small_spec().to_dict()
        d["version"] = 99
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(d)

    def test_macro_blocks_sites(self):
        spec = small_spec()
        sites = spec.effective_sites()
        for x, y in spec.macros[0].tiles(10, 10):
            assert sites[x, y] == 0

    def test_moving_macro_restores_old_footprint(self):
        spec = small_spec()
        moved = apply_delta(spec, DeltaSpec((move_macro(0, 6, 6),)))
        base = spec.base_sites()
        sites = moved.effective_sites()
        for x, y in spec.macros[0].tiles(10, 10):
            if (x, y) not in moved.macros[0].tiles(10, 10):
                assert sites[x, y] == base[x, y]

    def test_site_override_beats_macro(self):
        spec = small_spec(site_overrides=(((2, 2), 5),))
        assert spec.effective_sites()[2, 2] == 5

    def test_base_sites_deterministic_and_conserved(self):
        spec = small_spec()
        a, b = spec.base_sites(), spec.base_sites()
        assert np.array_equal(a, b)
        assert int(a.sum()) == spec.total_sites

    def test_nets_add_remove(self):
        spec = small_spec(
            added_nets=(("extra", (0, 0), ((5, 5),)),),
            removed_nets=("net00",),
        )
        nets = spec.nets()
        assert "extra" in nets and "net00" not in nets

    def test_limits_with_overrides(self):
        spec = small_spec(length_limits=(("net01", 9),))
        limits = spec.limits(["net00", "net01"])
        assert limits == {"net00": spec.length_limit, "net01": 9}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(grid=1)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(capacity=0)
        with pytest.raises(ConfigurationError):
            MacroSpec(0, 0, 0, 3)


class TestDeltas:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown delta kind"):
            DeltaOp("teleport_macro", {})

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="missing fields"):
            DeltaOp("move_macro", {"index": 0})

    def test_empty_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            DeltaSpec(ops=())

    def test_round_trip(self):
        delta = DeltaSpec(
            ops=(
                move_macro(0, 5, 5),
                set_sites([(1, 1, 4)]),
                set_capacity([(0, 0, 1, 0, 2)]),
                add_net("x", (0, 0), [(3, 3)]),
                remove_net("net01"),
                set_length_limit("net02", 8),
            )
        )
        assert DeltaSpec.from_dict(delta.to_dict()) == delta

    def test_apply_is_pure(self):
        spec = small_spec()
        before = spec.to_dict()
        apply_delta(spec, DeltaSpec((move_macro(0, 6, 6),)))
        assert spec.to_dict() == before

    def test_apply_each_kind(self):
        spec = small_spec()
        out = apply_delta(
            spec,
            DeltaSpec(
                ops=(
                    move_macro(0, 6, 6),
                    set_sites([(1, 1, 4)]),
                    set_capacity([(0, 0, 0, 1, 2)]),
                    add_net("x", (0, 0), [(3, 3)]),
                    remove_net("net01"),
                    set_length_limit("net02", 8),
                )
            ),
        )
        assert out.macros[0] == MacroSpec(6, 6, 3, 3)
        assert ((1, 1), 4) in out.site_overrides
        assert ((0, 0), (0, 1), 2) in out.capacity_overrides
        assert "x" in out.nets() and "net01" not in out.nets()
        assert out.limits(["net02"])["net02"] == 8

    def test_remove_then_add_back(self):
        spec = small_spec()
        out = apply_delta(spec, DeltaSpec((remove_net("net01"),)))
        out = apply_delta(out, DeltaSpec((add_net("net01", (0, 0), [(2, 2)]),)))
        assert out.nets()["net01"] == ((0, 0), [(2, 2)])

    def test_move_macro_bad_index(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            apply_delta(small_spec(), DeltaSpec((move_macro(3, 0, 0),)))

    def test_bad_length_limit(self):
        with pytest.raises(ConfigurationError):
            apply_delta(small_spec(), DeltaSpec((set_length_limit("n", 0),)))


class TestJobs:
    def test_baseline_needs_scenario(self):
        with pytest.raises(ProtocolError):
            Job("j0", "baseline")

    def test_delta_needs_baseline_and_delta(self):
        with pytest.raises(ProtocolError):
            Job("j0", "delta", baseline_id="b0")

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError):
            Job("j0", "mystery", scenario=small_spec())

    def test_unknown_mode(self):
        with pytest.raises(ProtocolError):
            Job(
                "j0",
                "delta",
                baseline_id="b0",
                delta=DeltaSpec((remove_net("n"),)),
                mode="psychic",
            )
