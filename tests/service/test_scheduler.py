"""Scheduler behaviour: shed, timeout rollback, retries, verification.

The planning engine is exercised elsewhere; here we mostly inject fake
plan/replan callables so each scheduler path is isolated and fast. No
pytest-asyncio in the environment — tests drive the loop via
``asyncio.run`` directly.
"""

import asyncio
import threading
import time

import pytest

from repro.errors import ConfigurationError, QueueFullError, ServiceError
from repro.service import (
    DeltaSpec,
    Job,
    JobStatus,
    PlanningService,
    ScenarioSpec,
    SchedulerOptions,
    full_plan,
    move_macro,
)
from repro.service.jobs import MacroSpec

SPEC = ScenarioSpec(
    grid=8, num_nets=12, total_sites=120, macros=(MacroSpec(1, 1, 2, 2),)
)
DELTA = DeltaSpec((move_macro(0, 4, 4),))


class FakeStats:
    seconds = 0.001

    def as_dict(self):
        return {"seconds": self.seconds}


def delta_job(job_id="d0", baseline_id="b0"):
    return Job(job_id, "delta", baseline_id=baseline_id, delta=DELTA)


def run(coro):
    return asyncio.run(coro)


class TestOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_queue": 0},
            {"job_timeout": 0},
            {"retries": -1},
            {"backoff": -0.1},
            {"verify_fraction": 1.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            SchedulerOptions(**kwargs)


class TestBackpressure:
    def test_full_queue_sheds_with_typed_error(self):
        async def scenario():
            # Workers never started, so the queue only drains on shed.
            service = PlanningService(options=SchedulerOptions(max_queue=1))
            service.submit(delta_job("d0"))
            with pytest.raises(QueueFullError):
                service.submit(delta_job("d1"))
            assert service.record("d1").status is JobStatus.SHED
            assert service.stats()["shed"] == 1
            assert "queue full" in service.record("d1").error

        run(scenario())

    def test_duplicate_job_id_rejected(self):
        async def scenario():
            service = PlanningService()
            service.submit(delta_job("d0"))
            with pytest.raises(ServiceError, match="duplicate"):
                service.submit(delta_job("d0"))

        run(scenario())

    def test_shed_job_id_can_be_resubmitted(self):
        gate = threading.Event()

        def gated_replan(state, delta, tracer=None):
            gate.wait(5.0)
            return FakeStats()

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, max_queue=1),
                replan_fn=gated_replan,
            )
            service.install_baseline("b0", full_plan(SPEC))
            await service.start()
            try:
                service.submit(delta_job("d0"))
                # Wait until the worker dequeues d0; d1 then occupies
                # the single queue slot so d2's shed is deterministic.
                while service.record("d0").status is JobStatus.QUEUED:
                    await asyncio.sleep(0.01)
                service.submit(delta_job("d1"))
                with pytest.raises(QueueFullError):
                    service.submit(delta_job("d2"))
                assert service.record("d2").status is JobStatus.SHED
                # Shedding must not burn the id: while still saturated a
                # retry sheds again (not "duplicate")...
                with pytest.raises(QueueFullError):
                    service.submit(delta_job("d2"))
                gate.set()
                await service.drain()
                # ...and once the queue drains the retry is accepted.
                service.submit(delta_job("d2"))
                record = await service.wait("d2")
                assert record.status is JobStatus.DONE
            finally:
                gate.set()
                await service.stop()

        run(scenario())


class TestEndToEnd:
    def test_baseline_then_incremental_delta(self):
        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, verify_fraction=1.0)
            )
            await service.start()
            try:
                service.submit(Job("b0", "baseline", scenario=SPEC))
                record = await service.wait("b0")
                assert record.status is JobStatus.DONE
                service.submit(delta_job("d0"))
                record = await service.wait("d0")
                assert record.status is JobStatus.DONE
                assert record.result["mode"] == "incremental"
                assert record.result["verify_matched"] is True
                assert service.stats()["verified"] == 1
                assert service.stats()["mismatches"] == 0
            finally:
                await service.stop()

        run(scenario())

    def test_full_mode_replaces_baseline(self):
        async def scenario():
            service = PlanningService(options=SchedulerOptions(workers=1))
            await service.start()
            try:
                service.submit(Job("b0", "baseline", scenario=SPEC))
                await service.wait("b0")
                job = Job("d0", "delta", baseline_id="b0", delta=DELTA,
                          mode="full")
                service.submit(job)
                record = await service.wait("d0")
                assert record.status is JobStatus.DONE
                assert record.result["mode"] == "full"
                from repro.service.jobs import apply_delta

                assert (service.baseline("b0").signature
                        == full_plan(apply_delta(SPEC, DELTA)).signature)
            finally:
                await service.stop()

        run(scenario())

    def test_unknown_baseline_fails_job(self):
        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, retries=0)
            )
            await service.start()
            try:
                service.submit(delta_job("d0", baseline_id="nope"))
                record = await service.wait("d0")
                assert record.status is JobStatus.FAILED
                assert "UnknownJobError" in record.error
            finally:
                await service.stop()

        run(scenario())


class TestRetries:
    def test_flaky_job_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky_replan(state, delta, tracer=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return FakeStats()

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, retries=1, backoff=0.0),
                replan_fn=flaky_replan,
            )
            service.install_baseline("b0", full_plan(SPEC))
            await service.start()
            try:
                service.submit(delta_job())
                record = await service.wait("d0")
                assert record.status is JobStatus.DONE
                assert record.attempts == 2
            finally:
                await service.stop()

        run(scenario())

    def test_retries_exhausted_fails(self):
        def always_fails(state, delta, tracer=None):
            raise RuntimeError("hard down")

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, retries=2, backoff=0.0),
                replan_fn=always_fails,
            )
            service.install_baseline("b0", full_plan(SPEC))
            await service.start()
            try:
                service.submit(delta_job())
                record = await service.wait("d0")
                assert record.status is JobStatus.FAILED
                assert record.attempts == 3
                assert "hard down" in record.error
                assert service.stats()["failed"] == 1
            finally:
                await service.stop()

        run(scenario())


class TestTimeout:
    def test_timeout_rolls_back_and_does_not_retry(self):
        release = threading.Event()

        def slow_replan(state, delta, tracer=None):
            # Corrupt the plan, then outlive the deadline: the rollback
            # in the worker thread must undo the corruption.
            state.signature = "corrupted-by-slow-job"
            release.wait(5.0)
            return FakeStats()

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(
                    workers=1, job_timeout=0.1, retries=3
                ),
                replan_fn=slow_replan,
            )
            baseline = full_plan(SPEC)
            original = baseline.signature
            service.install_baseline("b0", baseline)
            await service.start()
            try:
                service.submit(delta_job())
                record = await service.wait("d0")
                assert record.status is JobStatus.TIMEOUT
                assert record.attempts == 1  # timeouts never retry
                release.set()
                # The zombie thread finishes, notices the cancel flag,
                # and restores the pre-job backup.
                deadline = time.monotonic() + 5.0
                while (baseline.signature != original
                       and time.monotonic() < deadline):
                    await asyncio.sleep(0.01)
                assert baseline.signature == original
                assert service.stats()["timeout"] == 1
            finally:
                release.set()
                await service.stop()

        run(scenario())

    def test_timeout_baseline_job_never_installs(self):
        release = threading.Event()

        def slow_full_plan(scenario, config=None, tracer=None):
            release.wait(5.0)
            return full_plan(scenario, config)

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, job_timeout=0.1),
                full_plan_fn=slow_full_plan,
            )
            await service.start()
            try:
                service.submit(Job("b0", "baseline", scenario=SPEC))
                record = await service.wait("b0")
                assert record.status is JobStatus.TIMEOUT
                assert "rolled back" in record.error
                release.set()
            finally:
                release.set()
                await service.stop()
            return service

        # asyncio.run joins the zombie thread on loop shutdown, so by
        # here it has finished — and must not have installed "b0".
        service = run(scenario())
        assert service.baseline_ids == []

    def test_timeout_full_mode_keeps_old_baseline(self):
        release = threading.Event()

        def slow_full_plan(scenario, config=None, tracer=None):
            release.wait(5.0)
            return full_plan(scenario, config)

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, job_timeout=0.1),
                full_plan_fn=slow_full_plan,
            )
            baseline = full_plan(SPEC)
            service.install_baseline("b0", baseline)
            await service.start()
            try:
                service.submit(
                    Job("d0", "delta", baseline_id="b0", delta=DELTA,
                        mode="full")
                )
                record = await service.wait("d0")
                assert record.status is JobStatus.TIMEOUT
                assert "rolled back" in record.error
                release.set()
            finally:
                release.set()
                await service.stop()
            return service, baseline

        service, baseline = run(scenario())
        # The zombie's replacement plan was dropped, not installed.
        assert service.baseline("b0") is baseline

    def test_timeout_escalation_not_adopted(self):
        release = threading.Event()

        def corrupt_slow_replan(state, delta, tracer=None):
            # Forces a verify mismatch (escalation), then outlives the
            # deadline: the escalated plan must be dropped too.
            state.signature = "bogus"
            release.wait(5.0)
            return FakeStats()

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(
                    workers=1, job_timeout=0.1, verify_fraction=1.0
                ),
                replan_fn=corrupt_slow_replan,
            )
            baseline = full_plan(SPEC)
            original = baseline.signature
            service.install_baseline("b0", baseline)
            await service.start()
            try:
                service.submit(delta_job())
                record = await service.wait("d0")
                assert record.status is JobStatus.TIMEOUT
                release.set()
            finally:
                release.set()
                await service.stop()
            return service, baseline, original

        service, baseline, original = run(scenario())
        assert service.baseline("b0") is baseline
        assert baseline.signature == original


class TestJobFate:
    def test_commit_claim_beats_cancel(self):
        from repro.service.scheduler import _JobFate

        fate = _JobFate()
        assert fate.try_commit()
        assert not fate.try_cancel()
        assert fate.try_commit()  # idempotent

    def test_cancel_claim_beats_commit(self):
        from repro.service.scheduler import _JobFate

        fate = _JobFate()
        assert fate.try_cancel()
        assert not fate.try_commit()
        assert fate.try_cancel()  # idempotent


class TestVerification:
    def test_mismatch_escalates_to_full_plan(self):
        def corrupting_replan(state, delta, tracer=None):
            # Claims success but leaves a wrong signature behind —
            # exactly the bug class sampled verification exists for.
            state.signature = "bogus"
            return FakeStats()

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, verify_fraction=1.0),
                replan_fn=corrupting_replan,
            )
            baseline = full_plan(SPEC)
            service.install_baseline("b0", baseline)
            await service.start()
            try:
                service.submit(delta_job())
                record = await service.wait("d0")
                assert record.status is JobStatus.DONE
                assert record.result["verify_matched"] is False
                assert record.result["escalated"] is True
                stats = service.stats()
                assert stats["verified"] == 1
                assert stats["mismatches"] == 1
                # The adopted baseline is the scratch full plan.
                adopted = service.baseline("b0")
                assert adopted.signature == full_plan(SPEC).signature
                assert adopted is not baseline
            finally:
                await service.stop()

        run(scenario())

    def test_sampling_respects_fraction_zero(self):
        def fake_replan(state, delta, tracer=None):
            return FakeStats()

        async def scenario():
            service = PlanningService(
                options=SchedulerOptions(workers=1, verify_fraction=0.0),
                replan_fn=fake_replan,
            )
            service.install_baseline("b0", full_plan(SPEC))
            await service.start()
            try:
                service.submit(delta_job())
                record = await service.wait("d0")
                assert record.status is JobStatus.DONE
                assert "verified" not in record.result
                assert service.stats()["verified"] == 0
            finally:
                await service.stop()

        run(scenario())
