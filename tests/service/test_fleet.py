"""FleetPlanningService behaviour: sharding, exactness, containment.

Small grids keep every test in the low seconds even though each one
forks real shard workers. Exactness is asserted against the engine
directly — the fleet's signatures must be byte-identical to an
in-process :func:`full_plan`/:func:`incremental_replan` of the same
scenario, whatever sharding, retries, or preemption did on the way.
No pytest-asyncio in the environment — tests drive ``asyncio.run``.
"""

import asyncio
import time

import pytest

from repro.errors import (
    ConfigurationError,
    QueueFullError,
    ServiceError,
    ShuttingDownError,
    UnknownJobError,
)
from repro.service import (
    DeltaSpec,
    FleetOptions,
    FleetPlanningService,
    Job,
    JobStatus,
    MacroSpec,
    ScenarioSpec,
    apply_delta,
    full_plan,
    incremental_replan,
    move_macro,
)

SPEC = ScenarioSpec(
    grid=8, num_nets=24, total_sites=160, macros=(MacroSpec(1, 1, 2, 2),)
)
DELTA = DeltaSpec((move_macro(0, 4, 4),))


def run(coro):
    return asyncio.run(coro)


def fleet(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("job_timeout", 60.0)
    return FleetPlanningService(options=FleetOptions(**kwargs))


async def plan_baseline(svc, bid="b0", spec=SPEC, tenant="default"):
    svc.submit(Job(bid, "baseline", scenario=spec, tenant=tenant))
    record = await svc.wait(bid)
    assert record.status is JobStatus.DONE, record.error
    return record


class TestOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_queue_per_tenant": 0},
            {"job_timeout": 0},
            {"retries": -1},
            {"aging_threshold": 0},
            {"preempt_after": -0.1},
            {"max_preemptions": -1},
            {"tenant_weights": {"a": 0.0}},
        ],
    )
    def test_rejects_bad_options(self, kwargs):
        with pytest.raises(ConfigurationError):
            FleetOptions(**kwargs)


class TestSubmission:
    def test_submit_before_start_fails(self):
        svc = fleet()
        with pytest.raises(ServiceError):
            svc.submit(Job("b0", "baseline", scenario=SPEC))

    def test_end_to_end_exactness(self):
        """Baseline + incremental + full-mode deltas match the engine."""

        async def body():
            with fleet() as svc:
                record = await plan_baseline(svc)
                reference = full_plan(SPEC)
                assert record.result["signature"] == reference.signature

                svc.submit(
                    Job("d0", "delta", baseline_id="b0", delta=DELTA)
                )
                incr = await svc.wait("d0")
                assert incr.status is JobStatus.DONE, incr.error
                expected = incremental_replan(full_plan(SPEC), DELTA)
                assert incr.result["signature"] == expected.signature
                baseline = svc.baseline("b0")
                assert len(baseline.chain) == 1
                assert baseline.signature == expected.signature
                assert baseline.dirty

                again = DeltaSpec((move_macro(0, 2, 2),))
                svc.submit(
                    Job(
                        "d1",
                        "delta",
                        baseline_id="b0",
                        delta=again,
                        mode="full",
                    )
                )
                full = await svc.wait("d1")
                assert full.status is JobStatus.DONE, full.error
                evolved = apply_delta(apply_delta(SPEC, DELTA), again)
                assert (
                    full.result["signature"]
                    == full_plan(evolved).signature
                )
                baseline = svc.baseline("b0")
                # A full-mode commit resets the replay chain.
                assert baseline.chain == ()
                assert baseline.root == evolved

        run(body())

    def test_baselines_round_robin_across_shards(self):
        async def body():
            with fleet(workers=2) as svc:
                await plan_baseline(svc, "b0")
                await plan_baseline(svc, "b1")
                assert {svc.baseline("b0").shard, svc.baseline("b1").shard} == {
                    0,
                    1,
                }
                assert svc.baseline_ids == ["b0", "b1"]

        run(body())

    def test_duplicate_and_unknown(self):
        async def body():
            with fleet(workers=1) as svc:
                await plan_baseline(svc)
                with pytest.raises(ServiceError):
                    svc.submit(Job("b0", "baseline", scenario=SPEC))
                with pytest.raises(UnknownJobError):
                    svc.submit(
                        Job("dx", "delta", baseline_id="nope", delta=DELTA)
                    )
                with pytest.raises(UnknownJobError):
                    svc.record("nope")

        run(body())

    def test_queue_full_sheds_with_record(self):
        async def body():
            with fleet(workers=1, max_queue_per_tenant=1) as svc:
                svc.submit(Job("b0", "baseline", scenario=SPEC))
                seen_shed = False
                for i in range(8):
                    try:
                        svc.submit(
                            Job(
                                f"d{i}",
                                "delta",
                                baseline_id="b0",
                                delta=DELTA,
                            )
                        )
                    except QueueFullError:
                        seen_shed = True
                        record = svc.record(f"d{i}")
                        assert record.status is JobStatus.SHED
                        assert "shed" in record.error
                        break
                assert seen_shed
                await svc.drain()

        run(body())

    def test_shutting_down_rejects_submissions(self):
        async def body():
            with fleet(workers=1) as svc:
                await plan_baseline(svc)
                svc.begin_shutdown()
                assert svc.shutting_down
                with pytest.raises(ShuttingDownError):
                    svc.submit(
                        Job("late", "delta", baseline_id="b0", delta=DELTA)
                    )

        run(body())


class TestSharedMemory:
    def test_shared_usage_matches_engine_state(self):
        async def body():
            with fleet(workers=1) as svc:
                await plan_baseline(svc)
                usage = svc.shared_usage("b0")
                state = full_plan(SPEC)
                g = state.graph
                assert usage["wire_usage_total"] == int(g.edge_usage.sum())
                assert usage["sites_total"] == int(g.sites.sum())
                assert usage["sites_used"] == int(g.used_sites.sum())
                assert usage["overflowed_edges"] == int(
                    (g.edge_usage > g.edge_capacity).sum()
                )

        run(body())

    def test_shared_usage_tracks_deltas(self):
        async def body():
            with fleet(workers=1) as svc:
                await plan_baseline(svc)
                svc.submit(Job("d0", "delta", baseline_id="b0", delta=DELTA))
                record = await svc.wait("d0")
                assert record.status is JobStatus.DONE, record.error
                after = svc.shared_usage("b0")
                state = full_plan(SPEC)
                incremental_replan(state, DELTA)
                # The views track the *replanned* arrays, not the
                # baseline ones the previous test checked.
                assert after["wire_usage_total"] == int(
                    state.graph.edge_usage.sum()
                )
                assert after["sites_used"] == int(
                    state.graph.used_sites.sum()
                )

        run(body())


class TestContainment:
    def test_worker_crash_respawns_and_retries(self):
        async def body():
            with fleet(workers=1, retries=1) as svc:
                await plan_baseline(svc)
                svc._shards[0].worker.proc.kill()
                svc.submit(Job("d0", "delta", baseline_id="b0", delta=DELTA))
                record = await svc.wait("d0")
                assert record.status is JobStatus.DONE, record.error
                assert record.attempts >= 2
                stats = svc.stats()
                assert stats["respawns"] >= 1
                expected = incremental_replan(full_plan(SPEC), DELTA)
                assert record.result["signature"] == expected.signature
                # The respawned worker lost its cached plan and had to
                # rebuild from root + chain.
                assert record.rebuilt
                assert stats["rebuilds"] >= 1

        run(body())

    def test_crash_with_no_retries_falls_back_in_process(self):
        async def body():
            with fleet(workers=1, retries=0) as svc:
                await plan_baseline(svc)
                svc._shards[0].worker.proc.kill()
                svc.submit(Job("d0", "delta", baseline_id="b0", delta=DELTA))
                record = await svc.wait("d0")
                assert record.status is JobStatus.DONE, record.error
                assert record.fallback
                assert svc.stats()["fallbacks"] == 1
                # The fallback full-plans the evolved scenario in the
                # parent, so it adopts the full-replan signature and
                # resets the replay chain.
                evolved = apply_delta(SPEC, DELTA)
                assert (
                    record.result["signature"]
                    == full_plan(evolved).signature
                )
                baseline = svc.baseline("b0")
                assert baseline.chain == ()
                assert baseline.root == evolved

        run(body())

    def test_shard_workers_ignore_group_delivered_sigterm(self):
        """SIGTERM to a shard worker (cgroup-wide shutdown) is ignored.

        The parent drains and checkpoints through those same workers
        after receiving its own SIGTERM; only the pipe sentinel or the
        parent's SIGKILL may end them. No respawn, no lost plan cache.
        """
        import os
        import signal as _signal

        async def body():
            with fleet(workers=1, retries=1) as svc:
                await plan_baseline(svc)
                os.kill(svc._shards[0].worker.proc.pid, _signal.SIGTERM)
                await asyncio.sleep(0.2)
                assert svc._shards[0].worker.proc.is_alive()
                svc.submit(Job("d0", "delta", baseline_id="b0", delta=DELTA))
                record = await svc.wait("d0")
                assert record.status is JobStatus.DONE, record.error
                assert record.attempts == 1
                assert not record.rebuilt  # plan cache survived
                assert svc.stats()["respawns"] == 0
                expected = incremental_replan(full_plan(SPEC), DELTA)
                assert record.result["signature"] == expected.signature

        run(body())

    def test_crash_without_fallback_fails_job(self):
        async def body():
            with fleet(
                workers=1, retries=0, fallback_in_process=False
            ) as svc:
                await plan_baseline(svc)
                svc._shards[0].worker.proc.kill()
                svc.submit(Job("d0", "delta", baseline_id="b0", delta=DELTA))
                record = await svc.wait("d0")
                assert record.status is JobStatus.FAILED
                assert "attempt" in record.error
                # The shard recovered: later jobs still complete.
                svc.submit(Job("d1", "delta", baseline_id="b0", delta=DELTA))
                ok = await svc.wait("d1")
                assert ok.status is JobStatus.DONE, ok.error

        run(body())


class TestPreemption:
    def test_cheap_delta_preempts_running_full_plan(self):
        heavy_spec = ScenarioSpec(
            grid=24,
            num_nets=260,
            total_sites=1400,
            macros=(MacroSpec(3, 3, 6, 6),),
        )

        async def body():
            with fleet(
                workers=1, preempt_after=0.0, max_preemptions=2
            ) as svc:
                await plan_baseline(svc, "heavy", spec=heavy_spec)
                await plan_baseline(svc, "light", spec=SPEC)

                heavy_delta = DeltaSpec((move_macro(0, 14, 14),))
                svc.submit(
                    Job(
                        "slow",
                        "delta",
                        baseline_id="heavy",
                        delta=heavy_delta,
                        mode="full",
                        tenant="batch",
                    )
                )
                # Wait for the full plan to actually be on the worker.
                deadline = time.monotonic() + 30.0
                while svc.record("slow").status is JobStatus.QUEUED:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.005)
                svc.submit(
                    Job(
                        "fast",
                        "delta",
                        baseline_id="light",
                        delta=DELTA,
                        tenant="interactive",
                    )
                )
                fast = await svc.wait("fast")
                slow = await svc.wait("slow")
                assert fast.status is JobStatus.DONE, fast.error
                assert slow.status is JobStatus.DONE, slow.error

                # Preemption happened, was bounded, and did not change
                # either signature.
                assert slow.preemptions >= 1
                assert slow.preemptions <= 2
                assert svc.stats()["preemptions"] >= 1
                assert fast.result["signature"] == incremental_replan(
                    full_plan(SPEC), DELTA
                ).signature
                evolved = apply_delta(heavy_spec, heavy_delta)
                assert (
                    slow.result["signature"]
                    == full_plan(evolved).signature
                )

        run(body())


class TestStats:
    def test_counters_and_drain(self):
        async def body():
            with fleet(workers=1) as svc:
                await plan_baseline(svc)
                for i in range(3):
                    svc.submit(
                        Job(f"d{i}", "delta", baseline_id="b0", delta=DELTA)
                    )
                await svc.drain()
                stats = svc.stats()
                assert stats["submitted"] == 4
                assert stats["done"] == 4
                assert stats["failed"] == 0
                assert stats["queue_depth"] == 0
                assert stats["baselines"] == 1
                assert stats["workers"] == 1
                report = await svc.drain_until(1.0)
                assert report == {"drained": True, "pending": 0}

        run(body())
