"""Elmore model corner cases: buffers at root/sinks, stacked buffers."""

import pytest

from repro.routing.tree import BufferSpec, RouteTree
from repro.timing.elmore import elmore_sink_delays


def _path_tree(tiles):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


class TestBufferPlacementCorners:
    def test_buffer_at_sink_tile(self, graph10, tech):
        t = _path_tree([(0, 0), (1, 0), (2, 0)])
        t.apply_buffers([BufferSpec((2, 0), None)])
        delays = elmore_sink_delays(t, graph10, tech)
        # The sink sits behind the buffer: its intrinsic delay applies.
        assert delays[(2, 0)] > tech.buffer_delay

    def test_trunk_plus_decouple_same_tile(self, graph10, tech):
        paths = [
            [(1, 0), (1, 1), (0, 1)],
            [(1, 0), (1, 1), (2, 1)],
        ]
        t = RouteTree.from_paths((1, 0), paths, [(0, 1), (2, 1)])
        t.apply_buffers(
            [BufferSpec((1, 1), None), BufferSpec((1, 1), (0, 1))]
        )
        delays = elmore_sink_delays(t, graph10, tech)
        # Decoupled branch passes through two gates -> two intrinsics.
        assert delays[(0, 1)] > 2 * tech.buffer_delay
        assert delays[(2, 1)] > tech.buffer_delay
        assert set(delays) == {(0, 1), (2, 1)}

    def test_root_buffer_with_root_sink(self, graph10, tech):
        tiles = [(0, 0), (1, 0)]
        parent = {(1, 0): (0, 0)}
        t = RouteTree.from_parent_map((0, 0), parent, [(0, 0), (1, 0)])
        t.apply_buffers([BufferSpec((0, 0), None)])
        delays = elmore_sink_delays(t, graph10, tech)
        assert set(delays) == {(0, 0), (1, 0)}
        # The root sink hangs below the trunk buffer too.
        assert delays[(0, 0)] > tech.buffer_delay

    def test_every_tile_buffered(self, graph10, tech):
        tiles = [(i, 0) for i in range(5)]
        t = _path_tree(tiles)
        t.apply_buffers([BufferSpec(x, None) for x in tiles[1:-1]])
        delays = elmore_sink_delays(t, graph10, tech)
        assert delays[(4, 0)] > 3 * tech.buffer_delay

    def test_decouple_every_branch_of_star(self, graph10, tech):
        center = (5, 5)
        paths = [
            [center, (6, 5), (7, 5)],
            [center, (4, 5), (3, 5)],
            [center, (5, 6), (5, 7)],
        ]
        t = RouteTree.from_paths(center, paths, [(7, 5), (3, 5), (5, 7)])
        t.apply_buffers(
            [BufferSpec(center, c) for c in [(6, 5), (4, 5), (5, 6)]]
        )
        delays = elmore_sink_delays(t, graph10, tech)
        assert len(delays) == 3
        # All branches symmetric within the grid's aspect differences.
        values = sorted(delays.values())
        assert values[-1] < 1.5 * values[0]

    def test_annotations_do_not_leak_between_calls(self, graph10, tech):
        t = _path_tree([(i, 0) for i in range(8)])
        bare = elmore_sink_delays(t, graph10, tech)[(7, 0)]
        t.apply_buffers([BufferSpec((3, 0), None)])
        buffered = elmore_sink_delays(t, graph10, tech)[(7, 0)]
        t.clear_buffers()
        again = elmore_sink_delays(t, graph10, tech)[(7, 0)]
        assert again == pytest.approx(bare)
        assert buffered != pytest.approx(bare)
