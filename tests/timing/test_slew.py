"""Slew model and the slew-derived length rule."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.technology import TECH_180NM
from repro.timing.slew import (
    length_limit_for_slew,
    max_driven_length_mm,
    stage_elmore,
    stage_slew,
)


class TestStageModel:
    def test_elmore_monotone_in_length(self):
        delays = [stage_elmore(TECH_180NM, l, TECH_180NM.buffer_cap) for l in (1, 2, 4)]
        assert delays == sorted(delays)
        assert delays[2] > 2 * delays[1] - delays[0]  # superlinear

    def test_zero_length(self):
        d = stage_elmore(TECH_180NM, 0.0, TECH_180NM.buffer_cap)
        assert d == pytest.approx(TECH_180NM.buffer_res * TECH_180NM.buffer_cap)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            stage_elmore(TECH_180NM, -1.0, 1e-15)

    def test_slew_is_ln9_times_elmore(self):
        e = stage_elmore(TECH_180NM, 3.0, TECH_180NM.buffer_cap)
        assert stage_slew(TECH_180NM, 3.0) == pytest.approx(math.log(9) * e)


class TestInversion:
    def test_roundtrip(self):
        for max_slew in (100e-12, 500e-12, 2e-9):
            length = max_driven_length_mm(TECH_180NM, max_slew)
            assert stage_slew(TECH_180NM, length) == pytest.approx(max_slew, rel=1e-9)

    def test_tighter_slew_shorter_wire(self):
        loose = max_driven_length_mm(TECH_180NM, 1e-9)
        tight = max_driven_length_mm(TECH_180NM, 200e-12)
        assert tight < loose

    def test_unmeetable_slew_gives_zero(self):
        # Slew below the zero-length stage slew cannot be met.
        floor = stage_slew(TECH_180NM, 0.0)
        assert max_driven_length_mm(TECH_180NM, floor * 0.5) == 0.0

    def test_bad_slew_rejected(self):
        with pytest.raises(ConfigurationError):
            max_driven_length_mm(TECH_180NM, 0.0)


class TestLengthRule:
    def test_paper_scale_distances(self):
        # The paper's reference: ~4.5mm repeater intervals (0.25um tech).
        # Our 0.18um parameters should produce a few-mm figure for a
        # nanosecond-class slew limit.
        length = max_driven_length_mm(TECH_180NM, 1e-9)
        assert 1.0 < length < 15.0

    def test_tile_conversion(self):
        L = length_limit_for_slew(TECH_180NM, tile_pitch_mm=0.6, max_slew=1e-9)
        assert L >= 1
        assert L == int(max_driven_length_mm(TECH_180NM, 1e-9) / 0.6)

    def test_at_least_one(self):
        floor = stage_slew(TECH_180NM, 0.0)
        assert length_limit_for_slew(TECH_180NM, 0.6, floor * 1.01) == 1

    def test_bad_pitch_rejected(self):
        with pytest.raises(ConfigurationError):
            length_limit_for_slew(TECH_180NM, 0.0, 1e-9)

    def test_table1_l_values_derivable(self):
        # A slew limit exists that reproduces the paper's L in {5, 6} for
        # its ~0.6-0.7mm tiles.
        for pitch, L_expected in [(0.6, 6), (0.59, 5)]:
            found = False
            for slew_ps in range(200, 3000, 25):
                if length_limit_for_slew(TECH_180NM, pitch, slew_ps * 1e-12) == L_expected:
                    found = True
                    break
            assert found, (pitch, L_expected)
