"""Elmore delay of (buffered) route trees."""

import pytest

from repro.routing.tree import BufferSpec, RouteTree
from repro.timing import delay_summary, net_delay
from repro.timing.elmore import elmore_sink_delays


def _path_tree(tiles, factory=None):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


def _expected_unbuffered(graph, tech, n_edges):
    """Closed-form Elmore of a straight unbuffered line of n tiles."""
    lw = graph.tile_w
    r = tech.wire_resistance(lw)
    c = tech.wire_capacitance(lw)
    total_c = n_edges * c + tech.sink_cap
    delay = tech.driver_res * total_c
    downstream = total_c
    for _ in range(n_edges):
        delay += r * (downstream - c / 2)
        downstream -= c
    return delay


class TestUnbuffered:
    def test_straight_line_matches_closed_form(self, graph10, tech):
        tiles = [(i, 0) for i in range(6)]
        t = _path_tree(tiles)
        delays = elmore_sink_delays(t, graph10, tech)
        assert delays[(5, 0)] == pytest.approx(
            _expected_unbuffered(graph10, tech, 5), rel=1e-9
        )

    def test_single_tile_net(self, graph10, tech):
        t = RouteTree.from_paths((0, 0), [], [(0, 0)])
        delays = elmore_sink_delays(t, graph10, tech)
        assert delays[(0, 0)] == pytest.approx(tech.driver_res * tech.sink_cap)

    def test_delay_grows_superlinearly(self, graph10, tech):
        d3 = net_delay(_path_tree([(i, 0) for i in range(4)]), graph10, tech).max_delay
        d6 = net_delay(_path_tree([(i, 0) for i in range(7)]), graph10, tech).max_delay
        # Unbuffered RC delay is superlinear: doubling length > doubles delay.
        assert d6 > 2.5 * d3

    def test_branch_load_slows_other_sink(self, graph10, tech):
        # Adding a side branch adds capacitive load upstream.
        straight = _path_tree([(i, 0) for i in range(5)])
        branched_paths = [
            [(i, 0) for i in range(5)],
            [(2, 0), (2, 1), (2, 2)],
        ]
        branched = RouteTree.from_paths(
            (0, 0), branched_paths, [(4, 0), (2, 2)]
        )
        d_straight = elmore_sink_delays(straight, graph10, tech)[(4, 0)]
        d_branched = elmore_sink_delays(branched, graph10, tech)[(4, 0)]
        assert d_branched > d_straight


class TestBuffered:
    def test_buffering_reduces_long_line_delay(self, graph10, tech):
        tiles = [(i, 0) for i in range(10)]
        t = _path_tree(tiles)
        unbuffered = net_delay(t, graph10, tech).max_delay
        t.apply_buffers([BufferSpec((3, 0), None), BufferSpec((6, 0), None)])
        buffered = net_delay(t, graph10, tech).max_delay
        assert buffered < unbuffered

    def test_buffer_at_root(self, graph10, tech):
        t = _path_tree([(0, 0), (1, 0), (2, 0)])
        base = net_delay(t, graph10, tech).max_delay
        t.apply_buffers([BufferSpec((0, 0), None)])
        with_buf = net_delay(t, graph10, tech).max_delay
        # Short net: a root buffer only adds its intrinsic delay.
        assert with_buf > base
        assert with_buf == pytest.approx(
            base
            + tech.buffer_delay
            + tech.driver_res * tech.buffer_cap
            + (tech.buffer_res - tech.driver_res) * (
                2 * tech.wire_capacitance(graph10.tile_w) + tech.sink_cap
            ),
            rel=1e-6,
        )

    def test_decoupling_shields_branch_load(self, graph10, tech):
        # Heavy side branch decoupled -> main sink speeds up.
        paths = [
            [(i, 0) for i in range(6)],
            [(1, 0)] + [(1, y) for y in range(1, 8)],
        ]
        t = RouteTree.from_paths((0, 0), paths, [(5, 0), (1, 7)])
        plain = elmore_sink_delays(t, graph10, tech)[(5, 0)]
        t.apply_buffers([BufferSpec((1, 0), (1, 1))])
        shielded = elmore_sink_delays(t, graph10, tech)[(5, 0)]
        assert shielded < plain

    def test_sink_behind_trunk_buffer_arrives_later_by_intrinsic(
        self, graph10, tech
    ):
        t = _path_tree([(0, 0), (1, 0), (2, 0), (3, 0)])
        t.apply_buffers([BufferSpec((2, 0), None)])
        delays = elmore_sink_delays(t, graph10, tech)
        assert delays[(3, 0)] > tech.buffer_delay

    def test_all_sinks_reported(self, graph10, tech):
        paths = [
            [(0, 0), (1, 0), (2, 0)],
            [(1, 0), (1, 1)],
        ]
        t = RouteTree.from_paths((0, 0), paths, [(2, 0), (1, 1)])
        delays = elmore_sink_delays(t, graph10, tech)
        assert set(delays) == {(2, 0), (1, 1)}


class TestSummary:
    def test_net_delay_report(self, graph10, tech):
        t = _path_tree([(0, 0), (1, 0), (2, 0)])
        report = net_delay(t, graph10, tech)
        assert report.max_delay >= report.avg_delay > 0

    def test_design_summary_weights_sinks(self, graph10, tech):
        t1 = _path_tree([(0, 0), (1, 0)])
        t2 = _path_tree([(0, 5), (1, 5), (2, 5), (3, 5), (4, 5), (5, 5)])
        worst, avg, reports = delay_summary({"a": t1, "b": t2}, graph10, tech)
        assert worst == reports["b"].max_delay
        expected_avg = (
            reports["a"].max_delay + reports["b"].max_delay
        ) / 2
        assert avg == pytest.approx(expected_avg)
