"""Timing-driven (van Ginneken) buffer insertion."""

import pytest

from repro.core import insert_buffers_multi_sink
from repro.routing.tree import RouteTree
from repro.technology import TECH_180NM
from repro.timing import net_delay, rebuffer_net_timing_driven, timing_driven_buffering
from repro.tilegraph import CapacityModel, TileGraph
from repro.geometry import Rect


def _graph(size=20, sites=3):
    g = TileGraph(Rect(0, 0, float(size), float(size)), size, size,
                  CapacityModel.uniform(10))
    for tile in g.tiles():
        g.set_sites(tile, sites)
    return g


def _path_tree(tiles):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


class TestTimingDriven:
    def test_improves_long_line(self):
        g = _graph()
        tree = _path_tree([(i, 0) for i in range(16)])
        before = net_delay(tree, g, TECH_180NM).max_delay
        delay, specs = timing_driven_buffering(tree, g, TECH_180NM)
        assert delay < before
        assert specs  # a 15mm line in 0.18um wants repeaters

    def test_reported_delay_matches_elmore(self):
        g = _graph()
        tree = _path_tree([(i, 0) for i in range(16)])
        delay, specs = timing_driven_buffering(tree, g, TECH_180NM)
        tree.apply_buffers(specs)
        measured = net_delay(tree, g, TECH_180NM).max_delay
        assert measured == pytest.approx(delay, rel=1e-9)

    def test_short_net_unbuffered(self):
        g = _graph()
        tree = _path_tree([(0, 0), (1, 0)])
        delay, specs = timing_driven_buffering(tree, g, TECH_180NM)
        assert specs == []

    def test_no_sites_means_no_buffers(self):
        g = _graph(sites=0)
        tree = _path_tree([(i, 0) for i in range(16)])
        delay, specs = timing_driven_buffering(tree, g, TECH_180NM)
        assert specs == []
        assert delay == pytest.approx(
            net_delay(tree, g, TECH_180NM).max_delay, rel=1e-9
        )

    def test_respects_site_predicate(self):
        g = _graph()
        allowed = {(5, 0), (10, 0)}
        tree = _path_tree([(i, 0) for i in range(16)])
        _, specs = timing_driven_buffering(
            tree, g, TECH_180NM, site_available=lambda t: t in allowed
        )
        assert {s.tile for s in specs} <= allowed

    def test_beats_or_matches_length_based(self):
        # Same net, same sites: the delay-optimal solution can't be worse
        # than the length-based DP's.
        g = _graph()
        tiles = [(i, 0) for i in range(16)]
        tree = _path_tree(tiles)
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 5)
        tree.apply_buffers(result.buffers)
        length_based = net_delay(tree, g, TECH_180NM).max_delay
        tree.clear_buffers()
        vg_delay, _ = timing_driven_buffering(tree, g, TECH_180NM)
        assert vg_delay <= length_based + 1e-15

    def test_multi_sink_decoupling(self):
        g = _graph()
        stem = [(i, 0) for i in range(8)]
        branch = [(4, 0)] + [(4, y) for y in range(1, 10)]
        tree = RouteTree.from_paths((0, 0), [stem, branch], [(7, 0), (4, 9)])
        before = net_delay(tree, g, TECH_180NM)
        delay, specs = timing_driven_buffering(tree, g, TECH_180NM)
        tree.apply_buffers(specs)
        after = net_delay(tree, g, TECH_180NM)
        assert after.max_delay < before.max_delay

    def test_brute_force_small_path(self):
        # All 2^k buffer subsets on a short path (trunk buffers only).
        from itertools import combinations

        from repro.routing.tree import BufferSpec

        g = _graph()
        tiles = [(i, 0) for i in range(7)]
        tree = _path_tree(tiles)
        best = net_delay(tree, g, TECH_180NM).max_delay
        interior = tiles[1:-1]
        for k in range(1, len(interior) + 1):
            for combo in combinations(interior, k):
                tree.apply_buffers([BufferSpec(t, None) for t in combo])
                best = min(best, net_delay(tree, g, TECH_180NM).max_delay)
        tree.clear_buffers()
        vg_delay, _ = timing_driven_buffering(tree, g, TECH_180NM)
        assert vg_delay == pytest.approx(best, rel=1e-9)


class TestRebuffer:
    def test_site_accounting_consistent(self):
        g = _graph()
        tree = _path_tree([(i, 0) for i in range(16)])
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 5)
        tree.apply_buffers(result.buffers)
        for s in result.buffers:
            g.use_site(s.tile, 1)
        before_used = g.total_used_sites
        rebuffer_net_timing_driven(tree, g, TECH_180NM)
        assert g.total_used_sites == tree.buffer_count()

    def test_delay_not_worse_after_rebuffer(self):
        g = _graph()
        tree = _path_tree([(i, 0) for i in range(16)])
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 5)
        tree.apply_buffers(result.buffers)
        for s in result.buffers:
            g.use_site(s.tile, 1)
        before = net_delay(tree, g, TECH_180NM).max_delay
        after = rebuffer_net_timing_driven(tree, g, TECH_180NM)
        assert after <= before + 1e-15

    def test_rebuffer_never_oversubscribes(self):
        # One free site per tile: the rebuffered net must keep b <= B.
        g = _graph(sites=1)
        tree = _path_tree([(i, 0) for i in range(16)])
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, 5)
        tree.apply_buffers(result.buffers)
        for s in result.buffers:
            g.use_site(s.tile, 1)
        rebuffer_net_timing_driven(tree, g, TECH_180NM)
        assert int(g.used_sites.max()) <= 1

    def test_rebuffer_keeps_old_when_new_is_slower(self):
        # With no free sites anywhere else, the VG pass can only produce
        # the unbuffered net; the old (buffered, faster) solution must be
        # kept.
        g = _graph(sites=0)
        tree = _path_tree([(i, 0) for i in range(16)])
        from repro.routing.tree import BufferSpec

        specs = [BufferSpec((5, 0), None), BufferSpec((10, 0), None)]
        tree.apply_buffers(specs)
        for s in specs:
            g.use_site(s.tile, 1)  # legacy booking (oversubscribed B=0)
        before = net_delay(tree, g, TECH_180NM).max_delay
        after = rebuffer_net_timing_driven(tree, g, TECH_180NM)
        assert after == pytest.approx(before)
        assert tree.buffer_count() == 2


class TestMultiTypeKernel:
    """The same kernel with a buffer library: Li-Shi multi-type insertion.

    Parity contract: a single-kind library built from the technology's own
    repeater floats must be byte-identical to the classic b=1 run, and the
    3-kind ``tech`` library can only improve the optimal delay (the b=1
    solution is in its search space). Checked on single-sink paths, where
    the classic algorithm is provably delay-optimal.
    """

    @pytest.mark.parametrize("n", [4, 7, 10, 16])
    def test_single_kind_library_is_byte_identical(self, n):
        from repro.technology import resolve_library

        g = _graph()
        tree = _path_tree([(i, 0) for i in range(n)])
        classic_delay, classic_specs = timing_driven_buffering(
            tree, g, TECH_180NM
        )
        lib_delay, lib_specs = timing_driven_buffering(
            tree, g, TECH_180NM,
            library=resolve_library("single", TECH_180NM),
        )
        assert lib_delay == classic_delay
        assert lib_specs == classic_specs
        assert all(s.kind == "" for s in lib_specs)

    @pytest.mark.parametrize("n", [7, 10, 16])
    def test_tech_library_never_slower(self, n):
        from repro.technology import resolve_library

        g = _graph()
        tree = _path_tree([(i, 0) for i in range(n)])
        classic_delay, _ = timing_driven_buffering(tree, g, TECH_180NM)
        library = resolve_library("tech", TECH_180NM)
        lib_delay, lib_specs = timing_driven_buffering(
            tree, g, TECH_180NM, library=library
        )
        assert lib_delay <= classic_delay * (1 + 1e-12)
        # The reported delay is the Elmore delay of the annotated tree.
        tree.apply_buffers(lib_specs)
        measured = net_delay(tree, g, TECH_180NM, library).max_delay
        assert measured == pytest.approx(lib_delay, rel=1e-9)

    def test_multi_type_solver_parity_on_single_sink_paths(self):
        """The two multi-type implementations must order correctly on
        single-sink paths: the van Ginneken kernel optimizes positions AND
        kinds jointly, so its delay lower-bounds the Stage-3 ``multi_type``
        strategy (whose positions are fixed by the length DP) — and both
        beat the single-kind Stage-3 assignment."""
        from repro.core.solver import (
            MultiSinkDPSolver,
            MultiTypeDPSolver,
            SolveRequest,
            Stage3CostField,
        )
        from repro.technology import resolve_library

        library = resolve_library("tech", TECH_180NM)
        for n in (7, 13, 19):
            g = _graph(size=max(n, 20))
            tree = _path_tree([(i, 0) for i in range(n)])
            vg_delay, _ = timing_driven_buffering(
                tree, g, TECH_180NM, library=library
            )
            field = Stage3CostField(g)
            request = SolveRequest(
                graph=g, tree=tree, length_limit=3,
                cost_of=field.cost_fn(tree),
            )
            mt = MultiTypeDPSolver(TECH_180NM, library=library).solve(request)
            assert mt.feasible
            tree.apply_buffers(mt.specs)
            mt_delay = net_delay(tree, g, TECH_180NM, library).max_delay
            dp = MultiSinkDPSolver().solve(request)
            tree.apply_buffers(dp.specs)
            dp_delay = net_delay(tree, g, TECH_180NM, library).max_delay
            assert vg_delay <= mt_delay * (1 + 1e-12)
            assert mt_delay <= dp_delay * (1 + 1e-12)
