"""Shared-array registry: publish/attach lifecycle and stamp semantics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    AttachmentCache,
    SharedArrayRegistry,
    WorkerPool,
    attach_segment,
)

READ_SHARED = "repro.parallel.testing:read_shared"


class TestRegistry:
    def test_publish_and_view_roundtrip(self):
        with SharedArrayRegistry(prefix="t") as registry:
            array = np.arange(12, dtype=np.int64)
            spec = registry.publish("usage", array)
            cache = AttachmentCache()
            try:
                view = cache.view(spec)
                assert view.dtype == np.int64
                assert np.array_equal(view, array)
            finally:
                cache.close()

    def test_republish_same_shape_bumps_version_not_generation(self):
        with SharedArrayRegistry(prefix="t") as registry:
            first = registry.publish("usage", np.zeros(8, dtype=np.int64))
            second = registry.publish("usage", np.ones(8, dtype=np.int64))
            assert second.generation == first.generation
            assert second.version == first.version + 1
            assert second.shm_name == first.shm_name
            assert registry.reallocations == 1
            assert registry.publishes == 2

    def test_shape_change_reallocates_under_new_generation(self):
        with SharedArrayRegistry(prefix="t") as registry:
            first = registry.publish("usage", np.zeros(8, dtype=np.int64))
            second = registry.publish("usage", np.zeros(16, dtype=np.int64))
            assert second.generation != first.generation
            assert second.shm_name != first.shm_name
            assert registry.reallocations == 2

    def test_dtype_change_reallocates(self):
        with SharedArrayRegistry(prefix="t") as registry:
            first = registry.publish("p", np.zeros(8, dtype=np.int64))
            second = registry.publish("p", np.zeros(8, dtype=np.float64))
            assert second.generation != first.generation

    def test_publish_copies_bytes(self):
        """The segment holds a snapshot: mutating the source after
        publish must not change what a viewer reads."""
        with SharedArrayRegistry(prefix="t") as registry:
            array = np.arange(6, dtype=np.int64)
            spec = registry.publish("usage", array)
            array[:] = -1
            cache = AttachmentCache()
            try:
                assert cache.view(spec).tolist() == [0, 1, 2, 3, 4, 5]
            finally:
                cache.close()

    def test_unknown_name_rejected(self):
        with SharedArrayRegistry(prefix="t") as registry:
            with pytest.raises(ConfigurationError):
                registry.spec("nope")

    def test_close_unlinks_segments(self):
        registry = SharedArrayRegistry(prefix="t")
        spec = registry.publish("usage", np.zeros(4, dtype=np.int64))
        registry.close()
        with pytest.raises(FileNotFoundError):
            attach_segment(spec.shm_name)


class TestAttachmentCache:
    def test_same_generation_reuses_mapping(self):
        with SharedArrayRegistry(prefix="t") as registry:
            cache = AttachmentCache()
            try:
                first = registry.publish("usage", np.zeros(8, dtype=np.int64))
                cache.view(first)
                second = registry.publish("usage", np.ones(8, dtype=np.int64))
                view = cache.view(second)
                assert view.tolist() == [1] * 8
                assert cache.attaches == 1
                assert cache.reuses == 1
            finally:
                cache.close()

    def test_new_generation_reattaches(self):
        with SharedArrayRegistry(prefix="t") as registry:
            cache = AttachmentCache()
            try:
                cache.view(registry.publish("usage", np.zeros(8, dtype=np.int64)))
                cache.view(registry.publish("usage", np.zeros(16, dtype=np.int64)))
                assert cache.attaches == 2
                assert cache.reuses == 0
            finally:
                cache.close()

    def test_take_stats_drains(self):
        with SharedArrayRegistry(prefix="t") as registry:
            cache = AttachmentCache()
            try:
                spec = registry.publish("usage", np.zeros(4, dtype=np.int64))
                cache.view(spec)
                cache.view(spec)
                stats = cache.take_stats()
                assert stats == {"attaches": 1, "attach_reuse": 1}
                assert cache.take_stats() == {"attaches": 0, "attach_reuse": 0}
            finally:
                cache.close()

    def test_array_returns_private_copy(self):
        with SharedArrayRegistry(prefix="t") as registry:
            cache = AttachmentCache()
            try:
                spec = registry.publish("usage", np.arange(4, dtype=np.int64))
                copy = cache.array(spec)
                copy[:] = 99
                assert cache.view(spec).tolist() == [0, 1, 2, 3]
            finally:
                cache.close()


class TestCrossProcess:
    def test_worker_reads_published_bytes(self):
        """The full path: publish parent-side, view inside a pool worker."""
        with SharedArrayRegistry(prefix="t") as registry, WorkerPool(1) as pool:
            array = np.arange(32, dtype=np.int64)
            spec = registry.publish("usage", array)
            [raw] = pool.map(READ_SHARED, [{"spec": spec}])
            assert raw == array.tobytes()

    def test_worker_attach_reuse_is_counted(self):
        with SharedArrayRegistry(prefix="t") as registry, WorkerPool(1) as pool:
            spec = registry.publish("usage", np.zeros(8, dtype=np.int64))
            pool.map(READ_SHARED, [{"spec": spec}])
            spec = registry.publish("usage", np.ones(8, dtype=np.int64))
            [raw] = pool.map(READ_SHARED, [{"spec": spec}])
            assert raw == np.ones(8, dtype=np.int64).tobytes()
            assert pool.counters["pool.attaches"] == 1
            assert pool.counters["pool.attach_reuse"] == 1

    def test_respawned_worker_does_not_unlink_live_segment(self, tmp_path):
        """A dying worker must not take the parent's segments with it
        (the Python < 3.13 resource-tracker pitfall)."""
        with SharedArrayRegistry(prefix="t") as registry, WorkerPool(1) as pool:
            spec = registry.publish("usage", np.arange(8, dtype=np.int64))
            pool.map(READ_SHARED, [{"spec": spec}])
            flag = tmp_path / "crashed"
            [value] = pool.map(
                "repro.parallel.testing:kill_self_once",
                [{"flag": str(flag), "value": "ok"}],
                retries=1,
            )
            assert value == "ok"
            # The segment survived the worker's death: a fresh attach
            # (from the respawned worker) still sees the bytes.
            [raw] = pool.map(READ_SHARED, [{"spec": spec}])
            assert raw == np.arange(8, dtype=np.int64).tobytes()
