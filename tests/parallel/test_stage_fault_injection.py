"""Stage-level fault injection: a worker dying mid-batch must not change
the plan.

Each test monkeypatches the stage handler in the parent *before* the pool
forks (workers inherit the patched module under the ``fork`` start
method), kills a worker partway through the first batch, and then checks
the recovered parallel run against the plain sequential run — the
determinism contract must survive the crash/respawn/retry cycle.
"""

import os
import signal

from repro.benchmarks.buffering_kernel import (
    make_buffering_scenario,
    run_buffering_kernel,
)
from repro.benchmarks.routing_kernel import (
    make_routing_scenario,
    run_routing_kernel,
)
from repro.obs import Tracer
from repro.parallel import stage2, stage3


def kill_once_wrapper(real_handler, flag_path):
    """Wrap a stage handler: SIGKILL this worker on the first call."""

    def wrapper(payload, ctx):
        if not os.path.exists(flag_path):
            with open(flag_path, "w", encoding="utf-8") as fh:
                fh.write("crashed")
            os.kill(os.getpid(), signal.SIGKILL)
        return real_handler(payload, ctx)

    return wrapper


class TestStage2:
    def test_sigkill_mid_batch_recovers_to_sequential_plan(
        self, monkeypatch, tmp_path
    ):
        # margin 2: on a 16x16 grid the default margin-6 boxes cover the
        # whole die, so no batch would ever reach the pool.
        sequential = run_routing_kernel(
            make_routing_scenario(grid=16, num_nets=120),
            workers=1,
            window_margin=2,
        )
        monkeypatch.setattr(
            stage2,
            "route_nets",
            kill_once_wrapper(stage2.route_nets, str(tmp_path / "crashed")),
        )
        tracer = Tracer()
        recovered = run_routing_kernel(
            make_routing_scenario(grid=16, num_nets=120),
            workers=2,
            backend="pool",
            window_margin=2,
            tracer=tracer,
        )
        assert recovered.signature == sequential.signature
        assert recovered.wirelength_tiles == sequential.wirelength_tiles
        assert tracer.metrics.value("pool.respawns") >= 1

    def test_unrecoverable_batches_fall_back_to_serial(self, monkeypatch):
        """Every dispatch failing (PoolError) degrades to the sequential
        path for the batch — same plan, just slower."""
        sequential = run_routing_kernel(
            make_routing_scenario(grid=16, num_nets=120),
            workers=1,
            window_margin=2,
        )

        def always_dies(payload, ctx):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(stage2, "route_nets", always_dies)
        tracer = Tracer()
        recovered = run_routing_kernel(
            make_routing_scenario(grid=16, num_nets=120),
            workers=2,
            backend="pool",
            window_margin=2,
            tracer=tracer,
        )
        assert recovered.signature == sequential.signature
        assert tracer.metrics.value("stage2.pool_fallbacks") >= 1


class TestStage3:
    def test_sigkill_mid_batch_recovers_to_sequential_plan(
        self, monkeypatch, tmp_path
    ):
        sequential = run_buffering_kernel(
            make_buffering_scenario(grid=16, num_nets=120, total_sites=600),
            workers=1,
        )
        monkeypatch.setattr(
            stage3,
            "solve_nets",
            kill_once_wrapper(stage3.solve_nets, str(tmp_path / "crashed")),
        )
        tracer = Tracer()
        recovered = run_buffering_kernel(
            make_buffering_scenario(grid=16, num_nets=120, total_sites=600),
            workers=2,
            backend="pool",
            tracer=tracer,
        )
        assert recovered.signature == sequential.signature
        assert recovered.buffers_inserted == sequential.buffers_inserted
        assert tracer.metrics.value("pool.respawns") >= 1

    def test_unrecoverable_batches_fall_back_to_serial(self, monkeypatch):
        sequential = run_buffering_kernel(
            make_buffering_scenario(grid=16, num_nets=120, total_sites=600),
            workers=1,
        )

        def always_dies(payload, ctx):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(stage3, "solve_nets", always_dies)
        tracer = Tracer()
        recovered = run_buffering_kernel(
            make_buffering_scenario(grid=16, num_nets=120, total_sites=600),
            workers=2,
            backend="pool",
            tracer=tracer,
        )
        assert recovered.signature == sequential.signature
        assert tracer.metrics.value("stage3.pool_fallbacks") >= 1
