"""Worker-pool protocol: dispatch, retries, and every injected fault."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.parallel import PoolError, WorkerPool

ECHO = "repro.parallel.testing:echo"
SLEEP = "repro.parallel.testing:sleep_then_echo"
KILL_ONCE = "repro.parallel.testing:kill_self_once"
CRASH_ALWAYS = "repro.parallel.testing:crash_always"
OVERSIZED = "repro.parallel.testing:oversized_reply"
RAISE = "repro.parallel.testing:raise_error"
POISON = "repro.parallel.testing:poison_reply"


class TestBasics:
    def test_map_preserves_submission_order(self):
        with WorkerPool(2) as pool:
            values = pool.map(ECHO, list(range(20)))
            assert values == list(range(20))

    def test_results_carry_timing_and_attempts(self):
        with WorkerPool(1) as pool:
            [result] = pool.run_tasks([(ECHO, "x")])
            assert result.ok
            assert result.value == "x"
            assert result.attempts == 1
            assert result.seconds >= 0.0

    def test_context_reaches_handlers(self):
        with WorkerPool(1, context={"base": 7}) as pool:
            [value] = pool.map(
                "repro.parallel.testing:read_context", [None]
            )
            assert value == {"base": 7}

    def test_dispatch_counter(self):
        tracer = Tracer()
        with WorkerPool(2, tracer=tracer) as pool:
            pool.map(ECHO, list(range(6)))
            assert pool.counters["pool.dispatches"] == 6
            assert tracer.metrics.value("pool.dispatches") == 6

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(ConfigurationError):
            pool.map(ECHO, [1])

    def test_bad_handler_spec_is_error_status(self):
        with WorkerPool(1) as pool:
            [result] = pool.run_tasks([("no-colon-here", 1)], retries=0)
            assert result.status == "error"

    def test_empty_task_list(self):
        with WorkerPool(1) as pool:
            assert pool.run_tasks([]) == []


class TestHandlerErrors:
    def test_handler_exception_reported_not_fatal(self):
        with WorkerPool(1) as pool:
            [result] = pool.run_tasks(
                [(RAISE, {"message": "boom"})], retries=0
            )
            assert result.status == "error"
            assert "ValueError" in result.error
            assert "boom" in result.error
            # The worker survived: no respawn, still serving.
            assert pool.counters["pool.respawns"] == 0
            assert pool.map(ECHO, ["alive"]) == ["alive"]

    def test_map_raises_pool_error(self):
        with WorkerPool(1) as pool:
            with pytest.raises(PoolError):
                pool.map(RAISE, [{}], retries=0)


class TestSignals:
    def test_workers_ignore_group_delivered_sigterm(self):
        """A cgroup-wide SIGTERM/SIGINT must not take workers down.

        systemd's default KillMode delivers the shutdown signal to every
        process in the unit; the parent is mid-drain at that point and
        still needs its workers (checkpoints, in-flight jobs). Workers
        only die on the pipe sentinel or SIGKILL from the parent.
        """
        import os
        import signal as _signal
        import time as _time

        with WorkerPool(2) as pool:
            assert pool.map(ECHO, [1, 2]) == [1, 2]  # fork the workers
            for worker in pool._pool:
                os.kill(worker.proc.pid, _signal.SIGTERM)
                os.kill(worker.proc.pid, _signal.SIGINT)
            _time.sleep(0.2)
            assert all(w.proc.is_alive() for w in pool._pool)
            assert pool.map(ECHO, list(range(4))) == list(range(4))
            assert pool.counters["pool.respawns"] == 0


class TestCrashes:
    def test_sigkill_mid_task_respawns_and_retries(self, tmp_path):
        tracer = Tracer()
        with WorkerPool(1, tracer=tracer) as pool:
            flag = tmp_path / "crashed"
            [value] = pool.map(
                KILL_ONCE, [{"flag": str(flag), "value": 42}], retries=1
            )
            assert value == 42
            assert pool.counters["pool.respawns"] == 1
            assert tracer.metrics.value("pool.respawns") == 1

    def test_repeat_crasher_exhausts_retries(self):
        with WorkerPool(1) as pool:
            [result] = pool.run_tasks([(CRASH_ALWAYS, None)], retries=2)
            assert result.status == "crashed"
            assert result.attempts == 3
            assert "died" in result.error
            assert pool.counters["pool.respawns"] == 3

    def test_crash_does_not_poison_other_tasks(self, tmp_path):
        with WorkerPool(2) as pool:
            flag = tmp_path / "crashed"
            tasks = [(ECHO, i) for i in range(8)]
            tasks.insert(3, (KILL_ONCE, {"flag": str(flag), "value": "ok"}))
            results = pool.run_tasks(tasks, retries=1)
            assert [r.status for r in results] == ["ok"] * 9
            assert results[3].value == "ok"

    def test_poisoned_reply_is_contained(self):
        """A reply that explodes at unpickle time counts as a crash."""
        with WorkerPool(1) as pool:
            [result] = pool.run_tasks([(POISON, None)], retries=0)
            assert result.status == "crashed"
            assert pool.counters["pool.respawns"] == 1
            assert pool.map(ECHO, ["alive"]) == ["alive"]

    def test_oversized_reply_is_contained(self):
        with WorkerPool(1, max_reply_bytes=1024) as pool:
            [result] = pool.run_tasks(
                [(OVERSIZED, {"nbytes": 1 << 20})], retries=0
            )
            assert result.status == "crashed"
            assert pool.counters["pool.respawns"] == 1
            # A small reply still fits afterwards.
            assert pool.map(ECHO, ["small"]) == ["small"]


class TestTimeouts:
    def test_slow_task_times_out_and_respawns(self):
        with WorkerPool(1) as pool:
            [result] = pool.run_tasks(
                [(SLEEP, {"seconds": 30.0})], timeout_s=0.3, retries=0
            )
            assert result.status == "timeout"
            assert "0.3" in result.error
            assert pool.counters["pool.respawns"] == 1

    def test_fast_task_beats_deadline(self):
        with WorkerPool(1) as pool:
            [result] = pool.run_tasks(
                [(SLEEP, {"seconds": 0.0, "value": "quick"})],
                timeout_s=30.0,
                retries=0,
            )
            assert result.ok
            assert result.value == "quick"


class TestCallbacks:
    def test_on_retry_fires_per_extra_attempt(self, tmp_path):
        seen = []
        with WorkerPool(1) as pool:
            flag = tmp_path / "crashed"
            pool.run_tasks(
                [(KILL_ONCE, {"flag": str(flag), "value": 1})],
                retries=1,
                on_retry=seen.append,
            )
            assert seen == [0]

    def test_on_result_streams_every_final_result(self):
        seen = {}
        with WorkerPool(2) as pool:
            pool.run_tasks(
                [(ECHO, i) for i in range(5)],
                on_result=lambda i, r: seen.__setitem__(i, r.value),
            )
            assert seen == {i: i for i in range(5)}
