"""Tracer unit behaviour: spans, events, export, and the null tracer."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_trace,
    render_summary,
)


class TestSpans:
    def test_nesting_and_depth(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner", k=1) as inner:
                assert inner.depth == 1
                assert inner.parent == outer.index
        assert all(s.closed for s in t.spans)
        assert t.open_spans == []

    def test_duration_is_monotone_nonnegative(self):
        t = Tracer()
        with t.span("s"):
            pass
        assert t.spans[0].duration_s >= 0.0

    def test_open_span_has_no_duration(self):
        t = Tracer()
        ctx = t.span("s")
        with pytest.raises(ObservabilityError):
            t.spans[0].duration_s
        with ctx:
            pass  # close it via the context protocol

    def test_close_twice_raises(self):
        t = Tracer()
        ctx = t.span("s")
        ctx.__exit__(None, None, None)
        with pytest.raises(ObservabilityError):
            ctx.__exit__(None, None, None)

    def test_out_of_order_close_raises(self):
        t = Tracer()
        outer = t.span("outer")
        t.span("inner")
        with pytest.raises(ObservabilityError):
            outer.__exit__(None, None, None)

    def test_span_closes_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("s"):
                raise RuntimeError("boom")
        assert t.spans[0].closed

    def test_spans_named(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("a"):
            pass
        assert len(t.spans_named("a")) == 2


class TestEvents:
    def test_kinds_are_validated(self):
        t = Tracer()
        with pytest.raises(ObservabilityError):
            t.event("exploded", "n0")

    def test_sequence_and_attrs(self):
        t = Tracer()
        t.event("ripped_up", "n0", stage="2", nodes=4)
        e = t.event("rerouted", "n0", stage="2")
        assert e.seq == 1
        assert t.events.by_kind("ripped_up")[0].attrs["nodes"] == 4
        assert t.events.counts_by_kind() == {"ripped_up": 1, "rerouted": 1}

    def test_every_documented_kind_accepted(self):
        t = Tracer()
        for kind in sorted(EVENT_KINDS):
            t.event(kind, "n")
        assert len(t.events) == len(EVENT_KINDS)


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer()
        with t.span("stage1"):
            t.count("nets_routed", 3)
            t.event("buffered", "n0", stage="3", buffers=2)
        t.gauge("overflow_total", 0)
        t.observe("stage.cpu_seconds", 0.5)
        path = str(tmp_path / "trace.jsonl")
        lines = t.export_jsonl(path)
        with open(path) as fh:
            raw = [json.loads(line) for line in fh if line.strip()]
        assert len(raw) == lines
        assert raw == t.to_records()
        assert read_trace(path) == raw
        assert raw[0]["type"] == "meta" and raw[0]["version"] == 1

    def test_export_to_file_object(self, tmp_path):
        import io

        t = Tracer()
        t.count("c")
        buf = io.StringIO()
        t.export_jsonl(buf)
        assert json.loads(buf.getvalue().splitlines()[1])["name"] == "c"

    def test_summary_renders(self):
        t = Tracer()
        with t.span("stage1"):
            t.count("nets_routed", 3)
        t.event("failed", "n9", stage="4")
        text = render_summary(t)
        assert "stage1" in text and "nets_routed" in text and "failed" in text

    def test_empty_summary(self):
        assert render_summary(Tracer()) == "(empty trace)"


class TestNullTracer:
    def test_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", x=1) as nothing:
            assert nothing is None
        NULL_TRACER.count("c", 5)
        NULL_TRACER.gauge("g", 1)
        NULL_TRACER.observe("h", 1.0)
        assert NULL_TRACER.event("bogus_kind_is_fine", "n") is None

    def test_invariant_check_is_noop(self, graph10):
        NULL_TRACER.check_site_invariants(graph10)

    def test_shared_instance(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestInvariantChecks:
    def test_detects_negative_usage(self, graph10_sites):
        t = Tracer()
        graph10_sites.used_sites[2, 2] = -1
        with pytest.raises(ObservabilityError, match="negative"):
            t.check_site_invariants(graph10_sites, "unit test")

    def test_detects_oversubscription(self, graph10_sites):
        t = Tracer()
        graph10_sites.used_sites[1, 1] = 99
        with pytest.raises(ObservabilityError, match="B\\(v\\)"):
            t.check_site_invariants(graph10_sites)

    def test_disabled_checks_skip(self, graph10_sites):
        t = Tracer(debug_checks=False)
        graph10_sites.used_sites[1, 1] = 99
        t.check_site_invariants(graph10_sites)  # no raise

    def test_clean_graph_passes(self, graph10_sites):
        Tracer().check_site_invariants(graph10_sites)
