"""Observability regression: a traced full RABID run is well-formed.

Asserts the three contracts the obs layer documents: span nesting is
well-formed (every span closed, stage spans in 1->4 order), counter and
gauge totals reconcile with ``result.stage_metrics``, and the JSONL
export round-trips through ``json.loads``.
"""

import json

import pytest

from repro.core import RabidConfig, RabidPlanner
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.obs import EVENT_KINDS, Tracer
from repro.tilegraph import CapacityModel, TileGraph


def _design(n=8, size=10, capacity=8, sites_per_tile=2):
    die = Rect(0, 0, float(size), float(size))
    graph = TileGraph(die, size, size, CapacityModel.uniform(capacity))
    for tile in graph.tiles():
        graph.set_sites(tile, sites_per_tile)
    nets = []
    for i in range(n):
        y = 0.5 + (i % size)
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0.5, y)),
                sinks=[
                    Pin(f"n{i}.a", Point(size - 0.5, y)),
                    Pin(f"n{i}.b", Point(size / 2, (y + size / 2) % size)),
                ],
            )
        )
    return graph, Netlist(nets=nets)


@pytest.fixture(scope="module")
def traced_run():
    graph, netlist = _design()
    tracer = Tracer()
    planner = RabidPlanner(graph, netlist, RabidConfig(length_limit=4))
    result = planner.run(tracer=tracer)
    return graph, netlist, tracer, result


class TestSpanWellFormedness:
    def test_every_span_closed(self, traced_run):
        _, _, tracer, _ = traced_run
        assert tracer.open_spans == []
        assert all(s.closed for s in tracer.spans)

    def test_stage_spans_in_order(self, traced_run):
        _, _, tracer, _ = traced_run
        stage_names = [
            s.name for s in tracer.spans
            if s.name in ("stage1", "stage2", "stage3", "stage4")
        ]
        assert stage_names == ["stage1", "stage2", "stage3", "stage4"]

    def test_stage_spans_nest_under_run(self, traced_run):
        _, _, tracer, _ = traced_run
        (run_span,) = tracer.spans_named("rabid.run")
        for name in ("stage1", "stage2", "stage3", "stage4"):
            (span,) = tracer.spans_named(name)
            assert span.parent == run_span.index
            assert span.depth == 1

    def test_parent_indices_precede_children(self, traced_run):
        _, _, tracer, _ = traced_run
        for span in tracer.spans:
            if span.parent is not None:
                assert span.parent < span.index
                assert tracer.spans[span.parent].depth == span.depth - 1

    def test_pass_spans_carry_pass_attr(self, traced_run):
        _, _, tracer, _ = traced_run
        passes = tracer.spans_named("stage4.pass")
        assert [s.attrs["pass"] for s in passes] == list(range(len(passes)))

    def test_timing_is_contained(self, traced_run):
        _, _, tracer, _ = traced_run
        (run_span,) = tracer.spans_named("rabid.run")
        for span in tracer.spans:
            if span.parent == run_span.index:
                assert span.start_s >= run_span.start_s
                assert span.end_s <= run_span.end_s


class TestCounterReconciliation:
    def test_gauges_match_stage_metrics(self, traced_run):
        _, _, tracer, result = traced_run
        for m in result.stage_metrics:
            assert tracer.metrics.value(f"stage{m.stage}.overflows") == m.overflows
            assert (
                tracer.metrics.value(f"stage{m.stage}.num_buffers")
                == m.num_buffers
            )
            assert tracer.metrics.value(f"stage{m.stage}.num_fails") == m.num_fails
            assert tracer.metrics.value(
                f"stage{m.stage}.wirelength_mm"
            ) == pytest.approx(m.wirelength_mm)

    def test_cpu_histogram_has_one_sample_per_stage(self, traced_run):
        _, _, tracer, result = traced_run
        hist = tracer.metrics.histogram("stage.cpu_seconds")
        assert hist.count == len(result.stage_metrics) == 4

    def test_nets_routed_counts_the_netlist(self, traced_run):
        _, netlist, tracer, _ = traced_run
        assert tracer.metrics.value("nets_routed") == len(netlist)

    def test_buffer_sites_counter_matches_stage3_metrics(self, traced_run):
        _, _, tracer, result = traced_run
        assert (
            tracer.metrics.value("buffer_sites_used")
            == result.stage_metrics[2].num_buffers
            == result.assignment.buffers_inserted
        )

    def test_overflow_gauge_matches_final_stage(self, traced_run):
        _, _, tracer, result = traced_run
        assert (
            tracer.metrics.value("overflow_total")
            == result.stage_metrics[-1].overflows
        )

    def test_stage2_events_pair_up(self, traced_run):
        _, netlist, tracer, _ = traced_run
        stage2 = [e for e in tracer.events if e.stage == "2"]
        ripped = [e for e in stage2 if e.kind == "ripped_up"]
        rerouted = [e for e in stage2 if e.kind == "rerouted"]
        assert len(ripped) == len(rerouted)
        assert len(ripped) % len(netlist) == 0

    def test_stage3_has_one_event_per_net(self, traced_run):
        _, netlist, tracer, _ = traced_run
        stage3 = [e for e in tracer.events if e.stage == "3"]
        assert len(stage3) == len(netlist)
        assert {e.net for e in stage3} == {net.name for net in netlist}


class TestJsonlExport:
    def test_round_trips_through_json_loads(self, traced_run, tmp_path):
        _, _, tracer, _ = traced_run
        path = str(tmp_path / "run.jsonl")
        lines = tracer.export_jsonl(path)
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        assert len(records) == lines
        assert records == tracer.to_records()

    def test_schema_shape(self, traced_run, tmp_path):
        _, _, tracer, _ = traced_run
        path = str(tmp_path / "run.jsonl")
        tracer.export_jsonl(path)
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        meta = records[0]
        assert meta["type"] == "meta"
        by_type = {}
        for record in records[1:]:
            by_type.setdefault(record["type"], []).append(record)
        assert len(by_type["span"]) == meta["spans"]
        assert len(by_type["event"]) == meta["events"]
        assert (
            len(by_type["counter"])
            + len(by_type["gauge"])
            + len(by_type["histogram"])
            == meta["metrics"]
        )
        for span in by_type["span"]:
            assert span["end_s"] is not None
        for event in by_type["event"]:
            assert event["kind"] in EVENT_KINDS
            assert isinstance(event["net"], str)
