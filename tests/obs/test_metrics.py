"""Typed metrics: counters, gauges, histograms, and the registry."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        c = Counter("n")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ObservabilityError):
            Counter("n").add(-1)

    def test_record(self):
        c = Counter("n")
        c.add(2)
        assert c.as_record() == {"type": "counter", "name": "n", "value": 2}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_record(self):
        g = Gauge("g")
        g.set(1.5)
        assert g.as_record()["value"] == 1.5


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.minimum == 1.0
        assert h.maximum == 3.0
        assert h.mean == 2.0

    def test_empty_record_has_null_bounds(self):
        record = Histogram("h").as_record()
        assert record["min"] is None and record["max"] is None


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ObservabilityError):
            reg.gauge("a")
        with pytest.raises(ObservabilityError):
            reg.histogram("a")

    def test_value_lookup(self):
        reg = MetricsRegistry()
        reg.counter("a").add(7)
        assert reg.value("a") == 7
        assert reg.value("missing", default=-1) == -1
        reg.histogram("h").observe(1.0)
        with pytest.raises(ObservabilityError):
            reg.value("h")

    def test_records_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.gauge("z").set(1)
        reg.counter("a").add(1)
        assert [r["name"] for r in reg.as_records()] == ["a", "z"]

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("nets").add(3)
        reg.gauge("overflow").set(0)
        reg.histogram("cpu").observe(0.25)
        text = reg.render()
        assert "nets" in text and "overflow" in text and "cpu" in text
