"""Experiment configuration plumbing."""

from repro.benchmarks import load_benchmark
from repro.experiments import ExperimentConfig, planner_config_for


class TestPlannerConfigFor:
    def test_uses_spec_length_limit(self):
        bench = load_benchmark("apte")
        config = planner_config_for(bench)
        assert config.length_limit == 6

    def test_experiment_overrides(self):
        bench = load_benchmark("xerox")
        config = planner_config_for(
            bench, ExperimentConfig(stage2_iterations=5, stage4_iterations=0)
        )
        assert config.stage2_iterations == 5
        assert config.stage4_iterations == 0
        assert config.length_limit == 5

    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.seed == 0
        assert cfg.stage2_iterations == 3
        assert cfg.window_margin >= 9  # must skirt the 9x9 blocked region
