"""Experiment harnesses produce well-formed tables with the paper's shape.

These run the *smallest* circuits to keep the suite fast; the full sweeps
live in benchmarks/.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    run_table1,
    run_table2_circuit,
    run_table3_circuit,
    run_table4_circuit,
    run_table5_circuit,
)
from repro.experiments.formatting import render_table

pytestmark = pytest.mark.slow

FAST = ExperimentConfig(seed=0, stage4_iterations=1)


class TestFormatting:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_render_rejects_ragged(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])


class TestTable1:
    def test_rows_match_specs(self):
        rows = run_table1()
        assert len(rows) == 10
        by_name = {r.circuit: r for r in rows}
        assert by_name["apte"].nets == 77
        assert by_name["playout"].sinks == 1663
        assert by_name["apte"].chip_area_pct == pytest.approx(0.13, abs=0.02)
        out = format_table1(rows)
        assert "playout" in out and "27550" in out


@pytest.fixture(scope="module")
def apte_table2():
    return run_table2_circuit("apte", FAST)


class TestTable2:
    def test_four_stages(self, apte_table2):
        assert [r.stage for r in apte_table2] == ["1", "2", "3", "4"]

    def test_paper_shape(self, apte_table2):
        s1, s2, s3, s4 = [r.metrics for r in apte_table2]
        # Stage 1 ignores congestion: overloaded max and many overflows.
        assert s1.wire_congestion_max > 1.0
        assert s1.overflows > 0
        # Stage 2 clears all overflow.
        assert s2.overflows == 0
        assert s2.wire_congestion_max <= 1.0
        # Stage 3 inserts buffers and slashes delay.
        assert s3.num_buffers > 0
        assert s3.avg_delay_ps < 0.6 * s2.avg_delay_ps
        # Buffer capacity never violated.
        assert s3.buffer_density_max <= 1.0
        assert s4.buffer_density_max <= 1.0
        # Fails fall from 3 to 4; congestion stays clean.
        assert s4.num_fails <= s3.num_fails
        assert s4.overflows == 0

    def test_final_only_mode(self):
        rows = run_table2_circuit("apte", FAST, final_only=True)
        assert len(rows) == 1 and rows[0].stage == "1-4"

    def test_format(self, apte_table2):
        out = format_table2(apte_table2)
        assert "apte" in out and "CPU(s)" in out


class TestTable3:
    def test_site_budget_trend(self):
        rows = run_table3_circuit("apte", FAST, site_budgets=[280, 3200])
        small, large = rows[0].metrics, rows[1].metrics
        # Fewer sites -> more failures (paper's key Table III observation).
        assert small.num_fails > large.num_fails
        # Scarce sites run at much higher density.
        assert small.buffer_density_avg > large.buffer_density_avg

    def test_unknown_circuit(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_table3_circuit("nonesuch", FAST)

    def test_format(self):
        rows = run_table3_circuit("apte", FAST, site_budgets=[700])
        assert "700" in format_table3(rows)


class TestTable4:
    def test_grid_sweep(self):
        rows = run_table4_circuit("apte", FAST, grids=[(10, 11), (30, 33)])
        coarse, fine = rows[0].metrics, rows[1].metrics
        # Finer tiling -> equal-or-higher max wire congestion (paper).
        assert fine.wire_congestion_max >= coarse.wire_congestion_max - 0.15
        out = format_table4(rows)
        assert "10x11" in out and "30x33" in out

    def test_no_variants_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_table4_circuit("xerox", FAST)  # xerox has no grid variants


class TestTable5:
    def test_rabid_beats_bbp_on_congestion(self):
        rows = run_table5_circuit("apte", FAST)
        bbp, rabid = rows
        assert bbp.algorithm == "BBP/FR" and rabid.algorithm == "RABID"
        # The paper's headline contrasts.
        assert rabid.overflows == 0
        assert rabid.wire_congestion_max <= 1.0
        assert bbp.wire_congestion_max >= rabid.wire_congestion_max
        assert rabid.mtap_pct <= bbp.mtap_pct
        assert rabid.num_buffers >= bbp.num_buffers
        out = format_table5(rows)
        assert "BBP/FR" in out and "RABID" in out
