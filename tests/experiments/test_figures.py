"""Figure regenerators."""

import pytest

from repro.experiments.figures import figure1_svg, figure2_ascii


class TestFigure1:
    @pytest.fixture(scope="class")
    def svg(self):
        return figure1_svg()

    def test_is_svg(self, svg):
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_blocks_and_buffers_present(self, svg):
        assert svg.count("<rect") >= 11  # die + 10 xerox blocks
        assert svg.count("<circle") > 50  # hundreds of buffers

    def test_buffers_cluster_outside_blocks(self):
        # Fig. 1's point: every buffer dot lies in inter-block space.
        from repro.bbp import BbpConfig, BbpPlanner
        from repro.benchmarks import load_benchmark

        bench = load_benchmark("xerox", seed=0)
        result = BbpPlanner(
            bench.graph, bench.floorplan, bench.netlist,
            BbpConfig(length_limit=5, postprocess=False),
        ).run()
        for p in result.buffer_points:
            assert bench.floorplan.free_space(p)


class TestFigure2:
    def test_matrix_dimensions(self):
        out = figure2_ascii()
        lines = out.splitlines()
        assert len(lines) == 33  # apte grid is 30x33
        assert all(len(line) == 30 for line in lines)

    def test_blocked_region_visible(self):
        # 81 blocked tiles render as the lowest ramp level (space).
        out = figure2_ascii()
        assert out.count(" ") >= 81
