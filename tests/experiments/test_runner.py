"""The one-call reproduction runner (quick mode, smallest subsets)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import render_report, run_all_tables

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tables():
    # Trim even quick mode for the unit-test suite.
    import repro.experiments.runner as runner

    original = (
        runner.QUICK_TABLE2, runner.QUICK_TABLE3,
        runner.QUICK_TABLE4, runner.QUICK_TABLE5,
    )
    runner.QUICK_TABLE2 = ["apte"]
    runner.QUICK_TABLE3 = ["apte"]
    runner.QUICK_TABLE4 = {"apte": [(10, 11)]}
    runner.QUICK_TABLE5 = ["apte"]
    try:
        yield run_all_tables(quick=True, experiment=ExperimentConfig(stage4_iterations=1))
    finally:
        (
            runner.QUICK_TABLE2, runner.QUICK_TABLE3,
            runner.QUICK_TABLE4, runner.QUICK_TABLE5,
        ) = original


class TestRunner:
    def test_all_five_tables(self, tables):
        assert set(tables) == {
            "Table I", "Table II", "Table III", "Table IV", "Table V",
        }

    def test_tables_are_rendered_text(self, tables):
        for text in tables.values():
            assert "circuit" in text
            assert len(text.splitlines()) >= 3

    def test_table2_has_four_stages(self, tables):
        assert " 1 " in tables["Table II"] or "  1  " in tables["Table II"]
        assert "apte" in tables["Table II"]

    def test_report_rendering(self, tables):
        report = render_report(tables)
        for title in tables:
            assert f"== {title} ==" in report
