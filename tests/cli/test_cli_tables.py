"""CLI table commands, with the heavy harnesses stubbed out."""

import pytest

import repro.cli as cli
from repro.core import StageMetrics


def _metrics(stage=4):
    return StageMetrics(
        stage=stage,
        wire_congestion_max=0.5,
        wire_congestion_avg=0.2,
        overflows=0,
        buffer_density_max=0.9,
        buffer_density_avg=0.3,
        num_buffers=123,
        num_fails=2,
        wirelength_mm=1000.0,
        max_delay_ps=2000.0,
        avg_delay_ps=900.0,
        cpu_seconds=1.5,
    )


class TestTableCommands:
    def test_table2_uses_harness(self, monkeypatch, capsys):
        from repro.experiments.table2 import Table2Row

        def fake(name, experiment):
            assert name == "apte"
            return [Table2Row("apte", "1-4", _metrics())]

        monkeypatch.setattr(cli, "run_table2_circuit", fake)
        assert cli.main(["table2", "apte"]) == 0
        out = capsys.readouterr().out
        assert "apte" in out and "123" in out

    def test_table3(self, monkeypatch, capsys):
        from repro.experiments.table3 import Table3Row

        monkeypatch.setattr(
            cli,
            "run_table3_circuit",
            lambda name, experiment: [Table3Row(name, 700, _metrics())],
        )
        assert cli.main(["table3", "apte"]) == 0
        assert "700" in capsys.readouterr().out

    def test_table4(self, monkeypatch, capsys):
        from repro.experiments.table4 import Table4Row

        monkeypatch.setattr(
            cli,
            "run_table4_circuit",
            lambda name, experiment: [Table4Row(name, (10, 11), _metrics())],
        )
        assert cli.main(["table4", "apte"]) == 0
        assert "10x11" in capsys.readouterr().out

    def test_table5(self, monkeypatch, capsys):
        from repro.experiments.table5 import Table5Row

        def row(alg):
            return Table5Row(
                circuit="apte", algorithm=alg, wire_congestion_max=1.0,
                wire_congestion_avg=0.2, overflows=0, num_buffers=10,
                mtap_pct=1.0, wirelength_mm=100.0, max_delay_ps=1.0,
                avg_delay_ps=1.0, cpu_seconds=0.1,
            )

        monkeypatch.setattr(
            cli,
            "run_table5_circuit",
            lambda name, experiment: [row("BBP/FR"), row("RABID")],
        )
        assert cli.main(["table5", "apte"]) == 0
        out = capsys.readouterr().out
        assert "BBP/FR" in out and "RABID" in out

    def test_seed_threaded_to_experiment(self, monkeypatch):
        seen = {}

        def fake(name, experiment):
            seen["seed"] = experiment.seed
            from repro.experiments.table2 import Table2Row

            return [Table2Row(name, "1-4", _metrics())]

        monkeypatch.setattr(cli, "run_table2_circuit", fake)
        cli.main(["--seed", "17", "table2", "apte"])
        assert seen["seed"] == 17
