"""`python -m repro` entry point, exercised as a real subprocess."""

import subprocess
import sys

import pytest


def _run(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestMainModule:
    def test_list(self):
        proc = _run("list")
        assert proc.returncode == 0
        assert "apte" in proc.stdout
        assert "playout" in proc.stdout

    def test_help(self):
        proc = _run("--help")
        assert proc.returncode == 0
        assert "table5" in proc.stdout

    def test_bad_command_exits_nonzero(self):
        proc = _run("frobnicate")
        assert proc.returncode != 0

    def test_table1(self):
        proc = _run("table1")
        assert proc.returncode == 0
        assert "27550" in proc.stdout
