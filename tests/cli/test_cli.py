"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "apte" in out and "playout" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "circuit" in out and "27550" in out

    def test_run_small(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out
        assert out.count("\n") >= 5

    def test_run_with_maps(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "1", "--maps"]) == 0
        out = capsys.readouterr().out
        assert "wire congestion" in out
        assert "buffer usage" in out

    def test_run_with_diagnose(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "0", "--diagnose"]) == 0
        out = capsys.readouterr().out
        # Stage 4 disabled leaves failures to diagnose.
        assert "failure diagnosis" in out
        assert "summary:" in out

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonesuch"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag(self, capsys):
        assert main(["--seed", "3", "table1"]) == 0
        assert "apte" in capsys.readouterr().out
