"""Command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "apte" in out and "playout" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "circuit" in out and "27550" in out

    def test_run_small(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out
        assert out.count("\n") >= 5

    def test_run_with_maps(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "1", "--maps"]) == 0
        out = capsys.readouterr().out
        assert "wire congestion" in out
        assert "buffer usage" in out

    def test_run_with_diagnose(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "0", "--diagnose"]) == 0
        out = capsys.readouterr().out
        # Stage 4 disabled leaves failures to diagnose.
        assert "failure diagnosis" in out
        assert "summary:" in out

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonesuch"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag(self, capsys):
        assert main(["--seed", "3", "table1"]) == 0
        assert "apte" in capsys.readouterr().out


class TestVersionAndJson:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_list_json(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        names = {r["name"] for r in rows}
        assert "apte" in names
        for row in rows:
            assert {"name", "kind", "nets", "sinks"} <= set(row)


class TestExplore:
    BASE = [
        "explore",
        "--grid", "12", "--nets", "30", "--total-sites", "300",
    ]

    def test_grid_sweep_table(self, capsys):
        assert main([*self.BASE, "--dim", "total_sites=200,300,400"]) == 0
        out = capsys.readouterr().out
        assert "evaluated" in out
        assert "site_budget" in out

    def test_json_report(self, capsys):
        import json

        assert (
            main([*self.BASE, "--dim", "total_sites=250,350", "--json"]) == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["evaluated"] == 2
        assert report["objectives"][0] == "unassigned_nets"

    def test_store_resume(self, capsys, tmp_path):
        store = str(tmp_path / "results.jsonl")
        args = [*self.BASE, "--dim", "total_sites=250,350",
                "--store", store, "--metrics"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "explore.scenarios" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        # Second run answers fully from the store.
        assert "explore.cache_hits" in second

    def test_region_dim_and_svg(self, capsys, tmp_path):
        svg = tmp_path / "sweep.svg"
        assert main([
            *self.BASE,
            "--dim", "region_sites@4:4:5:5=0,3",
            "--svg", str(svg),
        ]) == 0
        assert svg.exists()
        assert b"<svg" in svg.read_bytes()

    def test_sensitivity_output(self, capsys):
        assert main([
            *self.BASE, "--dim", "total_sites=250,350", "--sensitivity",
        ]) == 0
        assert "total_sites" in capsys.readouterr().out

    def test_bad_dim_spec_rejected(self):
        with pytest.raises(SystemExit):
            main([*self.BASE, "--dim", "wirelength=1,2"])
