"""The `repro workload` command: list, describe, run, triage flags."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_tiers(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("ladder-64", "ladder-256", "table1-apte", "smoke-16"):
            assert name in out

    def test_source_filter_json(self, capsys):
        assert main(["workload", "list", "--source", "ladder", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert all(r["source"] == "ladder" for r in rows)
        assert {r["name"] for r in rows} == {
            "ladder-32", "ladder-64", "ladder-128", "ladder-256"
        }


class TestDescribe:
    def test_card_includes_triage_verdict(self, capsys):
        assert main(["workload", "describe", "--name", "smoke-16",
                     "--json"]) == 0
        card = json.loads(capsys.readouterr().out)
        assert card["grid"] == 16
        assert card["triage"]["verdict"] == "routable"

    def test_name_required(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["workload", "describe"])
        assert exc.value.code == 2

    def test_unknown_tier_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["workload", "describe", "--name", "ladder-1024"])
        assert exc.value.code == 2


class TestRun:
    def test_short_trace_json_report(self, capsys, tmp_path):
        out = str(tmp_path / "report.json")
        assert main([
            "workload", "run", "--name", "smoke-16",
            "--trace-events", "6", "--checkpoint-every", "3",
            "--json", "--out", out,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 6
        assert payload["divergences"] == 0
        assert len(payload["checkpoints"]) == 2
        saved = json.loads(open(out).read())
        assert saved["signature_digest"] == payload["signature_digest"]

    def test_text_summary(self, capsys):
        assert main([
            "workload", "run", "--name", "smoke-16",
            "--trace-events", "4", "--checkpoint-every", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "workload smoke-16" in out
        assert "divergences: 0" in out

    def test_triage_aborts_certified_infeasible_tier(
        self, capsys, monkeypatch
    ):
        from repro.workloads import registry

        starved = registry.WorkloadSpec(
            name="starved", description="", source="smoke", grid=12,
            num_nets=60, capacity=6, length_limit=2, total_sites=5,
        )
        monkeypatch.setitem(registry.WORKLOADS, "starved", starved)
        assert main([
            "workload", "run", "--name", "starved", "--triage",
            "--trace-events", "4",
        ]) == 1
        assert "certified infeasible" in capsys.readouterr().out
