"""CLI --workers / --seed validation via the exit-2 configuration path."""

import pytest

from repro.cli import main


class TestWorkersFlag:
    def test_run_with_workers(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "0",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out

    def test_zero_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--workers", "0"])
        assert exc.value.code == 2
        assert "workers" in capsys.readouterr().err

    def test_negative_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--workers", "-3"])
        assert exc.value.code == 2
        assert "workers" in capsys.readouterr().err


class TestStage3WorkersFlag:
    def test_run_with_stage3_workers(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "0",
                     "--stage3-workers", "2"]) == 0
        assert "stage" in capsys.readouterr().out

    def test_zero_stage3_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--stage3-workers", "0"])
        assert exc.value.code == 2
        assert "stage3_workers" in capsys.readouterr().err

    def test_negative_stage3_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--stage3-workers", "-2"])
        assert exc.value.code == 2
        assert "stage3_workers" in capsys.readouterr().err

    def test_unknown_stage3_solver_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--stage3-solver", "quantum"])
        assert exc.value.code == 2
        assert "solver" in capsys.readouterr().err


class TestSeedValidation:
    def test_negative_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--seed", "-1", "run", "apte"])
        assert exc.value.code == 2
        assert "seed" in capsys.readouterr().err

    def test_negative_seed_rejected_for_tables_too(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--seed", "-7", "table1"])
        assert exc.value.code == 2
        assert "seed" in capsys.readouterr().err
