"""CLI --workers / --seed validation via the exit-2 configuration path."""

import pytest

from repro.cli import main


class TestWorkersFlag:
    def test_run_with_workers(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "0",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out

    def test_zero_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--workers", "0"])
        assert exc.value.code == 2
        assert "workers" in capsys.readouterr().err

    def test_negative_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--workers", "-3"])
        assert exc.value.code == 2
        assert "workers" in capsys.readouterr().err


class TestStage3WorkersFlag:
    def test_run_with_stage3_workers(self, capsys):
        assert main(["run", "apte", "--stage4-iterations", "0",
                     "--stage3-workers", "2"]) == 0
        assert "stage" in capsys.readouterr().out

    def test_zero_stage3_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--stage3-workers", "0"])
        assert exc.value.code == 2
        assert "stage3_workers" in capsys.readouterr().err

    def test_negative_stage3_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--stage3-workers", "-2"])
        assert exc.value.code == 2
        assert "stage3_workers" in capsys.readouterr().err

    def test_unknown_stage3_solver_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "apte", "--stage3-solver", "quantum"])
        assert exc.value.code == 2
        assert "solver" in capsys.readouterr().err


class TestWorkerClamping:
    """Values past os.cpu_count() clamp (with a warning) instead of dying."""

    def test_workers_clamped_to_cpu_count(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.cli.os.cpu_count", lambda: 2)
        assert main(["run", "apte", "--stage4-iterations", "0",
                     "--workers", "64"]) == 0
        captured = capsys.readouterr()
        assert "warning: clamping --workers=64 to 2" in captured.err
        assert "stage" in captured.out

    def test_stage3_workers_clamped_to_cpu_count(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.cli.os.cpu_count", lambda: 2)
        assert main(["run", "apte", "--stage4-iterations", "0",
                     "--stage3-workers", "64"]) == 0
        captured = capsys.readouterr()
        assert "warning: clamping --stage3-workers=64 to 2" in captured.err

    def test_in_range_values_not_clamped(self, capsys, monkeypatch):
        from repro.cli import _check_worker_flags

        monkeypatch.setattr("repro.cli.os.cpu_count", lambda: 4)

        class Args:
            workers = 4
            stage3_workers = 3

        _check_worker_flags(Args)
        assert Args.workers == 4
        assert Args.stage3_workers == 3
        assert capsys.readouterr().err == ""

    def test_unknown_cpu_count_clamps_to_one(self, capsys, monkeypatch):
        from repro.cli import _check_worker_flags

        monkeypatch.setattr("repro.cli.os.cpu_count", lambda: None)

        class Args:
            workers = 8
            stage3_workers = 1

        _check_worker_flags(Args)
        assert Args.workers == 1
        assert "clamping --workers=8 to 1" in capsys.readouterr().err

    def test_sub_one_values_left_for_config_validation(self, monkeypatch):
        from repro.cli import _check_worker_flags

        monkeypatch.setattr("repro.cli.os.cpu_count", lambda: 2)

        class Args:
            workers = 0
            stage3_workers = -3

        _check_worker_flags(Args)
        # Untouched: RabidConfig owns the "must be >= 1" rejection.
        assert Args.workers == 0
        assert Args.stage3_workers == -3


class TestSeedValidation:
    def test_negative_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--seed", "-1", "run", "apte"])
        assert exc.value.code == 2
        assert "seed" in capsys.readouterr().err

    def test_negative_seed_rejected_for_tables_too(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--seed", "-7", "table1"])
        assert exc.value.code == 2
        assert "seed" in capsys.readouterr().err
