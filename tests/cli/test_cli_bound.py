"""The `repro bound` command and bound-mode capability listings."""

import json

import pytest

from repro.cli import main


ARGS = [
    "bound", "--grid", "8", "--nets", "10", "--total-sites", "120",
    "--iterations", "2",
]


class TestBoundCommand:
    def test_basic_run(self, capsys):
        assert main(ARGS) == 0
        out = capsys.readouterr().out
        assert "lower_bound" in out

    def test_json_payload(self, capsys):
        assert main(ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "gk"
        assert payload["lower_bound"] > 0
        assert payload["certified_infeasible"] is False
        assert payload["pricing_calls"] >= 10

    def test_compare_reports_nonnegative_gap(self, capsys):
        assert main(ARGS + ["--compare", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan_cost"] >= payload["lower_bound"]
        assert payload["optimality_gap"] >= 0.0

    def test_round_arm(self, capsys):
        assert main(ARGS + ["--round", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounded"]["nets"] == 10
        assert payload["rounded"]["total_cost"] >= payload["lower_bound"]

    def test_cert_save_and_verify(self, capsys, tmp_path):
        cert = str(tmp_path / "cert.json")
        assert main(ARGS + ["--cert", cert, "--verify", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verify"]["ok"] is True
        saved = json.loads(open(cert).read())
        assert saved["version"] == 1

    def test_epsilon_flag_validated(self):
        with pytest.raises(SystemExit):
            main(ARGS + ["--epsilon", "7.0"])

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(ARGS + ["--mode", "simplex"])


class TestCapabilities:
    def test_list_json_capability_row(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        meta = next(r for r in rows if r["kind"] == "meta")
        assert "gk" in meta["bound_modes"]
        assert "mcf" in meta["routers"]
        assert meta["stage3_solvers"]

    def test_list_text_mentions_bound_modes(self, capsys):
        assert main(["list"]) == 0
        assert "bound_modes: gk" in capsys.readouterr().out

    def test_version_details_include_bound_modes(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "bound_modes" in out and "gk" in out
