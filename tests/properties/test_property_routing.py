"""Property-based tests: routing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.routing import embed_tree, prim_dijkstra_tree, remove_overlaps
from repro.routing.maze import route_net_on_tiles
from repro.tilegraph import CapacityModel, TileGraph

grid_coords = st.integers(min_value=0, max_value=7)
tiles = st.tuples(grid_coords, grid_coords)


def _graph():
    return TileGraph(Rect(0, 0, 8, 8), 8, 8, CapacityModel.uniform(10))


pin_coords = st.floats(min_value=0.01, max_value=7.99, allow_nan=False)
pins = st.builds(Point, pin_coords, pin_coords)


class TestPrimDijkstra:
    @given(st.lists(pins, min_size=1, max_size=10), st.floats(0, 1))
    @settings(max_examples=80, deadline=None)
    def test_spans_all_pins(self, pts, c):
        tree = prim_dijkstra_tree(pts, c=c)
        assert tree.num_points == len(pts)
        tree.parent_order()  # connected

    @given(st.lists(pins, min_size=2, max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_radius_between_spt_and_mst(self, pts):
        spt_radius = prim_dijkstra_tree(pts, c=1.0).radius()
        pd_radius = prim_dijkstra_tree(pts, c=0.4).radius()
        # SPT radius is the minimum possible; PD can't beat it.
        assert pd_radius >= spt_radius - 1e-9


class TestOverlapRemoval:
    @given(st.lists(pins, min_size=2, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_never_longer_and_still_connected(self, pts):
        tree = prim_dijkstra_tree(pts, c=0.4)
        before = tree.wirelength()
        remove_overlaps(tree)
        assert tree.wirelength() <= before + 1e-9
        tree.parent_order()


class TestEmbed:
    @given(st.lists(pins, min_size=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_valid_route_tree(self, pts):
        graph = _graph()
        gtree = remove_overlaps(prim_dijkstra_tree(pts, c=0.4))
        rt = embed_tree(graph, gtree, pts[1:])
        rt.validate()
        expected = sorted({graph.tile_of(p) for p in pts[1:]})
        assert rt.sink_tiles == expected


class TestMaze:
    @given(tiles, st.lists(tiles, min_size=1, max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_route_connects_everything(self, source, sinks):
        graph = _graph()
        rt = route_net_on_tiles(graph, source, sinks)
        rt.validate()
        assert rt.source == source
        assert set(rt.sink_tiles) == set(sinks)

    @given(tiles, tiles)
    @settings(max_examples=80, deadline=None)
    def test_uncongested_route_is_shortest(self, source, sink):
        graph = _graph()
        rt = route_net_on_tiles(graph, source, [sink])
        dist = abs(source[0] - sink[0]) + abs(source[1] - sink[1])
        assert rt.wirelength_tiles() == dist

    @given(tiles, st.lists(tiles, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_usage_roundtrip(self, source, sinks):
        graph = _graph()
        rt = route_net_on_tiles(graph, source, sinks)
        rt.add_usage(graph)
        rt.remove_usage(graph)
        assert graph.h_usage.sum() == 0
        assert graph.v_usage.sum() == 0
