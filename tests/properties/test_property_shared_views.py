"""Property: state shipped through shared-memory views is lossless.

The pool's batch protocol is "publish the flat vectors, let the worker
rebuild a replica graph from the views". This test drives a random
interleaving of route commits/rips, buffer-site commits/rips, and
rolled-back ledger transactions against an authoritative graph, and at
random sync points replays the published state into a mirror graph the
way :func:`repro.parallel.stage2.route_nets` and
:func:`repro.parallel.stage3.solve_nets` do. The mirror must be
byte-identical everywhere the workers read: flat edge usage (and its
h/v reshapes), the site vectors, the ledger's free counts, and the
Eq. (1) congestion costs derived from them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.parallel import AttachmentCache, SharedArrayRegistry
from repro.routing.tree import RouteTree
from repro.tilegraph import CapacityModel, TileGraph

SIZE = 6
NUM_TILES = SIZE * SIZE


def make_graph():
    return TileGraph(
        Rect(0.0, 0.0, float(SIZE), float(SIZE)),
        SIZE,
        SIZE,
        CapacityModel.uniform(4),
    )


def l_path(x1, y1, x2, y2):
    """Horizontal-then-vertical tile path between two tiles."""
    path = [(x, y1) for x in range(x1, x2, 1 if x2 >= x1 else -1)]
    path.append((x2, y1))
    path.extend(
        (x2, y) for y in range(y1 + (1 if y2 >= y1 else -1), y2, 1 if y2 >= y1 else -1)
    )
    if y2 != y1:
        path.append((x2, y2))
    return path


tiles = st.tuples(
    st.integers(0, SIZE - 1), st.integers(0, SIZE - 1)
)

route_op = st.tuples(st.just("route"), tiles, tiles)
rip_op = st.tuples(st.just("rip"), st.integers(0, 10 ** 6))
buffer_op = st.tuples(st.just("buffer"), st.integers(0, NUM_TILES - 1))
unbuffer_op = st.tuples(st.just("unbuffer"), st.integers(0, 10 ** 6))
rollback_op = st.tuples(
    st.just("rollback"),
    st.lists(st.integers(0, NUM_TILES - 1), min_size=1, max_size=4),
)
sync_op = st.tuples(st.just("sync"), st.just(None))

ops = st.lists(
    st.one_of(route_op, rip_op, buffer_op, unbuffer_op, rollback_op, sync_op),
    max_size=40,
)


def mirror_from_views(mirror, cache, usage_spec, used_spec):
    """Replay the published state into the mirror like a pool worker."""
    mirror.edge_usage[...] = cache.view(usage_spec)
    mirror.used_sites.reshape(-1)[...] = cache.view(used_spec)
    mirror.cost_cache().mark_all_dirty()


def assert_identical(graph, mirror):
    assert mirror.edge_usage.tobytes() == graph.edge_usage.tobytes()
    assert mirror.h_usage.tobytes() == graph.h_usage.tobytes()
    assert mirror.v_usage.tobytes() == graph.v_usage.tobytes()
    assert mirror.used_sites.tobytes() == graph.used_sites.tobytes()
    ledger, mledger = graph.ledger(), mirror.ledger()
    assert mledger.used.tobytes() == ledger.used.tobytes()
    assert mledger.capacity.tobytes() == ledger.capacity.tobytes()
    for index in range(NUM_TILES):
        assert mledger.free(index) == ledger.free(index)
    assert (
        mirror.cost_cache().strict_costs()
        == graph.cost_cache().strict_costs()
    )


@settings(max_examples=30, deadline=None)
@given(ops=ops)
def test_shared_views_replay_interleavings_byte_identically(ops):
    graph = make_graph()
    mirror = make_graph()
    committed = []

    with SharedArrayRegistry(prefix="prop") as registry:
        cache = AttachmentCache()
        try:

            def sync_and_check():
                usage_spec = registry.publish("usage", graph.edge_usage)
                used_spec = registry.publish(
                    "used", graph.used_sites.reshape(-1)
                )
                mirror_from_views(mirror, cache, usage_spec, used_spec)
                assert_identical(graph, mirror)

            for op, *args in ops:
                if op == "route":
                    (x1, y1), (x2, y2) = args
                    if (x1, y1) == (x2, y2):
                        continue
                    tree = RouteTree.from_paths(
                        (x1, y1),
                        [l_path(x1, y1, x2, y2)],
                        [(x2, y2)],
                        net_name=f"n{len(committed)}",
                    )
                    tree.add_usage(graph)
                    committed.append(tree)
                elif op == "rip":
                    if committed:
                        tree = committed.pop(args[0] % len(committed))
                        tree.remove_usage(graph)
                elif op == "buffer":
                    graph.use_site_flat(args[0], 1)
                elif op == "unbuffer":
                    index = args[0] % NUM_TILES
                    if graph.used_sites.reshape(-1)[index] > 0:
                        graph.use_site_flat(index, -1)
                elif op == "rollback":
                    # A rolled-back scope must leave no trace in the
                    # published state.
                    ledger = graph.ledger()
                    txn = ledger.begin()
                    for index in args[0]:
                        graph.use_site_flat(index, 1)
                    ledger.rollback(txn)
                elif op == "sync":
                    sync_and_check()
            sync_and_check()
        finally:
            cache.close()
