"""Property-based tests: tile-graph bookkeeping and monotone paths."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.routing.monotone import best_monotone_path, is_monotone
from repro.tilegraph import CapacityModel, TileGraph
from repro.tilegraph.congestion import wire_congestion_stats

tiles8 = st.tuples(
    st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
)


def _graph(capacity=5):
    return TileGraph(Rect(0, 0, 8, 8), 8, 8, CapacityModel.uniform(capacity))


@st.composite
def edge_ops(draw):
    """A sequence of add/remove operations that never goes negative."""
    ops = []
    balance = {}
    for _ in range(draw(st.integers(0, 30))):
        a = draw(tiles8)
        nbrs = []
        x, y = a
        if x + 1 < 8:
            nbrs.append((x + 1, y))
        if y + 1 < 8:
            nbrs.append((x, y + 1))
        if not nbrs:
            continue
        b = draw(st.sampled_from(nbrs))
        key = (a, b)
        if draw(st.booleans()) or balance.get(key, 0) == 0:
            ops.append((a, b, 1))
            balance[key] = balance.get(key, 0) + 1
        else:
            ops.append((a, b, -1))
            balance[key] -= 1
    return ops


class TestUsageBookkeeping:
    @given(edge_ops())
    @settings(max_examples=80, deadline=None)
    def test_total_usage_equals_op_balance(self, ops):
        graph = _graph()
        for a, b, delta in ops:
            graph.add_wire(a, b, delta)
        expected = sum(d for _, _, d in ops)
        assert int(graph.h_usage.sum() + graph.v_usage.sum()) == expected

    @given(edge_ops())
    @settings(max_examples=80, deadline=None)
    def test_overflow_consistent_with_max(self, ops):
        graph = _graph(capacity=2)
        for a, b, delta in ops:
            graph.add_wire(a, b, delta)
        stats = wire_congestion_stats(graph)
        assert (stats.overflow > 0) == (stats.maximum > 1.0)

    @given(edge_ops())
    @settings(max_examples=50, deadline=None)
    def test_snapshot_restore_roundtrip(self, ops):
        graph = _graph()
        for a, b, delta in ops[: len(ops) // 2]:
            graph.add_wire(a, b, delta)
        snap = graph.snapshot_usage()
        for a, b, delta in ops[len(ops) // 2 :]:
            graph.add_wire(a, b, delta)
        h_mid = graph.h_usage.copy()
        graph.restore_usage(snap)
        assert (graph.h_usage == snap[0]).all()
        assert (graph.v_usage == snap[1]).all()


class TestMonotonePathProperties:
    @given(tiles8, tiles8)
    @settings(max_examples=100, deadline=None)
    def test_path_is_monotone_and_minimal(self, a, b):
        graph = _graph()
        path = best_monotone_path(graph, a, b)
        assert path is not None
        assert path[0] == a and path[-1] == b
        assert is_monotone(path)
        assert len(path) - 1 == abs(a[0] - b[0]) + abs(a[1] - b[1])

    @given(tiles8, tiles8, st.lists(tiles8, max_size=10))
    @settings(max_examples=80, deadline=None)
    def test_forbidden_tiles_avoided(self, a, b, forbidden):
        graph = _graph()
        fset = set(forbidden) - {a, b}
        path = best_monotone_path(graph, a, b, forbidden=fset)
        if path is not None:
            assert not (set(path[1:-1]) & fset)

    @given(tiles8, tiles8)
    @settings(max_examples=60, deadline=None)
    def test_cost_optimality_against_l_shapes(self, a, b):
        # The DP result costs no more than either L-shape.
        from repro.routing.embed import l_shaped_between_tiles
        from repro.routing.maze import soft_congestion_cost

        graph = _graph(capacity=3)
        # Load a few edges to create cost structure.
        graph.add_wire((3, 3), (4, 3), 2)
        graph.add_wire((3, 3), (3, 4), 2)

        def cost_of(path):
            return sum(
                soft_congestion_cost(graph, u, v)
                for u, v in zip(path, path[1:])
            )

        best = best_monotone_path(graph, a, b)
        assert best is not None
        l1 = l_shaped_between_tiles(a, b)
        assert cost_of(best) <= cost_of(l1) + 1e-9
