"""Property-based tests: Elmore delay invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import insert_buffers_multi_sink
from repro.routing.maze import route_net_on_tiles
from repro.routing.tree import RouteTree
from repro.technology import TECH_180NM
from repro.tilegraph import CapacityModel, TileGraph
from repro.timing import net_delay
from repro.timing.elmore import elmore_sink_delays
from repro.geometry import Rect

grid_coords = st.integers(min_value=0, max_value=7)
tiles = st.tuples(grid_coords, grid_coords)


def _graph():
    return TileGraph(Rect(0, 0, 8, 8), 8, 8, CapacityModel.uniform(10))


class TestElmoreProperties:
    @given(tiles, st.lists(tiles, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_delays_positive_and_reported_for_all_sinks(self, source, sinks):
        graph = _graph()
        rt = route_net_on_tiles(graph, source, sinks)
        delays = elmore_sink_delays(rt, graph, TECH_180NM)
        assert set(delays) == set(rt.sink_tiles)
        for d in delays.values():
            assert d > 0

    @given(tiles, st.lists(tiles, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_max_at_least_avg(self, source, sinks):
        graph = _graph()
        rt = route_net_on_tiles(graph, source, sinks)
        report = net_delay(rt, graph, TECH_180NM)
        assert report.max_delay >= report.avg_delay

    @given(st.integers(min_value=5, max_value=7), st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_buffering_never_hurts_long_lines(self, n, L):
        # For sufficiently long unbuffered lines, the DP-chosen buffering
        # reduces the worst sink delay.
        graph = _graph()
        path = [(i, 0) for i in range(n + 1)]
        parent = {b: a for a, b in zip(path, path[1:])}
        rt = RouteTree.from_parent_map(path[0], parent, [path[-1]])
        before = net_delay(rt, graph, TECH_180NM).max_delay
        result = insert_buffers_multi_sink(rt, lambda t: 1.0, L)
        assert result.feasible
        rt.apply_buffers(result.buffers)
        after = net_delay(rt, graph, TECH_180NM).max_delay
        # Tile pitch is 1mm: stages of <= 4mm; buffered delay should not
        # be dramatically worse and usually better; allow intrinsic slack.
        assert after < before + len(result.buffers) * 2 * TECH_180NM.buffer_delay

    @given(tiles, tiles)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_distance(self, source, sink):
        graph = _graph()
        rt = route_net_on_tiles(graph, source, [sink])
        d = net_delay(rt, graph, TECH_180NM).max_delay
        dist = rt.wirelength_tiles()
        # Compare against a strictly longer straight line from the corner.
        far = [(i, 0) for i in range(dist + 2)]
        parent = {b: a for a, b in zip(far, far[1:])}
        rt2 = RouteTree.from_parent_map(far[0], parent, [far[-1]])
        d2 = net_delay(rt2, graph, TECH_180NM).max_delay
        assert d2 > d - 1e-18
