"""Property-based tests: BBP/FR planner invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bbp import BbpConfig, BbpPlanner
from repro.floorplan import Block, Floorplan
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import CapacityModel, TileGraph

SIZE = 12

coords = st.floats(min_value=0.3, max_value=SIZE - 0.3, allow_nan=False)


@st.composite
def bbp_instances(draw):
    die = Rect(0, 0, float(SIZE), float(SIZE))
    graph = TileGraph(die, SIZE, SIZE, CapacityModel.uniform(10))
    # 0-2 blocks on a coarse grid so they never overlap.
    blocks = []
    slots = [(1.0, 1.0), (7.0, 1.0), (1.0, 7.0), (7.0, 7.0)]
    n_blocks = draw(st.integers(0, 2))
    for i in range(n_blocks):
        x, y = slots[draw(st.integers(0, 3))]
        if any(b.x == x and b.y == y for b in blocks):
            continue
        blocks.append(Block(name=f"b{i}", width=4.0, height=4.0, x=x, y=y))
    plan = Floorplan(die=die, blocks=blocks)
    plan.validate()
    n_nets = draw(st.integers(1, 5))
    nets = []
    for i in range(n_nets):
        src = Point(draw(coords), draw(coords))
        dst = Point(draw(coords), draw(coords))
        nets.append(
            Net(name=f"n{i}", source=Pin(f"n{i}.s", src), sinks=[Pin(f"n{i}.t", dst)])
        )
    L = draw(st.integers(2, 6))
    return graph, plan, Netlist(nets=nets), L


class TestBbpProperties:
    @given(bbp_instances())
    @settings(max_examples=40, deadline=None)
    def test_buffers_always_in_free_space(self, instance):
        graph, plan, netlist, L = instance
        result = BbpPlanner(
            graph, plan, netlist, BbpConfig(length_limit=L, postprocess=False)
        ).run()
        for p in result.buffer_points:
            assert plan.free_space(p)

    @given(bbp_instances())
    @settings(max_examples=40, deadline=None)
    def test_buffer_count_matches_demand(self, instance):
        graph, plan, netlist, L = instance
        planner = BbpPlanner(
            graph, plan, netlist, BbpConfig(length_limit=L, postprocess=False)
        )
        expected = sum(planner.buffers_needed(n) for n in planner.netlist)
        result = planner.run()
        assert result.num_buffers + result.unplaceable == expected

    @given(bbp_instances())
    @settings(max_examples=30, deadline=None)
    def test_all_routes_valid_and_reach_sinks(self, instance):
        graph, plan, netlist, L = instance
        planner = BbpPlanner(graph, plan, netlist, BbpConfig(length_limit=L))
        result = planner.run()
        assert len(result.routes) == len(planner.netlist)
        for net in planner.netlist:
            tree = result.routes[net.name]
            tree.validate()
            assert tree.source == graph.tile_of(net.source.location)
            assert graph.tile_of(net.sinks[0].location) in tree.sink_tiles

    @given(bbp_instances())
    @settings(max_examples=20, deadline=None)
    def test_mtap_nonnegative_and_bounded(self, instance):
        graph, plan, netlist, L = instance
        result = BbpPlanner(graph, plan, netlist, BbpConfig(length_limit=L)).run()
        assert 0.0 <= result.mtap_pct < 100.0
