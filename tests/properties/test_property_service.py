"""Property-based tests: incremental re-planning on random deltas.

Extends the ledger-rollback property to service jobs: for ANY valid
delta (random op sequences over macros, sites, capacities, nets, and
limits), the incremental engine must land on the byte-identical plan a
scratch full re-plan produces, and the graph's booked usage must equal
the sum of the plan's trees — i.e. every partial commit respected the
site/wire capacity invariants.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    DeltaSpec,
    MacroSpec,
    ScenarioSpec,
    add_net,
    apply_delta,
    full_plan,
    incremental_replan,
    move_macro,
    remove_net,
    set_capacity,
    set_length_limit,
    set_sites,
)

GRID = 8
SPEC = ScenarioSpec(
    grid=GRID, num_nets=12, total_sites=120, macros=(MacroSpec(1, 1, 2, 2),)
)
NET_NAMES = sorted(SPEC.nets())

tile = st.tuples(st.integers(0, GRID - 1), st.integers(0, GRID - 1))


@st.composite
def h_edge(draw):
    x = draw(st.integers(0, GRID - 2))
    y = draw(st.integers(0, GRID - 1))
    return (x, y, x + 1, y)


@st.composite
def v_edge(draw):
    x = draw(st.integers(0, GRID - 1))
    y = draw(st.integers(0, GRID - 2))
    return (x, y, x, y + 1)


@st.composite
def delta_ops(draw):
    kind = draw(
        st.sampled_from(
            [
                "move_macro",
                "set_sites",
                "set_capacity",
                "add_net",
                "remove_net",
                "set_length_limit",
            ]
        )
    )
    if kind == "move_macro":
        # Macro is 2x2; keep it inside the grid.
        return move_macro(
            0, draw(st.integers(0, GRID - 2)), draw(st.integers(0, GRID - 2))
        )
    if kind == "set_sites":
        tiles = draw(st.lists(tile, min_size=1, max_size=3, unique=True))
        return set_sites(
            [(x, y, draw(st.integers(0, 6))) for x, y in tiles]
        )
    if kind == "set_capacity":
        edge = draw(st.one_of(h_edge(), v_edge()))
        return set_capacity([(*edge, draw(st.integers(1, 10)))])
    if kind == "add_net":
        source = draw(tile)
        sinks = draw(st.lists(tile, min_size=1, max_size=2, unique=True))
        name = f"zz_added_{draw(st.integers(0, 2))}"
        return add_net(name, source, sinks)
    if kind == "remove_net":
        return remove_net(draw(st.sampled_from(NET_NAMES)))
    return set_length_limit(
        draw(st.sampled_from(NET_NAMES)), draw(st.integers(2, 9))
    )


deltas = st.lists(delta_ops(), min_size=1, max_size=3).map(
    lambda ops: DeltaSpec(tuple(ops))
)


def assert_usage_consistent(state):
    graph = state.graph
    edge_usage = np.zeros_like(graph.edge_usage)
    used_sites = np.zeros_like(graph.used_sites)
    for tree in state.routes.values():
        for u, v in tree.edges():
            edge_usage[graph.edge_id(u, v)] += 1
        for t, count in tree.buffer_counts().items():
            used_sites[t] += count
    assert np.array_equal(edge_usage, graph.edge_usage)
    assert np.array_equal(used_sites, graph.used_sites)
    assert not graph.ledger().active
    assert (graph.used_sites >= 0).all()


@given(delta=deltas)
@settings(max_examples=40, deadline=None)
def test_incremental_equals_full_for_random_deltas(delta):
    baseline = full_plan(SPEC)
    stats = incremental_replan(baseline, delta)
    reference = full_plan(apply_delta(SPEC, delta))
    assert stats.signature == reference.signature
    assert baseline.signature == reference.signature
    assert stats.nets_replayed + stats.nets_resolved == stats.nets_total
    assert_usage_consistent(baseline)


@given(delta1=deltas, delta2=deltas)
@settings(max_examples=15, deadline=None)
def test_stacked_random_deltas_converge(delta1, delta2):
    baseline = full_plan(SPEC)
    incremental_replan(baseline, delta1)
    incremental_replan(baseline, delta2)
    reference = full_plan(apply_delta(apply_delta(SPEC, delta1), delta2))
    assert baseline.signature == reference.signature
    assert_usage_consistent(baseline)
