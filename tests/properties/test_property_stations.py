"""Property-based tests: station assignment invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bbp.stations import BufferStation, StationAssigner
from repro.geometry import Point, manhattan
from repro.netlist import Net, Pin

coords = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
points = st.builds(Point, coords, coords)


@st.composite
def assignment_instances(draw):
    stations = [
        BufferStation(location=draw(points), capacity=draw(st.integers(1, 3)))
        for _ in range(draw(st.integers(1, 8)))
    ]
    nets = []
    for i in range(draw(st.integers(1, 6))):
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", draw(points)),
                sinks=[Pin(f"n{i}.t", draw(points))],
            )
        )
    spacing = draw(st.floats(min_value=2.0, max_value=10.0))
    return stations, nets, spacing


class TestStationProperties:
    @given(assignment_instances())
    @settings(max_examples=80, deadline=None)
    def test_capacity_never_exceeded(self, instance):
        stations, nets, spacing = instance
        assigner = StationAssigner(stations, spacing_mm=spacing, slack=1.3)
        assigner.assign_all(nets)
        for st_ in stations:
            assert 0 <= st_.used <= st_.capacity

    @given(assignment_instances())
    @settings(max_examples=80, deadline=None)
    def test_usage_equals_assigned_chain_lengths(self, instance):
        stations, nets, spacing = instance
        assigner = StationAssigner(stations, spacing_mm=spacing, slack=1.3)
        results = assigner.assign_all(nets)
        total_chain = sum(len(r.chain) for r in results if r.assigned)
        assert total_chain == sum(s.used for s in stations)

    @given(assignment_instances())
    @settings(max_examples=80, deadline=None)
    def test_hops_within_slackened_spacing(self, instance):
        stations, nets, spacing = instance
        slack = 1.3
        assigner = StationAssigner(stations, spacing_mm=spacing, slack=slack)
        results = {r.net_name: r for r in assigner.assign_all(nets)}
        for net in nets:
            r = results[net.name]
            if not r.assigned or not r.chain:
                continue
            stops = (
                [net.source.location]
                + [s.location for s in r.chain]
                + [net.sinks[0].location]
            )
            for a, b in zip(stops, stops[1:]):
                assert manhattan(a, b) <= spacing * slack + 1e-9

    @given(assignment_instances())
    @settings(max_examples=60, deadline=None)
    def test_detour_nonnegative(self, instance):
        stations, nets, spacing = instance
        assigner = StationAssigner(stations, spacing_mm=spacing, slack=1.3)
        for r in assigner.assign_all(nets):
            assert r.detour_mm >= -1e-9
