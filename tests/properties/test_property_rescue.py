"""Property-based tests: the rescue pass never corrupts bookkeeping.

Random dead-band instances (a siteless stripe of random width/position):
whatever the rescue outcome, the graph's wire and site usage must equal
the sum of the final trees' usage, capacities must hold for buffers, and
violations must never increase.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import assign_buffers_to_net
from repro.core.costs import buffer_site_cost
from repro.core.length_rule import length_violations
from repro.core.rescue import rescue_net
from repro.geometry import Rect
from repro.routing.tree import RouteTree
from repro.tilegraph import CapacityModel, TileGraph

SIZE = 12


@st.composite
def dead_band_instances(draw):
    band_start = draw(st.integers(2, 7))
    band_width = draw(st.integers(1, 4))
    band_height = draw(st.integers(4, SIZE))  # rows 0..band_height-1 dead
    L = draw(st.integers(2, 5))
    y = draw(st.integers(0, min(3, band_height - 1)))
    g = TileGraph(Rect(0, 0, SIZE, SIZE), SIZE, SIZE, CapacityModel.uniform(6))
    for tile in g.tiles():
        in_band = (
            band_start <= tile[0] < band_start + band_width
            and tile[1] < band_height
        )
        if not in_band:
            g.set_sites(tile, 2)
    tiles = [(i, y) for i in range(SIZE)]
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    tree = RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]], net_name="n")
    return g, tree, L


class TestRescueProperties:
    @given(dead_band_instances())
    @settings(max_examples=40, deadline=None)
    def test_usage_always_consistent(self, instance):
        g, tree, L = instance
        tree.add_usage(g)
        assign_buffers_to_net(g, tree, L, None)
        new_tree, _ = rescue_net(
            g, tree, L, lambda t: buffer_site_cost(g, t), window_margin=12
        )
        h, v = g.h_usage.copy(), g.v_usage.copy()
        used = g.used_sites.copy()
        g.h_usage[:] = 0
        g.v_usage[:] = 0
        g.used_sites[:] = 0
        new_tree.add_usage(g)
        assert (g.h_usage == h).all()
        assert (g.v_usage == v).all()
        assert (g.used_sites == used).all()

    @given(dead_band_instances())
    @settings(max_examples=40, deadline=None)
    def test_violations_never_increase(self, instance):
        g, tree, L = instance
        tree.add_usage(g)
        assign_buffers_to_net(g, tree, L, None)
        before = length_violations(tree, L)
        new_tree, _ = rescue_net(
            g, tree, L, lambda t: buffer_site_cost(g, t), window_margin=12
        )
        assert length_violations(new_tree, L) <= before

    @given(dead_band_instances())
    @settings(max_examples=40, deadline=None)
    def test_endpoints_preserved(self, instance):
        g, tree, L = instance
        tree.add_usage(g)
        assign_buffers_to_net(g, tree, L, None)
        source, sinks = tree.source, tree.sink_tiles
        new_tree, _ = rescue_net(
            g, tree, L, lambda t: buffer_site_cost(g, t), window_margin=12
        )
        new_tree.validate()
        assert new_tree.source == source
        assert new_tree.sink_tiles == sinks

    @given(dead_band_instances())
    @settings(max_examples=40, deadline=None)
    def test_buffer_capacity_respected(self, instance):
        g, tree, L = instance
        tree.add_usage(g)
        assign_buffers_to_net(g, tree, L, None)
        rescue_net(g, tree, L, lambda t: buffer_site_cost(g, t), window_margin=12)
        assert (g.used_sites <= g.sites).all()
