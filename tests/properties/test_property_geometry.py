"""Property-based tests: Manhattan geometry invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect, bounding_box, manhattan

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestManhattanMetric:
    @given(points, points)
    def test_symmetry(self, a, b):
        assert manhattan(a, b) == manhattan(b, a)

    @given(points, points)
    def test_non_negative_and_identity(self, a, b):
        assert manhattan(a, b) >= 0
        assert manhattan(a, a) == 0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c) + 1e-6


class TestMedian:
    @given(points, points, points)
    def test_median_on_all_shortest_paths(self, u, a, b):
        m = u.median_with(a, b)
        for p, q in [(u, a), (u, b), (a, b)]:
            direct = manhattan(p, q)
            via = manhattan(p, m) + manhattan(m, q)
            assert abs(via - direct) <= 1e-6 * max(1.0, direct)

    @given(points, points, points)
    def test_median_within_bbox(self, u, a, b):
        m = u.median_with(a, b)
        box = bounding_box([u, a, b])
        assert box.contains(m)


class TestBoundingBox:
    @given(st.lists(points, min_size=1, max_size=20))
    def test_contains_all(self, pts):
        box = bounding_box(pts)
        for p in pts:
            assert box.contains(p)

    @given(st.lists(points, min_size=1, max_size=20))
    def test_minimal(self, pts):
        box = bounding_box(pts)
        assert any(p.x == box.x0 for p in pts)
        assert any(p.x == box.x1 for p in pts)
        assert any(p.y == box.y0 for p in pts)
        assert any(p.y == box.y1 for p in pts)
