"""Property tests: the congestion-cost cache tracks Eq. (1) exactly.

After *any* interleaving of rip-up (negative) and commit (positive) wire
updates — plus bulk resets and snapshot restores — every cached strict and
soft cost must equal the freshly computed scalar formula on the current
usage state, bit for bit.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.routing.maze import congestion_cost, soft_congestion_cost
from repro.tilegraph import CapacityModel, TileGraph

GRID = 6

tiles = st.tuples(
    st.integers(min_value=0, max_value=GRID - 1),
    st.integers(min_value=0, max_value=GRID - 1),
)


def _graph(capacity=3):
    return TileGraph(Rect(0, 0, GRID, GRID), GRID, GRID, CapacityModel.uniform(capacity))


@st.composite
def usage_scripts(draw):
    """Interleaved add/remove/reset/restore operations, never negative."""
    ops = []
    balance = {}
    for _ in range(draw(st.integers(0, 40))):
        kind = draw(st.sampled_from(["add", "add", "add", "remove", "reset", "restore"]))
        if kind in ("add", "remove"):
            x, y = draw(tiles)
            nbrs = []
            if x + 1 < GRID:
                nbrs.append((x + 1, y))
            if y + 1 < GRID:
                nbrs.append((x, y + 1))
            if not nbrs:
                continue
            b = draw(st.sampled_from(nbrs))
            key = ((x, y), b)
            if kind == "remove" and balance.get(key, 0) == 0:
                kind = "add"
            delta = 1 if kind == "add" else -1
            balance[key] = balance.get(key, 0) + delta
            ops.append(("wire", (x, y), b, delta))
        elif kind == "reset":
            ops.append(("reset",))
            balance = {}
        else:
            ops.append(("restore",))
            # restore rewinds to the snapshot; the balance bookkeeping
            # restarts (conservative: may allow removals that the real
            # run guards with its own negative check, so re-snapshot).
            balance = {}
    return ops


class TestCostCacheMatchesScalarFormula:
    @settings(max_examples=60, deadline=None)
    @given(usage_scripts())
    def test_cached_costs_equal_fresh_eq1_costs(self, ops):
        graph = _graph()
        cache = graph.cost_cache()
        snapshot = graph.snapshot_usage()
        for op in ops:
            if op[0] == "wire":
                _, u, v, delta = op
                if delta < 0 and graph.wire_usage(u, v) == 0:
                    continue
                graph.add_wire(u, v, delta)
            elif op[0] == "reset":
                graph.reset_usage()
                snapshot = graph.snapshot_usage()
            else:
                graph.restore_usage(snapshot)
            # Interleave reads so dirty-set and all-dirty paths both run.
            cache.strict_costs()
        strict = cache.strict_costs()
        soft = cache.soft_costs()
        for u, v in graph.edges():
            eid = graph.edge_id(u, v)
            expect_strict = congestion_cost(graph, u, v)
            expect_soft = soft_congestion_cost(graph, u, v)
            if math.isinf(expect_strict):
                assert math.isinf(strict[eid])
            else:
                assert strict[eid] == expect_strict  # bit-identical
            assert soft[eid] == expect_soft

    @settings(max_examples=20, deadline=None)
    @given(usage_scripts())
    def test_dirty_set_never_misses_an_update(self, ops):
        """A second, late-registered cache agrees with the always-on one."""
        graph = _graph()
        early = graph.cost_cache()
        for op in ops:
            if op[0] == "wire":
                _, u, v, delta = op
                if delta < 0 and graph.wire_usage(u, v) == 0:
                    continue
                graph.add_wire(u, v, delta)
            elif op[0] == "reset":
                graph.reset_usage()
            else:
                continue
        from repro.tilegraph.cost_cache import CongestionCostCache

        late = CongestionCostCache(graph)
        assert early.strict_costs() == late.strict_costs()
        assert early.soft_costs() == late.soft_costs()
