"""Property tests: multi-sink DP on *general* random trees.

The caterpillar instances in test_property_dp.py cover chains with
branches; these generate arbitrary random subtrees of the grid (random
BFS-tree samples), with random sink subsets, internal sinks, and random
site costs — then check optimality via a bounded brute force and legality
always.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import insert_buffers_multi_sink
from repro.core.length_rule import net_meets_length_rule
from repro.routing.tree import BufferSpec, RouteTree

INF = float("inf")


@st.composite
def random_trees(draw):
    """A random tile tree grown from (0, 0) over an 8x8 grid."""
    n_nodes = draw(st.integers(min_value=2, max_value=9))
    nodes = [(0, 0)]
    parent = {}
    for _ in range(n_nodes - 1):
        base = nodes[draw(st.integers(0, len(nodes) - 1))]
        candidates = [
            (base[0] + dx, base[1] + dy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if 0 <= base[0] + dx < 8
            and 0 <= base[1] + dy < 8
            and (base[0] + dx, base[1] + dy) not in parent
            and (base[0] + dx, base[1] + dy) != (0, 0)
        ]
        if not candidates:
            continue
        child = candidates[draw(st.integers(0, len(candidates) - 1))]
        parent[child] = base
        nodes.append(child)
    assume(len(nodes) >= 2)
    leaves = [t for t in nodes if t not in set(parent.values()) and t != (0, 0)]
    assume(leaves)
    # Sinks: all leaves plus a random subset of internal nodes.
    sinks = set(leaves)
    for t in nodes[1:]:
        if draw(st.booleans()) and draw(st.booleans()):
            sinks.add(t)
    tree = RouteTree.from_parent_map((0, 0), parent, sorted(sinks))
    q = {}
    for t in tree.nodes:
        q[t] = draw(
            st.one_of(
                st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
                st.just(INF),
            )
        )
    L = draw(st.integers(min_value=1, max_value=5))
    return tree, q, L


def _brute_force(tree, q, L, slot_cap=14):
    from itertools import product

    slots = []
    for node in tree.preorder():
        if q[node.tile] == INF:
            continue
        slots.append((node.tile, None))
        for child in node.children:
            slots.append((node.tile, child.tile))
    if len(slots) > slot_cap:
        return None  # too big to enumerate; skip optimality check
    best = INF
    for mask in product([0, 1], repeat=len(slots)):
        specs = [
            BufferSpec(tile, child)
            for bit, (tile, child) in zip(mask, slots)
            if bit
        ]
        tree.apply_buffers(specs)
        if net_meets_length_rule(tree, L):
            best = min(best, sum(q[s.tile] for s in specs))
    tree.clear_buffers()
    return best


class TestGeneralTrees:
    @given(random_trees())
    @settings(max_examples=120, deadline=None)
    def test_legality(self, instance):
        tree, q, L = instance
        result = insert_buffers_multi_sink(tree, q.__getitem__, L)
        if result.feasible:
            tree.apply_buffers(result.buffers)
            assert net_meets_length_rule(tree, L)

    @given(random_trees())
    @settings(max_examples=60, deadline=None)
    def test_optimality_vs_brute_force(self, instance):
        tree, q, L = instance
        expected = _brute_force(tree, q, L)
        if expected is None:
            return
        result = insert_buffers_multi_sink(tree, q.__getitem__, L)
        if expected == INF:
            assert not result.feasible
        else:
            assert result.feasible
            assert abs(result.cost - expected) <= 1e-9 * max(1.0, expected)
