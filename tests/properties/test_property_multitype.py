"""Property: ``multi_type`` with a single-kind library IS the ``dp``
strategy, byte for byte, on arbitrary random nets.

This is the tentpole invariant of the typed-buffer refactor: threading a
``BufferKind`` through the stack must be invisible until a real multi-kind
library is selected. The strategies must agree on specs (including kind
fields), cost, and feasibility — not approximately, exactly — because the
plan signature hashes exactly these.

A second property pins the tech library's soundness: kind sizing never
moves a buffer and never makes the worst Elmore sink delay worse than the
all-default assignment.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.solver import (
    MultiSinkDPSolver,
    MultiTypeDPSolver,
    SolveRequest,
    Stage3CostField,
)
from repro.geometry import Rect
from repro.routing.tree import BufferSpec, RouteTree
from repro.technology import TECH_180NM, resolve_library
from repro.tilegraph import CapacityModel, TileGraph
from repro.timing.elmore import net_delay

GRID = 8


@st.composite
def random_instances(draw):
    """A random tile tree grown from (0, 0) over an 8x8 grid, plus a
    random site distribution and length limit."""
    n_nodes = draw(st.integers(min_value=2, max_value=10))
    nodes = [(0, 0)]
    parent = {}
    for _ in range(n_nodes - 1):
        base = nodes[draw(st.integers(0, len(nodes) - 1))]
        candidates = [
            (base[0] + dx, base[1] + dy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if 0 <= base[0] + dx < GRID
            and 0 <= base[1] + dy < GRID
            and (base[0] + dx, base[1] + dy) not in parent
            and (base[0] + dx, base[1] + dy) != (0, 0)
        ]
        if not candidates:
            continue
        child = candidates[draw(st.integers(0, len(candidates) - 1))]
        parent[child] = base
        nodes.append(child)
    assume(len(nodes) >= 2)
    leaves = [t for t in nodes if t not in set(parent.values()) and t != (0, 0)]
    assume(leaves)
    sinks = set(leaves)
    for t in nodes[1:]:
        if draw(st.booleans()) and draw(st.booleans()):
            sinks.add(t)
    tree = RouteTree.from_parent_map((0, 0), parent, sorted(sinks))
    sites = {
        t: draw(st.integers(min_value=0, max_value=3)) for t in tree.nodes
    }
    L = draw(st.integers(min_value=1, max_value=4))
    return parent, sorted(sinks), sites, L


def _build(parent, sinks, sites):
    graph = TileGraph(
        Rect(0, 0, float(GRID), float(GRID)), GRID, GRID,
        CapacityModel.uniform(8),
    )
    for tile, count in sites.items():
        graph.set_sites(tile, count)
    tree = RouteTree.from_parent_map((0, 0), parent, sinks)
    return graph, tree


def _request(graph, tree, L):
    field = Stage3CostField(graph)
    return SolveRequest(
        graph=graph, tree=tree, length_limit=L, cost_of=field.cost_fn(tree)
    )


class TestSingleKindIsDp:
    @given(random_instances())
    @settings(max_examples=120, deadline=None)
    def test_byte_identical_outcome(self, instance):
        parent, sinks, sites, L = instance
        graph, tree = _build(parent, sinks, sites)
        dp = MultiSinkDPSolver().solve(_request(graph, tree, L))
        graph2, tree2 = _build(parent, sinks, sites)
        mt = MultiTypeDPSolver(
            TECH_180NM, library=resolve_library("single", TECH_180NM)
        ).solve(_request(graph2, tree2, L))
        assert mt.feasible == dp.feasible
        assert mt.specs == dp.specs  # BufferSpec equality includes kind
        if dp.feasible:
            assert mt.cost == dp.cost


class TestTechLibrarySoundness:
    @given(random_instances())
    @settings(max_examples=60, deadline=None)
    def test_same_positions_never_slower_than_default(self, instance):
        parent, sinks, sites, L = instance
        graph, tree = _build(parent, sinks, sites)
        library = resolve_library("tech", TECH_180NM)
        dp = MultiSinkDPSolver().solve(_request(graph, tree, L))
        mt = MultiTypeDPSolver(TECH_180NM, library=library).solve(
            _request(graph, tree, L)
        )
        assert mt.feasible == dp.feasible
        if not dp.feasible:
            return
        assert [(s.tile, s.drives_child) for s in mt.specs] == [
            (s.tile, s.drives_child) for s in dp.specs
        ]
        tree.apply_buffers(mt.specs)
        sized = net_delay(tree, graph, TECH_180NM, library).max_delay
        tree.apply_buffers(
            [BufferSpec(s.tile, s.drives_child) for s in dp.specs]
        )
        default = net_delay(tree, graph, TECH_180NM, library).max_delay
        assert sized <= default * (1 + 1e-12) + 1e-18
