"""Property-based tests of the buffer-insertion DPs.

Invariants checked on random paths and random trees:

* DP solutions always satisfy the length rule (when feasible);
* DP cost equals the sum of the q(v) of its chosen tiles;
* the multi-sink DP on a path agrees with the single-sink DP;
* infeasibility is reported exactly when no legal placement exists
  (checked against the greedy upper bound and gap structure on paths).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    insert_buffers_multi_sink,
    insert_buffers_single_sink,
    net_meets_length_rule,
)
from repro.routing.tree import RouteTree

INF = float("inf")


def _path_tiles(n):
    return [(i, 0) for i in range(n)]


def _path_tree(tiles):
    parent = {b: a for a, b in zip(tiles, tiles[1:])}
    return RouteTree.from_parent_map(tiles[0], parent, [tiles[-1]])


q_values = st.one_of(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    st.just(INF),
)


@st.composite
def path_instances(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    L = draw(st.integers(min_value=1, max_value=7))
    qs = draw(st.lists(q_values, min_size=n, max_size=n))
    return n, L, qs


class TestSingleSinkProperties:
    @given(path_instances())
    @settings(max_examples=150, deadline=None)
    def test_feasible_iff_no_long_gap(self, instance):
        n, L, qs = instance
        path = _path_tiles(n)
        table = {t: q for t, q in zip(path, qs)}
        cost, buffers, feasible = insert_buffers_single_sink(
            path, table.__getitem__, L
        )
        # Gap structure: positions 1..n-2 are usable iff finite.
        usable = [0] + [i for i in range(1, n - 1) if qs[i] != INF] + [n - 1]
        max_gap = max(b - a for a, b in zip(usable, usable[1:]))
        assert feasible == (max_gap <= L)

    @given(path_instances())
    @settings(max_examples=150, deadline=None)
    def test_cost_is_sum_of_chosen_sites(self, instance):
        n, L, qs = instance
        path = _path_tiles(n)
        table = {t: q for t, q in zip(path, qs)}
        cost, buffers, feasible = insert_buffers_single_sink(
            path, table.__getitem__, L
        )
        if feasible:
            expected = sum(table[b.tile] for b in buffers)
            assert abs(cost - expected) <= 1e-9 * max(1.0, expected)

    @given(path_instances())
    @settings(max_examples=150, deadline=None)
    def test_solution_respects_length_rule(self, instance):
        n, L, qs = instance
        path = _path_tiles(n)
        table = {t: q for t, q in zip(path, qs)}
        cost, buffers, feasible = insert_buffers_single_sink(
            path, table.__getitem__, L
        )
        if feasible:
            tree = _path_tree(path)
            tree.apply_buffers(buffers)
            assert net_meets_length_rule(tree, L)


@st.composite
def tree_instances(draw):
    """A random caterpillar tree: a trunk with vertical branches."""
    trunk = draw(st.integers(min_value=1, max_value=8))
    L = draw(st.integers(min_value=1, max_value=6))
    branches = {}
    for x in range(1, trunk + 1):
        if draw(st.booleans()):
            branches[x] = draw(st.integers(min_value=1, max_value=4))
    paths = [[(i, 0) for i in range(trunk + 1)]]
    sinks = [(trunk, 0)]
    for x, blen in branches.items():
        paths.append([(x, 0)] + [(x, y) for y in range(1, blen + 1)])
        sinks.append((x, branches[x]))
    tree = RouteTree.from_paths((0, 0), paths, sinks)
    q_map = {}
    for node in tree.preorder():
        q_map[node.tile] = draw(q_values)
    return tree, q_map, L


class TestMultiSinkProperties:
    @given(tree_instances())
    @settings(max_examples=100, deadline=None)
    def test_feasible_solutions_are_legal(self, instance):
        tree, q_map, L = instance
        result = insert_buffers_multi_sink(tree, q_map.__getitem__, L)
        if result.feasible:
            tree.apply_buffers(result.buffers)
            assert net_meets_length_rule(tree, L)

    @given(tree_instances())
    @settings(max_examples=100, deadline=None)
    def test_cost_matches_placements(self, instance):
        tree, q_map, L = instance
        result = insert_buffers_multi_sink(tree, q_map.__getitem__, L)
        if result.feasible:
            expected = sum(q_map[b.tile] for b in result.buffers)
            assert abs(result.cost - expected) <= 1e-9 * max(1.0, expected)

    @given(tree_instances())
    @settings(max_examples=100, deadline=None)
    def test_free_sites_imply_feasible(self, instance):
        tree, q_map, L = instance
        # With every site cheap and available, any tree is bufferable.
        result = insert_buffers_multi_sink(tree, lambda t: 1.0, L)
        assert result.feasible

    @given(path_instances())
    @settings(max_examples=100, deadline=None)
    def test_path_agrees_with_single_sink(self, instance):
        n, L, qs = instance
        path = _path_tiles(n)
        table = {t: q for t, q in zip(path, qs)}
        c1, b1, f1 = insert_buffers_single_sink(path, table.__getitem__, L)
        result = insert_buffers_multi_sink(
            _path_tree(path), table.__getitem__, L
        )
        assert result.feasible == f1
        if f1:
            assert abs(result.cost - c1) < 1e-9
