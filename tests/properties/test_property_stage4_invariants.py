"""Property-based tests: Stage 4 rip-out/reinsert never corrupts b(v).

Random small designs (grid size, wire capacity, site density, net count,
length limit drawn by hypothesis): after the full stage4() cycle — any
number of rip-out/reinsert passes plus the rescue phase — every tile's
used-site count must satisfy ``0 <= b(v) <= B(v)``, and the graph's site
bookings must equal the buffers the surviving route trees annotate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RabidConfig, RabidPlanner
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.obs import Tracer
from repro.tilegraph import CapacityModel, TileGraph


@st.composite
def stage4_instances(draw):
    size = draw(st.integers(6, 10))
    capacity = draw(st.integers(3, 8))
    sites = draw(st.integers(1, 3))
    n_nets = draw(st.integers(3, 8))
    limit = draw(st.integers(2, 4))
    passes = draw(st.integers(1, 2))

    graph = TileGraph(
        Rect(0, 0, float(size), float(size)), size, size,
        CapacityModel.uniform(capacity),
    )
    for tile in graph.tiles():
        graph.set_sites(tile, sites)
    nets = []
    for i in range(n_nets):
        y = 0.5 + (i % size)
        x_mid = 0.5 + ((2 * i) % size)
        nets.append(
            Net(
                name=f"n{i}",
                source=Pin(f"n{i}.s", Point(0.5, y)),
                sinks=[
                    Pin(f"n{i}.a", Point(size - 0.5, y)),
                    Pin(f"n{i}.b", Point(x_mid, (y + size // 2) % size)),
                ],
            )
        )
    config = RabidConfig(
        length_limit=limit, stage2_iterations=1, stage4_iterations=passes
    )
    return graph, Netlist(nets=nets), config


class TestStage4SiteInvariants:
    @given(stage4_instances())
    @settings(max_examples=25, deadline=None)
    def test_no_negative_and_no_oversubscription(self, instance):
        graph, netlist, config = instance
        planner = RabidPlanner(graph, netlist, config)
        planner.run()
        assert (graph.used_sites >= 0).all()
        assert (graph.used_sites <= graph.sites).all()
        # Same invariant the obs layer asserts at its event hooks.
        Tracer().check_site_invariants(graph, "property test")

    @given(stage4_instances())
    @settings(max_examples=15, deadline=None)
    def test_bookings_match_tree_annotations(self, instance):
        graph, netlist, config = instance
        planner = RabidPlanner(graph, netlist, config)
        result = planner.run()
        annotated = sum(t.buffer_count() for t in result.routes.values())
        assert graph.total_used_sites == annotated
