"""Property-based tests: SiteLedger transaction semantics.

The invariant: after executing any nested interleaving of transaction
scopes — each containing site/wire deltas and child scopes, each ending in
commit or rollback — the graph's ``used_sites`` equals the initial state
plus exactly the deltas whose *entire* chain of enclosing scopes
committed. Rollbacks undo nested committed work; commits fold into the
parent and stay vulnerable to an enclosing rollback.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.tilegraph import CapacityModel, TileGraph

GRID = 4  # 16 tiles
# Pre-booked per tile so negative deltas can't go below zero: the largest
# program is 4 top scopes x 5 x 5 x 5 deltas of -3 on one tile (=1500).
BASELINE = 2000


def scopes(depth):
    """A scope: (commit?, [actions]); action = (idx, delta) or a scope."""
    delta = st.tuples(
        st.integers(0, GRID * GRID - 1), st.integers(-3, 3).filter(bool)
    )
    action = delta if depth == 0 else st.one_of(delta, scopes(depth - 1))
    return st.tuples(st.booleans(), st.lists(action, max_size=5))


def _run_scope(graph, ledger, scope, expected):
    """Execute one scope; returns its per-tile effect if it commits."""
    commit, actions = scope
    txn = ledger.begin()
    effect = {}
    for action in actions:
        if isinstance(action[0], bool):  # nested scope
            sub = _run_scope(graph, ledger, action, expected)
            for idx, d in sub.items():
                effect[idx] = effect.get(idx, 0) + d
        else:
            idx, d = action
            graph.use_site_flat(idx, d)
            effect[idx] = effect.get(idx, 0) + d
    if commit:
        ledger.commit(txn)
        return effect
    ledger.rollback(txn)
    return {}


@given(st.lists(scopes(2), max_size=4))
@settings(max_examples=120, deadline=None)
def test_used_sites_match_committed_set(program):
    graph = TileGraph(
        Rect(0, 0, float(GRID), float(GRID)), GRID, GRID, CapacityModel.uniform(4)
    )
    for tile in graph.tiles():
        graph.set_sites(tile, BASELINE * 2)
        graph.use_site(tile, BASELINE)
    ledger = graph.ledger()
    expected = {}
    for scope in program:
        # Top level counts as committed: surviving effects accumulate.
        for idx, d in _run_scope(graph, ledger, scope, expected).items():
            expected[idx] = expected.get(idx, 0) + d
    assert not ledger.active
    for idx in range(GRID * GRID):
        assert graph.used_sites_flat[idx] == BASELINE + expected.get(idx, 0), idx


@given(st.lists(scopes(1), min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_rollback_all_restores_initial(program):
    """Forcing every top-level scope to roll back restores the baseline."""
    graph = TileGraph(
        Rect(0, 0, float(GRID), float(GRID)), GRID, GRID, CapacityModel.uniform(4)
    )
    for tile in graph.tiles():
        graph.set_sites(tile, BASELINE * 2)
        graph.use_site(tile, BASELINE)
    ledger = graph.ledger()
    for _, actions in program:
        _run_scope(graph, ledger, (False, actions), {})
    assert all(
        graph.used_sites_flat[i] == BASELINE for i in range(GRID * GRID)
    )
