#!/usr/bin/env python3
"""Early floorplan evaluation with RABID (the paper's motivating flow).

Section II of the paper argues that raw pre-buffering slacks are useless
for comparing floorplans ("-40ns vs -43ns"), and that buffer and wire
planning must run *first*, after which the design can be timed
meaningfully. This example does exactly that: it evaluates two candidate
floorplans of the same circuit (different placement seeds), runs RABID on
each, and compares the floorplans on post-planning metrics.

Run:  python examples/floorplan_evaluation.py
"""

from repro import RabidConfig, RabidPlanner, load_benchmark
from repro.experiments.formatting import render_table


def evaluate(seed):
    """Plan buffers/wires for one floorplan candidate; return key metrics."""
    bench = load_benchmark("hp", seed=seed)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=1,
    )
    result = RabidPlanner(bench.graph, bench.netlist, config).run()
    unbuffered = result.stage_metrics[1]  # after congestion-aware routing
    final = result.final_metrics
    return {
        "seed": seed,
        "pre_buffer_avg_delay": unbuffered.avg_delay_ps,
        "post_avg_delay": final.avg_delay_ps,
        "post_max_delay": final.max_delay_ps,
        "buffers": final.num_buffers,
        "fails": final.num_fails,
        "wirelength": final.wirelength_mm,
        "wire_max": final.wire_congestion_max,
    }


def main():
    candidates = [evaluate(seed) for seed in (0, 1)]

    print("Two floorplan candidates for 'hp', evaluated the paper's way:\n")
    headers = [
        "candidate", "pre-buffer avg delay(ps)", "planned avg delay(ps)",
        "planned max delay(ps)", "#bufs", "#fails", "wirelength(mm)",
        "wire congest max",
    ]
    rows = [
        [
            f"floorplan-{c['seed']}",
            f"{c['pre_buffer_avg_delay']:.0f}",
            f"{c['post_avg_delay']:.0f}",
            f"{c['post_max_delay']:.0f}",
            str(c["buffers"]),
            str(c["fails"]),
            f"{c['wirelength']:.0f}",
            f"{c['wire_max']:.2f}",
        ]
        for c in candidates
    ]
    print(render_table(headers, rows))

    a, b = candidates
    ratio = a["pre_buffer_avg_delay"] / max(b["pre_buffer_avg_delay"], 1e-9)
    print(
        f"\nPre-buffering, the candidates differ by only {abs(1 - ratio):.0%} "
        "in average delay - both numbers are dominated by unbuffered global "
        "wires, so neither is meaningful."
    )
    better = min(candidates, key=lambda c: (c["fails"], c["post_avg_delay"]))
    print(
        f"After planning, floorplan-{better['seed']} is the better candidate: "
        f"{better['fails']} unbufferable nets and "
        f"{better['post_avg_delay']:.0f} ps average sink delay."
    )


if __name__ == "__main__":
    main()
