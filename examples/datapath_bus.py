#!/usr/bin/env python3
"""The semi-custom data-path scenario (paper Section I-B).

A data path routes regular signal buses straight across its elements; the
bus region is so dense that detours are unaffordable. If the bus nets
need buffering and the buffers must live *outside* the region, the wires
detour to reach them and timing suffers. With buffer sites designed into
the data-path layout, buffers drop in late "while maintaining straight
wiring of the data bus nets".

This example builds that situation twice on a 24x8-tile data-path strip
with a 16-bit bus crossing it:

* **sites-inside**: every tile, including the data-path strip, carries
  buffer sites;
* **sites-outside**: the strip has none, so each bus bit must leave the
  strip to reach a repeater.

It then compares bus straightness (detour tiles beyond the Manhattan
distance) and delay.

Run:  python examples/datapath_bus.py
"""

from repro import RabidConfig, RabidPlanner
from repro.experiments.formatting import render_table
from repro.geometry import Point, Rect
from repro.netlist import Net, Netlist, Pin
from repro.tilegraph import CapacityModel, TileGraph

STRIP_Y = range(8, 16)  # the data-path strip occupies rows 8..15
WIDTH, HEIGHT = 24, 24
BUS_BITS = 16


def build_instance(sites_inside_strip: bool) -> "tuple[TileGraph, Netlist]":
    die = Rect(0, 0, float(WIDTH), float(HEIGHT))
    graph = TileGraph(die, WIDTH, HEIGHT, CapacityModel.uniform(6))
    for tile in graph.tiles():
        in_strip = tile[1] in STRIP_Y
        if in_strip and not sites_inside_strip:
            continue
        graph.set_sites(tile, 2)
    nets = []
    for bit in range(BUS_BITS):
        y = 8.25 + bit * 0.48  # spread across the strip rows
        nets.append(
            Net(
                name=f"bus{bit}",
                source=Pin(f"bus{bit}.s", Point(0.5, y)),
                sinks=[Pin(f"bus{bit}.t", Point(WIDTH - 0.5, y))],
            )
        )
    return graph, Netlist(nets=nets)


def measure(sites_inside_strip: bool):
    graph, netlist = build_instance(sites_inside_strip)
    config = RabidConfig(length_limit=5, window_margin=12, stage4_iterations=2)
    result = RabidPlanner(graph, netlist, config).run()
    detour_tiles = 0
    for net in netlist:
        tree = result.routes[net.name]
        src = graph.tile_of(net.source.location)
        dst = graph.tile_of(net.sinks[0].location)
        manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        detour_tiles += tree.wirelength_tiles() - manhattan
    final = result.final_metrics
    return {
        "detour": detour_tiles,
        "fails": final.num_fails,
        "bufs": final.num_buffers,
        "avg_delay": final.avg_delay_ps,
        "max_delay": final.max_delay_ps,
    }


def main():
    inside = measure(sites_inside_strip=True)
    outside = measure(sites_inside_strip=False)
    print("16-bit bus across a 24-tile data-path strip (L = 5 tiles):\n")
    print(render_table(
        ["buffer sites", "detour tiles", "#fails", "#bufs",
         "avg delay(ps)", "max delay(ps)"],
        [
            ["inside the strip", str(inside["detour"]), str(inside["fails"]),
             str(inside["bufs"]), f"{inside['avg_delay']:.0f}",
             f"{inside['max_delay']:.0f}"],
            ["outside only", str(outside["detour"]), str(outside["fails"]),
             str(outside["bufs"]), f"{outside['avg_delay']:.0f}",
             f"{outside['max_delay']:.0f}"],
        ],
    ))
    print(
        "\nWith sites inside the strip the bus routes stay straight "
        f"({inside['detour']} detour tiles); forced outside, the bits "
        f"detour ({outside['detour']} tiles) or fail their length rule "
        f"({outside['fails']} fails) - the paper's argument for designing "
        "buffer sites into data-path layouts."
    )


if __name__ == "__main__":
    main()
