"""Incremental re-planning vs full re-planning, head to head.

The floorplanning loop the paper targets — perturb, re-evaluate, repeat —
re-plans from scratch on every iteration. The planning service instead
keeps the previous plan warm and re-plans only the dirty region. This
example runs the same sequence of floorplan edits both ways and reports,
for each edit: the wall-clock for each approach, how many nets the
incremental engine actually re-solved, and proof (signature equality)
that the shortcut changed nothing.

Run with::

    PYTHONPATH=src python examples/incremental_vs_full.py
"""

import time

from repro.service import (
    DeltaSpec,
    MacroSpec,
    ScenarioSpec,
    apply_delta,
    full_plan,
    incremental_replan,
    move_macro,
    set_capacity,
    set_length_limit,
    set_sites,
)


def timed(fn, *args):
    t0 = time.perf_counter()
    out = fn(*args)
    return out, time.perf_counter() - t0


def main() -> None:
    # A 24x24 die, 300 nets, one 6x6 movable macro.
    spec = ScenarioSpec(
        grid=24,
        num_nets=300,
        total_sites=1400,
        macros=(MacroSpec(4, 4, 6, 6),),
    )

    # The floorplanner's edit sequence: slide the macro across the die,
    # tighten a timing constraint, then dent wire capacity under it.
    edits = [
        ("move macro to centre", DeltaSpec((move_macro(0, 10, 10),))),
        ("move macro to corner", DeltaSpec((move_macro(0, 17, 17),))),
        ("tighten net010 to L=3", DeltaSpec((set_length_limit("net010", 3),))),
        ("clear sites at (3,3)", DeltaSpec((set_sites([(3, 3, 0)]),))),
        ("throttle one edge", DeltaSpec((set_capacity([(11, 11, 12, 11, 2)]),))),
    ]

    print("planning the baseline (full, from scratch)...")
    state, seconds = timed(full_plan, spec)
    print(f"  {len(state.routes)} nets in {seconds:.3f}s, "
          f"signature {state.signature[:16]}...\n")

    header = f"{'edit':28s} {'full':>8s} {'incr':>8s} {'speedup':>8s} " \
             f"{'resolved':>9s} {'replayed':>9s}  exact?"
    print(header)
    print("-" * len(header))

    current = spec
    total_full = total_incr = 0.0
    for label, delta in edits:
        current = apply_delta(current, delta)

        # The old way: re-plan the evolved scenario from nothing.
        reference, full_seconds = timed(full_plan, current)
        # The service way: dirty-region replay on the warm state.
        stats, incr_seconds = timed(incremental_replan, state, delta)

        total_full += full_seconds
        total_incr += incr_seconds
        exact = stats.signature == reference.signature
        print(
            f"{label:28s} {full_seconds:7.3f}s {incr_seconds:7.3f}s "
            f"{full_seconds / incr_seconds:7.2f}x "
            f"{stats.nets_resolved:9d} {stats.nets_replayed:9d}  "
            f"{'yes' if exact else 'NO  <-- bug'}"
        )
        assert exact, "incremental and full plans diverged"

    print("-" * len(header))
    print(
        f"{'whole edit sequence':28s} {total_full:7.3f}s {total_incr:7.3f}s "
        f"{total_full / total_incr:7.2f}x"
    )


if __name__ == "__main__":
    main()
