#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables in one run.

Calls the same harnesses the benchmark suite uses and prints Tables I-V.
Quick mode (default) runs representative circuit subsets in a few
minutes; pass ``--full`` for the complete ten-circuit sweep the paper
reports (tens of minutes).

Run:  python examples/full_reproduction.py [--full] [--seed N]
"""

import argparse

from repro.experiments import ExperimentConfig, render_report, run_all_tables


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run all ten circuits (slow)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    experiment = ExperimentConfig(
        seed=args.seed,
        stage4_iterations=2 if args.full else 1,
    )
    tables = run_all_tables(quick=not args.full, experiment=experiment)
    print(render_report(tables))
    print(
        "Compare against the paper's Tables I-V (see EXPERIMENTS.md for "
        "the recorded correspondence and the documented deviations)."
    )


if __name__ == "__main__":
    main()
