#!/usr/bin/env python3
"""Late-flow timing-driven rebuffering (the paper's Section II pointer).

RABID's Stage 3 is length-based on purpose: at the floorplan stage there
are no trustworthy timing constraints. The paper notes that "later in the
design flow, when more accurate timing information is available, one can
rip up the buffering solution for a given net and recompute a potentially
better solution via a timing-driven buffering algorithm."

This example runs that flow end to end:

1. RABID plans wires and buffers for the `hp` benchmark (length-based);
2. the ten worst nets by Elmore delay are ripped and rebuffered with the
   van Ginneken delay-optimal DP, constrained to tiles that still have
   free buffer sites;
3. before/after delays are compared, and the buffers are legalized onto
   concrete site coordinates.

Run:  python examples/timing_driven_rebuffer.py
"""

from repro import RabidConfig, RabidPlanner, TECH_180NM, load_benchmark
from repro.analysis import design_report
from repro.experiments.formatting import render_table
from repro.tilegraph import SitePlacement, legalize_buffers
from repro.timing import net_delay, rebuffer_net_timing_driven


def main():
    bench = load_benchmark("hp", seed=0)
    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=1,
    )
    result = RabidPlanner(bench.graph, bench.netlist, config).run()
    report = design_report(
        result.routes, bench.graph, TECH_180NM, config.length_limit
    )
    worst = report.worst_nets(10)

    rows = []
    for net in worst:
        tree = result.routes[net.name]
        before = net_delay(tree, bench.graph, TECH_180NM).max_delay
        after = rebuffer_net_timing_driven(tree, bench.graph, TECH_180NM)
        rows.append(
            [
                net.name,
                f"{before * 1e12:.0f}",
                f"{after * 1e12:.0f}",
                f"{100 * (before - after) / before:.1f}%",
                str(tree.buffer_count()),
            ]
        )

    print("Timing-driven rebuffering of the 10 worst nets:\n")
    print(render_table(
        ["net", "length-based (ps)", "timing-driven (ps)", "gain", "#bufs"],
        rows,
    ))

    placement = SitePlacement(bench.graph, seed=0)
    placed = legalize_buffers(result.routes, placement)
    print(
        f"\nLegalized {len(placed)} buffers onto concrete site coordinates; "
        f"first three:"
    )
    for p in placed[:3]:
        print(f"  net {p.net_name}: tile {p.tile} -> "
              f"({p.location.x:.2f}, {p.location.y:.2f}) mm")


if __name__ == "__main__":
    main()
