#!/usr/bin/env python3
"""Deciding per-block buffer-site budgets (the paper's Section I-B recipe).

"To help decide the allocation of buffer sites to macros, one could assume
an infinite number of available buffer sites, run a buffer allocation tool
like RABID, and compute the number of buffers inserted in each block.
Then, this number can be used to help determine the actual number of
buffer sites to allocate within the block."

This example runs exactly that flow on the ami33 benchmark: RABID with an
effectively unlimited site supply, then a per-block census of inserted
buffers, turned into a recommended site budget (with 2x headroom).

Run:  python examples/site_budgeting.py
"""

from collections import defaultdict

from repro import RabidConfig, RabidPlanner, load_benchmark
from repro.experiments.formatting import render_table
from repro.tilegraph.sites import distribute_sites_randomly


def main():
    bench = load_benchmark("ami33", seed=0)
    # Replace the budgeted distribution with an effectively infinite one:
    # 50 sites in every tile, including over macro blocks (the "hole in a
    # macro" methodology), except nowhere blocked.
    bench.graph.used_sites[:] = 0
    for tile in bench.graph.tiles():
        bench.graph.set_sites(tile, 50)

    config = RabidConfig(
        length_limit=bench.spec.length_limit,
        window_margin=10,
        stage4_iterations=1,
    )
    result = RabidPlanner(bench.graph, bench.netlist, config).run()
    print(
        f"Unconstrained run inserted {bench.graph.total_used_sites} buffers "
        f"({result.final_metrics.num_fails} fails)\n"
    )

    # Census: which block (or open area) does each used tile sit in?
    per_block = defaultdict(int)
    for tile in bench.graph.tiles():
        used = bench.graph.used_site_count(tile)
        if not used:
            continue
        block = bench.floorplan.block_at(bench.graph.tile_center(tile))
        per_block[block.name if block else "<channels>"] += used

    rows = []
    for name, count in sorted(per_block.items(), key=lambda kv: -kv[1])[:12]:
        if name == "<channels>":
            area_pct = ""
        else:
            block = bench.floorplan.get(name)
            site_area = 2 * count * 400e-6  # 2x headroom, 400um^2 per site
            area_pct = f"{100 * site_area / block.area:.2f}"
        rows.append([name, str(count), str(2 * count), area_pct])

    print(render_table(
        ["block", "buffers used", "recommended sites (2x)", "% of block area"],
        rows,
    ))
    print(
        "\nBlocks that attract many buffers sit under global routes; the "
        "methodology asks their designers to reserve the listed site count. "
        "A block with a demanding array structure can refuse - RABID then "
        "routes around it, as the blocked-region experiments show."
    )


if __name__ == "__main__":
    main()
