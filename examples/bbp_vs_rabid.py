#!/usr/bin/env python3
"""Buffer-block planning versus buffer sites, side by side (Fig. 1 + Table V).

Runs the BBP/FR baseline and RABID on the same circuit and prints:

* the Table V comparison row pair, and
* ASCII maps of where each methodology puts its buffers - BBP/FR's
  clustering into channel "buffer blocks" (the paper's Fig. 1 phenomenon)
  versus RABID's spread across the die.

Run:  python examples/bbp_vs_rabid.py [circuit]
"""

import sys

import numpy as np

from repro.experiments import format_table5, run_table5_circuit
from repro.experiments.config import ExperimentConfig
from repro import load_benchmark
from repro.bbp import BbpConfig, BbpPlanner


def density_map(counts: np.ndarray) -> str:
    """ASCII heat map of per-tile buffer counts."""
    chars = " .:-=+*#%@"
    peak = max(1, int(counts.max()))
    lines = []
    nx, ny = counts.shape
    for y in range(ny - 1, -1, -1):
        row = []
        for x in range(nx):
            level = min(9, int(10 * counts[x, y] / peak)) if counts[x, y] else 0
            row.append(chars[level] if counts[x, y] else " ")
        lines.append("".join(row))
    return "\n".join(lines)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "apte"
    config = ExperimentConfig(stage4_iterations=1)

    rows = run_table5_circuit(name, config)
    print(format_table5(rows))
    bbp_row, rabid_row = rows

    # Re-run BBP alone to get its per-tile buffer map for the picture.
    bench = load_benchmark(name, seed=config.seed)
    bbp = BbpPlanner(
        bench.graph, bench.floorplan, bench.netlist,
        BbpConfig(length_limit=bench.spec.length_limit),
    )
    bbp_result = bbp.run()

    print(f"\nBBP/FR buffer placement ({bbp_result.num_buffers} buffers, "
          f"MTAP {bbp_result.mtap_pct:.2f}% - clustered in channels):")
    print(density_map(bbp_result.buffers_per_tile))

    # And RABID's map from a fresh full run.
    from repro import RabidConfig, RabidPlanner
    bench2 = load_benchmark(name, seed=config.seed)
    RabidPlanner(
        bench2.graph, bench2.netlist,
        RabidConfig(length_limit=bench2.spec.length_limit, stage4_iterations=1),
    ).run()
    print(f"\nRABID buffer placement ({bench2.graph.total_used_sites} buffers, "
          f"MTAP {rabid_row.mtap_pct:.2f}% - spread across buffer sites):")
    print(density_map(bench2.graph.used_sites))

    print(
        f"\nSummary: BBP/FR overflows {bbp_row.overflows} tile-edge "
        f"capacities; RABID overflows {rabid_row.overflows}. BBP/FR's worst "
        f"tile devotes {bbp_row.mtap_pct:.2f}% of its area to buffers vs "
        f"{rabid_row.mtap_pct:.2f}% for RABID."
    )


if __name__ == "__main__":
    main()
