"""End-to-end service smoke: serve, submit, verify exactness. CI runs this.

Starts a real ``repro serve`` subprocess, submits one baseline and two
incremental deltas through the real ``repro submit`` CLI, then asserts
the final incrementally-maintained plan's buffering signature equals an
in-process from-scratch full plan of the twice-evolved scenario. Exits
non-zero on any mismatch — this is the service's acceptance gate in CI.

Usage::

    PYTHONPATH=src python examples/service_smoke.py [--grid 16]
"""

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile

from repro.service import (
    DeltaSpec,
    MacroSpec,
    ScenarioSpec,
    apply_delta,
    full_plan,
    move_macro,
    set_length_limit,
)
from repro.service.protocol import request_over_stream


def start_server(env):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--verify-fraction", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The serve front end prints exactly one parseable line on startup.
    for line in proc.stdout:
        line = line.strip()
        print(f"[serve] {line}")
        if line.startswith("serving on "):
            return proc, int(line.rsplit(":", 1)[1])
    raise RuntimeError("server exited before announcing its port")


def submit(port, job, env):
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as fh:
        json.dump(job, fh)
        path = fh.name
    try:
        out = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--port", str(port),
             path],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        if out.returncode != 0:
            raise RuntimeError(
                f"submit failed ({out.returncode}):\n{out.stdout}{out.stderr}"
            )
        return json.loads(out.stdout)
    finally:
        os.unlink(path)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--grid", type=int, default=16)
    parser.add_argument("--nets", type=int, default=120)
    parser.add_argument("--sites", type=int, default=600)
    args = parser.parse_args()

    spec = ScenarioSpec(
        grid=args.grid,
        num_nets=args.nets,
        total_sites=args.sites,
        macros=(MacroSpec(2, 2, 4, 4),),
    )
    d1 = DeltaSpec((move_macro(0, args.grid // 2, args.grid // 2),))
    d2 = DeltaSpec(
        (move_macro(0, 1, args.grid // 2), set_length_limit("net007", 3))
    )

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    proc, port = start_server(env)
    try:
        base = submit(port, {"job_id": "b0", "kind": "baseline",
                             "scenario": spec.to_dict()}, env)
        assert base["status"] == "done", base
        print(f"baseline planned: {base['result']['nets']} nets")

        for i, delta in enumerate((d1, d2)):
            resp = submit(
                port,
                {"job_id": f"d{i}", "kind": "delta", "baseline_id": "b0",
                 "delta": delta.to_dict()},
                env,
            )
            assert resp["status"] == "done", resp
            print(
                f"delta d{i}: resolved {resp['result']['nets_resolved']}, "
                f"replayed {resp['result']['nets_replayed']}, "
                f"speedup {resp['result'].get('speedup_vs_full', '-')}x"
            )
        incremental_signature = resp["result"]["signature"]

        responses = asyncio.run(
            request_over_stream(
                "127.0.0.1", port,
                [{"op": "stats"}, {"op": "shutdown"}],
            )
        )
        print(f"[stats] {json.dumps(responses[0])}")
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    reference = full_plan(apply_delta(apply_delta(spec, d1), d2))
    if incremental_signature != reference.signature:
        print(
            "MISMATCH: incremental "
            f"{incremental_signature[:16]}... != full "
            f"{reference.signature[:16]}...",
            file=sys.stderr,
        )
        return 1
    print(f"signatures match: {incremental_signature[:16]}... == full re-plan")
    return 0


if __name__ == "__main__":
    sys.exit(main())
