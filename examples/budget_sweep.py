"""Finding the cheapest workable resource budget with ``repro.explore``.

The paper's early-planning question in executable form: sweep a space of
buffer-site budgets, evaluate every candidate through the planner, and
read off the Pareto frontier and the cheapest budget that still routes
and buffers every net. Three passes over the same small design:

1. a grid sweep over (total site budget x length limit), reduced to a
   frontier report;
2. the same sweep re-run against the same result store — everything
   answers from cache, nothing replans (kill-and-resume in miniature);
3. an adaptive bisection that pins the exact cheapest feasible site
   budget per length limit in a handful of evaluations.

Run with::

    PYTHONPATH=src python examples/budget_sweep.py
"""

import tempfile
import time

from repro.explore import (
    Dimension,
    ParameterSpace,
    ResultStore,
    SweepOptions,
    explore_space,
    frontier_report,
    render_frontier_table,
)
from repro.obs import Tracer
from repro.service import ScenarioSpec


def assignments_of(result):
    return {
        key: result.space.assignment(point)
        for point, key in zip(result.points, result.keys)
    }


def main() -> None:
    base = ScenarioSpec(grid=16, num_nets=60, total_sites=600)
    space = ParameterSpace(
        base,
        (
            Dimension("total_sites", (350, 450, 550, 650)),
            Dimension("length_limit", (4, 6)),
        ),
    )

    # ---- pass 1: full grid sweep -> Pareto frontier ------------------- #
    store_path = tempfile.NamedTemporaryFile(
        suffix=".jsonl", delete=False
    ).name
    t0 = time.perf_counter()
    result = explore_space(
        space, sampler="grid", store=ResultStore(store_path)
    )
    report = frontier_report(result.records, assignments_of(result))
    print(f"grid sweep: {space.size} scenarios in "
          f"{time.perf_counter() - t0:.2f}s\n")
    print(render_frontier_table(report))

    # ---- pass 2: resume from the store -------------------------------- #
    tracer = Tracer()
    t0 = time.perf_counter()
    explore_space(
        space, sampler="grid", store=ResultStore(store_path), tracer=tracer
    )
    print(f"\nresume: {tracer.metrics.value('explore.cache_hits')} of "
          f"{space.size} scenarios answered from the store in "
          f"{time.perf_counter() - t0:.2f}s (0 replans)")

    # ---- pass 3: bisect the exact feasibility boundary ---------------- #
    bisect_space = ParameterSpace(
        base,
        (
            Dimension("total_sites", (100, 1000)),
            Dimension("length_limit", (4, 6)),
        ),
    )
    t0 = time.perf_counter()
    result = explore_space(
        bisect_space,
        sampler="bisect",
        bisect_dim="total_sites",
        options=SweepOptions(),
    )
    print(f"\nbisection ({len(result.points)} evaluations, "
          f"{time.perf_counter() - t0:.2f}s):")
    for combo, boundary in sorted(result.boundaries.items()):
        limit = combo[0]
        if boundary is None:
            print(f"  L={limit}: no feasible budget in range")
        else:
            print(f"  L={limit}: cheapest feasible total_sites = {boundary}")


if __name__ == "__main__":
    main()
