#!/usr/bin/env python3
"""Quickstart: run RABID on the apte benchmark and read the results.

Loads the synthesized `apte` instance (matching the paper's Table I
statistics), runs the four-stage planner, and prints the stage-by-stage
metrics table (the paper's Table II row block) plus a small ASCII view of
the buffer-site usage across the tile grid.

Run:  python examples/quickstart.py
"""

from repro import RabidConfig, RabidPlanner, load_benchmark
from repro.experiments.formatting import render_table


def site_usage_map(graph, width=40):
    """ASCII density map: one character per tile column block."""
    chars = " .:-=+*#%@"
    lines = []
    for y in range(graph.ny - 1, -1, -1):
        row = []
        for x in range(graph.nx):
            sites = graph.site_count((x, y))
            used = graph.used_site_count((x, y))
            if sites == 0:
                row.append("X")  # blocked region or site-less tile
            else:
                level = min(9, int(10 * used / sites))
                row.append(chars[level])
        lines.append("".join(row))
    return "\n".join(lines)


def main():
    bench = load_benchmark("apte", seed=0)
    print(f"Loaded {bench.name}: {len(bench.netlist)} nets, "
          f"{bench.netlist.total_sinks} sinks, "
          f"{bench.graph.total_sites} buffer sites on a "
          f"{bench.graph.nx}x{bench.graph.ny} tile grid")

    config = RabidConfig(length_limit=bench.spec.length_limit, window_margin=10)
    planner = RabidPlanner(bench.graph, bench.netlist, config)
    result = planner.run()

    headers = [
        "stage", "wire max", "wire avg", "overflows", "buf max", "buf avg",
        "#bufs", "#fails", "wirelength(mm)", "delay max(ps)", "delay avg(ps)",
        "CPU(s)",
    ]
    print()
    print(render_table(headers, [m.as_row() for m in result.stage_metrics]))

    final = result.final_metrics
    print()
    print(f"Final: {final.num_buffers} buffers on {len(result.routes)} nets, "
          f"{final.num_fails} nets missing the length rule "
          f"(routes crossing the zero-site blocked region), "
          f"0 wire overflows: {final.overflows == 0}")

    print()
    print("Buffer-site usage per tile ('X' = no sites, denser = fuller):")
    print(site_usage_map(bench.graph))


if __name__ == "__main__":
    main()
