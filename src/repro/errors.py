"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Subclasses separate user errors (bad configuration,
malformed inputs) from algorithmic infeasibility (a net that cannot satisfy
its length rule with the available buffer sites).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class UnknownBufferKindError(ConfigurationError):
    """A buffer payload named a kind the active buffer library lacks.

    Raised when deserializing routes or plans against a library that does
    not define the recorded kind. Legacy payloads that carry no kind at
    all are *not* an error — they load as the library default.
    """


class NetlistError(ReproError):
    """A netlist is structurally invalid (e.g., a net without a driver)."""


class FloorplanError(ReproError):
    """A floorplan is invalid (overlapping blocks, block outside the die)."""


class RoutingError(ReproError):
    """A route could not be produced (e.g., disconnected tile graph)."""


class ObservabilityError(ReproError):
    """The observability layer was misused or a traced invariant failed.

    Raised on metric-type conflicts (e.g., counting into a name already
    registered as a gauge), unknown event kinds, and — when a tracer's
    debug checks are on — violated buffer-site invariants observed at an
    event hook.
    """


class InfeasibleError(ReproError):
    """No solution satisfies the stated constraints.

    Raised only by APIs documented to be strict; the RABID planner itself
    prefers best-effort fallbacks and counts failures instead of raising.
    """


class ServiceError(ReproError):
    """Base class for planning-service failures (see ``repro.service``)."""


class QueueFullError(ServiceError):
    """The scheduler's bounded queue is at capacity; the job was shed.

    Backpressure is explicit: callers are expected to catch this, back
    off, and resubmit rather than pile work onto a saturated service.
    """


class JobTimeoutError(ServiceError):
    """A job exceeded its per-job wall-clock budget."""


class JobFailedError(ServiceError):
    """A job exhausted its retry budget without completing."""


class UnknownJobError(ServiceError):
    """A job or baseline id was referenced that the service does not hold."""


class CheckpointError(ServiceError):
    """A service checkpoint could not be written or restored."""


class ShuttingDownError(ServiceError):
    """The service is draining for shutdown and rejects new submissions.

    Typed so the protocol layer reports ``SHUTTING_DOWN`` distinctly from
    backpressure: a shed job invites an immediate resubmit, a shutdown
    rejection tells the client to find another replica (or wait for the
    restart).
    """


class PreemptedError(ServiceError):
    """A planning attempt was cooperatively aborted mid-run.

    Raised by the engine when an ``abort_check`` callback reports that
    the fleet scheduler wants the worker back (a cheap incremental job
    is waiting behind a long full plan). The partial plan is discarded;
    the job is requeued, never lost.
    """


class ProtocolError(ServiceError):
    """A malformed or unsupported JSON-lines service request."""
