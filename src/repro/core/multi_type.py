"""Multi-type buffer kind assignment (the ``multi_type`` Stage-3 strategy).

Li & Shi ("An O(bn^2) Time Algorithm for Optimal Buffer Insertion with b
Buffer Types") make van Ginneken-style insertion scale to a *library* of b
buffer kinds by keeping the per-kind candidate lists sorted by
(capacitance, slack) and dropping candidates dominated across kinds, so
the lists stay O(b) instead of O(bn).

This module applies that pruning discipline to the planner's two-phase
``multi_type`` strategy:

* **Phase A (placement)** is the paper's Fig. 9 length DP, unchanged: it
  chooses *where* buffers go, minimizing the Eq. (2) site cost under the
  length rule. Sharing the exact placement recurrence is what makes
  ``multi_type`` with a single-kind library byte-identical to the ``dp``
  strategy — positions, cost, feasibility, and site bookings all match.
* **Phase B (sizing)** — :func:`assign_buffer_kinds` below — fixes those
  positions and runs a bottom-up (cap, delay) candidate DP choosing each
  buffer's *kind* from the library to minimize the worst Elmore sink
  delay. At a fixed buffer position the list branches over all b kinds;
  cross-kind dominated candidates are dropped by the shared
  :func:`repro.core.candidates.pareto_prune` (the Li–Shi rule), so the
  list right above a buffer carries at most b survivors and the whole
  phase stays O(b n^2)-bounded for a path of n positions.

The delay recurrence mirrors :mod:`repro.timing.elmore` exactly — wire
advance adds ``r * (c/2 + cap)``, a kind-k buffer presents
``k.input_cap`` and adds ``k.intrinsic_delay + k.output_res * cap`` — so
the chosen assignment's claimed delay is the one ``elmore_sink_delays``
reports for the annotated tree.

Counters (under the net's tracer): ``dp.kinds`` (library size b),
``dp.kind_candidates`` (candidates generated), ``dp.candidates_pruned``
plus ``dp.candidates_pruned.<kind>`` (dominated candidates dropped, per
kind at kind-branch points), and ``dp.kind_list_max`` (largest surviving
list — the O(b) evidence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.candidates import pareto_prune
from repro.routing.tree import BufferSpec, RouteTree
from repro.technology.buffers import BufferKind, BufferLibrary
from repro.tilegraph.graph import Tile, TileGraph

#: A buffer position fixed by Phase A: (tile, decoupled child tile | None).
Position = Tuple[Tile, Optional[Tile]]


class _KindCandidate:
    """One (cap, delay) point with the kind choices that produced it."""

    __slots__ = ("cap", "delay", "choices", "last_kind")

    def __init__(
        self,
        cap: float,
        delay: float,
        choices: Tuple[Tuple[Position, str], ...] = (),
        last_kind: str = "",
    ) -> None:
        self.cap = cap
        self.delay = delay
        self.choices = choices
        self.last_kind = last_kind


def _prune(
    cands: List[_KindCandidate],
    max_candidates: int,
    tracer,
    per_kind: bool,
) -> List[_KindCandidate]:
    """Shared Pareto prune + per-kind drop attribution + hard cap."""
    if len(cands) <= 1:
        return cands
    kept = pareto_prune(cands)
    if len(kept) > max_candidates:
        kept = kept[:max_candidates]
    if tracer is not None and tracer.enabled:
        dropped = len(cands) - len(kept)
        if dropped:
            tracer.count("dp.candidates_pruned", dropped)
            if per_kind:
                kept_ids = {id(c) for c in kept}
                for c in cands:
                    if id(c) not in kept_ids and c.last_kind:
                        tracer.count(f"dp.candidates_pruned.{c.last_kind}", 1)
    return kept


def _branch_kinds(
    cands: List[_KindCandidate],
    kinds: Sequence[BufferKind],
    position: Position,
) -> List[_KindCandidate]:
    """Insert the fixed buffer at ``position``, branching over all kinds."""
    out: List[_KindCandidate] = []
    for cand in cands:
        for kind in kinds:
            out.append(
                _KindCandidate(
                    cap=kind.input_cap,
                    delay=cand.delay
                    + kind.intrinsic_delay
                    + kind.output_res * cand.cap,
                    choices=cand.choices + ((position, kind.name),),
                    last_kind=kind.name,
                )
            )
    return out


def assign_buffer_kinds(
    tree: RouteTree,
    graph: TileGraph,
    technology,
    library: BufferLibrary,
    specs: Sequence[BufferSpec],
    max_candidates: int = 64,
    tracer=None,
) -> List[BufferSpec]:
    """Choose a library kind for every buffer position in ``specs``.

    Positions (and therefore site bookings, cost, and feasibility) are
    exactly those of ``specs``; only the ``kind`` field changes. Kinds
    equal to the library default are normalized to ``""`` so a single-kind
    library reproduces the input specs byte for byte.

    Returns the specs in their original order with kinds filled in.
    """
    if not specs:
        return list(specs)
    kinds = library.kinds
    default = library.default_name
    if tracer is not None and tracer.enabled:
        tracer.gauge("dp.kinds", len(kinds))

    trunk_tiles = {s.tile for s in specs if s.drives_child is None}
    decoupled = {(s.tile, s.drives_child) for s in specs if s.drives_child is not None}

    tech = technology
    generated = 0
    list_max = 1
    lists: Dict[Tile, List[_KindCandidate]] = {}
    for node in tree.postorder():
        contents = [
            _KindCandidate(tech.sink_cap if node.is_sink else 0.0, 0.0)
        ]
        for child in node.children:
            length = graph.edge_length_mm(node.tile, child.tile)
            r_wire = tech.wire_resistance(length)
            c_wire = tech.wire_capacitance(length)
            branch = [
                _KindCandidate(
                    cand.cap + c_wire,
                    cand.delay + r_wire * (c_wire / 2 + cand.cap),
                    cand.choices,
                    cand.last_kind,
                )
                for cand in lists.pop(child.tile)
            ]
            if (node.tile, child.tile) in decoupled:
                branch = _branch_kinds(branch, kinds, (node.tile, child.tile))
                generated += len(branch)
                branch = _prune(branch, max_candidates, tracer, per_kind=True)
            # Merge: caps add, the worst branch delay dominates.
            merged = [
                _KindCandidate(
                    a.cap + b.cap,
                    max(a.delay, b.delay),
                    a.choices + b.choices,
                )
                for a in contents
                for b in branch
            ]
            generated += len(merged)
            contents = _prune(merged, max_candidates, tracer, per_kind=False)
        if node.tile in trunk_tiles:
            contents = _branch_kinds(contents, kinds, (node.tile, None))
            generated += len(contents)
            contents = _prune(contents, max_candidates, tracer, per_kind=True)
        if len(contents) > list_max:
            list_max = len(contents)
        lists[node.tile] = contents

    root_cands = lists[tree.root.tile]
    best = root_cands[0]
    best_total = best.delay + tech.driver_res * best.cap
    for cand in root_cands[1:]:
        total = cand.delay + tech.driver_res * cand.cap
        if total < best_total:
            best, best_total = cand, total

    if tracer is not None and tracer.enabled:
        tracer.count("dp.kind_candidates", generated)
        tracer.gauge("dp.kind_list_max", list_max)

    chosen = dict(best.choices)
    out: List[BufferSpec] = []
    for spec in specs:
        kind = chosen.get((spec.tile, spec.drives_child), default)
        out.append(
            BufferSpec(spec.tile, spec.drives_child, "" if kind == default else kind)
        )
    return out
