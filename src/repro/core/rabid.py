"""The four-stage RABID planner (paper Section III).

Usage::

    planner = RabidPlanner(graph, netlist, RabidConfig(length_limit=5))
    result = planner.run()
    for metrics in result.stage_metrics:
        print(metrics)

Stages can also be run one at a time (``stage1()`` .. ``stage4()``) for
inspection; ``run`` simply chains them and snapshots metrics in between.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.assignment import AssignmentResult, assign_buffers_stage3, assign_buffers_to_net
from repro.core.length_rule import net_meets_length_rule
from repro.core.solver import SOLVER_NAMES, BufferingSolver, make_solver
from repro.core.two_path import optimize_two_paths
from repro.errors import ConfigurationError
from repro.netlist import Net, Netlist
from repro.obs import NULL_TRACER
from repro.routing.embed import embed_tree
from repro.routing.prim_dijkstra import prim_dijkstra_tree
from repro.routing.ripup import RipupOptions, reroute_order_by_delay, ripup_and_reroute
from repro.routing.steiner import remove_overlaps
from repro.routing.tree import RouteTree
from repro.technology import LIBRARY_NAMES, TECH_180NM, Technology
from repro.tilegraph.congestion import buffer_density_stats, wire_congestion_stats
from repro.tilegraph.graph import TileGraph
from repro.timing.elmore import delay_summary


@dataclass
class RabidConfig:
    """Planner parameters.

    Attributes:
        length_limit: default ``L_i`` (tile units) for every net.
        length_limits: optional per-net overrides (net name -> L).
        pd_tradeoff: Prim-Dijkstra ``c`` for Stage 1 (paper: 0.4).
        stage2_iterations: max full rip-up passes in Stage 2 (paper: 3).
        stage4_iterations: full passes of Stage 4.
        window_margin: maze-search window margin (tiles).
        technology: electrical parameters for the delay model.
        use_probability: include the ``p(v)`` term in Eq. (2).
        router: Stage-1 routing engine: ``"pd"`` (Prim-Dijkstra + overlap
            removal, the paper's default) or ``"mcf"`` (the approximate
            multicommodity-flow router the paper cites as an alternative).
        rescue_failing: after the Stage-4 iterations, attempt a whole-net
            bufferable re-route for nets still violating the length rule
            (an extension of Stage 4's goal; see repro.core.rescue).
        workers: Stage-2 reroute concurrency; 1 (default) is strictly
            sequential, >1 reroutes bounding-box-disjoint batches of nets
            on the configured parallel backend.
        stage3_workers: Stage-3 buffering concurrency; >1 solves
            tile-disjoint batches of nets on the configured backend
            (output identical to sequential — tile-set disjointness is
            exact).
        parallel_backend: engine behind ``workers``/``stage3_workers``:
            ``"pool"`` (default) shares one persistent
            :class:`repro.parallel.WorkerPool` of forked processes across
            Stage 2 and Stage 3 — output is byte-identical to sequential
            at every worker count; ``"threads"`` is the legacy in-process
            ``ThreadPoolExecutor`` path.
        stage3_solver: default buffering strategy for Stage 3, one of
            :data:`repro.core.solver.SOLVER_NAMES` (``"dp"`` is the
            paper's Fig. 9 multi-sink DP).
        stage3_solvers: per-net strategy overrides (net name -> solver
            name).
        buffer_library: named buffer library
            (:data:`repro.technology.LIBRARY_NAMES`) the ``multi_type``
            strategy sizes over: ``"single"`` (default) is the planning
            repeater alone, ``"tech"`` the three-strength BUF_X1/X2/X4
            library derived from the technology table. Strategies other
            than ``multi_type`` only ever place the default repeater.
        bound: lower-bound oracle mode, one of
            :data:`repro.bounds.BOUND_MODES`, or ``""`` (default) to
            skip the oracle. When set, explore sweeps run the certified
            buffered-MCF bound per scenario and report ``lower_bound``,
            ``optimality_gap``, and ``certified_infeasible`` metrics.
        bound_epsilon: Garg-Konemann epsilon for the oracle's length
            updates (smaller = tighter bound, more work).
    """

    length_limit: int = 5
    length_limits: Dict[str, int] = field(default_factory=dict)
    pd_tradeoff: float = 0.4
    stage2_iterations: int = 3
    stage4_iterations: int = 2
    window_margin: int = 6
    technology: Technology = TECH_180NM
    use_probability: bool = True
    router: str = "pd"
    rescue_failing: bool = True
    workers: int = 1
    stage3_workers: int = 1
    parallel_backend: str = "pool"
    stage3_solver: str = "dp"
    stage3_solvers: Dict[str, str] = field(default_factory=dict)
    buffer_library: str = "single"
    bound: str = ""
    bound_epsilon: float = 0.25

    def __post_init__(self) -> None:
        if self.router not in ("pd", "mcf"):
            raise ConfigurationError(f"unknown router {self.router!r}")
        if self.bound:
            from repro.bounds.oracle import BOUND_MODES

            if self.bound not in BOUND_MODES:
                raise ConfigurationError(
                    f"unknown bound mode {self.bound!r}; expected one of "
                    f"{BOUND_MODES} or ''"
                )
        if not 0 < self.bound_epsilon <= 1:
            raise ConfigurationError("bound_epsilon must be in (0, 1]")
        if self.stage3_solver not in SOLVER_NAMES:
            raise ConfigurationError(
                f"unknown buffering solver {self.stage3_solver!r}; "
                f"expected one of {SOLVER_NAMES}"
            )
        for net, name in self.stage3_solvers.items():
            if name not in SOLVER_NAMES:
                raise ConfigurationError(
                    f"unknown buffering solver {name!r} for net {net!r}; "
                    f"expected one of {SOLVER_NAMES}"
                )
        if self.buffer_library not in LIBRARY_NAMES:
            raise ConfigurationError(
                f"unknown buffer library {self.buffer_library!r}; "
                f"expected one of {LIBRARY_NAMES}"
            )
        if self.stage3_workers < 1:
            raise ConfigurationError("stage3_workers must be >= 1")
        if self.length_limit < 1:
            raise ConfigurationError("length_limit must be >= 1")
        if any(l < 1 for l in self.length_limits.values()):
            raise ConfigurationError("per-net length limits must be >= 1")
        if self.stage2_iterations < 0 or self.stage4_iterations < 0:
            raise ConfigurationError("stage iteration counts must be >= 0")
        if self.window_margin < 0:
            raise ConfigurationError("window_margin must be >= 0")
        if self.pd_tradeoff < 0:
            raise ConfigurationError("pd_tradeoff must be >= 0")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.parallel_backend not in ("pool", "threads"):
            raise ConfigurationError(
                f"unknown parallel backend {self.parallel_backend!r}; "
                "expected 'pool' or 'threads'"
            )

    def limit_for(self, net_name: str) -> int:
        return self.length_limits.get(net_name, self.length_limit)

    def solver_name_for(self, net_name: str) -> str:
        return self.stage3_solvers.get(net_name, self.stage3_solver)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of every field (used by ``repro.io``).

        The technology is expanded to its parameter set so a config round-
        trips exactly even for a custom process node.
        """
        from dataclasses import asdict, fields

        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = asdict(value) if f.name == "technology" else value
        # Copies, so mutating the dict cannot alias the config.
        out["length_limits"] = dict(self.length_limits)
        out["stage3_solvers"] = dict(self.stage3_solvers)
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "RabidConfig":
        """Inverse of :meth:`as_dict`; unknown keys are rejected."""
        from dataclasses import fields

        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RabidConfig fields {sorted(unknown)!r}"
            )
        kwargs = dict(d)
        tech = kwargs.get("technology")
        if isinstance(tech, dict):
            kwargs["technology"] = Technology(**tech)
        return cls(**kwargs)


@dataclass(frozen=True)
class StageMetrics:
    """One row of the paper's Table II."""

    stage: int
    wire_congestion_max: float
    wire_congestion_avg: float
    overflows: int
    buffer_density_max: float
    buffer_density_avg: float
    num_buffers: int
    num_fails: int
    wirelength_mm: float
    max_delay_ps: float
    avg_delay_ps: float
    cpu_seconds: float

    def as_row(self) -> List[str]:
        """Formatted cells in the paper's column order."""
        return [
            str(self.stage),
            f"{self.wire_congestion_max:.2f}",
            f"{self.wire_congestion_avg:.2f}",
            str(self.overflows),
            f"{self.buffer_density_max:.2f}",
            f"{self.buffer_density_avg:.2f}",
            str(self.num_buffers),
            str(self.num_fails),
            f"{self.wirelength_mm:.0f}",
            f"{self.max_delay_ps:.0f}",
            f"{self.avg_delay_ps:.0f}",
            f"{self.cpu_seconds:.1f}",
        ]


@dataclass
class RabidResult:
    """Full planner output."""

    routes: Dict[str, RouteTree]
    stage_metrics: List[StageMetrics]
    failed_nets: List[str]
    assignment: Optional[AssignmentResult] = None

    @property
    def final_metrics(self) -> StageMetrics:
        if not self.stage_metrics:
            raise ConfigurationError("planner has not run")
        return self.stage_metrics[-1]


class RabidPlanner:
    """Resource Allocation for Buffer and Interconnect Distribution."""

    def __init__(
        self,
        graph: TileGraph,
        netlist: Netlist,
        config: "RabidConfig | None" = None,
        tracer=None,
    ) -> None:
        if len(netlist) == 0:
            raise ConfigurationError("netlist is empty")
        self.graph = graph
        self.netlist = netlist
        self.config = config or RabidConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.routes: Dict[str, RouteTree] = {}
        self.stage_metrics: List[StageMetrics] = []
        self.failed_nets: List[str] = []
        self.assignment: Optional[AssignmentResult] = None
        self._pool = None

    def _shared_pool(self):
        """One worker pool shared by Stage 2 and Stage 3 (pool backend).

        Sized to the larger of the two worker counts so whichever stage
        runs first forks enough processes for both; created lazily so a
        sequential run never pays for it. ``close()`` (or ``run``'s
        ``finally``) shuts it down.
        """
        needed = max(self.config.workers, self.config.stage3_workers)
        if self.config.parallel_backend != "pool" or needed <= 1:
            return None
        if self._pool is None:
            from repro.parallel import WorkerPool

            self._pool = WorkerPool(needed, tracer=self.tracer)
        return self._pool

    def close(self) -> None:
        """Release the shared worker pool, if one was ever created."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Stages                                                             #
    # ------------------------------------------------------------------ #

    def stage1(self) -> None:
        """Initial routing: Prim-Dijkstra Steiner trees (default) or the
        MCF alternative router."""
        start = time.perf_counter()
        with self.tracer.span("stage1", router=self.config.router):
            if self.config.router == "mcf":
                from repro.routing.mcf import mcf_initial_routes

                self.routes = mcf_initial_routes(
                    self.graph, self.netlist, tracer=self.tracer
                )
            else:
                for net in self.netlist:
                    self.routes[net.name] = self._initial_route(net)
                    self.routes[net.name].add_usage(self.graph)
            self.tracer.count("nets_routed", len(self.routes))
            self._snapshot(1, time.perf_counter() - start)

    def stage2(self) -> None:
        """Wire-congestion reduction by full rip-up and reroute."""
        start = time.perf_counter()
        with self.tracer.span("stage2"):
            delays = self._net_delays()
            order = reroute_order_by_delay(delays, ascending=True)
            options = RipupOptions(
                max_iterations=self.config.stage2_iterations,
                radius_weight=self.config.pd_tradeoff,
                window_margin=self.config.window_margin,
                workers=self.config.workers,
                backend=self.config.parallel_backend,
            )
            on_pass_end = None
            if self.tracer.enabled:
                def on_pass_end(iteration: int) -> None:
                    self.tracer.gauge(
                        "overflow_total",
                        wire_congestion_stats(self.graph).overflow,
                    )
                    self.tracer.check_site_invariants(
                        self.graph, f"stage2 pass {iteration}"
                    )
            ripup_and_reroute(
                self.graph,
                self.routes,
                order,
                options,
                on_pass_end=on_pass_end,
                tracer=self.tracer,
                pool=self._shared_pool() if self.config.workers > 1 else None,
            )
            self._snapshot(2, time.perf_counter() - start)

    def stage3(self) -> None:
        """Buffer assignment, highest-delay nets first."""
        start = time.perf_counter()
        with self.tracer.span("stage3"):
            delays = self._net_delays()
            order = reroute_order_by_delay(delays, ascending=False)
            limits = {name: self.config.limit_for(name) for name in self.routes}
            solvers: Dict[str, BufferingSolver] = {}

            def solver_for(name: str) -> BufferingSolver:
                key = self.config.solver_name_for(name)
                solver = solvers.get(key)
                if solver is None:
                    solver = solvers[key] = make_solver(
                        key,
                        technology=self.config.technology,
                        buffer_library=self.config.buffer_library,
                    )
                return solver

            self.assignment = assign_buffers_stage3(
                self.graph,
                self.routes,
                limits,
                order,
                use_probability=self.config.use_probability,
                tracer=self.tracer,
                workers=self.config.stage3_workers,
                solver_for=solver_for,
                backend=self.config.parallel_backend,
                pool=(
                    self._shared_pool()
                    if self.config.stage3_workers > 1
                    else None
                ),
                solver_names=self.config.solver_name_for,
                technology=self.config.technology,
                buffer_library=self.config.buffer_library,
            )
            self.failed_nets = list(self.assignment.failed_nets)
            self._snapshot(3, time.perf_counter() - start)

    def stage4(self) -> None:
        """Two-path rip-up/reroute with buffer reinsertion."""
        start = time.perf_counter()
        # Cached p=0 Eq. (2) costs (bit-identical to the scalar formula),
        # invalidated per tile through the graph's site observers.
        q_of = self.graph.site_cost_cache().cost_fn()
        with self.tracer.span("stage4"):
            for iteration in range(self.config.stage4_iterations):
                with self.tracer.span("stage4.pass", **{"pass": iteration}):
                    self._stage4_pass(q_of)
            if self.config.rescue_failing and self.failed_nets:
                from repro.core.rescue import rescue_failing_nets

                limits = {
                    name: self.config.limit_for(name) for name in self.routes
                }
                with self.tracer.span("rescue", failing=len(self.failed_nets)):
                    self.failed_nets = rescue_failing_nets(
                        self.graph,
                        self.routes,
                        self.failed_nets,
                        limits,
                        q_of,
                        window_margin=self.config.window_margin,
                        tracer=self.tracer,
                    )
            self._snapshot(4, time.perf_counter() - start)

    def _stage4_pass(self, q_of) -> None:
        """One full Stage-4 pass over every net."""
        tracer = self.tracer
        delays = self._net_delays()
        order = reroute_order_by_delay(delays, ascending=True)
        failed: List[str] = []
        ledger = self.graph.ledger()
        solvers: Dict[str, BufferingSolver] = {}

        def solver_for(name: str) -> BufferingSolver:
            key = self.config.solver_name_for(name)
            solver = solvers.get(key)
            if solver is None:
                solver = solvers[key] = make_solver(
                    key,
                    technology=self.config.technology,
                    buffer_library=self.config.buffer_library,
                )
            return solver

        for name in order:
            tree = self.routes[name]
            limit = self.config.limit_for(name)
            # One transaction covers the rip, the two-path trials, and the
            # reinsertion: an exception anywhere restores both the b(v)
            # accounting and any wire deltas instead of leaking them.
            with ledger.transaction():
                for tile, kinds in tree.buffer_kind_counts().items():
                    for kind, count in kinds.items():
                        self.graph.use_site(tile, -count, kind)
                if tracer.enabled:
                    tracer.event(
                        "ripped_up", name, stage="4", buffers=tree.buffer_count()
                    )
                changed = optimize_two_paths(
                    self.graph, tree, q_of, limit, self.config.window_margin
                )
                meets, _, _ = assign_buffers_to_net(
                    self.graph, tree, limit, None, tracer=tracer,
                    solver=solver_for(name),
                )
            if not meets:
                failed.append(name)
            if tracer.enabled:
                tracer.count("nets_rerouted")
                tracer.count("two_paths_changed", changed)
                tracer.event(
                    "rerouted" if meets else "failed",
                    name,
                    stage="4",
                    two_paths_changed=changed,
                    buffers=tree.buffer_count(),
                )
                tracer.check_site_invariants(self.graph, f"stage4 net {name}")
        self.failed_nets = failed

    def run(self, tracer=None) -> RabidResult:
        """Execute all four stages and return the collected result.

        Args:
            tracer: optional :class:`repro.obs.Tracer` overriding the one
                supplied at construction for this run.
        """
        if tracer is not None:
            self.tracer = tracer
        try:
            with self.tracer.span("rabid.run", nets=len(self.netlist)):
                self.stage1()
                self.stage2()
                self.stage3()
                self.stage4()
        finally:
            self.close()
        return RabidResult(
            routes=self.routes,
            stage_metrics=self.stage_metrics,
            failed_nets=self.failed_nets,
            assignment=self.assignment,
        )

    # ------------------------------------------------------------------ #
    # Helpers                                                            #
    # ------------------------------------------------------------------ #

    def _initial_route(self, net: Net) -> RouteTree:
        pins = [p.location for p in net.pins]
        tree = prim_dijkstra_tree(pins, c=self.config.pd_tradeoff, source_index=0)
        remove_overlaps(tree)
        return embed_tree(self.graph, tree, net.sink_locations(), net_name=net.name)

    def _net_delays(self) -> Dict[str, float]:
        _, _, reports = delay_summary(
            self.routes, self.graph, self.config.technology
        )
        return {name: report.max_delay for name, report in reports.items()}

    def _count_fails(self) -> int:
        fails = 0
        for name, tree in self.routes.items():
            if not net_meets_length_rule(tree, self.config.limit_for(name)):
                fails += 1
        return fails

    def _snapshot(self, stage: int, cpu_seconds: float) -> None:
        wire = wire_congestion_stats(self.graph)
        buffers = buffer_density_stats(self.graph)
        max_delay, avg_delay, _ = delay_summary(
            self.routes, self.graph, self.config.technology
        )
        wirelength = sum(
            tree.wirelength_mm(self.graph) for tree in self.routes.values()
        )
        num_fails = self._count_fails()
        if self.tracer.enabled:
            self.tracer.gauge(f"stage{stage}.overflows", wire.overflow)
            self.tracer.gauge(
                f"stage{stage}.num_buffers", self.graph.total_used_sites
            )
            self.tracer.gauge(f"stage{stage}.num_fails", num_fails)
            self.tracer.gauge(f"stage{stage}.wirelength_mm", wirelength)
            self.tracer.gauge("overflow_total", wire.overflow)
            self.tracer.observe("stage.cpu_seconds", cpu_seconds)
        self.stage_metrics.append(
            StageMetrics(
                stage=stage,
                wire_congestion_max=wire.maximum,
                wire_congestion_avg=wire.average,
                overflows=wire.overflow,
                buffer_density_max=buffers.maximum,
                buffer_density_avg=buffers.average,
                num_buffers=self.graph.total_used_sites,
                num_fails=num_fails,
                wirelength_mm=wirelength,
                max_delay_ps=max_delay * 1e12,
                avg_delay_ps=avg_delay * 1e12,
                cpu_seconds=cpu_seconds,
            )
        )
