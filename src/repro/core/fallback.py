"""Greedy best-effort buffering for DP-infeasible nets.

A net can defeat the optimal DP when its route crosses stretches with no
free buffer sites longer than ``L_i`` (the experiments plant a 9x9 region
with zero sites precisely to cause this). The planner still wants a
sensible buffering for such nets; this greedy pass walks the tree bottom-up
and buffers as soon as the accumulated downstream length reaches the
budget, wherever sites exist, leaving genuine violations in place to be
counted as failures.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.routing.tree import BufferSpec, RouteTree
from repro.tilegraph.graph import Tile, TileGraph


def greedy_buffering(
    tree: RouteTree,
    graph: TileGraph,
    length_limit: int,
) -> List[BufferSpec]:
    """Best-effort buffer placement respecting site availability.

    Bottom-up: when a node's combined downstream unbuffered length reaches
    ``length_limit`` (so its parent would over-drive), branches are
    decoupled largest-first with buffers at the node while free sites
    remain; each such buffer drives at most ``length_limit`` units when the
    subtree below was itself legal. Branches that are over-long on their
    own, or nodes in site-starved areas, are left violating;
    :func:`repro.core.length_rule.length_violations` counts them.

    Returns:
        Buffer specs that never oversubscribe any tile's free sites.
    """
    planned: Counter = Counter()
    specs: List[BufferSpec] = []
    below: Dict[Tile, int] = {}

    def site_free(tile: Tile) -> bool:
        return graph.free_sites(tile) - planned[tile] > 0

    for node in tree.postorder():
        branches = sorted(
            ((1 + below[child.tile], child.tile) for child in node.children),
            reverse=True,
        )
        total = sum(length for length, _ in branches)
        if node is not tree.root:
            # Decouple until the parent edge can be added without the next
            # gate up over-driving. The root's driver adds no parent edge,
            # so it only needs total <= L.
            for length, child_tile in branches:
                if total < length_limit:
                    break
                if not site_free(node.tile):
                    break
                planned[node.tile] += 1
                specs.append(BufferSpec(node.tile, child_tile))
                total -= length
        elif total > length_limit:
            for length, child_tile in branches:
                if total <= length_limit:
                    break
                if not site_free(node.tile):
                    break
                planned[node.tile] += 1
                specs.append(BufferSpec(node.tile, child_tile))
                total -= length
        below[node.tile] = total
    return specs
