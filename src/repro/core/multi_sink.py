"""Multi-sink buffer insertion DP — the paper's Fig. 9 algorithm.

Bottom-up over the route tree. Each node ``v`` keeps ``C_v[0..L-1]`` where
index ``j`` bounds the total unbuffered downstream wirelength below ``v``
(summed over branches, per the Fig. 3 interpretation). Per child ``w``:

* AdvanceTile: ``K_w[j] = C_w[j-1]`` — the edge ``v -> w`` adds one unit;
* BufferTile:  ``K_w[0] = q(v) + min_j C_w[j]`` — a decoupling buffer at
  ``v`` drives ``1 + j <= L`` units of the branch.

JoinChildren convolves the ``K`` arrays (index = summed unbuffered length;
kept up to ``L`` for the benefit of the next case). BufferMultiChildren
allows a trunk buffer at ``v`` driving all branches:
``C_v[0] <- min(C_v[0], q(v) + min_{j<=L} joined[j])``.

The root (driver tile) additionally admits a total driven length of exactly
``L`` (the driver sits in the tile, so no edge is added above it).

Complexity ``O(m L^2 + n L)`` for ``m`` sinks and ``n`` tiles, as analyzed
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.candidates import INF, advance_and_buffer, first_min_index
from repro.errors import ConfigurationError
from repro.routing.tree import BufferSpec, RouteNode, RouteTree
from repro.tilegraph.graph import Tile


@dataclass
class DPResult:
    """Outcome of the multi-sink DP."""

    cost: float
    buffers: List[BufferSpec]
    feasible: bool


class _NodeTable:
    """Cost arrays and traceback pointers for one tree node."""

    __slots__ = ("c", "c_choice", "k", "k_choice", "splits", "joined_ext", "children")

    def __init__(self) -> None:
        self.c: List[float] = []
        # c_choice[j]: ("join", idx) or ("trunk", joined_idx) or ("k", idx)
        self.c_choice: List[Optional[Tuple[str, int]]] = []
        self.k: List[List[float]] = []
        # k_choice[i]: the argmin child index consumed by the decoupling
        # buffer behind K_i[0] (j >= 1 entries are always plain advances).
        self.k_choice: List[int] = []
        # splits[i][j] = (a, b): joined_i[j] = joined_{i-1}[a] + K_i[b]
        self.splits: List[List[Optional[Tuple[int, int]]]] = []
        self.joined_ext: List[float] = []
        self.children: List[RouteNode] = []


# Per-child intermediate array, indexed 0..L (length L+1): index ``j`` =
# unbuffered length of this branch measured at ``v`` (including the v->w
# edge). Index ``L`` is kept because a run of exactly ``L`` is consumable
# by a trunk buffer at ``v`` itself or by the driver when ``v`` is the
# root; parents cannot use it (the next edge would make it ``L+1``), so
# ``C_v`` stores only 0..L-1. Shared with the single-sink DP.
_build_k = advance_and_buffer


def _join(
    acc: List[float], k: List[float], L: int
) -> Tuple[List[float], List[Optional[Tuple[int, int]]]]:
    """Convolve two arrays; result indexed 0..L (length L+1)."""
    out = [INF] * (L + 1)
    splits: List[Optional[Tuple[int, int]]] = [None] * (L + 1)
    for a, ca in enumerate(acc):
        if ca == INF:
            continue
        for b, cb in enumerate(k):
            if cb == INF:
                continue
            j = a + b
            if j > L:
                continue
            total = ca + cb
            if total < out[j]:
                out[j] = total
                splits[j] = (a, b)
    return out, splits


def insert_buffers_multi_sink(
    tree: RouteTree,
    cost_of: Callable[[Tile], float],
    length_limit: int,
    tracer=None,
) -> DPResult:
    """Optimal length-legal buffering of a multi-sink route tree.

    Args:
        tree: the net's route; existing buffer annotations are ignored.
        cost_of: the ``q(v)`` site cost per tile.
        length_limit: ``L_i`` in tile units (>= 1).
        tracer: optional :class:`repro.obs.Tracer`; the DP table entries
            explored accumulate into the ``dp_candidates`` counter.

    Returns:
        :class:`DPResult`; when infeasible the buffer list is empty.
    """
    if length_limit < 1:
        raise ConfigurationError("length limit must be >= 1")
    L = length_limit
    if len(tree.nodes) == 1:
        return DPResult(0.0, [], True)

    tables: Dict[Tile, _NodeTable] = {}
    # Shared immutable choice tuples (copied per node): avoids building
    # the same L tuples for every tree node.
    k_choices = [("k", j) for j in range(L)]
    join_choices = [("join", j) for j in range(L)]
    leaf_choices: List[Optional[Tuple[str, int]]] = [None] * L

    for node in tree.postorder():
        table = _NodeTable()
        tables[node.tile] = table
        table.children = list(node.children)
        if not node.children:
            table.c = [0.0] * L
            table.c_choice = list(leaf_choices)
            continue
        q_v = cost_of(node.tile)
        for child in node.children:
            k, buffer_choice = _build_k(tables[child.tile].c, q_v, L)
            table.k.append(k)
            table.k_choice.append(buffer_choice)

        if len(node.children) == 1:
            k0 = table.k[0]
            table.c = k0[:L]
            table.c_choice = list(k_choices)
            table.joined_ext = list(k0)
            table.splits = []
        else:
            joined = list(table.k[0])
            all_splits: List[List[Optional[Tuple[int, int]]]] = []
            for i in range(1, len(table.k)):
                joined, splits = _join(joined, table.k[i], L)
                all_splits.append(splits)
            table.splits = all_splits
            table.joined_ext = joined
            table.c = joined[:L]
            table.c_choice = list(join_choices)
            best_ext = first_min_index(joined)
            if q_v != INF and joined[best_ext] != INF:
                trunk_cost = q_v + joined[best_ext]
                if trunk_cost < table.c[0]:
                    table.c[0] = trunk_cost
                    table.c_choice[0] = ("trunk", best_ext)

    if tracer is not None and tracer.enabled:
        explored = pruned = 0
        for t in tables.values():
            explored += len(t.c) + sum(len(k) for k in t.k)
            pruned += t.c.count(INF) + sum(k.count(INF) for k in t.k)
        tracer.count("dp_candidates", explored)
        if pruned:
            # Entries that stayed infeasible — candidate states the DP
            # visited but could never extend into a solution.
            tracer.count("dp.candidates_pruned", pruned)

    root_table = tables[tree.root.tile]
    best_cost = INF
    best_entry: Optional[Tuple[str, int]] = None
    for j in range(L):
        if root_table.c[j] < best_cost:
            best_cost = root_table.c[j]
            best_entry = ("C", j)
    if root_table.joined_ext and root_table.joined_ext[L] < best_cost:
        best_cost = root_table.joined_ext[L]
        best_entry = ("ext", L)
    if best_entry is None or best_cost == INF:
        return DPResult(INF, [], False)

    buffers: List[BufferSpec] = []
    _traceback(tree.root, tables, best_entry, L, buffers)
    buffers.sort(key=lambda s: (s.tile, s.drives_child or (-1, -1)))
    return DPResult(best_cost, buffers, True)


def _traceback(
    root: RouteNode,
    tables: Dict[Tile, _NodeTable],
    entry: Tuple[str, int],
    L: int,
    out: List[BufferSpec],
) -> None:
    """Recover buffer placements from the DP tables (iterative)."""
    # Work items: ("C", node, j) resolve C_node[j];
    #             ("ext", node, j) resolve joined_ext[j] (root only);
    #             ("K", node, child_pos, j) resolve K array entry.
    kind, idx = entry
    stack: List[Tuple[str, RouteNode, int, int]] = [(kind, root, 0, idx)]
    while stack:
        what, node, child_pos, j = stack.pop()
        table = tables[node.tile]
        if what == "C":
            if not table.children:
                continue
            choice = table.c_choice[j]
            assert choice is not None, "traceback hit an unexplained C entry"
            tag, ref = choice
            if tag == "k":
                stack.append(("K", node, 0, ref))
            elif tag == "join":
                stack.append(("J", node, 0, ref))
            else:  # trunk buffer at this node
                out.append(BufferSpec(node.tile, None))
                stack.append(("J", node, 0, ref))
        elif what == "ext":
            stack.append(("J", node, 0, j))
        elif what == "J":
            if len(table.children) == 1:
                stack.append(("K", node, 0, j))
                continue
            # Unravel pairwise joins from the last child backwards.
            e = j
            for i in range(len(table.children) - 1, 0, -1):
                split = table.splits[i - 1][e]
                assert split is not None, "traceback hit an unexplained join entry"
                a, b = split
                stack.append(("K", node, i, b))
                e = a
            stack.append(("K", node, 0, e))
        else:  # "K"
            child = table.children[child_pos]
            if j == 0:
                best = table.k_choice[child_pos]
                assert best >= 0, "traceback hit an unexplained K[0] entry"
                out.append(BufferSpec(node.tile, child.tile))
                stack.append(("C", child, 0, best))
            else:
                stack.append(("C", child, 0, j - 1))
