"""The usage-probability field ``p(v)`` (paper Section III-C).

For a net ``n_i`` passing through tile ``v``, the probability of a buffer
from ``v`` landing on ``n_i`` is modeled as ``1 / L_i``. ``p(v)`` sums this
over all *unprocessed* nets; Stage 3 removes each net's own contribution
just before optimizing it.

Updates are vectorized gathers/scatters over each tree's memoized flat
tile-index array (every tile appears at most once per tree, so the
per-tile operations are independent and order-free — bit-identical to the
scalar loop they replaced).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph


class UsageProbability:
    """Tracks ``p(v)`` over the tile grid as nets are processed."""

    def __init__(self, graph: TileGraph):
        self._field = np.zeros((graph.nx, graph.ny), dtype=np.float64)
        #: Flat (length ``num_tiles``) view; index = ``x * ny + y``.
        self.field_flat = self._field.reshape(-1)
        self._ny = graph.ny
        self._contributions: Dict[str, float] = {}

    def add_net(self, tree: RouteTree, length_limit: int) -> None:
        """Register an unprocessed net's expected demand."""
        if length_limit <= 0:
            raise ConfigurationError("length limit must be positive")
        if tree.net_name in self._contributions:
            raise ConfigurationError(f"net {tree.net_name!r} already registered")
        weight = 1.0 / length_limit
        idx = tree.tile_indices(self._ny)
        self.field_flat[idx] += weight
        self._contributions[tree.net_name] = weight

    def remove_net(self, tree: RouteTree) -> None:
        """Drop a net's contribution (called when Stage 3 reaches it)."""
        weight = self._contributions.pop(tree.net_name, None)
        if weight is None:
            return
        idx = tree.tile_indices(self._ny)
        field = self.field_flat
        values = field[idx] - weight
        np.maximum(values, 0.0, out=values)
        field[idx] = values

    def value(self, tile: Tile) -> float:
        """Current ``p(v)``."""
        return float(self._field[tile])

    @property
    def pending_nets(self) -> int:
        return len(self._contributions)
