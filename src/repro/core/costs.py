"""Buffer-site usage cost — the paper's Eq. (2).

    q(v) = (b(v) + p(v) + 1) / (B(v) - b(v))   when b(v)/B(v) < 1
           infinity                            otherwise

Analogous to the wire cost of Eq. (1): the penalty grows sharply as a
tile's sites fill, and the probability term reserves capacity for the
still-unprocessed nets expected to pass through the tile.
"""

from __future__ import annotations

from typing import Callable

from repro.tilegraph.graph import Tile, TileGraph


def buffer_site_cost(graph: TileGraph, tile: Tile, probability: float = 0.0) -> float:
    """Eq. (2) cost of taking one buffer site in ``tile``.

    Args:
        graph: tile graph carrying ``B(v)`` and ``b(v)``.
        tile: the tile in question.
        probability: ``p(v)``, expected future demand from unprocessed nets.

    Returns:
        Finite cost while sites remain, else ``inf`` (including ``B(v)=0``).
    """
    sites = graph.site_count(tile)
    used = graph.used_site_count(tile)
    if sites <= 0 or used >= sites:
        return float("inf")
    return (used + probability + 1.0) / (sites - used)


def make_cost_fn(
    graph: TileGraph, probability_of: "Callable[[Tile], float] | None" = None
) -> Callable[[Tile], float]:
    """A ``q(v)`` closure over the graph and a probability source."""
    if probability_of is None:
        return lambda tile: buffer_site_cost(graph, tile, 0.0)
    return lambda tile: buffer_site_cost(graph, tile, probability_of(tile))
