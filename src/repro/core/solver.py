"""The unified buffering-solver interface (Stage 3's pluggable core).

Every buffering algorithm in the repo — the length-based single-sink DP
(Fig. 6), the Fig. 9 multi-sink DP, the greedy best-effort pass, and the
timing-driven van Ginneken DP — is exposed behind one small protocol:

    solver.solve(request) -> SolveOutcome

A :class:`SolveRequest` carries the net (tree), its length limit, and a
``cost_of`` callable materialized from the flat Eq. (2) cost field; a
:class:`SolveOutcome` carries the proposed buffer specs. Solvers are
*pure*: they read the graph but never book sites or touch tree
annotations — committing an outcome (site booking under a
:class:`SiteLedger` transaction, greedy fallback on oversubscription) is
``repro.core.assignment``'s job. That purity is what lets Stage 3 solve
tile-disjoint nets concurrently and commit serially.

The per-net ``q(v)`` lookups go through :class:`Stage3CostField`, which
gathers Eq. (2) over the net's own tiles in one vectorized shot (flat
index arithmetic, same ``x * ny + y`` scheme as the routing kernel)
instead of probing ``sites``/``used_sites``/``p(v)`` per tile. The
vectorized costs are bit-identical to the scalar formula: both are
IEEE-754 double ops on exactly represented integers.

Strategy selection is per net via :func:`make_solver` /
``RabidConfig.stage3_solver`` (plus the ``stage3_solvers`` per-net
override map).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.candidates import INF
from repro.core.multi_sink import insert_buffers_multi_sink
from repro.core.single_sink import insert_buffers_single_sink
from repro.errors import ConfigurationError
from repro.routing.tree import BufferSpec, RouteTree
from repro.tilegraph.graph import Tile, TileGraph

#: Names accepted by :func:`make_solver` and ``RabidConfig.stage3_solver``.
SOLVER_NAMES = ("dp", "single_sink", "greedy", "van_ginneken", "multi_type")


@dataclass(frozen=True)
class SolveRequest:
    """One net's buffering problem, as seen by a solver."""

    graph: TileGraph
    tree: RouteTree
    length_limit: int
    #: Eq. (2) cost per tile (with the ``p(v)`` term when Stage 3 runs
    #: with probabilities); defined at least on the tree's own tiles.
    cost_of: Callable[[Tile], float]
    tracer: object = None


@dataclass
class SolveOutcome:
    """A solver's proposal. Nothing is booked or annotated yet.

    ``feasible=False`` means the strategy found no legal solution (or
    deliberately defers, like the pure-greedy strategy) and the caller
    should run the greedy best-effort fallback.
    """

    specs: List[BufferSpec] = field(default_factory=list)
    cost: float = INF
    feasible: bool = False
    solver: str = ""


class BufferingSolver:
    """Protocol for buffering strategies (duck-typed; subclassing is
    optional). Implementations must be read-only with respect to the
    graph and the tree."""

    name: str = ""

    def solve(self, request: SolveRequest) -> SolveOutcome:  # pragma: no cover
        raise NotImplementedError


class MultiSinkDPSolver(BufferingSolver):
    """The paper's Fig. 9 DP — optimal length-legal buffering (default)."""

    name = "dp"

    def solve(self, request: SolveRequest) -> SolveOutcome:
        result = insert_buffers_multi_sink(
            request.tree,
            request.cost_of,
            request.length_limit,
            tracer=request.tracer,
        )
        return SolveOutcome(result.buffers, result.cost, result.feasible, self.name)


class SingleSinkDPSolver(BufferingSolver):
    """The Fig. 6 path DP for two-pin nets; multi-sink trees delegate.

    On a pure source-to-sink path the O(nL) single-sink recurrence and
    the O(mL^2 + nL) multi-sink DP agree on cost (the path has one branch
    everywhere), so delegation keeps mixed netlists correct.
    """

    name = "single_sink"

    def __init__(self) -> None:
        self._multi = MultiSinkDPSolver()

    def solve(self, request: SolveRequest) -> SolveOutcome:
        path = _as_path(request.tree)
        if path is None:
            return self._multi.solve(request)
        cost, specs, feasible = insert_buffers_single_sink(
            path, request.cost_of, request.length_limit
        )
        return SolveOutcome(specs, cost, feasible, self.name)


class GreedySolver(BufferingSolver):
    """Always use the greedy best-effort pass.

    Returns ``feasible=False`` with no specs: the shared commit path then
    runs :func:`repro.core.fallback.greedy_buffering` against live site
    availability — the same code path every other strategy falls back to.
    Nets buffered this way are reported in ``dp_infeasible_nets`` (the DP
    was never consulted).
    """

    name = "greedy"

    def solve(self, request: SolveRequest) -> SolveOutcome:
        return SolveOutcome([], INF, False, self.name)


class VanGinnekenSolver(BufferingSolver):
    """Timing-driven buffering (minimize worst Elmore sink delay).

    The paper positions this for later design stages when timing is
    meaningful; as a Stage-3 strategy it buffers for delay while the
    commit path still enforces site capacity (greedy fallback when the
    delay-optimal solution stacks more buffers into a tile than it has
    free sites). ``cost`` is reported as ``inf`` — Elmore delays are not
    comparable with Eq. (2) totals.
    """

    name = "van_ginneken"

    def __init__(self, technology, max_candidates: int = 64) -> None:
        if technology is None:
            raise ConfigurationError(
                "the van_ginneken strategy needs a technology"
            )
        self.technology = technology
        self.max_candidates = max_candidates

    def solve(self, request: SolveRequest) -> SolveOutcome:
        from repro.timing.van_ginneken import timing_driven_buffering

        _, specs = timing_driven_buffering(
            request.tree,
            request.graph,
            self.technology,
            max_candidates=self.max_candidates,
            tracer=request.tracer,
        )
        return SolveOutcome(specs, INF, True, self.name)


class MultiTypeDPSolver(BufferingSolver):
    """The Fig. 9 placement DP plus Li–Shi kind sizing over a library.

    Phase A is exactly the ``dp`` strategy's recurrence, so placements,
    Eq. (2) cost, and feasibility are identical to ``dp`` — with a
    single-kind library the outcome is byte-identical. Phase B
    (:func:`repro.core.multi_type.assign_buffer_kinds`) then picks each
    placed buffer's kind from the library to minimize the worst Elmore
    sink delay, with cross-kind Pareto pruning keeping the candidate
    lists O(b). Kinds equal to the library default are reported as ``""``.
    """

    name = "multi_type"

    def __init__(
        self,
        technology,
        library=None,
        max_candidates: int = 64,
    ) -> None:
        if technology is None:
            raise ConfigurationError(
                "the multi_type strategy needs a technology"
            )
        from repro.technology.buffers import resolve_library

        self.technology = technology
        self.library = (
            library
            if library is not None
            else resolve_library("single", technology)
        )
        self.max_candidates = max_candidates
        self._multi = MultiSinkDPSolver()

    def solve(self, request: SolveRequest) -> SolveOutcome:
        from repro.core.multi_type import assign_buffer_kinds

        placed = self._multi.solve(request)
        if not placed.feasible or not placed.specs:
            return SolveOutcome(
                placed.specs, placed.cost, placed.feasible, self.name
            )
        specs = assign_buffer_kinds(
            request.tree,
            request.graph,
            self.technology,
            self.library,
            placed.specs,
            max_candidates=self.max_candidates,
            tracer=request.tracer,
        )
        return SolveOutcome(specs, placed.cost, True, self.name)


def _as_path(tree: RouteTree) -> "Optional[List[Tile]]":
    """The root-to-sink tile path when ``tree`` is a simple chain."""
    path: List[Tile] = []
    node = tree.root
    while True:
        path.append(node.tile)
        if not node.children:
            return path if node.is_sink and len(tree.sink_tiles) == 1 else None
        if len(node.children) > 1 or node.is_sink:
            return None
        node = node.children[0]


def make_solver(
    name: str,
    technology=None,
    max_candidates: int = 64,
    buffer_library: str = "single",
) -> BufferingSolver:
    """Instantiate a strategy by registry name.

    Args:
        name: one of :data:`SOLVER_NAMES`.
        technology: electrical parameters, required by ``van_ginneken``
            and ``multi_type``.
        max_candidates: the per-node Pareto cap of the timing-driven
            strategies.
        buffer_library: named library (:data:`repro.technology.LIBRARY_NAMES`)
            the ``multi_type`` strategy sizes over; other strategies only
            ever place the default repeater and ignore it.
    """
    if name == "dp":
        return MultiSinkDPSolver()
    if name == "single_sink":
        return SingleSinkDPSolver()
    if name == "greedy":
        return GreedySolver()
    if name == "van_ginneken":
        return VanGinnekenSolver(technology, max_candidates)
    if name == "multi_type":
        from repro.technology.buffers import resolve_library

        if technology is None:
            raise ConfigurationError(
                "the multi_type strategy needs a technology"
            )
        return MultiTypeDPSolver(
            technology,
            library=resolve_library(buffer_library, technology),
            max_candidates=max_candidates,
        )
    raise ConfigurationError(
        f"unknown buffering solver {name!r}; expected one of {SOLVER_NAMES}"
    )


class Stage3CostField:
    """Vectorized per-net Eq. (2) costs with the ``p(v)`` term.

        q(v) = (b(v) + p(v) + 1) / (B(v) - b(v))   when b(v)/B(v) < 1
               infinity                            otherwise

    One gather over the net's memoized flat tile indices replaces a
    scalar ``buffer_site_cost``/``p(v)`` probe per DP node. The dict a
    solver receives is rebuilt per net, so it always reflects the
    bookings of every previously committed net.
    """

    def __init__(self, graph: TileGraph, probability=None) -> None:
        self._graph = graph
        self._sites = graph.sites_flat
        self._used = graph.used_sites_flat
        self._p = probability.field_flat if probability is not None else None

    def cost_map(self, tree: RouteTree) -> Dict[Tile, float]:
        """``{tile: q(v)}`` over the tree's tiles, freshly gathered."""
        idx = tree.tile_indices(self._graph.ny)
        sites = self._sites[idx]
        used = self._used[idx]
        numerator = used + self._p[idx] + 1.0 if self._p is not None else used + 1.0
        q = np.full(len(idx), INF)
        np.divide(
            numerator,
            sites - used,
            out=q,
            where=(sites > 0) & (used < sites),
        )
        return dict(zip(tree.nodes, q.tolist()))

    def cost_fn(self, tree: RouteTree) -> Callable[[Tile], float]:
        """A ``cost_of`` callable for one net's solve."""
        return self.cost_map(tree).__getitem__
