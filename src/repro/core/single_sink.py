"""Single-sink buffer insertion DP — the paper's Fig. 6 algorithm.

For a two-pin net routed as a tile path ``s = v0, v1, ..., vk = t``, each
node keeps a cost array ``C_v`` indexed ``0 .. L-1`` by the distance
downstream to the last inserted buffer. Initialization sets the sink's
whole array to zero (exactly as the paper does; entries at indices larger
than the true downstream length are conservative and can never admit a
solution that over-drives a gate). The recurrence:

    C_par(v)[j] = C_v[j - 1]                      (advance one tile)
    C_par(v)[0] = q(par(v)) + min_j C_v[j]        (buffer at par(v))

and the answer is ``min_j C_v1[j]`` at the node adjacent to the source,
so the driver drives ``1 + j <= L`` tile units. Optimal in ``O(n L)``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core.candidates import INF, first_min_index
from repro.errors import ConfigurationError
from repro.routing.tree import BufferSpec
from repro.tilegraph.graph import Tile


def insert_buffers_single_sink(
    path: Sequence[Tile],
    cost_of: Callable[[Tile], float],
    length_limit: int,
) -> Tuple[float, List[BufferSpec], bool]:
    """Optimal length-legal buffering of a source-to-sink tile path.

    Args:
        path: tiles from source (index 0) to sink (last); consecutive tiles
            must be the route's order (adjacency is not re-checked here).
        cost_of: the ``q(v)`` cost of using one buffer site in a tile.
        length_limit: ``L_i`` in tile units (>= 1).

    Returns:
        ``(cost, buffers, feasible)``. When infeasible, cost is ``inf`` and
        the buffer list is empty. Buffers are trunk buffers (each drives
        the remainder of the path).
    """
    if length_limit < 1:
        raise ConfigurationError("length limit must be >= 1")
    k = len(path) - 1
    if k <= 0:
        return 0.0, [], True
    L = length_limit

    # cost[i][j] for node v_i; choices[i][j] = j' of C_{v_{i+1}} that
    # produced it via a buffer at v_i (only meaningful at j == 0), or -1
    # for a plain advance.
    cost_rows: List[List[float]] = [[INF] * L for _ in range(k + 1)]
    choice_rows: List[List[int]] = [[-1] * L for _ in range(k + 1)]
    cost_rows[k] = [0.0] * L

    for i in range(k - 1, 0, -1):
        below = cost_rows[i + 1]
        row = cost_rows[i]
        for j in range(1, L):
            row[j] = below[j - 1]
        q = cost_of(path[i])
        best_j = first_min_index(below)
        if q != INF and below[best_j] != INF:
            row[0] = q + below[best_j]
            choice_rows[i][0] = best_j
        # A cheaper advance into index 0 cannot exist (index 0 always means
        # "buffer here"); nothing else to consider.

    if k == 1:
        # Source adjacent to sink: driver drives one tile unit.
        return 0.0, [], L >= 1

    first = cost_rows[1]
    best = first_min_index(first)
    if first[best] == INF:
        return INF, [], False

    buffers: List[BufferSpec] = []
    j = best
    for i in range(1, k):
        if j == 0:
            buffers.append(BufferSpec(path[i], None))
            j = choice_rows[i][0]
        else:
            j -= 1
    return first[best], buffers, True
