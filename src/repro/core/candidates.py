"""Shared candidate representation and pruning for the buffering solvers.

Every buffering strategy in this repo is a bottom-up tree walk that keeps
per-node *candidate* sets and prunes dominated entries:

* the length-based DPs (single- and multi-sink) keep cost arrays indexed
  by unbuffered downstream length, pruned implicitly by the array min;
* van Ginneken keeps (capacitance, delay) pairs pruned to the Pareto
  frontier.

This module holds the pieces those walks share — the K-array recurrence
of the length DPs (advance one tile / buffer at the node), first-minimum
selection, Pareto pruning, and the oversubscription test — so each
strategy module carries only its own objective. Keeping the helpers here
(below both the solvers and ``assignment``) avoids import cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.tilegraph.graph import Tile, TileGraph

INF = float("inf")


def first_min_index(values: Sequence[float]) -> int:
    """Index of the first minimum of ``values`` (C-speed argmin).

    Equivalent to ``min(range(len(values)), key=values.__getitem__)`` —
    both return the earliest index achieving the minimum — but runs the
    scan in C. ``values`` must be non-empty and NaN-free.
    """
    return values.index(min(values))


def advance_and_buffer(
    child_c: List[float], q_v: float, limit: int
) -> Tuple[List[float], int]:
    """The length-DP K-array: one child's costs measured at its parent.

    Index ``j`` of the result (length ``limit + 1``) is the unbuffered
    length of the branch including the parent->child edge:

    * ``K[j] = C_child[j - 1]`` for ``j >= 1`` (advance one tile);
    * ``K[0] = q_v + min_j C_child[j]`` (a decoupling buffer at the
      parent drives ``1 + argmin <= limit`` units of the branch).

    Returns ``(K, buffer_choice)`` where ``buffer_choice`` is the child
    index consumed by the ``K[0]`` buffer, or ``-1`` when no buffer is
    placeable (``q_v`` infinite or the branch infeasible).

    ``child_c`` must have length ``limit`` (the parent-usable entries).
    """
    k = [INF] + child_c
    best = child_c.index(min(child_c))
    if q_v != INF and child_c[best] != INF:
        k[0] = q_v + child_c[best]
        return k, best
    return k, -1


def pareto_prune(cands: List, count=None) -> List:
    """Keep the Pareto frontier: increasing cap must decrease delay.

    ``cands`` entries need ``cap`` and ``delay`` attributes (van
    Ginneken's candidates). When ``count`` is given it is called with the
    number of dominated entries dropped (feeds ``dp.candidates_pruned``).
    """
    cands.sort(key=lambda c: (c.cap, c.delay))
    out: List = []
    best_delay = INF
    for c in cands:
        if c.delay < best_delay - 1e-18:
            out.append(c)
            best_delay = c.delay
    if count is not None:
        count(len(cands) - len(out))
    return out


def buffer_demand(specs) -> Dict[Tile, int]:
    """Per-tile buffer counts of a spec list."""
    per_tile: Dict[Tile, int] = {}
    for spec in specs:
        per_tile[spec.tile] = per_tile.get(spec.tile, 0) + 1
    return per_tile


def oversubscribes(
    graph: TileGraph,
    specs,
    freed: "Optional[Dict[Tile, int]]" = None,
) -> bool:
    """True when applying ``specs`` would push some tile past ``B(v)``.

    ``freed`` carries per-tile counts the net itself releases when it is
    re-buffered (the rip-up-and-recompute flow): those sites are still
    booked in ``b(v)`` but become available the moment the old buffering
    is ripped, so they count toward this net's budget.
    """
    freed = freed or {}
    return any(
        count - freed.get(tile, 0) > graph.free_sites(tile)
        for tile, count in buffer_demand(specs).items()
    )
