"""Stage 4: two-path rip-up and reroute (paper Section III-D).

Each net is taken apart one *two-path* at a time (a maximal tree path whose
interior is degree-2 and contains no sink/Steiner node). The two endpoints
are reconnected by the minimum-cost path under the combined wire (Eq. 1)
and buffer (Eq. 2) congestion costs, found by a wavefront expansion over
labels ``(tile, distance since the last buffer)`` — the buffer-aware maze
labels of Hur/Lillis and Zhou et al. that the paper cites. Afterwards the
caller rips out and reinserts the whole net's buffers via the Stage-3 DP.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.routing.maze import (
    congestion_cost,
    scalar_edge_cost,
    soft_congestion_cost,
)
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph

INF = float("inf")


def best_buffered_path(
    graph: TileGraph,
    start: Tile,
    goal: "Tile | Set[Tile]",
    q_of: Callable[[Tile], float],
    length_limit: int,
    forbidden: Set[Tile],
    window: Tuple[int, int, int, int],
    wire_cost: Callable[[TileGraph, Tile, Tile], float] = congestion_cost,
) -> Optional[List[Tile]]:
    """Min-cost start-to-goal path under wire + buffer congestion costs.

    States are ``(tile, j)`` with ``j`` the tile distance since the last
    buffer (the start counts as buffered, ``j = 0``). Moving to a neighbor
    costs Eq. (1) and increments ``j``; taking a buffer site costs Eq. (2)
    and resets ``j``. Paths whose ``j`` would reach ``length_limit`` must
    buffer first, so any returned path can be legally buffered.

    ``goal`` may be a single tile or a set of tiles (the path ends at the
    cheapest reachable member — used by the Stage-4 rescue pass to attach
    a sink to an existing tree).

    Returns the tile path (start first) or ``None`` when no legal path
    exists within the window.
    """
    L = length_limit
    wire_cost = scalar_edge_cost(graph, wire_cost)
    goals: Set[Tile] = {goal} if isinstance(goal, tuple) else set(goal)
    if start in goals:
        return [start]
    x0, y0, x1, y1 = window
    dist: Dict[Tuple[Tile, int], float] = {(start, 0): 0.0}
    pred: Dict[Tuple[Tile, int], Tuple[Tile, int]] = {}
    heap: List[Tuple[float, Tile, int]] = [(0.0, start, 0)]
    settled: Set[Tuple[Tile, int]] = set()
    goal_state: Optional[Tuple[Tile, int]] = None
    while heap:
        d, tile, j = heapq.heappop(heap)
        state = (tile, j)
        if state in settled:
            continue
        settled.add(state)
        if tile in goals:
            goal_state = state
            break
        # Buffer here (resets j); only from unbuffered states.
        if j > 0:
            q = q_of(tile)
            if q != INF:
                nd = d + q
                nstate = (tile, 0)
                if nd < dist.get(nstate, INF):
                    dist[nstate] = nd
                    pred[nstate] = state
                    heapq.heappush(heap, (nd, tile, 0))
        # Step to a neighbor. A run of exactly L between gates is legal
        # (a gate may drive L units), so j may reach L.
        if j + 1 <= L:
            for nbr in graph.neighbors(tile):
                if not (x0 <= nbr[0] <= x1 and y0 <= nbr[1] <= y1):
                    continue
                if nbr in forbidden and nbr not in goals:
                    continue
                step = wire_cost(graph, tile, nbr)
                if step == INF:
                    continue
                nd = d + step
                nstate = (nbr, j + 1)
                if nd < dist.get(nstate, INF):
                    dist[nstate] = nd
                    pred[nstate] = state
                    heapq.heappush(heap, (nd, nbr, j + 1))
    if goal_state is None:
        return None
    # Trace back, dropping the buffer self-transitions.
    path: List[Tile] = []
    state = goal_state
    while True:
        tile = state[0]
        if not path or path[-1] != tile:
            path.append(tile)
        if state not in pred:
            break
        state = pred[state]
    path.reverse()
    return _remove_loops(path)


def _remove_loops(path: List[Tile]) -> List[Tile]:
    """Excise revisit loops so the path is simple over tiles.

    The (tile, j) state space legitimately revisits a tile (e.g., a detour
    to a buffer site and back), but a route tree needs simple tile paths;
    re-insertion of buffers afterwards restores legality where possible.
    """
    first_seen: Dict[Tile, int] = {}
    out: List[Tile] = []
    for tile in path:
        if tile in first_seen:
            del_from = first_seen[tile] + 1
            for dropped in out[del_from:]:
                del first_seen[dropped]
            del out[del_from:]
        else:
            first_seen[tile] = len(out)
            out.append(tile)
    return out


def _plain_path(
    graph: TileGraph,
    start: Tile,
    goal: Tile,
    forbidden: Set[Tile],
    window: Tuple[int, int, int, int],
    wire_cost: Callable[[TileGraph, Tile, Tile], float],
) -> Optional[List[Tile]]:
    """Wire-cost-only Dijkstra (used when no bufferable path exists)."""
    wire_cost = scalar_edge_cost(graph, wire_cost)
    x0, y0, x1, y1 = window
    dist: Dict[Tile, float] = {start: 0.0}
    pred: Dict[Tile, Tile] = {}
    heap: List[Tuple[float, Tile]] = [(0.0, start)]
    settled: Set[Tile] = set()
    while heap:
        d, tile = heapq.heappop(heap)
        if tile in settled:
            continue
        settled.add(tile)
        if tile == goal:
            path = [tile]
            while path[-1] in pred:
                path.append(pred[path[-1]])
            path.reverse()
            return path
        for nbr in graph.neighbors(tile):
            if not (x0 <= nbr[0] <= x1 and y0 <= nbr[1] <= y1):
                continue
            if nbr in forbidden and nbr != goal:
                continue
            step = wire_cost(graph, tile, nbr)
            if step == INF:
                continue
            nd = d + step
            if nd < dist.get(nbr, INF):
                dist[nbr] = nd
                pred[nbr] = tile
                heapq.heappush(heap, (nd, nbr))
    return None


def optimize_two_paths(
    graph: TileGraph,
    tree: RouteTree,
    q_of: Callable[[Tile], float],
    length_limit: int,
    window_margin: int = 6,
) -> int:
    """Reroute every two-path of ``tree`` at minimum combined cost.

    Preconditions: the tree's *wire* usage is recorded on ``graph``; its
    *buffer* usage has already been released (Stage 4 rips a net's buffers
    before rerouting it). The tree's buffer annotations are cleared here.

    Returns:
        The number of two-paths whose route changed.
    """
    tree.clear_buffers()
    changed = 0
    for old_path in tree.two_paths():
        head, tail = old_path[0], old_path[-1]
        for a, b in zip(old_path, old_path[1:]):
            graph.add_wire(a, b, -1)
        forbidden = (set(tree.nodes) - set(old_path[1:-1])) - {head, tail}
        window = _window_for(graph, head, tail, window_margin)
        new_path = best_buffered_path(
            graph, tail, head, q_of, length_limit, forbidden, window
        )
        if new_path is None:
            # No bufferable path within capacity; try any within-capacity
            # path (the net's buffering may still be fixed elsewhere).
            new_path = _plain_path(
                graph, tail, head, forbidden, window, congestion_cost
            )
        if new_path is None and not _path_fits(graph, old_path):
            # Only when even the old route overflows do we accept paying
            # overflow penalties for a (hopefully better) soft-cost route;
            # otherwise keeping the old route preserves the Stage-2
            # capacity guarantee.
            new_path = best_buffered_path(
                graph,
                tail,
                head,
                q_of,
                length_limit,
                forbidden,
                window,
                wire_cost=soft_congestion_cost,
            ) or _plain_path(
                graph, tail, head, forbidden, window, soft_congestion_cost
            )
        if new_path is None:
            new_path = list(reversed(old_path))  # keep the old route
        new_path = list(reversed(new_path))  # head first, as two_paths yields
        if new_path != old_path:
            changed += 1
        tree.replace_two_path(old_path, new_path)
        for a, b in zip(new_path, new_path[1:]):
            graph.add_wire(a, b, 1)
    return changed


def _path_fits(graph: TileGraph, path: List[Tile]) -> bool:
    """True when re-adding this (currently ripped) path stays in capacity."""
    return all(
        graph.wire_usage(a, b) < graph.wire_capacity(a, b)
        for a, b in zip(path, path[1:])
    )


def _window_for(
    graph: TileGraph, a: Tile, b: Tile, margin: int
) -> Tuple[int, int, int, int]:
    return (
        max(0, min(a[0], b[0]) - margin),
        max(0, min(a[1], b[1]) - margin),
        min(graph.nx - 1, max(a[0], b[0]) + margin),
        min(graph.ny - 1, max(a[1], b[1]) + margin),
    )
