"""Stage 3: buffer assignment over all nets (paper Section III-C).

The per-net pipeline is *solve then commit*:

* **solve** — a :class:`repro.core.solver.BufferingSolver` strategy
  (Fig. 9 DP by default) proposes buffer specs against a vectorized
  Eq. (2) cost gather. Solvers are pure: they never mutate the graph or
  the tree.
* **commit** — the specs are booked through the graph's transactional
  :class:`repro.tilegraph.ledger.SiteLedger`. A proposal that would push
  a tile past ``B(v)`` is rolled back (counted as
  ``stage3.ledger_rollbacks``) and the greedy best-effort fallback runs
  in its place; exceptions anywhere inside a net's scope unwind its site
  bookings automatically.

With ``workers > 1`` the order is cut into maximal prefixes of nets with
pairwise-disjoint tile sets; a batch is solved concurrently and committed
serially in order. Because every solver input — the Eq. (2)/``p(v)``
gather, free-site probes, the length rule — reads only the net's own
tiles, and batch members share none, each concurrent solve sees exactly
the state the sequential loop would have shown it: the parallel path is
byte-identical, with no escape hatch needed (unlike Stage 2's bounding
boxes, tile-set disjointness is exact, not approximate).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Sequence

from repro.core.candidates import INF, oversubscribes
from repro.core.fallback import greedy_buffering
from repro.core.length_rule import net_meets_length_rule
from repro.core.probability import UsageProbability
from repro.core.solver import (
    BufferingSolver,
    MultiSinkDPSolver,
    SolveOutcome,
    SolveRequest,
    Stage3CostField,
)
from repro.obs import NULL_TRACER
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import TileGraph

#: The oversubscription test, shared engine-wide (see
#: :func:`repro.core.candidates.oversubscribes`). Kept under its
#: historical name; the ``freed`` parameter accounts for sites a net
#: itself releases when it is re-buffered.
_oversubscribes = oversubscribes


@dataclass
class AssignmentResult:
    """Summary of a Stage-3 run."""

    buffers_inserted: int = 0
    failed_nets: List[str] = field(default_factory=list)
    dp_infeasible_nets: List[str] = field(default_factory=list)
    total_cost: float = 0.0

    @property
    def num_fails(self) -> int:
        return len(self.failed_nets)


def _solve_net(
    graph: TileGraph,
    tree: RouteTree,
    length_limit: int,
    cost_field: Stage3CostField,
    solver: BufferingSolver,
    tracer=None,
) -> SolveOutcome:
    """Run one net's strategy (read-only; safe off-thread untraced)."""
    return solver.solve(
        SolveRequest(
            graph=graph,
            tree=tree,
            length_limit=length_limit,
            cost_of=cost_field.cost_fn(tree),
            tracer=tracer,
        )
    )


def _commit_outcome(
    graph: TileGraph,
    tree: RouteTree,
    length_limit: int,
    outcome: SolveOutcome,
    tracer=None,
) -> "tuple[bool, bool, float]":
    """Book a solver proposal under a ledger scope; fall back to greedy.

    The proposal's sites are booked inside a nested transaction; if any
    of its tiles ends up past ``B(v)`` the booking is rolled back (the
    DP prices each buffer at the same pre-net ``q(v)`` and so can stack
    a tile past its free sites) and the greedy pass — which always
    respects free-site counts — takes over.
    """
    ledger = graph.ledger()
    specs, cost = outcome.specs, outcome.cost
    with ledger.transaction():
        committed = False
        if outcome.feasible:
            txn = ledger.begin()
            for spec in specs:
                graph.use_site(spec.tile, 1, spec.kind)
            # Post-booking ``free < 0`` on a spec tile is exactly the old
            # pre-booking ``count > free_sites`` test.
            if any(ledger.free_tile(spec.tile) < 0 for spec in specs):
                ledger.rollback(txn)
                if tracer is not None and tracer.enabled:
                    tracer.count("stage3.ledger_rollbacks")
            else:
                ledger.commit(txn)
                committed = True
        if not committed:
            specs = greedy_buffering(tree, graph, length_limit)
            cost = INF
            for spec in specs:
                graph.use_site(spec.tile, 1)
        tree.apply_buffers(specs)
    return net_meets_length_rule(tree, length_limit), outcome.feasible, cost


def assign_buffers_to_net(
    graph: TileGraph,
    tree: RouteTree,
    length_limit: int,
    probability: "UsageProbability | None" = None,
    tracer=None,
    solver: "BufferingSolver | None" = None,
    rebuffer: bool = False,
) -> "tuple[bool, bool, float]":
    """Buffer one net: strategy first, greedy fallback when infeasible.

    Applies the chosen buffers to the tree annotations and the graph's
    ``b(v)`` counters. The whole operation is one ledger transaction:
    partial failures cannot leak site bookings.

    Args:
        graph: tile graph carrying ``B(v)``/``b(v)``.
        tree: the net's route; annotations are overwritten.
        length_limit: the net's ``L_i``.
        probability: optional ``p(v)`` source for the Eq. (2) costs.
        tracer: optional :class:`repro.obs.Tracer`.
        solver: buffering strategy; default Fig. 9 multi-sink DP.
        rebuffer: the tree's current annotations are booked on the graph
            and should be released first (the rip-up-and-recompute flow) —
            the solver and the oversubscription test then both see the
            sites this net itself frees.

    Returns:
        ``(meets_rule, solver_was_feasible, cost)``.
    """
    if solver is None:
        solver = MultiSinkDPSolver()
    ledger = graph.ledger()
    with ledger.transaction():
        if rebuffer:
            for tile, kinds in tree.buffer_kind_counts().items():
                for kind, count in kinds.items():
                    graph.use_site(tile, -count, kind)
        outcome = _solve_net(
            graph,
            tree,
            length_limit,
            Stage3CostField(graph, probability),
            solver,
            tracer=tracer,
        )
        return _commit_outcome(graph, tree, length_limit, outcome, tracer=tracer)


def _disjoint_prefix_batches(
    routes: Dict[str, RouteTree],
    order: Sequence[str],
    ny: int,
) -> Iterator[List[str]]:
    """Cut ``order`` into maximal prefixes of tile-disjoint nets.

    Stopping at the first overlap (rather than skipping ahead) keeps the
    concatenation of all batches equal to the original order, which the
    serial commit phase relies on.
    """
    n = len(order)
    idx = 0
    while idx < n:
        batch = [order[idx]]
        footprint = set(routes[order[idx]].tile_indices(ny).tolist())
        j = idx + 1
        while j < n:
            tiles = routes[order[j]].tile_indices(ny).tolist()
            if not footprint.isdisjoint(tiles):
                break
            batch.append(order[j])
            footprint.update(tiles)
            j += 1
        idx = j
        yield batch


def assign_buffers_stage3(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    length_limits: Dict[str, int],
    order: Sequence[str],
    use_probability: bool = True,
    tracer=None,
    workers: int = 1,
    solver_for: "Callable[[str], BufferingSolver] | None" = None,
    backend: str = "pool",
    pool=None,
    solver_names: "Callable[[str], str] | None" = None,
    technology=None,
    buffer_library: str = "single",
) -> AssignmentResult:
    """Assign buffer sites to every net, highest-delay nets first.

    Args:
        graph: tile graph with wire usage already recorded (Stage 2 done)
            and ``b(v)`` counters at their pre-Stage-3 state.
        routes: net name -> route tree (annotations are overwritten).
        length_limits: per-net ``L_i``.
        order: processing order (paper: descending delay).
        use_probability: include the ``p(v)`` term of Eq. (2).
        tracer: optional :class:`repro.obs.Tracer`; per-net ``buffered`` /
            ``failed`` events and the ``buffer_sites_used`` counter, plus
            ``stage3.ledger_rollbacks`` and (parallel) ``stage3.batches``.
        workers: solve tile-disjoint batches of nets with this many
            workers; 1 (default) runs strictly sequentially. All paths
            produce identical output (tile-set disjointness is exact);
            off-process/off-thread solves run untraced, so per-net DP
            counters are only exact at ``workers=1``.
        solver_for: optional net-name -> strategy mapping; default is the
            Fig. 9 multi-sink DP for every net.
        backend: parallel engine for ``workers > 1``: ``"pool"`` (the
            shared-memory worker-process pool, default) or ``"threads"``
            (legacy in-process threads). The pool needs solver *names* to
            instantiate strategies worker-side, so a custom ``solver_for``
            without ``solver_names`` silently takes the thread path.
        pool: optional :class:`repro.parallel.WorkerPool` to reuse (shared
            with Stage 2 / the planner); otherwise one is created and
            closed here.
        solver_names: net name -> solver registry name (see
            :data:`repro.core.solver.SOLVER_NAMES`), required by the pool
            backend; also used to build the default ``solver_for``.
        technology: electrical parameters forwarded to
            :func:`repro.core.solver.make_solver` (``van_ginneken``,
            ``multi_type``).
        buffer_library: named buffer library the ``multi_type`` strategy
            sizes over (:data:`repro.technology.LIBRARY_NAMES`).

    Returns:
        An :class:`AssignmentResult`; the trees and graph are updated in
        place.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    probability = None
    if use_probability:
        probability = UsageProbability(graph)
        for name in order:
            probability.add_net(routes[name], length_limits[name])
    cost_field = Stage3CostField(graph, probability)
    if solver_for is None:
        from repro.core.solver import make_solver

        names_of = solver_names if solver_names is not None else (
            lambda name: "dp"
        )
        solver_names = names_of
        _solvers: Dict[str, BufferingSolver] = {}

        def solver_for(name: str) -> BufferingSolver:
            key = names_of(name)
            solver = _solvers.get(key)
            if solver is None:
                solver = _solvers[key] = make_solver(
                    key, technology=technology, buffer_library=buffer_library
                )
            return solver

    out = AssignmentResult()

    def process(name: str, outcome: "SolveOutcome | None") -> None:
        """Commit one net (serial phase) and record its accounting."""
        tree = routes[name]
        if outcome is None:
            if probability is not None:
                probability.remove_net(tree)
            outcome = _solve_net(
                graph,
                tree,
                length_limits[name],
                cost_field,
                solver_for(name),
                tracer=tracer,
            )
        meets, dp_ok, cost = _commit_outcome(
            graph, tree, length_limits[name], outcome, tracer=tracer
        )
        buffers = tree.buffer_count()
        out.buffers_inserted += buffers
        if cost != INF:
            out.total_cost += cost
        if not dp_ok:
            out.dp_infeasible_nets.append(name)
        if not meets:
            out.failed_nets.append(name)
        if tracer.enabled:
            tracer.count("buffer_sites_used", buffers)
            tracer.event(
                "buffered" if meets else "failed",
                name,
                stage="3",
                buffers=buffers,
                dp_feasible=dp_ok,
            )
            tracer.check_site_invariants(graph, f"stage3 net {name}")

    if workers <= 1 or len(order) <= 1:
        for name in order:
            process(name, None)
        return out

    if backend == "pool" and solver_names is not None:
        from repro.parallel import PoolError, Stage3Session, WorkerPool

        own_pool = None
        if pool is None:
            pool = own_pool = WorkerPool(workers, tracer=tracer)
        session = Stage3Session(
            pool,
            graph,
            probability,
            technology=technology,
            buffer_library=buffer_library,
        )
        try:
            for batch in _disjoint_prefix_batches(routes, order, graph.ny):
                if tracer.enabled:
                    tracer.count("stage3.batches")
                if len(batch) == 1:
                    process(batch[0], None)
                    continue
                # Solve off-process first — workers subtract their own
                # net's p(v) weight from the published field, so the
                # parent's field must still be intact here. Then mirror
                # the sequential remove-before-solve parent-side and
                # commit in order.
                try:
                    outcomes = session.solve_batch(
                        batch, routes, length_limits, solver_names
                    )
                except PoolError:
                    if tracer.enabled:
                        tracer.count("stage3.pool_fallbacks")
                    for name in batch:
                        process(name, None)
                    continue
                if probability is not None:
                    for name in batch:
                        probability.remove_net(routes[name])
                for name in batch:
                    process(name, outcomes[name])
        finally:
            session.close()
            if own_pool is not None:
                own_pool.close()
        return out

    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="stage3"
    ) as executor:
        for batch in _disjoint_prefix_batches(routes, order, graph.ny):
            if tracer.enabled:
                tracer.count("stage3.batches")
            if len(batch) == 1:
                process(batch[0], None)
                continue
            # Remove the whole batch's p(v) contributions up front (each
            # net's tiles are its own, so this equals the sequential
            # remove-before-solve), then solve concurrently against the
            # frozen graph state and commit serially in order.
            if probability is not None:
                for name in batch:
                    probability.remove_net(routes[name])
            futures = [
                executor.submit(
                    _solve_net,
                    graph,
                    routes[name],
                    length_limits[name],
                    cost_field,
                    solver_for(name),
                )
                for name in batch
            ]
            outcomes = [f.result() for f in futures]  # barrier
            for name, outcome in zip(batch, outcomes):
                process(name, outcome)
    return out
