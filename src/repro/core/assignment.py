"""Stage 3: buffer assignment over all nets (paper Section III-C)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.costs import buffer_site_cost
from repro.core.fallback import greedy_buffering
from repro.core.length_rule import net_meets_length_rule
from repro.core.multi_sink import insert_buffers_multi_sink
from repro.core.probability import UsageProbability
from repro.obs import NULL_TRACER
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import TileGraph


def _oversubscribes(graph: TileGraph, specs) -> bool:
    """True when applying ``specs`` would push some tile past ``B(v)``."""
    per_tile: Dict = {}
    for spec in specs:
        per_tile[spec.tile] = per_tile.get(spec.tile, 0) + 1
    return any(count > graph.free_sites(tile) for tile, count in per_tile.items())


@dataclass
class AssignmentResult:
    """Summary of a Stage-3 run."""

    buffers_inserted: int = 0
    failed_nets: List[str] = field(default_factory=list)
    dp_infeasible_nets: List[str] = field(default_factory=list)
    total_cost: float = 0.0

    @property
    def num_fails(self) -> int:
        return len(self.failed_nets)


def assign_buffers_to_net(
    graph: TileGraph,
    tree: RouteTree,
    length_limit: int,
    probability: "UsageProbability | None" = None,
    tracer=None,
) -> "tuple[bool, bool, float]":
    """Buffer one net: DP first, greedy fallback when infeasible.

    Applies the chosen buffers to the tree annotations and the graph's
    ``b(v)`` counters.

    Returns:
        ``(meets_rule, dp_was_feasible, cost)``.
    """
    def q_of(tile):
        p = probability.value(tile) if probability is not None else 0.0
        return buffer_site_cost(graph, tile, p)

    result = insert_buffers_multi_sink(tree, q_of, length_limit, tracer=tracer)
    if result.feasible and not _oversubscribes(graph, result.buffers):
        specs = result.buffers
        cost = result.cost
    else:
        # Either no length-legal solution exists, or the optimal one stacks
        # more buffers into a tile than it has free sites (the DP prices
        # each buffer at the same pre-net q(v)); the greedy fallback always
        # respects free-site counts.
        specs = greedy_buffering(tree, graph, length_limit)
        cost = float("inf")
    tree.apply_buffers(specs)
    for spec in specs:
        graph.use_site(spec.tile, 1)
    return net_meets_length_rule(tree, length_limit), result.feasible, cost


def assign_buffers_stage3(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    length_limits: Dict[str, int],
    order: Sequence[str],
    use_probability: bool = True,
    tracer=None,
) -> AssignmentResult:
    """Assign buffer sites to every net, highest-delay nets first.

    Args:
        graph: tile graph with wire usage already recorded (Stage 2 done)
            and ``b(v)`` counters at their pre-Stage-3 state.
        routes: net name -> route tree (annotations are overwritten).
        length_limits: per-net ``L_i``.
        order: processing order (paper: descending delay).
        use_probability: include the ``p(v)`` term of Eq. (2).
        tracer: optional :class:`repro.obs.Tracer`; per-net ``buffered`` /
            ``failed`` events and the ``buffer_sites_used`` counter.

    Returns:
        An :class:`AssignmentResult`; the trees and graph are updated in
        place.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    probability = None
    if use_probability:
        probability = UsageProbability(graph)
        for name in order:
            probability.add_net(routes[name], length_limits[name])

    out = AssignmentResult()
    for name in order:
        tree = routes[name]
        if probability is not None:
            probability.remove_net(tree)
        meets, dp_ok, cost = assign_buffers_to_net(
            graph, tree, length_limits[name], probability, tracer=tracer
        )
        buffers = tree.buffer_count()
        out.buffers_inserted += buffers
        if cost != float("inf"):
            out.total_cost += cost
        if not dp_ok:
            out.dp_infeasible_nets.append(name)
        if not meets:
            out.failed_nets.append(name)
        if tracer.enabled:
            tracer.count("buffer_sites_used", buffers)
            tracer.event(
                "buffered" if meets else "failed",
                name,
                stage="3",
                buffers=buffers,
                dp_feasible=dp_ok,
            )
            tracer.check_site_invariants(graph, f"stage3 net {name}")
    return out
