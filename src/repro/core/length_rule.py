"""Driven-length accounting for the length-based buffering rule.

The paper (Fig. 3) requires the *total* downstream interconnect driven by
any gate — the net's driver or any inserted buffer — to be at most ``L_i``
tile units. Summing over all branches (not just the longest path) prevents
the 7-sink star of Fig. 3 from passing with 11 driven units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile


@dataclass(frozen=True)
class GateLoad:
    """One gate and the tile-length of wire it drives.

    ``gate_tile`` is where the gate sits; ``drives_child`` distinguishes a
    decoupling buffer (branch scope) from the driver / a trunk buffer
    (``None`` scope).
    """

    gate_tile: Tile
    drives_child: Optional[Tile]
    driven_length: int
    is_driver: bool = False


def _unbuffered_below(tree: RouteTree) -> Dict[Tile, int]:
    """Unbuffered downstream tile-length looking into each node."""
    below: Dict[Tile, int] = {}
    for node in tree.postorder():
        if node.trunk_buffer:
            below[node.tile] = 0
            continue
        total = 0
        for child in node.children:
            if child.tile in node.decoupled_children:
                continue
            total += 1 + below[child.tile]
        below[node.tile] = total
    return below


def driven_lengths(tree: RouteTree) -> List[GateLoad]:
    """The wire load of every gate on the net (driver first)."""
    below = _unbuffered_below(tree)
    out: List[GateLoad] = []

    def contents_length(node) -> int:
        total = 0
        for child in node.children:
            if child.tile in node.decoupled_children:
                continue
            total += 1 + below[child.tile]
        return total

    root = tree.root
    if root.trunk_buffer:
        out.append(GateLoad(root.tile, None, 0, is_driver=True))
    else:
        out.append(GateLoad(root.tile, None, contents_length(root), is_driver=True))

    for node in tree.preorder():
        if node.trunk_buffer:
            out.append(GateLoad(node.tile, None, contents_length(node)))
        for child in sorted(node.decoupled_children):
            out.append(GateLoad(node.tile, child, 1 + below[child]))
    return out


def length_violations(tree: RouteTree, length_limit: int) -> int:
    """Number of gates driving more than ``length_limit`` tile units.

    Counts the same gates as :func:`driven_lengths` without materializing
    the :class:`GateLoad` records — this runs once per net inside the
    Stage-3/4 commit path.
    """
    below = _unbuffered_below(tree)
    violations = 0
    root = tree.root
    if not root.trunk_buffer:
        total = 0
        for child in root.children:
            if child.tile not in root.decoupled_children:
                total += 1 + below[child.tile]
        if total > length_limit:
            violations += 1
    for node in tree.preorder():
        if node.trunk_buffer:
            total = 0
            for child in node.children:
                if child.tile not in node.decoupled_children:
                    total += 1 + below[child.tile]
            if total > length_limit:
                violations += 1
        for child in node.decoupled_children:
            if 1 + below[child] > length_limit:
                violations += 1
    return violations


def net_meets_length_rule(tree: RouteTree, length_limit: int) -> bool:
    """True when no gate of the net over-drives (the paper's per-net pass/fail)."""
    return length_violations(tree, length_limit) == 0
