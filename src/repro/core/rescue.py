"""Stage-4 rescue pass: whole-net re-routing for still-failing nets.

Two-path optimization keeps a net's Steiner topology; when a Steiner node
sits deep inside the zero-site blocked region, no two-path swap can make
the net bufferable. This pass goes further for the nets that still fail
after the regular Stage-4 iterations: it rips the entire net and rebuilds
its tree with the buffer-aware ``(tile, j)`` wavefront — the source-to-
first-sink path and every subsequent sink-to-tree attachment are all
chosen from *bufferable* paths, so the new topology naturally detours
around site-starved territory. The Stage-3 DP then re-inserts buffers; if
the rebuilt net still has no legal buffering (or is worse), the original
route is restored.

This is an extension of the paper's Stage 4 in its spirit ("reduce ... the
number of nets which, up until now, have failed to meet their length
constraint"); it is switchable via ``RabidConfig.rescue_failing``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.assignment import assign_buffers_to_net
from repro.core.length_rule import length_violations
from repro.core.two_path import best_buffered_path, _window_for
from repro.routing.maze import route_net_on_tiles
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph


def _bufferable_tree(
    graph: TileGraph,
    source: Tile,
    sinks: List[Tile],
    q_of: Callable[[Tile], float],
    length_limit: int,
    window_margin: int,
    net_name: str,
) -> Optional[RouteTree]:
    """Grow a tree from bufferable paths; None when any sink is cut off."""
    tree_tiles: Set[Tile] = {source}
    paths: List[List[Tile]] = []
    pending = sorted(
        (t for t in sinks if t != source),
        key=lambda t: abs(t[0] - source[0]) + abs(t[1] - source[1]),
    )
    for sink in pending:
        if sink in tree_tiles:
            continue
        window = _window_for(graph, source, sink, max(window_margin, 10))
        # Widen the window to cover the current tree extent as well.
        xs = [t[0] for t in tree_tiles] + [sink[0]]
        ys = [t[1] for t in tree_tiles] + [sink[1]]
        margin = max(window_margin, 10)
        window = (
            max(0, min(xs) - margin),
            max(0, min(ys) - margin),
            min(graph.nx - 1, max(xs) + margin),
            min(graph.ny - 1, max(ys) + margin),
        )
        path = best_buffered_path(
            graph, sink, set(tree_tiles), q_of, length_limit,
            forbidden=set(), window=window,
        )
        if path is None:
            return None
        paths.append(path)
        tree_tiles.update(path)
    return RouteTree.from_paths(source, paths, sinks, net_name=net_name)


def rescue_net(
    graph: TileGraph,
    tree: RouteTree,
    length_limit: int,
    q_of: Callable[[Tile], float],
    window_margin: int = 10,
) -> Tuple[RouteTree, bool]:
    """Attempt a whole-net bufferable re-route.

    Preconditions: the tree's wire *and* buffer usage are recorded on the
    graph. On success returns ``(new_tree, True)`` with usage transferred;
    on failure the original tree and its usage are untouched and
    ``(tree, False)`` is returned.

    The whole attempt — rip, candidate wires, buffer reinsertion — runs
    inside one :class:`SiteLedger` transaction; a non-improvement (or an
    exception at any point) rolls every wire and site delta back, which
    restores exactly the state the old hand-rolled remove/add pairs did.
    """
    old_violations = length_violations(tree, length_limit)
    if old_violations == 0:
        return tree, False
    source = tree.source
    sinks = tree.sink_tiles

    ledger = graph.ledger()
    with ledger.transaction() as txn:
        tree.remove_usage(graph)
        candidate = _bufferable_tree(
            graph, source, sinks, q_of, length_limit, window_margin, tree.net_name
        )
        if candidate is None:
            txn.rollback()  # re-adds the original tree's usage
            return tree, False
        candidate.add_usage(graph)  # wires only; no buffers annotated yet
        meets, _, _ = assign_buffers_to_net(graph, candidate, length_limit, None)
        new_violations = length_violations(candidate, length_limit)
        if new_violations < old_violations:
            return candidate, True  # scope exit commits the transfer
        txn.rollback()  # drops the candidate's usage, restores the tree's
        return tree, False


def rescue_failing_nets(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    failing: List[str],
    length_limits: Dict[str, int],
    q_of: Callable[[Tile], float],
    window_margin: int = 10,
    tracer=None,
) -> List[str]:
    """Rescue every failing net; returns the names still failing after.

    With a ``tracer``, every whole-net re-route emits a ``rescued`` event
    (or ``failed`` when the net still violates its rule) and bumps the
    ``nets_rescued`` counter.
    """
    still_failing: List[str] = []
    for name in sorted(failing):
        tree = routes[name]
        limit = length_limits[name]
        new_tree, changed = rescue_net(
            graph, tree, limit, q_of, window_margin
        )
        routes[name] = new_tree
        still_fails = length_violations(new_tree, limit) > 0
        if still_fails:
            still_failing.append(name)
        if tracer is not None and tracer.enabled:
            if changed and not still_fails:
                tracer.count("nets_rescued")
            tracer.event(
                "rescued" if not still_fails else "failed",
                name,
                stage="4",
                rerouted=changed,
            )
            tracer.check_site_invariants(graph, f"rescue net {name}")
    return still_failing
