"""The paper's primary contribution: RABID buffer/wire resource allocation.

Modules:

* :mod:`repro.core.costs` — the buffer-site cost ``q(v)`` (Eq. 2).
* :mod:`repro.core.probability` — the usage-probability tracker ``p(v)``.
* :mod:`repro.core.length_rule` — driven-length accounting and violation
  checks for the length-based buffering rule (Fig. 3 interpretation).
* :mod:`repro.core.single_sink` — the single-sink DP of Fig. 6.
* :mod:`repro.core.multi_sink` — the multi-sink DP of Fig. 9.
* :mod:`repro.core.fallback` — greedy best-effort buffering when the DP is
  infeasible (e.g., routes crossing the zero-site blocked region).
* :mod:`repro.core.assignment` — Stage 3 over a whole design.
* :mod:`repro.core.two_path` — Stage 4 two-path rip-up-and-reroute.
* :mod:`repro.core.rabid` — the four-stage planner and its metrics.
"""

from repro.core.costs import buffer_site_cost
from repro.core.probability import UsageProbability
from repro.core.length_rule import driven_lengths, length_violations, net_meets_length_rule
from repro.core.single_sink import insert_buffers_single_sink
from repro.core.multi_sink import insert_buffers_multi_sink, DPResult
from repro.core.fallback import greedy_buffering
from repro.core.assignment import assign_buffers_stage3, AssignmentResult
from repro.core.two_path import optimize_two_paths
from repro.core.rescue import rescue_failing_nets, rescue_net
from repro.core.rabid import RabidConfig, RabidPlanner, RabidResult, StageMetrics
from repro.core.layers import (
    LayerAssignment,
    LayerSpec,
    assign_layers,
    default_layer_stack,
)

__all__ = [
    "LayerSpec",
    "LayerAssignment",
    "assign_layers",
    "default_layer_stack",
    "buffer_site_cost",
    "UsageProbability",
    "driven_lengths",
    "length_violations",
    "net_meets_length_rule",
    "insert_buffers_single_sink",
    "insert_buffers_multi_sink",
    "DPResult",
    "greedy_buffering",
    "assign_buffers_stage3",
    "AssignmentResult",
    "optimize_two_paths",
    "rescue_net",
    "rescue_failing_nets",
    "RabidConfig",
    "RabidPlanner",
    "RabidResult",
    "StageMetrics",
]
