"""Layer-aware length limits (paper Section II, footnote 4).

"If some nets can be routed on higher metal layers while others cannot,
different nets can have different L_i values depending on their layer."
This module assigns global nets to routing layers and derives the per-net
``length_limits`` dict that :class:`RabidConfig` consumes:

* a :class:`LayerSpec` gives each layer a length limit (thick top metal
  has lower RC per mm, hence a larger L) and a capacity share;
* :func:`assign_layers` hands the longest nets the thickest layers until
  each layer's share of nets is exhausted — the usual promotion policy
  for timing-critical global wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.netlist import Netlist


@dataclass(frozen=True)
class LayerSpec:
    """One routing layer-pair available to global nets.

    Attributes:
        name: e.g. ``"M7M8"``.
        length_limit: the L (tile units) a gate may drive on this layer.
        share: fraction of the net count this layer can absorb.
    """

    name: str
    length_limit: int
    share: float

    def __post_init__(self) -> None:
        if self.length_limit < 1:
            raise ConfigurationError(f"layer {self.name}: L must be >= 1")
        if not 0 < self.share <= 1:
            raise ConfigurationError(f"layer {self.name}: share must be in (0, 1]")


@dataclass(frozen=True)
class LayerAssignment:
    """The result: per-net layer names and length limits."""

    layer_of: Dict[str, str]
    length_limits: Dict[str, int]

    def nets_on(self, layer_name: str) -> List[str]:
        return sorted(n for n, l in self.layer_of.items() if l == layer_name)


def default_layer_stack(base_limit: int) -> List[LayerSpec]:
    """A typical three-tier stack around a base (thin-metal) limit.

    Thick top metal roughly halves wire RC, doubling the drivable length;
    a semi-thick middle tier sits between.
    """
    return [
        LayerSpec("THICK", length_limit=base_limit * 2, share=0.10),
        LayerSpec("SEMI", length_limit=max(1, int(base_limit * 1.5)), share=0.20),
        LayerSpec("THIN", length_limit=base_limit, share=1.0),
    ]


def assign_layers(
    netlist: Netlist,
    layers: Sequence[LayerSpec],
) -> LayerAssignment:
    """Longest-nets-first promotion onto the layer stack.

    Layers are consumed in the given order (thickest first by
    convention); each takes up to ``share * len(netlist)`` nets. The last
    layer must be able to absorb the remainder (share 1.0 is typical).

    Raises:
        ConfigurationError: when the stack is empty or cannot absorb all
            nets.
    """
    if not layers:
        raise ConfigurationError("empty layer stack")
    order = sorted(
        netlist,
        key=lambda n: (-n.half_perimeter_wirelength(), n.name),
    )
    total = len(order)
    layer_of: Dict[str, str] = {}
    limits: Dict[str, int] = {}
    cursor = 0
    for layer in layers:
        quota = total if layer.share >= 1.0 else int(layer.share * total)
        for net in order[cursor : min(cursor + quota, total)]:
            layer_of[net.name] = layer.name
            limits[net.name] = layer.length_limit
        cursor = min(cursor + quota, total)
        if cursor >= total:
            break
    if cursor < total:
        raise ConfigurationError(
            f"layer stack absorbs only {cursor} of {total} nets; "
            "give the last layer share=1.0"
        )
    return LayerAssignment(layer_of=layer_of, length_limits=limits)
