"""Small generic utilities: deterministic RNG handling, union-find."""

from repro.utils.rng import make_rng
from repro.utils.union_find import UnionFind

__all__ = ["make_rng", "UnionFind"]
