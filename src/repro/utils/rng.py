"""Deterministic random-number-generator plumbing.

Every stochastic component of the library accepts either an integer seed or
an existing :class:`numpy.random.Generator`. Centralizing the coercion keeps
experiment configurations reproducible: the same seed always produces the
same circuit, floorplan, and site distribution.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a numpy Generator.

    ``None`` yields a generator seeded from entropy (non-reproducible); an
    ``int`` yields a fresh PCG64 stream; an existing generator is passed
    through so callers can share one stream across components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, salt: int) -> np.random.Generator:
    """A child generator whose stream is independent of its siblings.

    Used when one top-level seed must fan out to several components whose
    draw counts may change independently without perturbing each other.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1) + salt)
