"""Disjoint-set forest with path compression and union by size."""

from __future__ import annotations

from typing import Dict, Hashable, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Classic union-find over arbitrary hashable items.

    Items are added lazily on first use; ``find`` of an unseen item creates
    a singleton set for it.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def find(self, item: T) -> T:
        """Representative of ``item``'s set."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root  # type: ignore[return-value]

    def union(self, a: T, b: T) -> bool:
        """Merge the sets of ``a`` and ``b``; False when already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: T, b: T) -> bool:
        return self.find(a) == self.find(b)

    def set_size(self, item: T) -> int:
        """Number of items in ``item``'s set."""
        return self._size[self.find(item)]
