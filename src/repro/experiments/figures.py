"""Regenerators for the paper's figures.

The evaluation figures are illustrations rather than data plots; each has
a regenerator here (or a dedicated test, for the worked examples):

* **Fig. 1** (buffer-block plan on xerox): :func:`figure1_svg` — runs the
  BBP/FR baseline on xerox and renders the floorplan with the buffer
  locations clustered between blocks.
* **Fig. 2** (buffer sites -> tile abstraction): :func:`figure2_ascii` —
  the per-tile site-count matrix view of a distribution.
* **Fig. 3** (total-driven-length rule): reproduced by
  ``tests/core/test_length_rule.py::TestFigure3Interpretation``.
* **Fig. 4** (overlap removal): ``tests/routing/test_steiner.py``.
* **Fig. 5/7** (single-sink DP example, optimum 1.5):
  ``tests/core/test_single_sink.py::TestPaperExample``.
* **Fig. 6/9** (pseudocode): the implementations in
  :mod:`repro.core.single_sink` / :mod:`repro.core.multi_sink`.
* **Fig. 8** (two-child buffering cases):
  ``tests/core/test_multi_sink.py``.
"""

from __future__ import annotations

from repro.analysis.svg import floorplan_svg
from repro.analysis.maps import site_distribution_map
from repro.bbp import BbpConfig, BbpPlanner
from repro.benchmarks import BenchmarkInstance, load_benchmark


def figure1_svg(bench: "BenchmarkInstance | None" = None, seed: int = 0) -> str:
    """Fig. 1: a buffer-block plan — BBP/FR's buffers drawn on the
    floorplan, visibly packed into the space between macros."""
    if bench is None:
        bench = load_benchmark("xerox", seed=seed)
    planner = BbpPlanner(
        bench.graph,
        bench.floorplan,
        bench.netlist,
        BbpConfig(length_limit=bench.spec.length_limit, postprocess=False),
    )
    result = planner.run()
    return floorplan_svg(bench.floorplan, buffer_points=result.buffer_points)


def figure2_ascii(bench: "BenchmarkInstance | None" = None, seed: int = 0) -> str:
    """Fig. 2(b): the tile abstraction of a buffer-site distribution."""
    if bench is None:
        bench = load_benchmark("apte", seed=seed)
    return site_distribution_map(bench.graph)
