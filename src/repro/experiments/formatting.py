"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width table with a header separator, matching paper layout."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines: List[str] = [fmt(headers), "-" * (sum(widths) + 2 * (columns - 1))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
