"""Experiment harnesses regenerating every table of the paper's evaluation.

Each ``tableN`` module exposes a ``run_*`` function returning structured
rows plus a ``format_*`` function printing the same columns as the paper.
The pytest-benchmark drivers in ``benchmarks/`` call these.
"""

from repro.experiments.config import ExperimentConfig, planner_config_for
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import Table2Row, run_table2_circuit, format_table2
from repro.experiments.table3 import Table3Row, run_table3_circuit, format_table3
from repro.experiments.table4 import Table4Row, run_table4_circuit, format_table4
from repro.experiments.table5 import Table5Row, run_table5_circuit, format_table5
from repro.experiments.figures import figure1_svg, figure2_ascii
from repro.experiments.runner import render_report, run_all_tables

__all__ = [
    "run_all_tables",
    "render_report",
    "figure1_svg",
    "figure2_ascii",
    "ExperimentConfig",
    "planner_config_for",
    "run_table1",
    "format_table1",
    "Table2Row",
    "run_table2_circuit",
    "format_table2",
    "Table3Row",
    "run_table3_circuit",
    "format_table3",
    "Table4Row",
    "run_table4_circuit",
    "format_table4",
    "Table5Row",
    "run_table5_circuit",
    "format_table5",
]
