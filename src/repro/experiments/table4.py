"""Table IV: sensitivity to grid size (apte, ami49, playout).

The buffer-site budget is held at the Table I value while the tiling is
swept from ~10x10 to ~50x55. Wire capacities rescale with the tile side
(see :meth:`BenchmarkSpec.scaled_wire_capacity`), since halving a tile
halves the routing tracks its boundary carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.benchmarks import BENCHMARK_SPECS, load_benchmark
from repro.core import RabidPlanner, StageMetrics
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig, planner_config_for
from repro.experiments.formatting import render_table


@dataclass(frozen=True)
class Table4Row:
    """One (circuit, grid) row."""

    circuit: str
    grid: Tuple[int, int]
    metrics: StageMetrics


def run_table4_circuit(
    name: str,
    experiment: Optional[ExperimentConfig] = None,
    grids: Optional[List[Tuple[int, int]]] = None,
) -> List[Table4Row]:
    """Run the grid sweep for one circuit (final metrics per run)."""
    experiment = experiment or ExperimentConfig()
    spec = BENCHMARK_SPECS.get(name)
    if spec is None:
        raise ConfigurationError(f"unknown benchmark {name!r}")
    sweep = grids or list(spec.grid_variants)
    if not sweep:
        raise ConfigurationError(f"{name} has no Table IV grid variants")
    rows: List[Table4Row] = []
    for grid in sweep:
        bench = load_benchmark(name, seed=experiment.seed, grid=grid)
        planner = RabidPlanner(
            bench.graph, bench.netlist, planner_config_for(bench, experiment)
        )
        result = planner.run()
        rows.append(Table4Row(name, grid, result.final_metrics))
    return rows


def format_table4(rows: List[Table4Row]) -> str:
    headers = [
        "circuit", "grid", "wire max", "wire avg", "overflows",
        "buf max", "buf avg", "#bufs", "#fails", "wirelength",
        "delay max", "delay avg", "CPU(s)",
    ]
    cells = []
    for r in rows:
        m = r.metrics
        cells.append(
            [
                r.circuit,
                f"{r.grid[0]}x{r.grid[1]}",
                f"{m.wire_congestion_max:.2f}",
                f"{m.wire_congestion_avg:.2f}",
                str(m.overflows),
                f"{m.buffer_density_max:.2f}",
                f"{m.buffer_density_avg:.2f}",
                str(m.num_buffers),
                str(m.num_fails),
                f"{m.wirelength_mm:.0f}",
                f"{m.max_delay_ps:.0f}",
                f"{m.avg_delay_ps:.0f}",
                f"{m.cpu_seconds:.1f}",
            ]
        )
    return render_table(headers, cells)
