"""Table II: stage-by-stage RABID results.

For the six CBL circuits the paper prints one row per stage; for the four
random circuits only the final (stage 1-4 cumulative) row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.benchmarks import load_benchmark
from repro.core import RabidPlanner, StageMetrics
from repro.experiments.config import ExperimentConfig, planner_config_for
from repro.experiments.formatting import render_table


@dataclass(frozen=True)
class Table2Row:
    """One (circuit, stage) row of Table II."""

    circuit: str
    stage: str
    metrics: StageMetrics


def run_table2_circuit(
    name: str,
    experiment: Optional[ExperimentConfig] = None,
    final_only: bool = False,
    tracer=None,
) -> List[Table2Row]:
    """Run RABID on one benchmark, returning per-stage (or final) rows."""
    experiment = experiment or ExperimentConfig()
    bench = load_benchmark(name, seed=experiment.seed)
    planner = RabidPlanner(
        bench.graph, bench.netlist, planner_config_for(bench, experiment),
        tracer=tracer,
    )
    result = planner.run()
    if final_only:
        return [Table2Row(name, "1-4", result.final_metrics)]
    return [
        Table2Row(name, str(m.stage), m) for m in result.stage_metrics
    ]


def format_table2(rows: List[Table2Row]) -> str:
    headers = [
        "circuit", "stage", "wire max", "wire avg", "overflows",
        "buf max", "buf avg", "#bufs", "#fails", "wirelength",
        "delay max", "delay avg", "CPU(s)",
    ]
    cells = []
    for r in rows:
        m = r.metrics
        cells.append(
            [
                r.circuit,
                r.stage,
                f"{m.wire_congestion_max:.2f}",
                f"{m.wire_congestion_avg:.2f}",
                str(m.overflows),
                f"{m.buffer_density_max:.2f}",
                f"{m.buffer_density_avg:.2f}",
                str(m.num_buffers),
                str(m.num_fails),
                f"{m.wirelength_mm:.0f}",
                f"{m.max_delay_ps:.0f}",
                f"{m.avg_delay_ps:.0f}",
                f"{m.cpu_seconds:.1f}",
            ]
        )
    return render_table(headers, cells)
