"""Table I: test circuit statistics and parameters.

The specs are the published numbers; this harness additionally verifies
that a synthesized instance honors them (net/pad/sink counts, die and tile
geometry, site budget) and reports the realized %chip-area of the sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.benchmarks import BENCHMARK_SPECS, BenchmarkInstance, load_benchmark
from repro.experiments.formatting import render_table
from repro.technology import TECH_180NM


@dataclass(frozen=True)
class Table1Row:
    """One circuit's statistics, as realized by the generator."""

    circuit: str
    cells: int
    nets: int
    pads: int
    sinks: int
    grid: str
    tile_area_mm2: float
    length_limit: int
    buffer_sites: int
    chip_area_pct: float


def row_for_instance(bench: BenchmarkInstance) -> Table1Row:
    """Measure the realized statistics of a synthesized instance."""
    spec = bench.spec
    pad_pins = sum(
        1 for net in bench.netlist for pin in net.pins if pin.owner == "PAD"
    )
    site_area = bench.graph.total_sites * TECH_180NM.buffer_area_mm2
    return Table1Row(
        circuit=spec.name,
        cells=len(bench.floorplan.blocks),
        nets=len(bench.netlist),
        pads=spec.pads if pad_pins else 0,
        sinks=bench.netlist.total_sinks,
        grid=f"{bench.graph.nx}x{bench.graph.ny}",
        tile_area_mm2=bench.graph.tile_area_mm2,
        length_limit=spec.length_limit,
        buffer_sites=bench.graph.total_sites,
        chip_area_pct=100.0 * site_area / bench.die.area,
    )


def run_table1(seed: int = 0) -> List[Table1Row]:
    """Synthesize all ten benchmarks and collect their statistics."""
    return [
        row_for_instance(load_benchmark(name, seed=seed))
        for name in BENCHMARK_SPECS
    ]


def format_table1(rows: List[Table1Row]) -> str:
    headers = [
        "circuit", "cells", "nets", "pads", "sinks", "grid",
        "tile area", "L_i", "buffer sites", "%chip area",
    ]
    cells = [
        [
            r.circuit,
            str(r.cells),
            str(r.nets),
            str(r.pads),
            str(r.sinks),
            r.grid,
            f"{r.tile_area_mm2:.2f}",
            str(r.length_limit),
            str(r.buffer_sites),
            f"{r.chip_area_pct:.2f}",
        ]
        for r in rows
    ]
    return render_table(headers, cells)


def paper_table1() -> Dict[str, Dict[str, float]]:
    """The paper's Table I values, for EXPERIMENTS.md comparisons."""
    return {
        name: {
            "cells": spec.cells,
            "nets": spec.nets,
            "pads": spec.pads,
            "sinks": spec.sinks,
            "tile_area": spec.tile_area_mm2,
            "L": spec.length_limit,
            "sites": spec.buffer_sites,
            "pct": spec.chip_area_pct,
        }
        for name, spec in BENCHMARK_SPECS.items()
    }
