"""One-call reproduction: render every table programmatically.

``run_all_tables(quick=True)`` returns the rendered text of Tables I-V
(quick mode runs representative circuit subsets; full mode the paper's
complete sweeps). The pytest-benchmark drivers in ``benchmarks/`` remain
the canonical timed harness; this entry point serves notebooks, CI
smoke-checks, and the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2_circuit
from repro.experiments.table3 import format_table3, run_table3_circuit
from repro.experiments.table4 import format_table4, run_table4_circuit
from repro.experiments.table5 import format_table5, run_table5_circuit

QUICK_TABLE2 = ["apte", "hp"]
FULL_TABLE2 = ["apte", "xerox", "hp", "ami33", "ami49", "playout"]
FULL_TABLE2_FINAL = ["ac3", "xc5", "hc7", "a9c3"]
QUICK_TABLE3 = ["apte"]
FULL_TABLE3 = FULL_TABLE2
QUICK_TABLE4 = {"apte": [(10, 11), (30, 33)]}
FULL_TABLE4 = {"apte": None, "ami49": None, "playout": None}
QUICK_TABLE5 = ["apte"]
FULL_TABLE5 = FULL_TABLE2 + FULL_TABLE2_FINAL


def run_all_tables(
    quick: bool = True,
    experiment: Optional[ExperimentConfig] = None,
    tracer=None,
) -> Dict[str, str]:
    """Regenerate every table; returns {'Table I': text, ...}.

    Quick mode finishes in a few minutes; full mode is the paper's
    complete sweep (tens of minutes). With a ``tracer``
    (:class:`repro.obs.Tracer`), every table gets a span, the planner
    runs are fully instrumented, and the returned dict gains a
    ``"Metrics"`` entry holding the metrics snapshot.
    """
    from repro.obs import NULL_TRACER

    experiment = experiment or ExperimentConfig(
        stage4_iterations=1 if quick else 2
    )
    trace = tracer if tracer is not None else NULL_TRACER
    out: Dict[str, str] = {}
    with trace.span("tables.table1"):
        out["Table I"] = format_table1(run_table1(seed=experiment.seed))

    rows2 = []
    with trace.span("tables.table2"):
        for name in QUICK_TABLE2 if quick else FULL_TABLE2:
            rows2.extend(run_table2_circuit(name, experiment, tracer=tracer))
        if not quick:
            for name in FULL_TABLE2_FINAL:
                rows2.extend(
                    run_table2_circuit(
                        name, experiment, final_only=True, tracer=tracer
                    )
                )
    out["Table II"] = format_table2(rows2)

    rows3 = []
    with trace.span("tables.table3"):
        for name in QUICK_TABLE3 if quick else FULL_TABLE3:
            rows3.extend(run_table3_circuit(name, experiment))
    out["Table III"] = format_table3(rows3)

    rows4 = []
    with trace.span("tables.table4"):
        sweeps = QUICK_TABLE4 if quick else FULL_TABLE4
        for name, grids in sweeps.items():
            rows4.extend(run_table4_circuit(name, experiment, grids=grids))
    out["Table IV"] = format_table4(rows4)

    rows5 = []
    with trace.span("tables.table5"):
        for name in QUICK_TABLE5 if quick else FULL_TABLE5:
            rows5.extend(run_table5_circuit(name, experiment, tracer=tracer))
    out["Table V"] = format_table5(rows5)

    if trace.enabled:
        out["Metrics"] = trace.metrics.render()
    return out


def render_report(tables: Dict[str, str]) -> str:
    """Join rendered tables into one report document."""
    sections: List[str] = []
    for title in sorted(tables):
        sections.append(f"== {title} ==")
        sections.append(tables[title])
        sections.append("")
    return "\n".join(sections)
