"""Table V: RABID vs buffer-block planning (BBP/FR).

Following the paper's protocol, multipin nets are decomposed into two-pin
nets for both planners. Both run on the *same* synthesized instance
geometry; each gets a fresh tile graph so wire usage does not mix. The
comparison statistics are wire congestion, overflows, buffer count, MTAP
(maximum tile area percentage occupied by buffers), wirelength, sink
delays, and CPU time.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional

from repro.bbp import BbpConfig, BbpPlanner, max_tile_area_pct
from repro.benchmarks import load_benchmark
from repro.core import RabidPlanner
from repro.experiments.config import ExperimentConfig, planner_config_for
from repro.experiments.formatting import render_table
from repro.netlist import decompose_to_two_pin
from repro.technology import TECH_180NM


@dataclass(frozen=True)
class Table5Row:
    """One (circuit, algorithm) row of Table V."""

    circuit: str
    algorithm: str
    wire_congestion_max: float
    wire_congestion_avg: float
    overflows: int
    num_buffers: int
    mtap_pct: float
    wirelength_mm: float
    max_delay_ps: float
    avg_delay_ps: float
    cpu_seconds: float


def run_table5_circuit(
    name: str,
    experiment: Optional[ExperimentConfig] = None,
    capacity_scale: float = 1.5,
    tracer=None,
) -> List[Table5Row]:
    """Run both planners on one benchmark; returns [BBP row, RABID row].

    ``capacity_scale`` re-bases the tile-edge wire capacities: the star
    decomposition roughly doubles total wire demand versus the Steiner
    routing the Table II capacities were calibrated for (the paper's own
    Table V congestion averages sit well below its Table II values,
    implying the same re-basing). 1.5 keeps the decomposed instances in
    the *tight* regime the paper evaluates: the congestion-aware RABID
    still closes them while the congestion-blind BBP/FR overflows on the
    hard circuits — the paper's headline contrast.
    """
    experiment = experiment or ExperimentConfig()
    from repro.benchmarks import BENCHMARK_SPECS

    capacity = max(1, round(BENCHMARK_SPECS[name].default_wire_capacity * capacity_scale))

    # BBP gets the pristine instance.
    bench_bbp = load_benchmark(name, seed=experiment.seed, wire_capacity=capacity)
    two_pin = decompose_to_two_pin(bench_bbp.netlist)
    bbp = BbpPlanner(
        bench_bbp.graph,
        bench_bbp.floorplan,
        bench_bbp.netlist,
        BbpConfig(length_limit=bench_bbp.spec.length_limit),
    )
    bbp_result = bbp.run(tracer=tracer)
    bbp_row = Table5Row(
        circuit=name,
        algorithm="BBP/FR",
        wire_congestion_max=bbp_result.wire_congestion_max,
        wire_congestion_avg=bbp_result.wire_congestion_avg,
        overflows=bbp_result.overflows,
        num_buffers=bbp_result.num_buffers,
        mtap_pct=bbp_result.mtap_pct,
        wirelength_mm=bbp_result.wirelength_mm,
        max_delay_ps=bbp_result.max_delay_ps,
        avg_delay_ps=bbp_result.avg_delay_ps,
        cpu_seconds=bbp_result.cpu_seconds,
    )

    # RABID gets an identical fresh instance and the decomposed netlist.
    bench = load_benchmark(name, seed=experiment.seed, wire_capacity=capacity)
    planner = RabidPlanner(
        bench.graph, two_pin, planner_config_for(bench, experiment),
        tracer=tracer,
    )
    result = planner.run()
    # The same equal-length congestion cleanup the paper applies to both
    # algorithms before measuring Table V.
    from repro.routing.monotone import reduce_congestion

    reduce_congestion(bench.graph, result.routes)
    planner._snapshot(4, 0.0)
    final = planner.stage_metrics[-1]
    rabid_row = Table5Row(
        circuit=name,
        algorithm="RABID",
        wire_congestion_max=final.wire_congestion_max,
        wire_congestion_avg=final.wire_congestion_avg,
        overflows=final.overflows,
        num_buffers=final.num_buffers,
        mtap_pct=max_tile_area_pct(
            copy.deepcopy(bench.graph.used_sites), bench.graph, TECH_180NM
        ),
        wirelength_mm=final.wirelength_mm,
        max_delay_ps=final.max_delay_ps,
        avg_delay_ps=final.avg_delay_ps,
        cpu_seconds=sum(m.cpu_seconds for m in result.stage_metrics),
    )
    return [bbp_row, rabid_row]


def format_table5(rows: List[Table5Row]) -> str:
    headers = [
        "circuit", "algorithm", "wire max", "wire avg", "overflows",
        "#bufs", "MTAP%", "wirelength", "delay max", "delay avg", "CPU(s)",
    ]
    cells = [
        [
            r.circuit,
            r.algorithm,
            f"{r.wire_congestion_max:.2f}",
            f"{r.wire_congestion_avg:.2f}",
            str(r.overflows),
            str(r.num_buffers),
            f"{r.mtap_pct:.2f}",
            f"{r.wirelength_mm:.0f}",
            f"{r.max_delay_ps:.0f}",
            f"{r.avg_delay_ps:.0f}",
            f"{r.cpu_seconds:.1f}",
        ]
        for r in rows
    ]
    return render_table(headers, cells)
