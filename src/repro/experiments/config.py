"""Shared experiment configuration.

The per-benchmark wire capacities live in
:mod:`repro.benchmarks.spec` (``default_wire_capacity``); this module holds
the planner-side knobs and the master seed policy so every table uses the
same instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks import BenchmarkInstance
from repro.core import RabidConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all table harnesses.

    Attributes:
        seed: master seed for benchmark synthesis.
        window_margin: maze/two-path search window margin (tiles). 10 is
            wide enough to skirt the 9x9 blocked region.
        stage2_iterations: paper value 3.
        stage4_iterations: full Stage-4 passes (2 keeps big circuits fast;
            3 squeezes out a few more fail recoveries).
    """

    seed: int = 0
    window_margin: int = 10
    stage2_iterations: int = 3
    stage4_iterations: int = 2


def planner_config_for(
    bench: BenchmarkInstance, experiment: "ExperimentConfig | None" = None
) -> RabidConfig:
    """The RabidConfig used for a benchmark instance in the experiments."""
    experiment = experiment or ExperimentConfig()
    return RabidConfig(
        length_limit=bench.spec.length_limit,
        stage2_iterations=experiment.stage2_iterations,
        stage4_iterations=experiment.stage4_iterations,
        window_margin=experiment.window_margin,
    )
