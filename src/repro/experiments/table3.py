"""Table III: sensitivity to the number of available buffer sites.

Each CBL circuit is run three times with the paper's small/medium/large
site budgets (``BenchmarkSpec.site_variants``); everything else is held at
the Table I configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.benchmarks import BENCHMARK_SPECS, load_benchmark
from repro.core import RabidPlanner, StageMetrics
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig, planner_config_for
from repro.experiments.formatting import render_table


@dataclass(frozen=True)
class Table3Row:
    """One (circuit, site budget) row."""

    circuit: str
    buffer_sites: int
    metrics: StageMetrics


def run_table3_circuit(
    name: str,
    experiment: Optional[ExperimentConfig] = None,
    site_budgets: Optional[List[int]] = None,
) -> List[Table3Row]:
    """Run the site-budget sweep for one circuit (final metrics per run)."""
    experiment = experiment or ExperimentConfig()
    spec = BENCHMARK_SPECS.get(name)
    if spec is None:
        raise ConfigurationError(f"unknown benchmark {name!r}")
    budgets = site_budgets or list(spec.site_variants)
    if not budgets:
        raise ConfigurationError(f"{name} has no Table III site variants")
    rows: List[Table3Row] = []
    for sites in budgets:
        bench = load_benchmark(name, seed=experiment.seed, total_sites=sites)
        planner = RabidPlanner(
            bench.graph, bench.netlist, planner_config_for(bench, experiment)
        )
        result = planner.run()
        rows.append(Table3Row(name, sites, result.final_metrics))
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    headers = [
        "circuit", "buffer sites", "wire max", "wire avg", "overflows",
        "buf max", "buf avg", "#bufs", "#fails", "wirelength",
        "delay max", "delay avg", "CPU(s)",
    ]
    cells = []
    for r in rows:
        m = r.metrics
        cells.append(
            [
                r.circuit,
                str(r.buffer_sites),
                f"{m.wire_congestion_max:.2f}",
                f"{m.wire_congestion_avg:.2f}",
                str(m.overflows),
                f"{m.buffer_density_max:.2f}",
                f"{m.buffer_density_avg:.2f}",
                str(m.num_buffers),
                str(m.num_fails),
                f"{m.wirelength_mm:.0f}",
                f"{m.max_delay_ps:.0f}",
                f"{m.avg_delay_ps:.0f}",
                f"{m.cpu_seconds:.1f}",
            ]
        )
    return render_table(headers, cells)
