"""Structured per-net and design-level reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.length_rule import length_violations
from repro.routing.tree import RouteTree
from repro.technology import Technology
from repro.tilegraph.congestion import buffer_density_stats, wire_congestion_stats
from repro.tilegraph.graph import TileGraph
from repro.timing.elmore import net_delay


@dataclass(frozen=True)
class NetReport:
    """One net's planning outcome."""

    name: str
    wirelength_mm: float
    wirelength_tiles: int
    num_sinks: int
    num_buffers: int
    max_delay_ps: float
    avg_delay_ps: float
    length_violations: int


@dataclass(frozen=True)
class DesignReport:
    """Whole-design planning outcome (the Table II final-row figures)."""

    nets: List[NetReport]
    total_wirelength_mm: float
    total_buffers: int
    failed_nets: List[str]
    wire_congestion_max: float
    wire_congestion_avg: float
    wire_overflow: int
    buffer_density_max: float
    buffer_density_avg: float
    max_delay_ps: float
    avg_delay_ps: float

    def worst_nets(self, count: int = 10) -> List[NetReport]:
        """The nets with the highest max sink delay."""
        return sorted(self.nets, key=lambda n: -n.max_delay_ps)[:count]


def design_report(
    routes: Dict[str, RouteTree],
    graph: TileGraph,
    tech: Technology,
    length_limit: int,
) -> DesignReport:
    """Measure everything the experiment tables need, per net and overall."""
    nets: List[NetReport] = []
    failed: List[str] = []
    delay_total = 0.0
    delay_count = 0
    delay_worst = 0.0
    for name in sorted(routes):
        tree = routes[name]
        report = net_delay(tree, graph, tech)
        violations = length_violations(tree, length_limit)
        if violations:
            failed.append(name)
        nets.append(
            NetReport(
                name=name,
                wirelength_mm=tree.wirelength_mm(graph),
                wirelength_tiles=tree.wirelength_tiles(),
                num_sinks=len(tree.sink_tiles),
                num_buffers=tree.buffer_count(),
                max_delay_ps=report.max_delay * 1e12,
                avg_delay_ps=report.avg_delay * 1e12,
                length_violations=violations,
            )
        )
        for value in report.sink_delays.values():
            delay_total += value
            delay_count += 1
        delay_worst = max(delay_worst, report.max_delay)

    wire = wire_congestion_stats(graph)
    buffers = buffer_density_stats(graph)
    return DesignReport(
        nets=nets,
        total_wirelength_mm=sum(n.wirelength_mm for n in nets),
        total_buffers=sum(n.num_buffers for n in nets),
        failed_nets=failed,
        wire_congestion_max=wire.maximum,
        wire_congestion_avg=wire.average,
        wire_overflow=wire.overflow,
        buffer_density_max=buffers.maximum,
        buffer_density_avg=buffers.average,
        max_delay_ps=delay_worst * 1e12,
        avg_delay_ps=(delay_total / delay_count * 1e12) if delay_count else 0.0,
    )
