"""SVG rendering of floorplans, routes, and buffer placements.

Pure-stdlib string assembly: produces standalone ``.svg`` documents for
Fig.-1-style pictures (floorplan + buffer locations) and planning-state
views (tile grid, blocked region, per-tile buffer usage). No display
dependencies; files open in any browser.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.floorplan import Floorplan
from repro.geometry import Point, Rect
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph

_HEADER = (
    '<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" '
    'viewBox="{vx} {vy} {vw} {vh}">'
)


class SvgCanvas:
    """Minimal SVG document builder in chip (mm) coordinates.

    The y axis is flipped so the die's lower-left corner renders at the
    bottom-left, matching the ASCII maps and the paper's figures.
    """

    def __init__(self, die: Rect, pixels_per_mm: float = 30.0):
        self.die = die
        self.scale = pixels_per_mm
        self._body: List[str] = []

    def _x(self, x: float) -> float:
        return (x - self.die.x0) * self.scale

    def _y(self, y: float) -> float:
        return (self.die.y1 - y) * self.scale

    def rect(
        self,
        r: Rect,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        title: Optional[str] = None,
    ) -> None:
        inner = f"<title>{title}</title>" if title else ""
        self._body.append(
            f'<rect x="{self._x(r.x0):.1f}" y="{self._y(r.y1):.1f}" '
            f'width="{r.width * self.scale:.1f}" '
            f'height="{r.height * self.scale:.1f}" fill="{fill}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" '
            f'opacity="{opacity}">{inner}</rect>'
        )

    def line(
        self, a: Point, b: Point, stroke: str = "black", stroke_width: float = 1.0
    ) -> None:
        self._body.append(
            f'<line x1="{self._x(a.x):.1f}" y1="{self._y(a.y):.1f}" '
            f'x2="{self._x(b.x):.1f}" y2="{self._y(b.y):.1f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )

    def circle(
        self, c: Point, radius_px: float = 2.0, fill: str = "red"
    ) -> None:
        self._body.append(
            f'<circle cx="{self._x(c.x):.1f}" cy="{self._y(c.y):.1f}" '
            f'r="{radius_px:.1f}" fill="{fill}"/>'
        )

    def text(self, at: Point, content: str, size_px: float = 10.0) -> None:
        self._body.append(
            f'<text x="{self._x(at.x):.1f}" y="{self._y(at.y):.1f}" '
            f'font-size="{size_px:.0f}">{content}</text>'
        )

    def render(self) -> str:
        w = self.die.width * self.scale
        h = self.die.height * self.scale
        header = _HEADER.format(w=f"{w:.0f}", h=f"{h:.0f}", vx=0, vy=0,
                                vw=f"{w:.0f}", vh=f"{h:.0f}")
        return "\n".join([header, *self._body, "</svg>"])


def floorplan_svg(
    floorplan: Floorplan,
    buffer_points: "Sequence[Point] | None" = None,
    pixels_per_mm: float = 30.0,
) -> str:
    """A Fig.-1-style picture: die, blocks, and buffer dots."""
    canvas = SvgCanvas(floorplan.die, pixels_per_mm)
    canvas.rect(floorplan.die, fill="white", stroke="black", stroke_width=2)
    for block in floorplan.blocks:
        fill = "#d0d7e4" if block.allows_buffer_sites else "#b0b0b0"
        canvas.rect(block.rect(), fill=fill, stroke="#445",
                    title=block.name)
        canvas.text(
            Point(block.rect().x0 + 0.1, block.rect().y1 - 0.1),
            block.name,
            size_px=max(6.0, pixels_per_mm / 4),
        )
    for p in buffer_points or ():
        canvas.circle(p, radius_px=max(1.5, pixels_per_mm / 12), fill="#c22")
    return canvas.render()


def scatter_svg(
    points: Sequence[dict],
    x: str,
    y: str,
    feasible_key: str = "feasible",
    frontier_key: str = "on_frontier",
    width_px: float = 480.0,
    height_px: float = 360.0,
    title: "str | None" = None,
) -> str:
    """Budget-vs-outcome scatter for sweep results (``repro explore --svg``).

    ``points`` are flat dicts carrying at least ``x`` and ``y`` numeric
    fields; feasible points render blue, infeasible red, and points
    flagged ``on_frontier`` get a ring. Axes are linear with simple
    min/max labels — this is a quick-look artifact, not a plotting
    library.
    """
    margin = 42.0
    usable_w = width_px - 2 * margin
    usable_h = height_px - 2 * margin
    xs = [float(p[x]) for p in points]
    ys = [float(p[y]) for p in points]
    if not xs:
        xs, ys = [0.0], [0.0]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def px(value: float) -> float:
        return margin + (value - x_lo) / x_span * usable_w

    def py(value: float) -> float:
        return height_px - margin - (value - y_lo) / y_span * usable_h

    body: List[str] = [
        _HEADER.format(w=f"{width_px:.0f}", h=f"{height_px:.0f}", vx=0,
                       vy=0, vw=f"{width_px:.0f}", vh=f"{height_px:.0f}"),
        f'<rect x="0" y="0" width="{width_px:.0f}" height="{height_px:.0f}" '
        'fill="white"/>',
        f'<line x1="{margin}" y1="{height_px - margin}" x2="{width_px - margin}" '
        f'y2="{height_px - margin}" stroke="black"/>',
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
        f'y2="{height_px - margin}" stroke="black"/>',
        f'<text x="{width_px / 2:.0f}" y="{height_px - 8:.0f}" '
        f'font-size="11" text-anchor="middle">{x}</text>',
        f'<text x="12" y="{height_px / 2:.0f}" font-size="11" '
        f'text-anchor="middle" '
        f'transform="rotate(-90 12 {height_px / 2:.0f})">{y}</text>',
        f'<text x="{margin:.0f}" y="{height_px - margin + 14:.0f}" '
        f'font-size="9">{x_lo:g}</text>',
        f'<text x="{width_px - margin:.0f}" y="{height_px - margin + 14:.0f}" '
        f'font-size="9" text-anchor="end">{x_hi:g}</text>',
        f'<text x="{margin - 4:.0f}" y="{height_px - margin:.0f}" '
        f'font-size="9" text-anchor="end">{y_lo:g}</text>',
        f'<text x="{margin - 4:.0f}" y="{margin + 4:.0f}" '
        f'font-size="9" text-anchor="end">{y_hi:g}</text>',
    ]
    if title:
        body.append(
            f'<text x="{width_px / 2:.0f}" y="16" font-size="12" '
            f'text-anchor="middle">{title}</text>'
        )
    for p in points:
        cx, cy = px(float(p[x])), py(float(p[y]))
        fill = "#36c" if p.get(feasible_key) else "#c33"
        if p.get(frontier_key):
            body.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="6.0" fill="none" '
                'stroke="#222" stroke-width="1.2"/>'
            )
        hover = p.get("label") or f"{x}={p[x]} {y}={p[y]}"
        body.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="3.2" fill="{fill}">'
            f"<title>{hover}</title></circle>"
        )
    body.append("</svg>")
    return "\n".join(body)


def planning_svg(
    graph: TileGraph,
    floorplan: "Floorplan | None" = None,
    routes: "Dict[str, RouteTree] | None" = None,
    blocked: "Iterable[Tile] | None" = None,
    pixels_per_mm: float = 30.0,
    max_routes: int = 50,
) -> str:
    """Planning-state picture: tiles shaded by buffer usage, wires drawn
    tile-center to tile-center, blocked region hatched gray."""
    canvas = SvgCanvas(graph.die, pixels_per_mm)
    canvas.rect(graph.die, fill="white", stroke="black", stroke_width=2)
    if floorplan is not None:
        for block in floorplan.blocks:
            canvas.rect(block.rect(), fill="#eef0f5", stroke="#99a")
    for tile in graph.tiles():
        sites = graph.site_count(tile)
        used = graph.used_site_count(tile)
        if sites == 0:
            continue
        if used:
            level = min(1.0, used / sites)
            shade = int(255 - 160 * level)
            canvas.rect(
                graph.tile_rect(tile),
                fill=f"rgb(255,{shade},{shade})",
                stroke="none",
                opacity=0.8,
                title=f"{tile}: {used}/{sites} sites",
            )
    for tile in blocked or ():
        canvas.rect(graph.tile_rect(tile), fill="#999", stroke="none",
                    opacity=0.6)
    if routes:
        for i, name in enumerate(sorted(routes)):
            if i >= max_routes:
                break
            tree = routes[name]
            for u, v in tree.edges():
                canvas.line(
                    graph.tile_center(u),
                    graph.tile_center(v),
                    stroke="#36c",
                    stroke_width=0.8,
                )
    return canvas.render()
