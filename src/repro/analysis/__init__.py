"""Analysis and reporting utilities: ASCII maps, per-net reports."""

from repro.analysis.maps import (
    buffer_usage_map,
    site_distribution_map,
    wire_congestion_map,
)
from repro.analysis.report import DesignReport, NetReport, design_report
from repro.analysis.svg import (
    SvgCanvas,
    floorplan_svg,
    planning_svg,
    scatter_svg,
)
from repro.analysis.failures import (
    FailureCause,
    FailureDiagnosis,
    diagnose_failure,
    diagnose_failures,
    failure_summary,
)

__all__ = [
    "FailureCause",
    "FailureDiagnosis",
    "diagnose_failure",
    "diagnose_failures",
    "failure_summary",
    "SvgCanvas",
    "floorplan_svg",
    "planning_svg",
    "scatter_svg",
    "wire_congestion_map",
    "buffer_usage_map",
    "site_distribution_map",
    "DesignReport",
    "NetReport",
    "design_report",
]
