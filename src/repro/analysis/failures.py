"""Failure diagnosis: why does a net miss its length rule?

The paper attributes its residual #fails "almost exclusively" to the
blocked 9x9 region. This module verifies that attribution per net, so a
user can tell apart:

* ``BLOCKED_REGION`` — the route crosses the zero-site region and no
  length-legal buffering exists on this topology;
* ``SITE_EXHAUSTION`` — a legal buffering would exist if occupied sites
  were free (earlier nets consumed the tile's capacity);
* ``SITE_SCARCITY`` — even with every site free the topology is
  unbufferable, but it does not touch the blocked region (zero-site
  tiles elsewhere);
* ``OVERDRIVEN_GATE`` — the assignment is simply suboptimal (a legal
  buffering exists right now); re-running the DP would fix it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.core.costs import buffer_site_cost
from repro.core.length_rule import length_violations
from repro.core.multi_sink import insert_buffers_multi_sink
from repro.routing.tree import RouteTree
from repro.tilegraph.graph import Tile, TileGraph


class FailureCause(enum.Enum):
    """Classification of a length-rule failure."""

    BLOCKED_REGION = "blocked-region"
    SITE_EXHAUSTION = "site-exhaustion"
    SITE_SCARCITY = "site-scarcity"
    OVERDRIVEN_GATE = "overdriven-gate"


@dataclass(frozen=True)
class FailureDiagnosis:
    """One failing net's diagnosis."""

    net_name: str
    cause: FailureCause
    violations: int
    tiles_in_blocked_region: int


def diagnose_failure(
    tree: RouteTree,
    graph: TileGraph,
    length_limit: int,
    blocked: "Set[Tile] | frozenset" = frozenset(),
) -> FailureDiagnosis:
    """Classify why ``tree`` violates its length rule.

    The tree's own buffers are assumed booked on the graph; feasibility
    probes exclude them (a net may always rearrange its own buffers).
    """
    violations = length_violations(tree, length_limit)
    own: Dict[Tile, int] = {}
    for node in tree.nodes.values():
        count = node.buffer_count()
        if count:
            own[node.tile] = own.get(node.tile, 0) + count

    def q_current(tile: Tile) -> float:
        credit = own.get(tile, 0)
        used = max(0, graph.used_site_count(tile) - credit)
        sites = graph.site_count(tile)
        if sites <= 0 or used >= sites:
            return float("inf")
        return 1.0

    def q_all_free(tile: Tile) -> float:
        return 1.0 if graph.site_count(tile) > 0 else float("inf")

    in_blocked = sum(1 for t in tree.nodes if t in blocked)

    if insert_buffers_multi_sink(tree, q_current, length_limit).feasible:
        cause = FailureCause.OVERDRIVEN_GATE
    elif insert_buffers_multi_sink(tree, q_all_free, length_limit).feasible:
        cause = FailureCause.SITE_EXHAUSTION
    elif in_blocked:
        cause = FailureCause.BLOCKED_REGION
    else:
        cause = FailureCause.SITE_SCARCITY
    return FailureDiagnosis(
        net_name=tree.net_name,
        cause=cause,
        violations=violations,
        tiles_in_blocked_region=in_blocked,
    )


def diagnose_failures(
    routes: Dict[str, RouteTree],
    failing: Iterable[str],
    graph: TileGraph,
    length_limits: Dict[str, int],
    blocked: "Set[Tile] | frozenset" = frozenset(),
) -> List[FailureDiagnosis]:
    """Diagnose every failing net; sorted by net name."""
    return [
        diagnose_failure(routes[name], graph, length_limits[name], blocked)
        for name in sorted(failing)
    ]


def failure_summary(diagnoses: List[FailureDiagnosis]) -> Dict[str, int]:
    """Count per cause (the paper's 'almost exclusively the 9x9 region'
    claim, checkable in one line)."""
    out: Dict[str, int] = {}
    for d in diagnoses:
        out[d.cause.value] = out.get(d.cause.value, 0) + 1
    return out
