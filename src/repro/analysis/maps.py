"""ASCII heat maps over the tile grid.

Terminal-friendly views of the planning state: wire congestion per tile
(the max over its boundary edges), buffer-site usage, and the raw site
distribution (the paper's Fig. 2(b) as text). Rows print top-down so the
map matches the usual die orientation.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.tilegraph.graph import Tile, TileGraph

#: Density ramp from empty to full.
_RAMP = " .:-=+*#%@"


def _render(
    graph: TileGraph,
    value_of: Callable[[Tile], float],
    marker_of: "Callable[[Tile], str | None] | None" = None,
) -> str:
    lines: List[str] = []
    for y in range(graph.ny - 1, -1, -1):
        row = []
        for x in range(graph.nx):
            tile = (x, y)
            if marker_of is not None:
                marker = marker_of(tile)
                if marker is not None:
                    row.append(marker)
                    continue
            level = value_of(tile)
            level = min(1.0, max(0.0, level))
            row.append(_RAMP[min(len(_RAMP) - 1, int(level * len(_RAMP)))])
        lines.append("".join(row))
    return "\n".join(lines)


def wire_congestion_map(graph: TileGraph) -> str:
    """Per-tile map of the worst boundary-edge congestion.

    ``!`` marks tiles touching an overflowing edge.
    """

    def worst(tile: Tile) -> float:
        ratios = []
        for nbr in graph.neighbors(tile):
            cap = graph.wire_capacity(tile, nbr)
            use = graph.wire_usage(tile, nbr)
            ratios.append(use / cap if cap else (1.5 if use else 0.0))
        return max(ratios) if ratios else 0.0

    def marker(tile: Tile) -> "str | None":
        return "!" if worst(tile) > 1.0 else None

    return _render(graph, worst, marker)


def buffer_usage_map(graph: TileGraph) -> str:
    """Per-tile map of ``b(v)/B(v)``; ``X`` marks zero-site tiles."""

    def density(tile: Tile) -> float:
        sites = graph.site_count(tile)
        return graph.used_site_count(tile) / sites if sites else 0.0

    def marker(tile: Tile) -> "str | None":
        return "X" if graph.site_count(tile) == 0 else None

    return _render(graph, density, marker)


def site_distribution_map(graph: TileGraph) -> str:
    """Per-tile map of ``B(v)`` relative to the densest tile (Fig. 2(b))."""
    peak = max(1, int(graph.sites.max()))

    def density(tile: Tile) -> float:
        return graph.site_count(tile) / peak

    return _render(graph, density)
