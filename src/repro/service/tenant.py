"""Per-tenant bounded queues with weighted fair selection and aging.

The fleet scheduler front end. Each tenant owns a bounded FIFO deque;
selection across tenants is *stride scheduling*: every tenant carries a
``pass`` value, dispatching a tenant's job advances its pass by
``1 / weight``, and the eligible tenant with the smallest pass goes
next. A tenant submitting twice the jobs therefore gets served at the
same *rate* as its peers (per unit weight), not twice as often — the
flooding tenant queues behind itself, the trickle tenant's jobs are
picked almost immediately.

Two fairness escape hatches:

* **Starvation aging** — any job older than ``aging_threshold`` seconds
  is promoted to absolute priority (oldest first, by submission
  sequence), bounding worst-case wait even under adversarial weights.
* **Virtual-time resync** — a tenant going idle and returning has its
  pass forwarded to the current virtual time, so it cannot bank credit
  while idle and then monopolize the workers.

The structure is deliberately *pure*: no locks (the owning service
serializes access under its own condition variable) and an injectable
clock, so fairness properties are unit-testable with a fake clock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ConfigurationError, QueueFullError


@dataclass
class QueuedItem:
    """One queued unit of work, annotated for shard-aware selection.

    ``baseline`` keys the determinism constraint: among queued items
    sharing a baseline, only the oldest (smallest ``seq``) is eligible,
    so a baseline's deltas always execute in submission order no matter
    how fair selection interleaves tenants. ``None`` opts out (internal
    ops like checkpoints).
    """

    seq: int
    tenant: str
    shard: int
    enqueued_at: float
    baseline: Optional[str] = None
    payload: Any = None
    #: "cheap" (incremental delta) or "heavy" (full plan). Within a
    #: tenant the oldest *cheap* eligible item is preferred over heavy
    #: ones — the preemption mechanism depends on the next-up item
    #: actually being the cheap job that triggered the preemption.
    cost_class: str = "heavy"

    def age(self, now: float) -> float:
        return max(0.0, now - self.enqueued_at)


@dataclass
class TenantState:
    """One tenant's queue plus its stride-scheduling pass value."""

    name: str
    weight: float
    items: Deque[QueuedItem] = field(default_factory=deque)
    pass_value: float = 0.0
    dispatched: int = 0

    @property
    def stride(self) -> float:
        return 1.0 / self.weight


class TenantQueues:
    """Bounded per-tenant FIFOs with weighted fair, shard-aware pop.

    ``pop_for_shard`` only considers items pinned to the asking shard
    (every job for a baseline runs on that baseline's shard, preserving
    per-baseline submission order); fairness is arbitrated *across*
    tenants among those eligible items.
    """

    def __init__(
        self,
        max_per_tenant: int = 256,
        weights: "Dict[str, float] | None" = None,
        aging_threshold: float = 30.0,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        if max_per_tenant < 1:
            raise ConfigurationError("max_per_tenant must be >= 1")
        if aging_threshold <= 0:
            raise ConfigurationError("aging_threshold must be > 0")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ConfigurationError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )
        self.max_per_tenant = max_per_tenant
        self.aging_threshold = aging_threshold
        self._weights = dict(weights or {})
        self._clock = clock or time.monotonic
        self._tenants: Dict[str, TenantState] = {}
        self._seq = 0
        self._vtime = 0.0
        self.aged_promotions = 0

    # -- introspection --------------------------------------------------- #

    def __len__(self) -> int:
        return sum(len(t.items) for t in self._tenants.values())

    def depth(self, tenant: str) -> int:
        state = self._tenants.get(tenant)
        return len(state.items) if state is not None else 0

    def depths(self) -> Dict[str, int]:
        return {
            name: len(state.items)
            for name, state in sorted(self._tenants.items())
            if state.items
        }

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    # -- mutation -------------------------------------------------------- #

    def _state(self, tenant: str) -> TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = TenantState(
                name=tenant, weight=self._weights.get(tenant, 1.0)
            )
            self._tenants[tenant] = state
        return state

    def push(
        self,
        tenant: str,
        shard: int,
        payload: Any,
        baseline: Optional[str] = None,
    ) -> QueuedItem:
        """Enqueue at the tenant's tail; sheds when the tenant is full."""
        state = self._state(tenant)
        if len(state.items) >= self.max_per_tenant:
            raise QueueFullError(
                f"tenant {tenant!r} queue full "
                f"({self.max_per_tenant} jobs); shed"
            )
        if not state.items:
            # Re-entering tenant: forward its pass to the current virtual
            # time so idle periods do not accumulate scheduling credit.
            state.pass_value = max(state.pass_value, self._vtime)
        self._seq += 1
        item = QueuedItem(
            seq=self._seq,
            tenant=tenant,
            shard=shard,
            enqueued_at=self._clock(),
            baseline=baseline,
        )
        item.payload = payload
        state.items.append(item)
        return item

    def push_front(self, item: QueuedItem) -> None:
        """Requeue a preempted item at its tenant's head (no shed check).

        The item was already the oldest queued work for its baseline
        when it was dispatched, so head insertion preserves per-baseline
        FIFO order; capacity is not re-checked because the slot it
        vacated on dispatch is being returned, not newly claimed.
        """
        self._state(item.tenant).items.appendleft(item)

    def _select(self, shard: int) -> "Tuple[Optional[QueuedItem], bool]":
        """The item ``pop_for_shard`` would dispatch next (no mutation).

        Returns ``(item, aged)``. An item is eligible only when it is
        the oldest queued item for its baseline — per-baseline
        submission order is the fleet's determinism contract and
        outranks fairness. Within a tenant, the oldest eligible *cheap*
        item is preferred over older heavy ones (reordering across
        baselines only, so signature-neutral) — otherwise a preempted
        full plan requeued at the tenant's head would immediately
        out-queue the cheap job that preempted it, and preemption would
        livelock. Aged items (older than ``aging_threshold``) win
        outright, oldest first; else the eligible tenant with the
        smallest stride pass (ties by name) goes next.
        """
        now = self._clock()
        oldest_for_baseline: Dict[str, int] = {}
        for state in self._tenants.values():
            for item in state.items:
                if item.baseline is None:
                    continue
                prev = oldest_for_baseline.get(item.baseline)
                if prev is None or item.seq < prev:
                    oldest_for_baseline[item.baseline] = item.seq
        aged_pick: Optional[QueuedItem] = None
        fair_pick: Optional[QueuedItem] = None
        fair_state: Optional[TenantState] = None
        for name in sorted(self._tenants):
            state = self._tenants[name]
            first_any: Optional[QueuedItem] = None
            first_cheap: Optional[QueuedItem] = None
            for i in state.items:
                if i.shard != shard or (
                    i.baseline is not None
                    and oldest_for_baseline[i.baseline] != i.seq
                ):
                    continue
                if first_any is None:
                    first_any = i
                if i.cost_class == "cheap":
                    first_cheap = i
                    break
            if first_any is None:
                continue
            # The starvation bound applies to the *oldest* eligible item
            # even when cheap preference would bypass it.
            if first_any.age(now) > self.aging_threshold and (
                aged_pick is None or first_any.seq < aged_pick.seq
            ):
                aged_pick = first_any
            candidate = first_cheap if first_cheap is not None else first_any
            if fair_state is None or state.pass_value < fair_state.pass_value:
                fair_pick, fair_state = candidate, state
        if aged_pick is not None:
            return aged_pick, True
        return fair_pick, False

    def peek_eligible(self, shard: int) -> Optional[QueuedItem]:
        """What ``pop_for_shard`` would return, without dispatching it.

        The fleet's preemption trigger: a running full plan is only
        aborted when the very next item its shard would execute is a
        cheap incremental job.
        """
        pick, _ = self._select(shard)
        return pick

    def pop_for_shard(self, shard: int) -> Optional[QueuedItem]:
        """Dispatch the next item for this shard, or None (see
        :meth:`_select` for the selection policy)."""
        pick, aged = self._select(shard)
        if pick is None:
            return None
        if aged:
            self.aged_promotions += 1
        state = self._tenants[pick.tenant]
        state.items.remove(pick)
        state.pass_value += state.stride
        state.dispatched += 1
        self._vtime = max(self._vtime, state.pass_value)
        return pick

    def stats(self) -> Dict[str, Any]:
        return {
            "depths": self.depths(),
            "aged_promotions": self.aged_promotions,
            "dispatched": {
                name: state.dispatched
                for name, state in sorted(self._tenants.items())
                if state.dispatched
            },
        }
