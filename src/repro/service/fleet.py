"""The sharded multi-process planning fleet.

``FleetPlanningService`` fans planning out over N forked worker
processes (:class:`repro.parallel.pool.PoolWorker` — the same
pipe/kill/respawn containment the Stage-2/3 pool uses), each owning a
*shard* of baselines. The parent process is authoritative only for
cheap, replayable metadata per baseline — the chain-root
:class:`~repro.service.jobs.ScenarioSpec`, the incremental deltas
committed since that root, and the committed signature — while the
materialized :class:`~repro.service.engine.PlanState` lives in the
shard worker's memory. A worker that loses its state (fresh fork after
a respawn, a preempted rebuild) re-materializes it deterministically:
full-plan the root, replay the chain, verify the committed signature.

Shared-memory role (:class:`repro.parallel.shm.SharedArrayRegistry`,
owned by the long-lived parent): per baseline, the flat plan vectors —
``edge_usage``, ``edge_capacity``, ``sites``, ``used_sites`` — are
published once and *written back by the shard worker* after every
commit, so the parent answers usage/congestion queries from live views
without a single plan pickle crossing the pipe; job replies carry only
signatures and small stat dicts.

Scheduling (:class:`repro.service.tenant.TenantQueues`): per-tenant
bounded queues, stride-weighted fair selection, starvation aging, and
cooperative preemption — when the next eligible item for a shard is a
cheap incremental delta and the shard is mid-way through a long full
plan, the parent raises the shard's control byte; the engine's
``abort_check`` notices between nets, the attempt unwinds (nothing was
committed), and the job is requeued at the head of its tenant queue.

Determinism contract: jobs against one baseline execute in submission
order on that baseline's shard, and every plan/replan call is the same
deterministic engine code the single-process scheduler runs — so final
baseline signatures are byte-identical to a :class:`PlanningService`
run (and to any other worker count), absent faults. After a worker
crash exhausts its retries, the in-process fallback re-plans the
evolved scenario from scratch; that plan is the engine's reference
result, adopted as the new chain root.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.rabid import RabidConfig
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ServiceError,
    ShuttingDownError,
    UnknownJobError,
)
from repro.obs import NULL_TRACER
from repro.parallel.pool import DEFAULT_MAX_REPLY_BYTES, PoolWorker
from repro.parallel.shm import SharedArrayRegistry, SharedArraySpec
from repro.service.engine import full_plan
from repro.service.incremental import incremental_replan
from repro.service.jobs import (
    DeltaSpec,
    Job,
    JobRecord,
    JobStatus,
    ScenarioSpec,
    apply_delta,
)
from repro.service.tenant import QueuedItem, TenantQueues

_TERMINAL = (JobStatus.DONE, JobStatus.FAILED, JobStatus.TIMEOUT, JobStatus.SHED)

#: Handler spec resolved inside shard workers (pool protocol).
FLEET_HANDLER = "repro.service.fleet:fleet_handler"

#: Names of the per-baseline flat vectors exported through shared memory.
SHARED_ARRAY_FIELDS = ("edge_usage", "edge_capacity", "sites", "used_sites")


def _shared_shapes(grid: int) -> Dict[str, Tuple[int, ...]]:
    """Shapes of the per-baseline shared vectors for a ``grid``-side die."""
    edges = 2 * grid * (grid - 1)
    return {
        "edge_usage": (edges,),
        "edge_capacity": (edges,),
        "sites": (grid, grid),
        "used_sites": (grid, grid),
    }


@dataclass
class FleetOptions:
    """Knobs for :class:`FleetPlanningService`.

    Attributes:
        workers: shard worker processes (baselines are round-robin
            assigned; all jobs for a baseline run on its shard).
        max_queue_per_tenant: queued-job cap per tenant before sheds.
        job_timeout: per-attempt wall-clock budget (a hung worker is
            killed and respawned past it).
        retries: extra worker attempts after a crash/timeout before the
            in-process fallback plans the job in the parent.
        tenant_weights: stride-scheduling weights (default 1.0).
        aging_threshold: seconds after which a queued job is promoted to
            absolute priority (starvation bound).
        preempt_after: minimum seconds a full plan must have run before
            a waiting cheap job may preempt it.
        max_preemptions: preemption cap per job, after which it runs to
            completion (forward-progress bound).
        fallback_in_process: plan the job in the parent after the retry
            budget is gone (True) or fail it (False).
    """

    workers: int = 2
    max_queue_per_tenant: int = 256
    job_timeout: float = 300.0
    retries: int = 1
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    aging_threshold: float = 30.0
    preempt_after: float = 0.2
    max_preemptions: int = 2
    fallback_in_process: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("fleet workers must be >= 1")
        if self.max_queue_per_tenant < 1:
            raise ConfigurationError("max_queue_per_tenant must be >= 1")
        if self.job_timeout <= 0:
            raise ConfigurationError("job_timeout must be > 0")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.aging_threshold <= 0:
            raise ConfigurationError("aging_threshold must be > 0")
        if self.preempt_after < 0:
            raise ConfigurationError("preempt_after must be >= 0")
        if self.max_preemptions < 0:
            raise ConfigurationError("max_preemptions must be >= 0")
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise ConfigurationError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )


@dataclass
class FleetBaseline:
    """Parent-side authoritative metadata for one sharded baseline.

    ``root`` is the scenario of the last from-scratch plan; ``chain``
    the incremental deltas committed since. Together they *are* the
    checkpoint: any process can re-materialize the exact plan by
    full-planning the root and replaying the chain.
    """

    baseline_id: str
    shard: int
    root: ScenarioSpec
    scenario: ScenarioSpec
    chain: Tuple[DeltaSpec, ...] = ()
    signature: Optional[str] = None
    config: Optional[Dict[str, Any]] = None
    version: int = 0
    dirty: bool = False
    summary: Optional[Dict[str, Any]] = None


@dataclass
class FleetJobRecord(JobRecord):
    """A :class:`JobRecord` plus fleet-specific lifecycle fields."""

    shard: int = 0
    preemptions: int = 0
    rebuilt: bool = False
    fallback: bool = False

    def summary(self) -> Dict[str, Any]:
        out = super().summary()
        out["tenant"] = self.job.tenant
        out["shard"] = self.shard
        if self.preemptions:
            out["preemptions"] = self.preemptions
        if self.fallback:
            out["fallback"] = True
        return out


# --------------------------------------------------------------------- #
# Worker side                                                            #
# --------------------------------------------------------------------- #


def _config_from_payload(payload: Dict[str, Any]) -> RabidConfig:
    cfg = payload.get("config")
    return RabidConfig.from_dict(cfg) if cfg else RabidConfig()


def _fold_scenario(root: ScenarioSpec, chain) -> ScenarioSpec:
    scenario = root
    for delta in chain:
        scenario = apply_delta(scenario, delta)
    return scenario


def _abort_check_from(payload: Dict[str, Any], ctx) -> "Callable[[], bool] | None":
    spec = payload.get("ctl")
    if spec is None or not payload.get("preemptible"):
        return None
    ctl = ctx.attachments.view(SharedArraySpec(**spec))
    shard = payload["shard"]

    def check() -> bool:
        return bool(ctl[shard])

    return check


def _export_arrays(state, payload: Dict[str, Any], ctx) -> None:
    """Write the committed flat vectors into the baseline's segments."""
    specs = payload.get("arrays")
    if not specs:
        return
    graph = state.graph
    for name in SHARED_ARRAY_FIELDS:
        view = ctx.attachments.view(SharedArraySpec(**specs[name]))
        view[...] = getattr(graph, name)


def _materialize(payload: Dict[str, Any], ctx, abort_check):
    """The shard's cached PlanState for this baseline, rebuilt if lost.

    Returns ``(state, rebuilt)``. A rebuild full-plans the chain root
    and replays every committed delta; the result must reproduce the
    parent's committed signature exactly or the attempt errors (the
    parent then falls back to a from-scratch reference plan).
    """
    plans: Dict[str, Any] = ctx.scratch.setdefault("fleet_plans", {})
    baseline_id = payload["baseline_id"]
    expected = payload["expected_signature"]
    state = plans.get(baseline_id)
    if state is not None and state.signature == expected:
        return state, False
    plans.pop(baseline_id, None)
    config = _config_from_payload(payload)
    root = ScenarioSpec.from_dict(payload["root"])
    state = full_plan(root, config, abort_check=abort_check)
    for delta_dict in payload["chain"]:
        incremental_replan(state, DeltaSpec.from_dict(delta_dict))
    if state.signature != expected:
        raise ServiceError(
            f"rebuild of baseline {baseline_id!r} diverged: expected "
            f"{expected[:12]}..., got {state.signature[:12]}..."
        )
    plans[baseline_id] = state
    return state, True


def fleet_handler(payload: Dict[str, Any], ctx) -> Dict[str, Any]:
    """The shard worker's single entry point (runs in the forked child).

    Ops:

    * ``plan`` — run one job (baseline / incremental delta / full-mode
      delta) against the shard's cached state, rebuild first if needed.
      Replies ``{"status": "preempted"}`` when the control byte aborted
      a preemptible attempt; nothing was committed.
    * ``checkpoint`` — serialize the named baselines' current plans.
    """
    from repro.errors import PreemptedError

    op = payload.get("op")
    if op == "checkpoint":
        from repro.service.checkpoint import checkpoint_to_dict

        checkpoints = {}
        for entry in payload["baselines"]:
            state, _ = _materialize(entry, ctx, None)
            checkpoints[entry["baseline_id"]] = checkpoint_to_dict(
                entry["baseline_id"], state
            )
        return {"status": "ok", "checkpoints": checkpoints}
    if op != "plan":
        raise ServiceError(f"unknown fleet op {op!r}")

    plans: Dict[str, Any] = ctx.scratch.setdefault("fleet_plans", {})
    baseline_id = payload["baseline_id"]
    abort_check = _abort_check_from(payload, ctx)
    config = _config_from_payload(payload)
    kind = payload["kind"]
    start = time.perf_counter()
    try:
        if kind == "baseline":
            scenario = ScenarioSpec.from_dict(payload["root"])
            state = full_plan(scenario, config, abort_check=abort_check)
            plans[baseline_id] = state
            _export_arrays(state, payload, ctx)
            return {
                "status": "ok",
                "signature": state.signature,
                "result": {"baseline_id": baseline_id, **state.summary()},
                "rebuilt": False,
                "seconds": time.perf_counter() - start,
            }
        delta = DeltaSpec.from_dict(payload["delta"])
        if payload["mode"] == "full":
            evolved = _fold_scenario(
                ScenarioSpec.from_dict(payload["root"]),
                [DeltaSpec.from_dict(d) for d in payload["chain"]] + [delta],
            )
            state = full_plan(evolved, config, abort_check=abort_check)
            plans[baseline_id] = state
            _export_arrays(state, payload, ctx)
            return {
                "status": "ok",
                "signature": state.signature,
                "result": {
                    "baseline_id": baseline_id,
                    "mode": "full",
                    **state.summary(),
                },
                "rebuilt": False,
                "seconds": time.perf_counter() - start,
            }
        state, rebuilt = _materialize(payload, ctx, abort_check)
        stats = incremental_replan(state, delta)
        _export_arrays(state, payload, ctx)
        return {
            "status": "ok",
            "signature": stats.signature,
            "result": {
                "baseline_id": baseline_id,
                "mode": "incremental",
                **stats.as_dict(),
            },
            "rebuilt": rebuilt,
            "seconds": time.perf_counter() - start,
        }
    except PreemptedError:
        # The partial plan was built on a fresh graph and never cached:
        # dropping it is the whole rollback.
        return {"status": "preempted"}


# --------------------------------------------------------------------- #
# Parent side                                                            #
# --------------------------------------------------------------------- #


class _ShardRunner:
    """One shard: a forked planner worker plus its dispatcher thread.

    The thread pops work for its shard index from the shared tenant
    queues, ships it to the worker over the pipe, and polls for the
    reply under the job deadline — checking, while it waits, whether
    the scheduler wants the running job preempted.
    """

    def __init__(self, service: "FleetPlanningService", index: int) -> None:
        self.service = service
        self.index = index
        self.worker = PoolWorker(service._mp_ctx, {"shard": index})
        self.thread = threading.Thread(
            target=self._loop, name=f"fleet-shard-{index}", daemon=True
        )
        self._seq = 0
        # Running-job state, guarded by the service condition.
        self.running: Optional[FleetJobRecord] = None
        self.running_since = 0.0
        self.running_preemptible = False
        self.preempt_requested = False

    def start(self) -> None:
        self.thread.start()

    def respawn(self) -> None:
        self.worker.kill()
        self.worker = PoolWorker(self.service._mp_ctx, {"shard": self.index})
        self.service._count("fleet.respawns")

    # -- dispatcher loop ------------------------------------------------- #

    def _loop(self) -> None:
        svc = self.service
        while True:
            with svc._cond:
                item = None
                while not svc._stopping:
                    item = svc._queues.pop_for_shard(self.index)
                    if item is not None:
                        break
                    svc._cond.wait(timeout=0.05)
                if item is None:
                    return
            try:
                self._execute(item)
            finally:
                with svc._cond:
                    if self.running is not None:
                        self.running = None
                        self.running_preemptible = False
                        self.preempt_requested = False
                        svc._ctl[self.index] = 0
                    svc._cond.notify_all()

    def _execute(self, item: QueuedItem) -> None:
        payload = item.payload
        if payload["type"] == "checkpoint":
            self._execute_checkpoint(payload)
            return
        record: FleetJobRecord = payload["record"]
        svc = self.service
        now = time.monotonic()
        with svc._cond:
            if record.started_at == 0.0:
                record.started_at = now
            record.status = JobStatus.RUNNING
            try:
                job_payload = svc._job_payload(record)
            except ServiceError as exc:
                record.status = JobStatus.FAILED
                record.error = str(exc)
                record.finished_at = time.monotonic()
                svc._counters["failed"] += 1
                return
            self.running = record
            self.running_since = now
            self.running_preemptible = (
                record.job.kind == "baseline" or record.job.mode == "full"
            ) and record.preemptions < svc.options.max_preemptions
            self.preempt_requested = False
        svc._observe_stage(record, queue_wait=True)
        self._run_attempts(item, record, job_payload)

    def _run_attempts(self, item, record, job_payload) -> None:
        svc = self.service
        options = svc.options
        last_error = "unknown"
        last_status = "crashed"
        for attempt in range(options.retries + 1):
            with svc._cond:
                record.attempts += 1
            status, value = self._dispatch(job_payload, options.job_timeout)
            if status == "ok" and isinstance(value, dict):
                if value.get("status") == "preempted":
                    svc._requeue_preempted(item, record, self.index)
                    return
                if value.get("status") == "ok":
                    svc._commit(record, value)
                    return
                status, value = "error", f"malformed fleet reply: {value!r}"
            if status == "error":
                last_error, last_status = str(value), "error"
            else:  # crashed / timeout: the worker's state is suspect
                last_error, last_status = str(value), status
                self.respawn()
            if svc._stopping:
                break
            if attempt < options.retries:
                svc._count("fleet.retries")
                continue
        if options.fallback_in_process and not svc._stopping:
            svc._fallback(record, self.index)
            return
        with svc._cond:
            record.status = (
                JobStatus.TIMEOUT if last_status == "timeout" else JobStatus.FAILED
            )
            record.error = (
                f"{last_status} after {record.attempts} attempt(s): {last_error}"
            )
            record.finished_at = time.monotonic()
            svc._counters["timeout" if last_status == "timeout" else "failed"] += 1
            svc._cond.notify_all()

    def _dispatch(self, job_payload, timeout_s: float):
        """Ship one attempt; returns ``(status, value)`` pool-style."""
        svc = self.service
        self._seq += 1
        seq = self._seq
        frame = pickle.dumps(
            (seq, FLEET_HANDLER, job_payload), protocol=pickle.HIGHEST_PROTOCOL
        )
        try:
            self.worker.conn.send_bytes(frame)
        except (OSError, ValueError, BrokenPipeError):
            return ("crashed", "worker pipe closed")
        svc._count("fleet.dispatches")
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                ready = self.worker.conn.poll(0.05)
            except (OSError, ValueError):
                return ("crashed", "worker pipe closed")
            if ready:
                try:
                    reply = self.worker.conn.recv_bytes(DEFAULT_MAX_REPLY_BYTES)
                    rseq, status, value, stats = pickle.loads(reply)
                except Exception:
                    return ("crashed", "worker died or replied garbage")
                if rseq != seq:
                    continue  # stale reply from before a respawn
                if isinstance(stats, dict):
                    svc._count("fleet.attaches", int(stats.get("attaches", 0)))
                    svc._count(
                        "fleet.attach_reuse", int(stats.get("attach_reuse", 0))
                    )
                return (status, value)
            now = time.monotonic()
            if now > deadline:
                return ("timeout", f"attempt exceeded {timeout_s}s")
            if not self.worker.proc.is_alive():
                return ("crashed", "worker process died")
            svc._maybe_preempt(self, now)

    def _execute_checkpoint(self, payload) -> None:
        svc = self.service
        sink = payload["sink"]
        with svc._cond:
            entries = [
                svc._rebuild_payload(bid)
                for bid in payload["baseline_ids"]
                if bid in svc._baselines
                and svc._baselines[bid].signature is not None
            ]
        status, value = self._dispatch(
            {"op": "checkpoint", "baselines": entries},
            svc.options.job_timeout,
        )
        if status == "ok" and isinstance(value, dict) and value.get("status") == "ok":
            sink["checkpoints"] = value["checkpoints"]
        else:
            if status in ("crashed", "timeout"):
                self.respawn()
            sink["error"] = f"{status}: {value}"
        sink["event"].set()


class FleetPlanningService:
    """Sharded multi-process front end; same job surface as
    :class:`repro.service.scheduler.PlanningService`.

    Thread model: ``submit``/``record``/``stats`` run on the caller's
    thread (event loop); one dispatcher thread per shard executes jobs;
    every shared structure is guarded by one condition variable. The
    asyncio surface (``start``/``stop``/``wait``/``drain``) is a thin
    polling wrapper so :class:`repro.service.protocol.ProtocolServer`
    can serve either scheduler unchanged.
    """

    def __init__(
        self,
        config: "RabidConfig | None" = None,
        options: "FleetOptions | None" = None,
        tracer=None,
    ) -> None:
        self.config = config or RabidConfig()
        self.options = options or FleetOptions()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._cond = threading.Condition()
        self._queues = TenantQueues(
            max_per_tenant=self.options.max_queue_per_tenant,
            weights=self.options.tenant_weights,
            aging_threshold=self.options.aging_threshold,
        )
        self._records: Dict[str, FleetJobRecord] = {}
        self._baselines: Dict[str, FleetBaseline] = {}
        self._registry = SharedArrayRegistry(prefix="fleet")
        self._mp_ctx = multiprocessing.get_context("fork")
        self._shards: List[_ShardRunner] = []
        self._ctl: Optional[np.ndarray] = None
        self._next_shard = 0
        self._started = False
        self._stopping = False
        self._shutting_down = False
        self._counters = {
            "submitted": 0,
            "shed": 0,
            "done": 0,
            "failed": 0,
            "timeout": 0,
            "preemptions": 0,
            "rebuilds": 0,
            "fallbacks": 0,
            "respawns": 0,
        }
        # The per-baseline RabidConfig shipped to workers: force the
        # engine sequential inside shard processes — the fleet is the
        # parallelism; nested pools would just fight over cores.
        cfg = self.config.as_dict()
        cfg.update(workers=1, stage3_workers=1)
        self._config_dict = cfg

    # -- counters --------------------------------------------------------- #

    def _count(self, name: str, value: int = 1) -> None:
        if not value:
            return
        short = name.split(".", 1)[1] if name.startswith("fleet.") else name
        if short in self._counters:
            self._counters[short] += value
        if self.tracer.enabled:
            self.tracer.count(name, value)

    def _observe_stage(self, record: FleetJobRecord, queue_wait: bool) -> None:
        if not self.tracer.enabled:
            return
        if queue_wait:
            self.tracer.observe("service.queue_wait_seconds", record.queue_wait)
        else:
            mode = (
                "baseline"
                if record.job.kind == "baseline"
                else record.job.mode
            )
            elapsed = record.finished_at - record.started_at
            self.tracer.observe("service.exec_seconds", elapsed)
            self.tracer.observe(f"service.exec_seconds.{mode}", elapsed)

    # -- lifecycle -------------------------------------------------------- #

    def start_sync(self) -> None:
        if self._started:
            return
        self._started = True
        ctl = np.zeros(self.options.workers, dtype=np.int8)
        self._registry.publish("fleet.ctl", ctl)
        self._ctl = self._registry.view("fleet.ctl")
        self._shards = [
            _ShardRunner(self, i) for i in range(self.options.workers)
        ]
        for shard in self._shards:
            shard.start()

    async def start(self) -> None:
        self.start_sync()

    def stop_sync(self) -> None:
        if not self._started:
            return
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for shard in self._shards:
            shard.thread.join(timeout=self.options.job_timeout + 10.0)
        for shard in self._shards:
            shard.worker.shutdown()
        self._shards = []
        self._registry.close()
        self._started = False
        self._stopping = False

    async def stop(self) -> None:
        await __import__("asyncio").to_thread(self.stop_sync)

    # -- submission / inspection ------------------------------------------ #

    @property
    def shutting_down(self) -> bool:
        return self._shutting_down

    def begin_shutdown(self) -> None:
        """Reject all further submissions (drain + checkpoint follow)."""
        self._shutting_down = True

    def submit(self, job: Job) -> FleetJobRecord:
        with self._cond:
            if self._shutting_down:
                raise ShuttingDownError(
                    "service is shutting down; submission rejected"
                )
            if not self._started:
                raise ServiceError("fleet not started")
            existing = self._records.get(job.job_id)
            if existing is not None and existing.status is not JobStatus.SHED:
                raise ServiceError(f"duplicate job id {job.job_id!r}")
            if job.kind == "baseline":
                if job.job_id in self._baselines:
                    raise ServiceError(
                        f"baseline {job.job_id!r} already exists"
                    )
                shard = self._next_shard % self.options.workers
                baseline_id = job.job_id
            else:
                baseline = self._baselines.get(job.baseline_id)
                if baseline is None:
                    raise UnknownJobError(
                        f"unknown baseline {job.baseline_id!r}"
                    )
                shard = baseline.shard
                baseline_id = job.baseline_id
            record = FleetJobRecord(
                job=job, submitted_at=time.monotonic(), shard=shard
            )
            self._counters["submitted"] += 1
            cheap = job.kind == "delta" and job.mode == "incremental"
            try:
                item = self._queues.push(
                    job.tenant, shard, None, baseline=baseline_id
                )
            except Exception:
                record.status = JobStatus.SHED
                record.error = (
                    f"tenant {job.tenant!r} queue full "
                    f"({self.options.max_queue_per_tenant} jobs); shed"
                )
                self._counters["shed"] += 1
                self._records[job.job_id] = record
                if self.tracer.enabled:
                    self.tracer.count("service.jobs_shed")
                raise
            item.payload = {"type": "job", "record": record}
            item.cost_class = "cheap" if cheap else "heavy"
            if job.kind == "baseline":
                # Reserve the shard and the shared segments up front so
                # delta jobs submitted behind this one resolve and the
                # worker can export into live views on first commit.
                self._next_shard += 1
                config = dict(self._config_dict)
                if job.config:
                    config = RabidConfig.from_dict(job.config).as_dict()
                    config.update(workers=1, stage3_workers=1)
                self._baselines[job.job_id] = FleetBaseline(
                    baseline_id=job.job_id,
                    shard=shard,
                    root=job.scenario,
                    scenario=job.scenario,
                    config=config,
                )
                for name, shape in _shared_shapes(job.scenario.grid).items():
                    self._registry.publish(
                        f"{job.job_id}:{name}", np.zeros(shape, dtype=np.int64)
                    )
            self._records[job.job_id] = record
            if self.tracer.enabled:
                self.tracer.count("service.jobs_submitted")
                self.tracer.gauge("service.queue_depth", len(self._queues))
            self._cond.notify_all()
            return record

    def record(self, job_id: str) -> FleetJobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job {job_id!r}") from None

    def baseline(self, baseline_id: str) -> FleetBaseline:
        try:
            return self._baselines[baseline_id]
        except KeyError:
            raise UnknownJobError(f"unknown baseline {baseline_id!r}") from None

    @property
    def baseline_ids(self) -> List[str]:
        return sorted(self._baselines)

    @property
    def dirty_baseline_ids(self) -> List[str]:
        with self._cond:
            return sorted(
                bid for bid, b in self._baselines.items() if b.dirty
            )

    def shared_usage(self, baseline_id: str) -> Dict[str, Any]:
        """Usage stats read straight from the baseline's shared views."""
        self.baseline(baseline_id)
        usage = self._registry.view(f"{baseline_id}:edge_usage")
        capacity = self._registry.view(f"{baseline_id}:edge_capacity")
        sites = self._registry.view(f"{baseline_id}:sites")
        used = self._registry.view(f"{baseline_id}:used_sites")
        return {
            "baseline_id": baseline_id,
            "wire_usage_total": int(usage.sum()),
            "overflowed_edges": int((usage > capacity).sum()),
            "sites_total": int(sites.sum()),
            "sites_used": int(used.sum()),
        }

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            queues = self._queues.stats()
            return {
                **self._counters,
                "aged_promotions": self._queues.aged_promotions,
                "queue_depth": len(self._queues),
                "queue_depths": queues["depths"],
                "baselines": len(self._baselines),
                "workers": self.options.workers,
            }

    async def wait(self, job_id: str, poll: float = 0.01) -> FleetJobRecord:
        import asyncio

        record = self.record(job_id)
        while record.status not in _TERMINAL:
            await asyncio.sleep(poll)
        return record

    async def drain(self) -> None:
        import asyncio

        while True:
            with self._cond:
                busy = any(s.running is not None for s in self._shards)
                if not len(self._queues) and not busy:
                    return
            await asyncio.sleep(0.01)

    async def drain_until(self, deadline_s: "float | None") -> Dict[str, Any]:
        """Drain with a bound; returns ``{"drained": bool, "pending": n}``."""
        import asyncio

        limit = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        while True:
            with self._cond:
                pending = len(self._queues) + sum(
                    1 for s in self._shards if s.running is not None
                )
            if not pending:
                return {"drained": True, "pending": 0}
            if limit is not None and time.monotonic() > limit:
                return {"drained": False, "pending": pending}
            await asyncio.sleep(0.01)

    # -- scheduling internals (runner threads) ----------------------------- #

    def _job_payload(self, record: FleetJobRecord) -> Dict[str, Any]:
        """Build the wire payload for one attempt (under the condition)."""
        job = record.job
        if job.kind == "baseline":
            baseline = self._baselines[job.job_id]
            payload = {
                "op": "plan",
                "kind": "baseline",
                "mode": "full",
                "baseline_id": job.job_id,
                "root": baseline.root.to_dict(),
                "chain": [],
                "delta": None,
                "expected_signature": None,
                "config": baseline.config,
            }
        else:
            baseline = self._baselines[job.baseline_id]
            if baseline.signature is None:
                raise ServiceError(
                    f"baseline {job.baseline_id!r} has no committed plan"
                )
            payload = self._rebuild_payload(job.baseline_id)
            payload.update(
                op="plan",
                kind="delta",
                mode=job.mode,
                delta=job.delta.to_dict(),
            )
        payload["shard"] = record.shard
        payload["preemptible"] = (
            job.kind == "baseline" or job.mode == "full"
        ) and record.preemptions < self.options.max_preemptions
        payload["ctl"] = self._registry.spec("fleet.ctl").__dict__
        bid = payload["baseline_id"]
        if f"{bid}:edge_usage" in self._registry:
            payload["arrays"] = {
                name: self._registry.spec(f"{bid}:{name}").__dict__
                for name in SHARED_ARRAY_FIELDS
            }
        return payload

    def _rebuild_payload(self, baseline_id: str) -> Dict[str, Any]:
        baseline = self._baselines[baseline_id]
        return {
            "baseline_id": baseline_id,
            "root": baseline.root.to_dict(),
            "chain": [d.to_dict() for d in baseline.chain],
            "expected_signature": baseline.signature,
            "config": baseline.config,
        }

    def _maybe_preempt(self, runner: _ShardRunner, now: float) -> None:
        """Raise the shard's control byte when a cheap job is next up."""
        with self._cond:
            if (
                runner.running is None
                or runner.preempt_requested
                or not runner.running_preemptible
                or now - runner.running_since < self.options.preempt_after
            ):
                return
            nxt = self._queues.peek_eligible(runner.index)
            if nxt is None or nxt.cost_class != "cheap":
                return
            runner.preempt_requested = True
            self._ctl[runner.index] = 1

    def _requeue_preempted(
        self, item: QueuedItem, record: FleetJobRecord, shard: int
    ) -> None:
        with self._cond:
            record.preemptions += 1
            record.status = JobStatus.QUEUED
            self._counters["preemptions"] += 1
            if self.tracer.enabled:
                self.tracer.count("fleet.preemptions")
            self._ctl[shard] = 0
            self._queues.push_front(item)
            self._cond.notify_all()

    def _commit(self, record: FleetJobRecord, reply: Dict[str, Any]) -> None:
        job = record.job
        with self._cond:
            if reply.get("rebuilt"):
                record.rebuilt = True
                self._counters["rebuilds"] += 1
                if self.tracer.enabled:
                    self.tracer.count("fleet.rebuilds")
            baseline = self._baselines[
                job.job_id if job.kind == "baseline" else job.baseline_id
            ]
            if job.kind == "baseline":
                baseline.signature = reply["signature"]
                baseline.version = 1
            else:
                evolved = apply_delta(baseline.scenario, job.delta)
                if job.mode == "full":
                    baseline.root, baseline.chain = evolved, ()
                else:
                    baseline.chain = baseline.chain + (job.delta,)
                baseline.scenario = evolved
                baseline.signature = reply["signature"]
                baseline.version += 1
            baseline.dirty = True
            baseline.summary = reply["result"]
            record.result = reply["result"]
            record.status = JobStatus.DONE
            record.finished_at = time.monotonic()
            self._counters["done"] += 1
            self._cond.notify_all()
        self._observe_stage(record, queue_wait=False)

    def _fallback(self, record: FleetJobRecord, shard: int) -> None:
        """Plan the job in the parent after the worker retry budget.

        The from-scratch plan of the evolved scenario is the engine's
        reference result; it becomes the new chain root (so the next
        worker rebuild reproduces it exactly) and its flat vectors are
        written into the shared segments parent-side.
        """
        job = record.job
        try:
            with self._cond:
                baseline = self._baselines[
                    job.job_id if job.kind == "baseline" else job.baseline_id
                ]
                scenario = (
                    baseline.root
                    if job.kind == "baseline"
                    else apply_delta(baseline.scenario, job.delta)
                )
                config_dict = baseline.config
            state = full_plan(
                scenario,
                RabidConfig.from_dict(config_dict)
                if config_dict
                else RabidConfig(),
            )
        except Exception as exc:  # noqa: BLE001 - report, don't kill the shard
            with self._cond:
                record.status = JobStatus.FAILED
                record.error = f"in-process fallback failed: {exc}"
                record.finished_at = time.monotonic()
                self._counters["failed"] += 1
                self._cond.notify_all()
            return
        bid = baseline.baseline_id
        for name in SHARED_ARRAY_FIELDS:
            seg = f"{bid}:{name}"
            if seg in self._registry:
                self._registry.view(seg)[...] = getattr(state.graph, name)
        with self._cond:
            baseline.root = scenario
            baseline.chain = ()
            baseline.scenario = scenario
            baseline.signature = state.signature
            baseline.version += 1
            baseline.dirty = True
            baseline.summary = state.summary()
            record.fallback = True
            record.result = {
                "baseline_id": bid,
                "fallback": True,
                **state.summary(),
            }
            record.status = JobStatus.DONE
            record.finished_at = time.monotonic()
            self._counters["done"] += 1
            self._counters["fallbacks"] += 1
            if self.tracer.enabled:
                self.tracer.count("fleet.fallbacks")
            self._cond.notify_all()
        self._observe_stage(record, queue_wait=False)

    # -- checkpoints ------------------------------------------------------- #

    def checkpoint_to(
        self, directory, only_dirty: bool = False
    ) -> List[str]:
        """Persist baselines via their shard workers; returns paths.

        Each shard serializes its own baselines (rebuilding any it
        lost), so the files capture exactly the committed chain state;
        the parent only writes bytes to disk.
        """
        import json
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        sinks = []
        with self._cond:
            by_shard: Dict[int, List[str]] = {}
            for bid, baseline in sorted(self._baselines.items()):
                if baseline.signature is None:
                    continue
                if only_dirty and not baseline.dirty:
                    continue
                by_shard.setdefault(baseline.shard, []).append(bid)
            for shard, bids in sorted(by_shard.items()):
                sink = {"event": threading.Event(), "error": None,
                        "checkpoints": {}, "bids": bids}
                self._queues.push(
                    "__fleet__", shard,
                    {"type": "checkpoint", "baseline_ids": bids, "sink": sink},
                    baseline=None,
                )
                sinks.append(sink)
            self._cond.notify_all()
        written: List[str] = []
        budget = self.options.job_timeout * 2 + 30.0
        for sink in sinks:
            if not sink["event"].wait(timeout=budget):
                raise CheckpointError(
                    f"checkpoint of baselines {sink['bids']} timed out"
                )
            if sink["error"]:
                raise CheckpointError(
                    f"checkpoint of baselines {sink['bids']} failed: "
                    f"{sink['error']}"
                )
            for bid, payload in sorted(sink["checkpoints"].items()):
                path = directory / f"{bid}.ckpt.json"
                path.write_text(json.dumps(payload))
                written.append(str(path))
        with self._cond:
            for sink in sinks:
                for bid in sink["checkpoints"]:
                    if bid in self._baselines:
                        self._baselines[bid].dirty = False
        return written

    # -- context manager ---------------------------------------------------- #

    def __enter__(self) -> "FleetPlanningService":
        self.start_sync()
        return self

    def __exit__(self, *exc) -> None:
        with contextlib.suppress(Exception):
            self.stop_sync()
