"""Sampled verification of incremental re-plans against full re-plans.

The incremental engine is exact *except* when a maze search escalates to
the full grid (see :mod:`repro.service.incremental`); the guard against
that gap — and against plain bugs — is to re-plan a sampled fraction of
jobs from scratch and compare buffering-kernel signatures. A mismatch is
logged through ``obs`` and the scheduler escalates by adopting the full
plan as the new baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import NULL_TRACER
from repro.service.engine import PlanState, full_plan


@dataclass
class VerificationResult:
    """Outcome of one incremental-vs-full comparison."""

    matched: bool
    incremental_signature: str
    full_signature: str
    reference: PlanState

    def as_dict(self) -> dict:
        return {
            "matched": self.matched,
            "incremental_signature": self.incremental_signature,
            "full_signature": self.full_signature,
        }


def verify_state(state: PlanState, tracer=None) -> VerificationResult:
    """Re-plan ``state.scenario`` from scratch and compare signatures.

    The scenario fully determines the reference plan, so equality of the
    buffering signatures (specs + ``b(v)`` grid + failed nets) means the
    incremental path reproduced the full pipeline bit for bit.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("service.verify"):
        reference = full_plan(state.scenario, state.config)
    return VerificationResult(
        matched=reference.signature == state.signature,
        incremental_signature=state.signature,
        full_signature=reference.signature,
        reference=reference,
    )
