"""The incremental planning service.

A persistent layer over the RABID pipeline for the paper's intended
workflow — perturb the floorplan, re-evaluate, repeat — built from:

* :mod:`repro.service.jobs` — typed scenarios, deltas, and jobs.
* :mod:`repro.service.engine` — full plans with replayable per-net state.
* :mod:`repro.service.incremental` — exact dirty-region re-planning.
* :mod:`repro.service.scheduler` — asyncio workers, timeouts, shed.
* :mod:`repro.service.verify` — sampled incremental-vs-full checks.
* :mod:`repro.service.checkpoint` — warm restarts via ``repro.io``.
* :mod:`repro.service.protocol` — the ``repro serve`` JSON-lines API.
"""

from repro.service.engine import NetOutcome, PlanState, full_plan
from repro.service.incremental import IncrementalStats, incremental_replan
from repro.service.jobs import (
    DeltaOp,
    DeltaSpec,
    Job,
    JobRecord,
    JobStatus,
    MacroSpec,
    ScenarioSpec,
    add_net,
    apply_delta,
    move_macro,
    remove_net,
    set_capacity,
    set_length_limit,
    set_sites,
)
from repro.service.scheduler import PlanningService, SchedulerOptions
from repro.service.verify import VerificationResult, verify_state

__all__ = [
    "DeltaOp",
    "DeltaSpec",
    "IncrementalStats",
    "Job",
    "JobRecord",
    "JobStatus",
    "MacroSpec",
    "NetOutcome",
    "PlanState",
    "PlanningService",
    "ScenarioSpec",
    "SchedulerOptions",
    "VerificationResult",
    "add_net",
    "apply_delta",
    "full_plan",
    "incremental_replan",
    "move_macro",
    "remove_net",
    "set_capacity",
    "set_length_limit",
    "set_sites",
    "verify_state",
]
