"""The incremental planning service.

A persistent layer over the RABID pipeline for the paper's intended
workflow — perturb the floorplan, re-evaluate, repeat — built from:

* :mod:`repro.service.jobs` — typed scenarios, deltas, and jobs.
* :mod:`repro.service.engine` — full plans with replayable per-net state.
* :mod:`repro.service.incremental` — exact dirty-region re-planning.
* :mod:`repro.service.scheduler` — asyncio workers, timeouts, shed.
* :mod:`repro.service.tenant` — weighted-fair per-tenant queues.
* :mod:`repro.service.fleet` — the sharded multi-process fleet.
* :mod:`repro.service.loadgen` — seeded open-loop load generation.
* :mod:`repro.service.verify` — sampled incremental-vs-full checks.
* :mod:`repro.service.checkpoint` — warm restarts via ``repro.io``.
* :mod:`repro.service.protocol` — the ``repro serve`` JSON-lines API.
"""

from repro.service.engine import NetOutcome, PlanState, full_plan
from repro.service.incremental import IncrementalStats, incremental_replan
from repro.service.jobs import (
    DeltaOp,
    DeltaSpec,
    Job,
    JobRecord,
    JobStatus,
    MacroSpec,
    ScenarioSpec,
    add_net,
    apply_delta,
    move_macro,
    remove_net,
    set_capacity,
    set_length_limit,
    set_sites,
)
from repro.service.fleet import (
    FleetBaseline,
    FleetJobRecord,
    FleetOptions,
    FleetPlanningService,
)
from repro.service.loadgen import (
    LoadgenOptions,
    LoadReport,
    LoadTrace,
    make_load_trace,
    run_load,
)
from repro.service.scheduler import PlanningService, SchedulerOptions
from repro.service.tenant import QueuedItem, TenantQueues
from repro.service.verify import VerificationResult, verify_state

__all__ = [
    "DeltaOp",
    "DeltaSpec",
    "FleetBaseline",
    "FleetJobRecord",
    "FleetOptions",
    "FleetPlanningService",
    "IncrementalStats",
    "Job",
    "JobRecord",
    "JobStatus",
    "LoadReport",
    "LoadTrace",
    "LoadgenOptions",
    "MacroSpec",
    "NetOutcome",
    "PlanState",
    "PlanningService",
    "QueuedItem",
    "ScenarioSpec",
    "SchedulerOptions",
    "TenantQueues",
    "VerificationResult",
    "add_net",
    "apply_delta",
    "full_plan",
    "incremental_replan",
    "make_load_trace",
    "move_macro",
    "run_load",
    "remove_net",
    "set_capacity",
    "set_length_limit",
    "set_sites",
    "verify_state",
]
