"""The JSON-lines wire protocol and the asyncio front end.

One request per line, one response per line. Requests are objects with
an ``op``:

* ``{"op": "submit", "job": {...}}`` — enqueue a job; responds with the
  job record summary (or a typed error, e.g. ``queue_full``).
* ``{"op": "status", "job_id": "..."}`` — current record summary.
* ``{"op": "wait", "job_id": "..."}`` — block until terminal, then the
  record summary.
* ``{"op": "baselines"}`` — list cached baseline ids and signatures.
* ``{"op": "stats"}`` — scheduler counters and queue depth.
* ``{"op": "checkpoint", "directory": "...", "only_dirty": false}`` —
  persist baselines (optionally only those mutated since last save).
* ``{"op": "shutdown", "deadline": 30}`` — graceful shutdown: further
  submits are rejected with ``ShuttingDownError``, in-flight jobs drain
  under the deadline, dirty baselines are checkpointed, then serve
  exits.

Jobs may carry a ``"tenant"`` name; the fleet scheduler
(:mod:`repro.service.fleet`) uses it for weighted fair queueing, the
single-process scheduler ignores it.

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "<TypeName>", "message": "..."}``; the error
name is the :mod:`repro.errors` class, so clients can distinguish shed
(``QueueFullError``) from failure.

Job wire format (see :mod:`repro.service.jobs`)::

    {"job_id": "b0", "kind": "baseline", "scenario": {...}, "config": {...}}
    {"job_id": "d1", "kind": "delta", "baseline_id": "b0",
     "delta": {"version": 1, "ops": [{"kind": "move_macro", ...}]},
     "mode": "incremental"}
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.errors import ProtocolError, ReproError
from repro.service.jobs import DeltaSpec, Job, ScenarioSpec
from repro.service.scheduler import PlanningService

PROTOCOL_VERSION = 1

#: Default cap on one request line. asyncio's StreamReader default (64 KiB)
#: is too small for checkpoint-sized scenarios, but an unbounded reader
#: would let one client buffer arbitrary memory; 1 MiB covers every
#: legitimate job the repo generates with two orders of magnitude to spare.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20


def job_to_dict(job: Job) -> Dict[str, Any]:
    out: Dict[str, Any] = {"job_id": job.job_id, "kind": job.kind}
    if job.scenario is not None:
        out["scenario"] = job.scenario.to_dict()
    if job.baseline_id is not None:
        out["baseline_id"] = job.baseline_id
    if job.delta is not None:
        out["delta"] = job.delta.to_dict()
    if job.kind == "delta":
        out["mode"] = job.mode
    if job.config is not None:
        out["config"] = job.config
    if job.tenant != "default":
        out["tenant"] = job.tenant
    return out


def job_from_dict(d: Dict[str, Any]) -> Job:
    if not isinstance(d, dict):
        raise ProtocolError("job must be a JSON object")
    for key in ("job_id", "kind"):
        if not isinstance(d.get(key), str):
            raise ProtocolError(f"job needs a string {key!r}")
    scenario = d.get("scenario")
    delta = d.get("delta")
    return Job(
        job_id=d["job_id"],
        kind=d["kind"],
        scenario=ScenarioSpec.from_dict(scenario) if scenario else None,
        baseline_id=d.get("baseline_id"),
        delta=DeltaSpec.from_dict(delta) if delta else None,
        mode=d.get("mode", "incremental"),
        config=d.get("config"),
        tenant=d.get("tenant", "default"),
    )


class ProtocolServer:
    """Serves the JSON-lines protocol over asyncio streams."""

    def __init__(
        self,
        service: PlanningService,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        checkpoint_dir: "str | None" = None,
        shutdown_deadline: "float | None" = 30.0,
    ):
        if max_request_bytes < 2:
            raise ProtocolError(
                f"max_request_bytes must be >= 2, got {max_request_bytes}"
            )
        self.service = service
        self.max_request_bytes = max_request_bytes
        self.checkpoint_dir = checkpoint_dir
        self.shutdown_deadline = shutdown_deadline
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._drain_report: Optional[Dict[str, Any]] = None

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=self.max_request_bytes
        )

    def request_shutdown(self) -> None:
        """Trigger the graceful shutdown sequence (signal handlers).

        New submissions are rejected with
        :class:`~repro.errors.ShuttingDownError` from this moment;
        :meth:`serve_until_shutdown` then drains in-flight jobs under
        ``shutdown_deadline``, checkpoints dirty baselines to
        ``checkpoint_dir``, and closes.
        """
        begin = getattr(self.service, "begin_shutdown", None)
        if begin is not None:
            begin()
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        begin = getattr(self.service, "begin_shutdown", None)
        if begin is not None:
            begin()
        drain_until = getattr(self.service, "drain_until", None)
        if drain_until is not None:
            self._drain_report = await drain_until(self.shutdown_deadline)
        if self.checkpoint_dir is not None:
            checkpoint_to = getattr(self.service, "checkpoint_to", None)
            if checkpoint_to is not None:
                await asyncio.to_thread(
                    checkpoint_to, self.checkpoint_dir, True
                )
        await self.close()

    @property
    def drain_report(self) -> Optional[Dict[str, Any]]:
        """``{"drained": bool, "pending": n}`` from the last shutdown."""
        return self._drain_report

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not reader.at_eof():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The client sent a line longer than max_request_bytes.
                    # Line framing is now unrecoverable (part of the
                    # oversized request is still in flight), so answer
                    # with a typed error and drop the connection instead
                    # of crashing the handler silently.
                    error = ProtocolError(
                        "request line exceeds "
                        f"{self.max_request_bytes} bytes"
                    )
                    writer.write(
                        json.dumps(
                            {
                                "ok": False,
                                "error": type(error).__name__,
                                "message": str(error),
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if self._shutdown.is_set():
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            try:
                request = json.loads(line)
            except ValueError as exc:
                raise ProtocolError(f"bad JSON: {exc}") from exc
            if not isinstance(request, dict):
                raise ProtocolError("request must be a JSON object")
            return await self.dispatch(request)
        except ReproError as exc:
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        except Exception as exc:  # noqa: BLE001 - protocol must not crash
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }

    async def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "submit":
            job = job_from_dict(request.get("job"))
            record = self.service.submit(job)
            return {"ok": True, **record.summary()}
        if op == "status":
            record = self.service.record(str(request.get("job_id")))
            return {"ok": True, **record.summary()}
        if op == "wait":
            record = await self.service.wait(str(request.get("job_id")))
            return {"ok": True, **record.summary()}
        if op == "baselines":
            return {
                "ok": True,
                "baselines": {
                    bid: self.service.baseline(bid).signature
                    for bid in self.service.baseline_ids
                },
            }
        if op == "stats":
            return {"ok": True, **self.service.stats()}
        if op == "checkpoint":
            directory = request.get("directory")
            if not isinstance(directory, str):
                raise ProtocolError("checkpoint needs a string 'directory'")
            written = await asyncio.to_thread(
                self.service.checkpoint_to,
                directory,
                bool(request.get("only_dirty", False)),
            )
            return {"ok": True, "written": written}
        if op == "shutdown":
            deadline = request.get("deadline")
            if deadline is not None:
                self.shutdown_deadline = float(deadline)
            self.request_shutdown()
            return {"ok": True, "shutting_down": True}
        raise ProtocolError(f"unknown op {op!r}")


async def request_over_stream(
    host: str, port: int, requests: "list[Dict[str, Any]]"
) -> "list[Dict[str, Any]]":
    """Client helper: send requests on one connection, collect responses."""
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ProtocolError("server closed the connection")
            responses.append(json.loads(line))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return responses
