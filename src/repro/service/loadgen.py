"""Seeded open-loop load generation for the planning service.

A *load trace* is a deterministic function of its options: M tenants,
one baseline each, and a Poisson arrival process (exponential
inter-arrivals at ``rate`` jobs/sec) of jobs mixing three kinds of work:

* ``full`` — a full-mode delta (scratch re-plan of the evolved
  scenario), the heavy job class;
* ``macro_move`` — an incremental macro-move delta, the classic
  floorplanning perturbation;
* ``net_churn`` — an incremental add/remove-net delta (alternating per
  tenant, so the netlist never grows unboundedly).

Because the trace is generated up front from one seed, the *same jobs
in the same submission order* can be driven through the single-process
scheduler and through fleets of any worker count — and since both
schedulers preserve per-baseline submission order, the final baseline
signatures must be byte-identical across all of them. That comparison
is the fleet determinism gate; the sustained jobs/sec and latency
percentiles of each run are the fleet benchmark.

Submission is *open loop*: jobs are submitted at their trace offsets
(or immediately, once behind) regardless of completions, so the service
sees genuine queueing pressure rather than a closed feedback loop that
self-throttles to the service rate.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, QueueFullError
from repro.service.jobs import (
    DeltaSpec,
    Job,
    JobStatus,
    MacroSpec,
    ScenarioSpec,
    add_net,
    move_macro,
    remove_net,
)
from repro.utils.rng import make_rng

_TERMINAL = (
    JobStatus.DONE,
    JobStatus.FAILED,
    JobStatus.TIMEOUT,
    JobStatus.SHED,
)


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


@dataclass(frozen=True)
class LoadgenOptions:
    """Shape of one generated load trace.

    ``mix`` weights (full, macro_move, net_churn); they need not sum to
    one. ``rate`` is the open-loop arrival rate in jobs/sec across all
    tenants.
    """

    tenants: int = 4
    jobs: int = 60
    rate: float = 20.0
    seed: int = 0
    mix: Tuple[float, float, float] = (0.05, 0.65, 0.30)
    grid: int = 16
    num_nets: int = 120
    total_sites: int = 600
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ConfigurationError("tenants must be >= 1")
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if self.rate <= 0:
            raise ConfigurationError("rate must be > 0")
        if len(self.mix) != 3 or any(w < 0 for w in self.mix) or not sum(self.mix):
            raise ConfigurationError("mix must be 3 non-negative weights")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")


@dataclass(frozen=True)
class LoadEvent:
    """One scheduled submission: ``job`` at ``offset`` seconds."""

    offset: float
    job: Job


@dataclass(frozen=True)
class LoadTrace:
    """A fully materialized workload (baselines + timed job arrivals)."""

    options: LoadgenOptions
    baselines: Tuple[Job, ...]
    events: Tuple[LoadEvent, ...]

    @property
    def warmup_count(self) -> int:
        return int(len(self.events) * self.options.warmup_fraction)


def _tenant_scenario(options: LoadgenOptions, tenant: int) -> ScenarioSpec:
    grid = options.grid
    side = max(2, grid // 4)
    return ScenarioSpec(
        grid=grid,
        num_nets=options.num_nets,
        total_sites=options.total_sites,
        seed=options.seed,
        # Distinct site scatter per tenant: baselines differ, so a shard
        # mix-up or cross-baseline replay cannot silently cancel out in
        # the signature comparison.
        site_seed=options.seed * 1000 + tenant,
        macros=(MacroSpec(grid // 4, grid // 4, side, side),),
    )


def make_load_trace(options: "LoadgenOptions | None" = None) -> LoadTrace:
    """Generate the deterministic trace for ``options`` (pure)."""
    options = options or LoadgenOptions()
    rng = make_rng(options.seed)
    grid = options.grid
    side = max(2, grid // 4)
    baselines = tuple(
        Job(
            job_id=f"lg-t{t}-b",
            kind="baseline",
            scenario=_tenant_scenario(options, t),
            tenant=f"t{t}",
        )
        for t in range(options.tenants)
    )
    weights = [float(w) for w in options.mix]
    total_w = sum(weights)
    probs = [w / total_w for w in weights]
    churn_added: Dict[int, List[str]] = {t: [] for t in range(options.tenants)}
    events: List[LoadEvent] = []
    offset = 0.0
    for k in range(options.jobs):
        offset += float(rng.exponential(1.0 / options.rate))
        tenant = int(rng.integers(options.tenants))
        kind = ["full", "macro_move", "net_churn"][
            int(rng.choice(3, p=probs))
        ]
        if kind == "net_churn" and churn_added[tenant] and rng.random() < 0.5:
            ops = (remove_net(churn_added[tenant].pop(0)),)
        elif kind == "net_churn":
            name = f"lg{tenant}x{k}"
            source = (int(rng.integers(grid)), int(rng.integers(grid)))
            sinks = [
                (int(rng.integers(grid)), int(rng.integers(grid)))
                for _ in range(int(rng.integers(1, 3)))
            ]
            churn_added[tenant].append(name)
            ops = (add_net(name, source, sinks),)
        else:
            x = int(rng.integers(grid - side))
            y = int(rng.integers(grid - side))
            ops = (move_macro(0, x, y),)
        events.append(
            LoadEvent(
                offset=offset,
                job=Job(
                    job_id=f"lg-t{tenant}-d{k}",
                    kind="delta",
                    baseline_id=f"lg-t{tenant}-b",
                    delta=DeltaSpec(ops=ops),
                    mode="full" if kind == "full" else "incremental",
                    tenant=f"t{tenant}",
                ),
            )
        )
    return LoadTrace(options=options, baselines=baselines, events=tuple(events))


@dataclass
class LoadReport:
    """What one driven trace actually did, measured past warmup."""

    jobs_submitted: int = 0
    jobs_measured: int = 0
    jobs_done: int = 0
    jobs_shed: int = 0
    jobs_failed: int = 0
    wall_seconds: float = 0.0
    jobs_per_sec: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    queue_wait_p95: float = 0.0
    per_tenant: Dict[str, Dict[str, float]] = field(default_factory=dict)
    signatures: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_measured": self.jobs_measured,
            "jobs_done": self.jobs_done,
            "jobs_shed": self.jobs_shed,
            "jobs_failed": self.jobs_failed,
            "wall_seconds": round(self.wall_seconds, 6),
            "jobs_per_sec": round(self.jobs_per_sec, 3),
            "latency_p50": round(self.latency_p50, 6),
            "latency_p95": round(self.latency_p95, 6),
            "latency_p99": round(self.latency_p99, 6),
            "queue_wait_p95": round(self.queue_wait_p95, 6),
            "per_tenant": self.per_tenant,
            "signatures": dict(self.signatures),
        }


def _signature_of(service, baseline_id: str) -> Optional[str]:
    # PlanningService baselines are PlanStates, fleet baselines are
    # FleetBaseline records; both expose .signature.
    try:
        return service.baseline(baseline_id).signature
    except Exception:  # noqa: BLE001 - baseline may have failed to plan
        return None


async def run_load(service, trace: LoadTrace) -> LoadReport:
    """Drive ``trace`` through a started service; returns the report.

    Works against both scheduler implementations (anything with
    ``submit``/``wait``/``record``/``baseline``). Baselines are planned
    first (outside the measured window); delta jobs are then submitted
    open-loop at their trace offsets.
    """
    report = LoadReport()
    for job in trace.baselines:
        service.submit(job)
    for job in trace.baselines:
        await service.wait(job.job_id)

    start = time.monotonic()
    submitted: List[str] = []
    for event in trace.events:
        delay = event.offset - (time.monotonic() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            service.submit(event.job)
        except QueueFullError:
            report.jobs_shed += 1
            continue
        submitted.append(event.job.job_id)
        report.jobs_submitted += 1
    for job_id in submitted:
        await service.wait(job_id)
    wall_end = time.monotonic()

    warmup_ids = {e.job.job_id for e in trace.events[: trace.warmup_count]}
    latencies: List[float] = []
    waits: List[float] = []
    per_tenant: Dict[str, List[float]] = {}
    measured_finish = start
    for job_id in submitted:
        record = service.record(job_id)
        if record.status is JobStatus.DONE:
            report.jobs_done += 1
        elif record.status in (JobStatus.FAILED, JobStatus.TIMEOUT):
            report.jobs_failed += 1
        if job_id in warmup_ids or record.status is not JobStatus.DONE:
            continue
        report.jobs_measured += 1
        latencies.append(record.finished_at - record.submitted_at)
        waits.append(record.queue_wait)
        per_tenant.setdefault(record.job.tenant, []).append(record.queue_wait)
        measured_finish = max(measured_finish, record.finished_at)
    report.wall_seconds = max(1e-9, measured_finish - start)
    if not report.jobs_measured:
        report.wall_seconds = max(1e-9, wall_end - start)
    report.jobs_per_sec = report.jobs_measured / report.wall_seconds
    report.latency_p50 = _percentile(latencies, 0.50)
    report.latency_p95 = _percentile(latencies, 0.95)
    report.latency_p99 = _percentile(latencies, 0.99)
    report.queue_wait_p95 = _percentile(waits, 0.95)
    report.per_tenant = {
        tenant: {
            "jobs": float(len(values)),
            "queue_wait_p95": round(_percentile(values, 0.95), 6),
        }
        for tenant, values in sorted(per_tenant.items())
    }
    report.signatures = {
        job.job_id: sig
        for job in trace.baselines
        if (sig := _signature_of(service, job.job_id)) is not None
    }
    return report
