"""Checkpointing: persist service baselines, restore them warm.

A checkpoint is the :mod:`repro.io.serialize` plan payload (graph state,
routes with buffer annotations, full config) plus the service-level
context the plan schema doesn't carry: the scenario that produced the
plan, each net's replayable :class:`NetOutcome`, and the buffering
signature. Loading rebuilds a :class:`PlanState` and *recomputes* the
signature from the restored plan — a mismatch against the stored one
means the payload is corrupt or from an incompatible engine, and raises
:class:`repro.errors.CheckpointError` rather than resuming from a wrong
plan.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.benchmarks.buffering_kernel import buffering_signature
from repro.core.candidates import INF
from repro.errors import CheckpointError
from repro.io.serialize import PLAN_SCHEMA_VERSION, plan_from_dict, plan_to_dict
from repro.service.engine import NetOutcome, PlanState
from repro.service.jobs import ScenarioSpec

CHECKPOINT_SCHEMA = 1


def checkpoint_to_dict(baseline_id: str, state: PlanState) -> Dict[str, Any]:
    return {
        "version": CHECKPOINT_SCHEMA,
        "plan_schema": PLAN_SCHEMA_VERSION,
        "baseline_id": baseline_id,
        "scenario": state.scenario.to_dict(),
        "plan": plan_to_dict(state.graph, state.routes, state.config),
        "outcomes": {
            name: {
                "meets": o.meets,
                "dp_ok": o.dp_ok,
                "cost": None if o.cost == INF else o.cost,
            }
            for name, o in state.outcomes.items()
        },
        "signature": state.signature,
        "seconds_full": state.seconds_full,
    }


def checkpoint_from_dict(d: Dict[str, Any]) -> "tuple[str, PlanState]":
    if d.get("version") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema {d.get('version')!r}"
        )
    try:
        graph, routes, config = plan_from_dict(d["plan"])
        scenario = ScenarioSpec.from_dict(d["scenario"])
        outcomes = {}
        for name, od in d["outcomes"].items():
            if name not in routes:
                raise CheckpointError(f"outcome for unknown net {name!r}")
            outcomes[name] = NetOutcome(
                # The specs live on the serialized trees; re-read them so
                # replay uses exactly what the plan payload restored.
                specs=tuple(routes[name].buffer_specs()),
                meets=od["meets"],
                dp_ok=od["dp_ok"],
                cost=INF if od["cost"] is None else od["cost"],
            )
        if set(outcomes) != set(routes):
            raise CheckpointError("outcomes do not cover every routed net")
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    state = PlanState(
        scenario=scenario,
        config=config,
        graph=graph,
        routes=routes,
        outcomes=outcomes,
        signature=d["signature"],
        seconds_full=d.get("seconds_full", 0.0),
    )
    failed = [n for n in state.order if not outcomes[n].meets]
    recomputed = buffering_signature(routes, graph, failed)
    if recomputed != d["signature"]:
        raise CheckpointError(
            "checkpoint signature mismatch: stored "
            f"{d['signature'][:12]}..., recomputed {recomputed[:12]}..."
        )
    return d["baseline_id"], state


def save_checkpoint(path: "str | Path", baseline_id: str, state: PlanState) -> None:
    Path(path).write_text(json.dumps(checkpoint_to_dict(baseline_id, state)))


def load_checkpoint(path: "str | Path") -> "tuple[str, PlanState]":
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return checkpoint_from_dict(payload)


def save_service_checkpoints(
    directory: "str | Path", service, only_dirty: bool = False
) -> "list[str]":
    """Write one ``<baseline_id>.ckpt.json`` per baseline; returns paths.

    Each baseline is captured under its job lock
    (:meth:`PlanningService.locked_baseline`), so a worker — or a
    timed-out job's zombie thread — mid-replan can never hand the
    serializer a torn plan. ``only_dirty`` restricts to baselines
    mutated since their last checkpoint (the graceful-shutdown path);
    saved baselines are marked clean.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    ids = (
        service.dirty_baseline_ids if only_dirty else service.baseline_ids
    )
    written = []
    for baseline_id in ids:
        path = directory / f"{baseline_id}.ckpt.json"
        with service.locked_baseline(baseline_id) as state:
            save_checkpoint(path, baseline_id, state)
        mark_clean = getattr(service, "mark_baseline_clean", None)
        if mark_clean is not None:
            mark_clean(baseline_id)
        written.append(str(path))
    return written


def load_service_checkpoints(directory: "str | Path", service) -> "list[str]":
    """Install every checkpoint under ``directory``; returns baseline ids."""
    directory = Path(directory)
    loaded = []
    for path in sorted(directory.glob("*.ckpt.json")):
        baseline_id, state = load_checkpoint(path)
        service.install_baseline(baseline_id, state)
        loaded.append(baseline_id)
    return loaded
