"""The planning engine behind the service: full plans and cached state.

The service pipeline is the buffering kernel's recipe made stateful:
route every net once (congestion-aware maze search, sorted name order),
then run the Stage-3 solve/commit walk net by net. Unlike the batch
``Rabid`` driver, the engine keeps *per-net* outcomes — the exact buffer
specs, length-rule verdict, DP feasibility, and Eq. (2) cost each net
committed — because the incremental engine (:mod:`repro.service.incremental`)
replays those cached outcomes verbatim for nets a delta cannot have
touched.

Determinism is the load-bearing property: a :class:`ScenarioSpec` fully
determines the plan, so ``full_plan(scenario)`` is the reference the
incremental path must (and is sample-verified to) reproduce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.benchmarks.buffering_kernel import buffering_signature
from repro.core.assignment import _commit_outcome, _solve_net
from repro.core.candidates import INF
from repro.core.probability import UsageProbability
from repro.core.rabid import RabidConfig
from repro.core.solver import Stage3CostField, make_solver
from repro.geometry import Rect
from repro.obs import NULL_TRACER
from repro.routing.maze import route_net_on_tiles
from repro.routing.tree import BufferSpec, RouteTree
from repro.service.jobs import ScenarioSpec
from repro.tilegraph import CapacityModel, TileGraph

Tile = Tuple[int, int]


@dataclass(frozen=True)
class NetOutcome:
    """One net's committed Stage-3 result (replayable)."""

    specs: Tuple[BufferSpec, ...]
    meets: bool
    dp_ok: bool
    cost: float


@dataclass
class PlanBackup:
    """Everything needed to restore a :class:`PlanState` in place."""

    scenario: ScenarioSpec
    routes: Dict[str, RouteTree]
    outcomes: Dict[str, NetOutcome]
    signature: str
    usage: tuple
    sites: np.ndarray
    edge_capacity: np.ndarray


@dataclass
class PlanState:
    """A cached baseline plan the service can re-plan incrementally.

    The graph carries the plan's full usage state (wire usage, ``b(v)``
    bookings); ``routes`` and ``outcomes`` pin each net's tree and
    committed buffering. ``signature`` is the buffering-kernel SHA-256
    (specs + used-sites grid + failed nets) that identifies the plan.
    """

    scenario: ScenarioSpec
    config: RabidConfig
    graph: TileGraph
    routes: Dict[str, RouteTree]
    outcomes: Dict[str, NetOutcome]
    signature: str
    seconds_full: float = 0.0

    @property
    def order(self) -> List[str]:
        return sorted(self.routes)

    @property
    def failed_nets(self) -> List[str]:
        return sorted(n for n, o in self.outcomes.items() if not o.meets)

    def limits(self) -> Dict[str, int]:
        return self.scenario.limits(self.order)

    def summary(self) -> Dict[str, object]:
        return {
            "signature": self.signature,
            "nets": len(self.routes),
            "buffers": sum(len(o.specs) for o in self.outcomes.values()),
            "failed_nets": self.failed_nets,
            "seconds_full": round(self.seconds_full, 4),
        }

    # -- rollback -------------------------------------------------------- #

    def backup(self) -> PlanBackup:
        """Snapshot for rollback-safe incremental re-planning."""
        return PlanBackup(
            scenario=self.scenario,
            routes=dict(self.routes),
            outcomes=dict(self.outcomes),
            signature=self.signature,
            usage=self.graph.snapshot_usage(),
            sites=self.graph.sites.copy(),
            edge_capacity=self.graph.edge_capacity.copy(),
        )

    def restore(self, backup: PlanBackup) -> None:
        """Undo a failed partial re-plan: graph arrays, routes, outcomes.

        Buffer annotations live on the trees and may have been rewritten
        mid-replay, so each surviving tree gets its cached specs
        re-applied.
        """
        graph = self.graph
        graph.sites[:] = backup.sites
        graph._notify_all_sites_changed()
        graph.edge_capacity[:] = backup.edge_capacity
        graph.restore_usage(backup.usage)
        self.scenario = backup.scenario
        self.routes = backup.routes
        self.outcomes = backup.outcomes
        self.signature = backup.signature
        for name, tree in self.routes.items():
            tree.apply_buffers(list(self.outcomes[name].specs))


def build_graph(scenario: ScenarioSpec) -> TileGraph:
    """Materialize a scenario's tile graph: die, ``W(e)``, ``B(v)``."""
    grid = scenario.grid
    graph = TileGraph(
        Rect(0.0, 0.0, float(grid), float(grid)),
        grid,
        grid,
        CapacityModel.uniform(scenario.capacity),
    )
    for u, v, cap in scenario.capacity_overrides:
        graph.set_wire_capacity(tuple(u), tuple(v), cap)
    graph.sites[:] = scenario.effective_sites()
    graph._notify_all_sites_changed()
    return graph


def route_one(
    graph: TileGraph,
    name: str,
    source: Tile,
    sinks,
    config: RabidConfig,
    tracer=None,
) -> RouteTree:
    """Route one net with the service's fixed routing parameters.

    Both the full and the incremental path call exactly this, so a
    rerouted net inside a replay reproduces what the full plan would
    route given the same prefix usage state.
    """
    return route_net_on_tiles(
        graph,
        source,
        list(sinks),
        radius_weight=config.pd_tradeoff,
        net_name=name,
        window_margin=config.window_margin,
        tracer=tracer,
    )


def make_solver_lookup(config: RabidConfig) -> Callable[[str], object]:
    """Net-name -> solver, honoring per-net overrides, one per strategy."""
    solvers: Dict[str, object] = {}

    def solver_for(name: str):
        key = config.solver_name_for(name)
        solver = solvers.get(key)
        if solver is None:
            solver = solvers[key] = make_solver(
                key,
                technology=config.technology,
                buffer_library=config.buffer_library,
            )
        return solver

    return solver_for


def run_buffer_walk(
    graph: TileGraph,
    routes: Dict[str, RouteTree],
    limits: Dict[str, int],
    order,
    config: RabidConfig,
    tracer=None,
    replay: "Callable[[str], Optional[NetOutcome]] | None" = None,
    on_solved: "Callable[[str, NetOutcome], None] | None" = None,
    abort_check: "Callable[[], bool] | None" = None,
) -> Dict[str, NetOutcome]:
    """The sequential Stage-3 walk with an optional replay fast path.

    Mirrors :func:`repro.core.assignment.assign_buffers_stage3`'s
    sequential semantics exactly — ``p(v)`` seeded from every net in
    order, each net's contribution removed just before its turn, solve
    then ledger-transactional commit. When ``replay`` returns a cached
    :class:`NetOutcome` for a net, its specs are *booked* (use-site +
    annotations) without re-running the solver; because the walk
    reconstructs the same prefix ``b(v)``/``p(v)`` state the original
    run saw, replayed and re-solved nets compose into a plan identical
    to a from-scratch walk.

    The whole walk runs inside one :class:`SiteLedger` transaction, so
    an exception anywhere unwinds every site booking made so far.

    ``abort_check`` is the fleet's cooperative-preemption hook: polled
    between nets, a True return raises
    :class:`repro.errors.PreemptedError` (the ledger transaction unwinds
    every booking, so the graph is untouched).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    probability = None
    if config.use_probability:
        probability = UsageProbability(graph)
        for name in order:
            probability.add_net(routes[name], limits[name])
    cost_field = Stage3CostField(graph, probability)
    solver_for = make_solver_lookup(config)
    outcomes: Dict[str, NetOutcome] = {}
    ledger = graph.ledger()
    with ledger.transaction():
        for name in order:
            if abort_check is not None and abort_check():
                from repro.errors import PreemptedError

                raise PreemptedError(
                    f"buffer walk preempted before net {name!r}"
                )
            tree = routes[name]
            if probability is not None:
                probability.remove_net(tree)
            cached = replay(name) if replay is not None else None
            if cached is not None:
                for spec in cached.specs:
                    graph.use_site(spec.tile, 1, spec.kind)
                tree.apply_buffers(list(cached.specs))
                outcomes[name] = cached
                if tracer.enabled:
                    tracer.count("service.nets_replayed")
                continue
            outcome = _solve_net(
                graph,
                tree,
                limits[name],
                cost_field,
                solver_for(name),
                tracer=tracer,
            )
            meets, dp_ok, cost = _commit_outcome(
                graph, tree, limits[name], outcome, tracer=tracer
            )
            outcomes[name] = NetOutcome(
                specs=tuple(tree.buffer_specs()),
                meets=meets,
                dp_ok=dp_ok,
                cost=cost,
            )
            if on_solved is not None:
                on_solved(name, outcomes[name])
            if tracer.enabled:
                tracer.count("service.nets_solved")
                tracer.check_site_invariants(graph, f"service net {name}")
    return outcomes


def full_plan(
    scenario: ScenarioSpec,
    config: "RabidConfig | None" = None,
    tracer=None,
    abort_check: "Callable[[], bool] | None" = None,
) -> PlanState:
    """Plan a scenario from scratch; the incremental path's reference.

    ``abort_check`` (fleet preemption) is polled between routed nets and
    between buffered nets; a True return abandons the partial plan by
    raising :class:`repro.errors.PreemptedError`. The plan is built on a
    fresh graph, so preemption leaves no shared state to undo.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    config = config or RabidConfig()
    if scenario.buffer_library:
        # A scenario-pinned library turns on the multi-type sizing pass;
        # with buffer_library == "" the config is untouched, so legacy
        # scenarios plan byte-identically to before the field existed.
        from dataclasses import replace

        config = replace(
            config,
            buffer_library=scenario.buffer_library,
            stage3_solver="multi_type",
        )
    start = time.perf_counter()
    with tracer.span("service.full_plan", nets=scenario.num_nets):
        graph = build_graph(scenario)
        nets = scenario.nets()
        order = sorted(nets)
        routes: Dict[str, RouteTree] = {}
        for name in order:
            if abort_check is not None and abort_check():
                from repro.errors import PreemptedError

                raise PreemptedError(
                    f"full plan preempted before routing net {name!r}"
                )
            source, sinks = nets[name]
            tree = route_one(graph, name, source, sinks, config, tracer=tracer)
            tree.add_usage(graph)
            routes[name] = tree
        limits = scenario.limits(order)
        outcomes = run_buffer_walk(
            graph, routes, limits, order, config, tracer=tracer,
            abort_check=abort_check,
        )
    failed = [n for n in order if not outcomes[n].meets]
    state = PlanState(
        scenario=scenario,
        config=config,
        graph=graph,
        routes=routes,
        outcomes=outcomes,
        signature=buffering_signature(routes, graph, failed),
        seconds_full=time.perf_counter() - start,
    )
    if tracer.enabled:
        tracer.observe("service.full_plan_seconds", state.seconds_full)
    return state


def plan_cost(outcomes: Dict[str, NetOutcome]) -> float:
    """Total committed Eq. (2) cost (greedy-fallback nets excluded)."""
    return sum(o.cost for o in outcomes.values() if o.cost != INF)
