"""The asyncio job scheduler: bounded queue, worker pool, retries.

The planning work itself is CPU-bound synchronous code, so workers hand
each job to a thread (``asyncio.to_thread``) and await it under a
per-job timeout. Three safety properties:

* **Backpressure** — the queue is bounded; a submit against a full
  queue sheds immediately with :class:`repro.errors.QueueFullError`
  (typed, so the protocol layer reports it distinctly).
* **Serialization per baseline** — every job against a given baseline
  takes that baseline's ``threading.Lock`` *inside its worker thread*,
  so a timed-out job's zombie thread can never interleave with the next
  job on the same plan.
* **Timeout rollback** — a timeout cancels the awaiting coroutine but
  cannot stop the thread; thread and timeout path race to claim the
  job's fate through a lock-guarded :class:`_JobFate`, so exactly one
  of them wins. If the timeout claims first, the thread rolls back the
  pre-job backup (and never installs/rebinds a baseline); if the thread
  already claimed completion, the record still reports ``TIMEOUT`` but
  its error says the result was committed, so clients know not to
  resubmit the delta.

Sampled verification (``verify_fraction``) re-plans a deterministic
subset of incremental jobs from scratch and, on a signature mismatch,
adopts the full plan (escalation) while counting the event in ``obs``.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.core.rabid import RabidConfig
from repro.errors import (
    JobFailedError,
    JobTimeoutError,
    QueueFullError,
    ServiceError,
    ShuttingDownError,
    UnknownJobError,
)
from repro.obs import NULL_TRACER
from repro.service.engine import PlanState, full_plan
from repro.service.incremental import incremental_replan
from repro.service.jobs import Job, JobRecord, JobStatus

_TERMINAL = (JobStatus.DONE, JobStatus.FAILED, JobStatus.TIMEOUT, JobStatus.SHED)


class _JobFate:
    """Atomic arbiter between a job thread and the timeout path.

    The event loop cannot stop a running thread, so when ``wait_for``
    raises both sides may believe they own the outcome. Exactly one
    claim wins: the thread calls :meth:`try_commit` *before* publishing
    any mutation (installing a baseline, rebinding the dict entry), and
    the timeout path calls :meth:`try_cancel` before reporting "rolled
    back". Whoever claims second learns the truth and acts on it — the
    thread rolls back, or the timeout path reports the commit.
    """

    _COMMITTED = "committed"
    _CANCELLED = "cancelled"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state: Optional[str] = None

    def try_commit(self) -> bool:
        """Claim completion; False means the timeout already won."""
        with self._lock:
            if self._state is None:
                self._state = self._COMMITTED
            return self._state == self._COMMITTED

    def try_cancel(self) -> bool:
        """Claim cancellation; False means the thread already committed."""
        with self._lock:
            if self._state is None:
                self._state = self._CANCELLED
            return self._state == self._CANCELLED


@dataclass
class SchedulerOptions:
    """Knobs for :class:`PlanningService`.

    Attributes:
        workers: concurrent worker tasks (each runs one job thread).
        max_queue: queued-job cap; submits beyond it shed.
        job_timeout: per-attempt wall-clock budget in seconds.
        retries: re-runs after a failed attempt (timeouts don't retry).
        backoff: base delay before retry ``k`` (``backoff * 2**k``).
        verify_fraction: fraction of incremental jobs re-checked against
            a scratch full plan (0 disables, 1 checks every job).
        verify_seed: seed of the sampling stream, so a service replays
            the same verification schedule across restarts.
    """

    workers: int = 2
    max_queue: int = 64
    job_timeout: float = 300.0
    retries: int = 1
    backoff: float = 0.25
    verify_fraction: float = 0.0
    verify_seed: int = 0

    def __post_init__(self) -> None:
        from repro.errors import ConfigurationError

        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if self.job_timeout <= 0:
            raise ConfigurationError("job_timeout must be > 0")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.backoff < 0:
            raise ConfigurationError("backoff must be >= 0")
        if not 0.0 <= self.verify_fraction <= 1.0:
            raise ConfigurationError("verify_fraction must be in [0, 1]")


class PlanningService:
    """Owns the baselines, the queue, and the worker pool."""

    def __init__(
        self,
        config: "RabidConfig | None" = None,
        options: "SchedulerOptions | None" = None,
        tracer=None,
        full_plan_fn=full_plan,
        replan_fn=incremental_replan,
    ):
        self.config = config or RabidConfig()
        self.options = options or SchedulerOptions()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._full_plan = full_plan_fn
        self._replan = replan_fn
        self._queue: "asyncio.Queue[str]" = asyncio.Queue(
            maxsize=self.options.max_queue
        )
        self._records: Dict[str, JobRecord] = {}
        self._baselines: Dict[str, PlanState] = {}
        self._baseline_locks: Dict[str, threading.Lock] = {}
        self._workers: List[asyncio.Task] = []
        self._verify_rng = random.Random(self.options.verify_seed)
        self._shutting_down = False
        self._dirty: "set[str]" = set()
        self._stats = {
            "submitted": 0,
            "shed": 0,
            "done": 0,
            "failed": 0,
            "timeout": 0,
            "verified": 0,
            "mismatches": 0,
        }

    # -- lifecycle ------------------------------------------------------- #

    async def start(self) -> None:
        if self._workers:
            return
        self._workers = [
            asyncio.create_task(self._worker_loop(i))
            for i in range(self.options.workers)
        ]

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []

    async def drain(self) -> None:
        """Wait until every queued job has finished."""
        await self._queue.join()

    @property
    def shutting_down(self) -> bool:
        return self._shutting_down

    def begin_shutdown(self) -> None:
        """Reject all further submissions; in-flight jobs keep running."""
        self._shutting_down = True

    async def drain_until(self, deadline_s: "float | None") -> Dict[str, Any]:
        """Drain with a wall-clock bound.

        Returns ``{"drained": bool, "pending": n}`` — ``pending`` counts
        queued plus running jobs left when the deadline cut the wait
        short (they are abandoned by shutdown; their baselines were
        either committed or rolled back per the usual fate rules).
        """
        limit = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        while True:
            pending = self._queue.qsize() + sum(
                1
                for r in self._records.values()
                if r.status is JobStatus.RUNNING
            )
            if not pending:
                return {"drained": True, "pending": 0}
            if limit is not None and time.monotonic() > limit:
                return {"drained": False, "pending": pending}
            await asyncio.sleep(0.01)

    # -- submission / inspection ----------------------------------------- #

    def submit(self, job: Job) -> JobRecord:
        """Enqueue a job; raises :class:`QueueFullError` when saturated.

        A job id whose only record is ``SHED`` may be resubmitted:
        backpressure is exactly the condition that invites a retry, so
        shedding must not burn the id.
        """
        if self._shutting_down:
            raise ShuttingDownError(
                "service is shutting down; submission rejected"
            )
        existing = self._records.get(job.job_id)
        if existing is not None and existing.status is not JobStatus.SHED:
            raise ServiceError(f"duplicate job id {job.job_id!r}")
        record = JobRecord(job=job, submitted_at=time.monotonic())
        self._stats["submitted"] += 1
        try:
            self._queue.put_nowait(job.job_id)
        except asyncio.QueueFull:
            record.status = JobStatus.SHED
            record.error = (
                f"queue full ({self.options.max_queue} jobs); shed"
            )
            self._stats["shed"] += 1
            self._records[job.job_id] = record
            if self.tracer.enabled:
                self.tracer.count("service.jobs_shed")
            raise QueueFullError(record.error)
        self._records[job.job_id] = record
        if self.tracer.enabled:
            self.tracer.count("service.jobs_submitted")
            self.tracer.gauge("service.queue_depth", self._queue.qsize())
        return record

    def record(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job {job_id!r}") from None

    def baseline(self, baseline_id: str) -> PlanState:
        try:
            return self._baselines[baseline_id]
        except KeyError:
            raise UnknownJobError(f"unknown baseline {baseline_id!r}") from None

    @contextlib.contextmanager
    def locked_baseline(self, baseline_id: str) -> Iterator[PlanState]:
        """The baseline under its job lock — a quiescent plan.

        Checkpointing reads routes and live graph arrays; without the
        lock a worker (or a timed-out job's zombie thread) could mutate
        them mid-serialization. Re-reads the dict entry after acquiring
        the lock so a concurrent full-mode rebind yields the new plan,
        not the orphaned one.
        """
        try:
            lock = self._baseline_locks[baseline_id]
        except KeyError:
            raise UnknownJobError(f"unknown baseline {baseline_id!r}") from None
        with lock:
            yield self.baseline(baseline_id)

    def install_baseline(self, baseline_id: str, state: PlanState) -> None:
        """Adopt a pre-built plan (checkpoint restore / warm restart)."""
        self._baselines[baseline_id] = state
        self._baseline_locks[baseline_id] = threading.Lock()

    @property
    def baseline_ids(self) -> List[str]:
        return sorted(self._baselines)

    @property
    def dirty_baseline_ids(self) -> List[str]:
        """Baselines mutated since their last checkpoint (or install)."""
        return sorted(self._dirty)

    def mark_baseline_clean(self, baseline_id: str) -> None:
        self._dirty.discard(baseline_id)

    def checkpoint_to(self, directory, only_dirty: bool = False) -> List[str]:
        """Persist baselines to ``directory``; returns written paths."""
        from repro.service.checkpoint import save_service_checkpoints

        return save_service_checkpoints(
            directory, self, only_dirty=only_dirty
        )

    def stats(self) -> Dict[str, Any]:
        return {
            **self._stats,
            "queue_depth": self._queue.qsize(),
            "baselines": len(self._baselines),
        }

    async def wait(self, job_id: str, poll: float = 0.01) -> JobRecord:
        """Block until a job reaches a terminal status."""
        record = self.record(job_id)
        while record.status not in _TERMINAL:
            await asyncio.sleep(poll)
        return record

    # -- workers ---------------------------------------------------------- #

    async def _worker_loop(self, index: int) -> None:
        while True:
            job_id = await self._queue.get()
            try:
                await self._run_with_retries(self._records[job_id])
            finally:
                self._queue.task_done()
                if self.tracer.enabled:
                    self.tracer.gauge("service.queue_depth", self._queue.qsize())

    async def _run_with_retries(self, record: JobRecord) -> None:
        record.status = JobStatus.RUNNING
        record.started_at = time.monotonic()
        if self.tracer.enabled:
            self.tracer.observe(
                "service.queue_wait_seconds", record.queue_wait
            )
        options = self.options
        for attempt in range(options.retries + 1):
            record.attempts += 1
            fate = _JobFate()
            try:
                result = await asyncio.wait_for(
                    asyncio.to_thread(self._run_job_sync, record.job, fate),
                    timeout=options.job_timeout,
                )
            except asyncio.TimeoutError:
                record.status = JobStatus.TIMEOUT
                if fate.try_cancel():
                    outcome = "rolled back"
                else:
                    # The thread claimed completion inside the race
                    # window: its mutation is committed and must not be
                    # reported as undone (a client would re-apply it).
                    outcome = "completed before cancellation; committed"
                record.error = (
                    f"job exceeded {options.job_timeout}s "
                    f"(attempt {attempt + 1}); {outcome}"
                )
                self._stats["timeout"] += 1
                if self.tracer.enabled:
                    self.tracer.count("service.jobs_timeout")
                break
            except Exception as exc:  # noqa: BLE001 - report, don't crash pool
                record.error = f"{type(exc).__name__}: {exc}"
                if attempt < options.retries:
                    await asyncio.sleep(options.backoff * (2 ** attempt))
                    if self.tracer.enabled:
                        self.tracer.count("service.jobs_retried")
                    continue
                record.status = JobStatus.FAILED
                self._stats["failed"] += 1
                if self.tracer.enabled:
                    self.tracer.count("service.jobs_failed")
                break
            else:
                record.result = result
                record.status = JobStatus.DONE
                self._stats["done"] += 1
                break
        record.finished_at = time.monotonic()
        if self.tracer.enabled and record.status is JobStatus.DONE:
            self.tracer.observe(
                "service.job_seconds", record.finished_at - record.submitted_at
            )
            mode = (
                "baseline"
                if record.job.kind == "baseline"
                else record.job.mode
            )
            elapsed = record.finished_at - record.started_at
            self.tracer.observe("service.exec_seconds", elapsed)
            self.tracer.observe(f"service.exec_seconds.{mode}", elapsed)

    # -- the job body (runs in a worker thread) --------------------------- #

    def _run_job_sync(self, job: Job, fate: _JobFate) -> Dict[str, Any]:
        if job.kind == "baseline":
            return self._run_baseline(job, fate)
        return self._run_delta(job, fate)

    def _run_baseline(self, job: Job, fate: _JobFate) -> Dict[str, Any]:
        config = self.config
        if job.config is not None:
            config = RabidConfig.from_dict(job.config)
        state = self._full_plan(job.scenario, config, tracer=self.tracer)
        if not fate.try_commit():
            # The scheduler already reported TIMEOUT; installing now
            # would silently adopt a baseline it said failed.
            raise JobTimeoutError(
                f"job {job.job_id!r} cancelled; baseline not installed"
            )
        self.install_baseline(job.job_id, state)
        self._dirty.add(job.job_id)
        return {"baseline_id": job.job_id, **state.summary()}

    def _run_delta(self, job: Job, fate: _JobFate) -> Dict[str, Any]:
        state = self.baseline(job.baseline_id)
        lock = self._baseline_locks[job.baseline_id]
        with lock:
            backup = state.backup()
            try:
                result, new_state = self._apply_delta_locked(job, state)
            except ServiceError:
                raise
            except Exception as exc:
                raise JobFailedError(
                    f"delta job {job.job_id!r} failed: {exc}"
                ) from exc
            if not fate.try_commit():
                # The awaiting side already reported a timeout; undo the
                # in-place mutation and drop any replacement plan so the
                # reported state matches reality.
                state.restore(backup)
                raise JobTimeoutError(f"job {job.job_id!r} cancelled")
            if new_state is not None:
                self._baselines[job.baseline_id] = new_state
            self._dirty.add(job.baseline_id)
            return result

    def _apply_delta_locked(
        self, job: Job, state: PlanState
    ) -> "tuple[Dict[str, Any], Optional[PlanState]]":
        """Run the delta; returns (result, replacement plan or None).

        Never rebinds ``self._baselines`` itself — full-mode and
        escalation plans are handed back so :meth:`_run_delta` installs
        them only after the job wins the commit/cancel race.
        """
        seconds_full_estimate = state.seconds_full
        if job.mode == "full":
            from repro.service.jobs import apply_delta

            new_state = self._full_plan(
                apply_delta(state.scenario, job.delta),
                state.config,
                tracer=self.tracer,
            )
            result = {
                "baseline_id": job.baseline_id,
                "mode": "full",
                **new_state.summary(),
            }
            return result, new_state
        stats = self._replan(state, job.delta, tracer=self.tracer)
        result = {
            "baseline_id": job.baseline_id,
            "mode": "incremental",
            **stats.as_dict(),
        }
        if seconds_full_estimate and stats.seconds > 0:
            speedup = seconds_full_estimate / stats.seconds
            result["speedup_vs_full"] = round(speedup, 2)
            if self.tracer.enabled:
                self.tracer.observe("service.incremental_speedup", speedup)
        new_state = None
        if self._verify_rng.random() < self.options.verify_fraction:
            out, new_state = self._verify(job, state)
            result.update(out)
        return result, new_state

    def _verify(
        self, job: Job, state: PlanState
    ) -> "tuple[Dict[str, Any], Optional[PlanState]]":
        from repro.service.verify import verify_state

        self._stats["verified"] += 1
        if self.tracer.enabled:
            self.tracer.count("service.jobs_verified")
        check = verify_state(state, tracer=self.tracer)
        out: Dict[str, Any] = {
            "verified": True,
            "verify_matched": check.matched,
        }
        escalated: Optional[PlanState] = None
        if not check.matched:
            # Escalate: the scratch full plan is the truth; adopt it.
            self._stats["mismatches"] += 1
            escalated = check.reference
            out["escalated"] = True
            out["signature"] = check.reference.signature
            if self.tracer.enabled:
                self.tracer.count("service.verify_mismatches")
                self.tracer.event(
                    "verify_mismatch",
                    job.job_id,
                    incremental=check.incremental_signature,
                    full=check.full_signature,
                )
        return out, escalated
